"""Ablation: opportunistic boost drives low-load scheduler spread.

With boost states disabled (governor threshold below any reachable chip
temperature), every socket runs at most the sustained frequency when
cool, so freshness-seeking policies (CF) lose their low-load edge over
HF and the scheme spread collapses.
"""

from repro.config.presets import scaled
from repro.core import get_scheduler
from repro.server.topology import moonshot_sut
from repro.sim.runner import run_once
from repro.workloads.benchmark import BenchmarkSet

LOAD = 0.3


def _spread(boost_enabled: bool) -> float:
    topology = moonshot_sut(n_rows=3)
    params = scaled(sim_time_s=16.0, warmup_s=6.0)
    if not boost_enabled:
        params = params.with_overrides(boost_chip_temp_limit_c=18.1)
    values = [
        run_once(
            topology,
            params,
            get_scheduler(scheme),
            BenchmarkSet.COMPUTATION,
            LOAD,
        ).mean_runtime_expansion
        for scheme in ("CF", "HF", "Random")
    ]
    return max(values) / min(values) - 1.0


def test_ablation_boost(benchmark, record_artifact):
    def sweep():
        return {
            "boost": _spread(True),
            "no_boost": _spread(False),
        }

    spreads = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # Low-load differentiation collapses without boost.
    assert spreads["no_boost"] < spreads["boost"] / 2
    record_artifact(
        "ablation_boost",
        "CF/HF/Random expansion spread at 30% load\n"
        + "\n".join(f"{k}: {v:.4f}" for k, v in spreads.items()),
    )

"""Benchmark the fault-scenario experiment and the fault hot path.

Two timings: the full fan-degradation experiment (healthy + faulted
run per scheme) at reduced scale, and a single fault-injected run
versus its fault-free twin — the injector, the fault-aware view and
the trip machinery should cost only a few percent of a step, since
every hook early-outs when its fault class is inactive.
"""

import pytest

from repro.config.presets import smoke
from repro.core import get_scheduler
from repro.experiments.common import ExperimentConfig
from repro.experiments.fault_scenarios import run as run_scenarios
from repro.faults import FanLaneFault, FaultSchedule
from repro.server.topology import moonshot_sut
from repro.sim.runner import run_once
from repro.workloads.benchmark import BenchmarkSet

SCHEMES = ("CF", "HF", "CP")


@pytest.fixture(scope="module")
def topology():
    return moonshot_sut(n_rows=2)


def test_fault_scenarios_experiment(benchmark, record_artifact):
    config = ExperimentConfig(n_rows=2, sim_time_s=6.0, warmup_s=2.0)
    result = benchmark.pedantic(
        run_scenarios,
        kwargs=dict(config=config, schemes=SCHEMES),
        rounds=1,
        iterations=1,
    )
    assert set(result.reports) == set(SCHEMES)
    # Physics sanity: the harsh default fan fault costs every scheme
    # downwind frequency.
    for scheme in SCHEMES:
        assert result.reports[scheme].downwind_freq_loss > 0
    record_artifact(
        "fault_scenarios",
        f"fan of row {result.faulted_row} at {result.fan_scale:.0%} "
        f"airflow, load {result.load:.0%}\n"
        + "\n".join(
            f"{s}: regret={result.reports[s].fault_regret:.4f} "
            f"downwind_dF={result.reports[s].downwind_freq_loss:.4f}"
            for s in result.schemes
        ),
    )


def test_fault_injection_overhead(benchmark, topology, record_artifact):
    """One faulted run, timed; compared against its fault-free twin."""
    import time

    params = smoke(seed=3)
    schedule = FaultSchedule(
        events=(FanLaneFault(row=0, scale=0.5, start_s=1.0),)
    )

    start = time.perf_counter()
    run_once(
        topology,
        params,
        get_scheduler("CF"),
        BenchmarkSet.COMPUTATION,
        0.5,
    )
    base_s = time.perf_counter() - start

    result = benchmark.pedantic(
        run_once,
        args=(topology, params),
        kwargs=dict(
            scheduler=get_scheduler("CF"),
            benchmark_set=BenchmarkSet.COMPUTATION,
            load=0.5,
            fault_schedule=schedule,
        ),
        rounds=1,
        iterations=1,
    )
    assert result.fault_summary is not None
    faulted_s = benchmark.stats.stats.mean
    record_artifact(
        "fault_injection_overhead",
        f"fault-free: {base_s:.3f}s\nfaulted:    {faulted_s:.3f}s\n"
        f"overhead:   {faulted_s / base_s - 1.0:+.1%}",
    )

"""Regenerate Figure 3 (CF vs HF on coupled / uncoupled 2-socket)."""

from repro.experiments import fig03_motivation

from conftest import capture_main


def test_fig03_motivation(benchmark, record_artifact):
    result = benchmark.pedantic(
        fig03_motivation.run, rounds=1, iterations=1
    )
    # Paper shape: CF wins uncoupled (~8%), HF wins coupled (~5%).
    assert result.cf_advantage_uncoupled > 1.02
    assert result.hf_advantage_coupled > 1.01
    record_artifact("fig03", capture_main(fig03_motivation.main))

"""Ablation: heterogeneous heat sinks drive Predictive's zone choice.

With the M700's alternating 18-/30-fin sinks, Predictive concentrates
work on zone 2 (front-half even zone, better sink).  With uniform sinks
that preference disappears and work shifts to the very front.
"""

import numpy as np

from repro.config.presets import scaled
from repro.core import get_scheduler
from repro.server.topology import moonshot_sut
from repro.sim.runner import run_once
from repro.thermal.heatsink import FIN_18
from repro.workloads.benchmark import BenchmarkSet

# Low enough that zone 1 alone could absorb the whole load — placement
# is then a pure preference, isolating the heat-sink effect.
LOAD = 0.15


def _zone2_share(uniform: bool) -> float:
    kwargs = {"uniform_sink": FIN_18} if uniform else {}
    topology = moonshot_sut(n_rows=3, **kwargs)
    params = scaled(sim_time_s=16.0, warmup_s=6.0)
    result = run_once(
        topology,
        params,
        get_scheduler("Predictive"),
        BenchmarkSet.COMPUTATION,
        LOAD,
    )
    zone2 = np.isin(
        np.arange(topology.n_sockets), topology.sockets_in_zone(2)
    )
    return result.work_fraction(zone2)


def test_ablation_heatsink_heterogeneity(benchmark, record_artifact):
    def sweep():
        return {
            "alternating": _zone2_share(uniform=False),
            "uniform": _zone2_share(uniform=True),
        }

    shares = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # Zone 2 holds 1/6 of the sockets.  With the better sink there,
    # Predictive overloads it; with uniform sinks it does not.
    assert shares["alternating"] > 0.25
    assert shares["uniform"] < shares["alternating"] - 0.08
    record_artifact(
        "ablation_heatsinks",
        "Predictive zone-2 work share at 30% load\n"
        + "\n".join(f"{k}: {v:.3f}" for k, v in shares.items()),
    )

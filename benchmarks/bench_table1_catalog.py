"""Regenerate Table I (density optimized system catalog)."""

from repro.experiments import table1_catalog

from conftest import capture_main


def test_table1_catalog(benchmark, record_artifact):
    result = benchmark(table1_catalog.run)
    assert len(result.systems) == 11
    assert result.max_density == 72.0
    record_artifact("table1", capture_main(table1_catalog.main))

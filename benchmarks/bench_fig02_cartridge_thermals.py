"""Regenerate Figure 2 (cartridge thermal profile)."""

import pytest

from repro.experiments import fig02_cartridge_thermals

from conftest import capture_main


def test_fig02_cartridge_thermals(benchmark, record_artifact):
    result = benchmark(fig02_cartridge_thermals.run)
    # The paper's CFD observable: ~8 degC entry-air rise at 15 W.
    assert result.entry_delta_c == pytest.approx(8.0, abs=1.0)
    # The two-sink design compensates: downstream chip within ~2 degC
    # of upstream despite the hotter intake.
    assert abs(result.chip_c[1] - result.chip_c[0]) < 2.0
    record_artifact(
        "fig02", capture_main(fig02_cartridge_thermals.main)
    )

"""Regenerate Figure 7 (power and performance vs frequency)."""

import pytest

from repro.experiments import fig07_power_performance
from repro.workloads.benchmark import BenchmarkSet

from conftest import capture_main


def test_fig07_power_performance(benchmark, record_artifact):
    result = benchmark(fig07_power_performance.run)
    power = result.power_w
    perf = result.performance
    # Figure 7a anchors at 1900 MHz / 90 C.
    assert power[BenchmarkSet.COMPUTATION][1900] == pytest.approx(18.0)
    assert power[BenchmarkSet.GENERAL_PURPOSE][1900] == pytest.approx(
        14.0
    )
    assert power[BenchmarkSet.STORAGE][1900] == pytest.approx(10.5)
    # Figure 7b: Computation -35% at 1100 MHz, Storage least sensitive.
    assert perf[BenchmarkSet.COMPUTATION][1100] == pytest.approx(0.65)
    assert perf[BenchmarkSet.STORAGE][1100] > perf[
        BenchmarkSet.GENERAL_PURPOSE
    ][1100] > perf[BenchmarkSet.COMPUTATION][1100]
    record_artifact(
        "fig07", capture_main(fig07_power_performance.main)
    )

"""Regenerate Figure 1 (power and socket density per server class)."""

import pytest

from repro.analysis.survey import ServerClass
from repro.experiments import fig01_survey

from conftest import capture_main


def test_fig01_survey(benchmark, record_artifact):
    result = benchmark(fig01_survey.run)
    stats = result.stats
    assert stats[ServerClass.U1].mean_power_per_u_w == pytest.approx(
        208.0
    )
    assert stats[
        ServerClass.DENSITY_OPT
    ].mean_sockets_per_u == pytest.approx(25.0)
    # Density optimized leads every class on both axes.
    for server_class in ServerClass:
        if server_class is ServerClass.DENSITY_OPT:
            continue
        assert (
            stats[ServerClass.DENSITY_OPT].mean_power_per_u_w
            > stats[server_class].mean_power_per_u_w
        )
    record_artifact("fig01", capture_main(fig01_survey.main))

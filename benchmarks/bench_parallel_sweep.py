"""Benchmark the parallel sweep executor against the serial path.

Measures the three execution modes of :func:`repro.sim.runner.
run_sweep` on one small scheduler x load grid: the classic serial
loop, a 4-worker process pool, and a warm memo cache.  The parallel
and serial runs must agree bit-for-bit on every metric (the executor's
core contract), and the cached re-run must do no simulation work at
all.  On a multi-core machine the pool run's wall time is the
headline: it should approach serial / min(workers, points).
"""

import numpy as np
import pytest

from repro.config.presets import smoke
from repro.sim.parallel import SweepCache
from repro.sim.runner import run_sweep
from repro.server.topology import moonshot_sut
from repro.workloads.benchmark import BenchmarkSet

GRID = dict(
    scheduler_names=("CF", "HF", "Predictive", "CP"),
    benchmark_sets=(BenchmarkSet.COMPUTATION,),
    loads=(0.3, 0.7),
)


@pytest.fixture(scope="module")
def topology():
    return moonshot_sut(n_rows=2)


@pytest.fixture(scope="module")
def serial_results(topology):
    return run_sweep(topology, smoke(seed=1), **GRID)


def test_sweep_serial(benchmark, topology):
    results = benchmark.pedantic(
        run_sweep,
        args=(topology, smoke(seed=1)),
        kwargs=GRID,
        rounds=1,
        iterations=1,
    )
    assert len(results) == 8


def test_sweep_parallel_workers4(
    benchmark, topology, serial_results, record_artifact
):
    results = benchmark.pedantic(
        run_sweep,
        args=(topology, smoke(seed=1)),
        kwargs=dict(**GRID, max_workers=4),
        rounds=1,
        iterations=1,
    )
    lines = []
    for key, result in results.items():
        baseline = serial_results[key]
        assert result.energy_j == baseline.energy_j
        assert result.n_jobs_completed == baseline.n_jobs_completed
        assert np.array_equal(result.max_chip_c, baseline.max_chip_c)
        name, benchmark_set, load = key
        lines.append(
            f"{name:12s} {benchmark_set.value:12s} load={load:.1f} "
            f"energy={result.energy_j:.3f}J "
            f"completed={result.n_jobs_completed}"
        )
    record_artifact("parallel_sweep", "\n".join(lines) + "\n")


def test_sweep_cached_rerun(benchmark, topology):
    cache = SweepCache()
    run_sweep(topology, smoke(seed=1), **GRID, cache=cache)
    results = benchmark.pedantic(
        run_sweep,
        args=(topology, smoke(seed=1)),
        kwargs=dict(**GRID, cache=cache),
        rounds=1,
        iterations=1,
    )
    assert cache.hits == len(results)

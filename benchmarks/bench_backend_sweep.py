"""Fleet-tensor batched sweep evaluation vs per-point execution.

Measures the three ways to answer a decision-free capacity sweep over
one shared topology (``repro.sim.batched``):

- **per_point_serial** — the historical loop: every point runs the
  ``(n,)`` steady solve, DVFS selection and window advance on its own.
- **process_pool** — the same per-point work fanned over a fork-based
  process pool, the way :func:`repro.sim.runner.run_sweep` scales the
  *engine* sweeps.  For decision-free math the points are far too
  small to amortise pool startup; the artifact records that honestly.
- **batched_numpy** — all N points stacked into ``(N, n)`` fleet
  tensors and evaluated per kernel call.  Must match the serial path
  **bit for bit** (asserted here) and clear
  ``BENCH_BATCHED_MIN_SPEEDUP`` (default 1.1x; CI smoke drops it to
  parity so shared-runner noise cannot flake the job).
- **batched_jax** — the same stacked evaluation under the optional JAX
  backend (jitted + vmapped), measured only when jax is installed;
  the committed artifact records availability either way.

The committed artifact is ``benchmarks/results/backend_sweep.json``.
"""

import os
import sys
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro.backend import HAVE_JAX
from repro.config.presets import smoke
from repro.server.topology import moonshot_sut
from repro.sim.batched import (
    FleetPoint,
    evaluate_fleet,
    evaluate_fleet_serial,
)

from _timing import alternating_best_of, best_of, write_bench_json

#: Required batched-numpy speedup over the per-point serial loop.
BATCHED_MIN_SPEEDUP = float(
    os.environ.get("BENCH_BATCHED_MIN_SPEEDUP", "1.1")
)

#: Pool rounds (forking is slow; smoke trims this).
POOL_ROUNDS = int(os.environ.get("BENCH_POOL_ROUNDS", "3"))

N_ROWS = 3
N_POINTS = 64
WINDOW_STEPS = 4096
POOL_WORKERS = 4

_TOPOLOGY = None
_PARAMS = smoke(seed=0)


def _topology():
    global _TOPOLOGY
    if _TOPOLOGY is None:
        _TOPOLOGY = moonshot_sut(n_rows=N_ROWS)
    return _TOPOLOGY


def _points():
    """A mixed deterministic grid: load x power x exponent x inlet."""
    points = []
    for i in range(N_POINTS):
        points.append(
            FleetPoint(
                utilization=(i % 10) / 10.0 + 0.05,
                dyn_max_w=8.0 + 0.25 * (i % 53),
                dyn_exp=1.8 + 0.05 * (i % 9),
                inlet_c=None if i % 3 else 18.0 + (i % 7),
            )
        )
    return points


def _pool_chunk(chunk):
    """One worker's share of the per-point sweep (fork boundary)."""
    return evaluate_fleet_serial(
        _topology(), _PARAMS, chunk, window_steps=WINDOW_STEPS
    )


def _run_pool(points):
    chunks = [points[i::POOL_WORKERS] for i in range(POOL_WORKERS)]
    with ProcessPoolExecutor(max_workers=POOL_WORKERS) as pool:
        return list(pool.map(_pool_chunk, chunks))


def test_batched_sweep_speedup(record_artifact):
    topology = _topology()
    points = _points()

    def _serial():
        return evaluate_fleet_serial(
            topology, _PARAMS, points, window_steps=WINDOW_STEPS
        )

    def _batched():
        return evaluate_fleet(
            topology, _PARAMS, points, window_steps=WINDOW_STEPS
        )

    best, results, rounds = alternating_best_of(
        {"serial": _serial, "batched": _batched},
        stop=lambda floors: floors["serial"] / floors["batched"]
        >= BATCHED_MIN_SPEEDUP,
    )
    serial_s, batched_s = best["serial"], best["batched"]

    # The batched evaluator's core contract: same bits as per-point.
    for field in (
        "power_w", "ambient_c", "sink_c", "chip_c", "freq_mhz",
        "window_sink_c", "window_chip_c",
    ):
        np.testing.assert_array_equal(
            getattr(results["batched"], field),
            getattr(results["serial"], field),
            err_msg=field,
        )

    pool_s = None
    try:
        pool_s, pool_chunks = best_of(
            lambda: _run_pool(points), rounds=POOL_ROUNDS
        )
        stacked = np.concatenate(
            [chunk.chip_c for chunk in pool_chunks]
        )
        assert stacked.shape == results["serial"].chip_c.shape
    except OSError:
        pool_s = None  # sandboxed: no subprocesses

    jax_s = None
    if HAVE_JAX:
        jax_fn = lambda: evaluate_fleet(  # noqa: E731
            topology, _PARAMS, points,
            window_steps=WINDOW_STEPS, backend="jax",
        )
        jax_fn()  # trigger jit compilation outside the timed rounds
        jax_s, _ = best_of(jax_fn)

    speedup = serial_s / batched_s
    payload = {
        "benchmark": "backend_sweep",
        "n_points": N_POINTS,
        "n_sockets": topology.n_sockets,
        "window_steps": WINDOW_STEPS,
        "rounds": rounds,
        "serial_points_per_s": round(N_POINTS / serial_s, 1),
        "batched_numpy_points_per_s": round(N_POINTS / batched_s, 1),
        "process_pool_points_per_s": (
            None if pool_s is None else round(N_POINTS / pool_s, 1)
        ),
        "pool_workers": POOL_WORKERS,
        "batched_numpy_speedup": round(speedup, 3),
        "pool_speedup": (
            None if pool_s is None else round(serial_s / pool_s, 3)
        ),
        "have_jax": HAVE_JAX,
        "batched_jax_points_per_s": (
            None if jax_s is None else round(N_POINTS / jax_s, 1)
        ),
        "batched_jax_speedup": (
            None if jax_s is None else round(serial_s / jax_s, 3)
        ),
        "min_speedup": BATCHED_MIN_SPEEDUP,
    }
    line = write_bench_json("backend_sweep.json", payload)
    record_artifact("backend_sweep", line + "\n")

    assert speedup >= BATCHED_MIN_SPEEDUP, (
        f"batched fleet evaluation reached only {speedup:.2f}x over "
        f"the per-point loop (required {BATCHED_MIN_SPEEDUP}x): {line}"
    )


if __name__ == "__main__":
    argv = sys.argv[1:]
    if "--smoke" in argv:
        # CI perf-regression smoke: parity-only floor, fewer pool
        # rounds — no absolute-time bars to flake on shared runners.
        argv.remove("--smoke")
        os.environ.setdefault("BENCH_BATCHED_MIN_SPEEDUP", "1.0")
        os.environ.setdefault("BENCH_POOL_ROUNDS", "1")
    sys.exit(pytest.main([__file__, "-v", "-s"] + argv))

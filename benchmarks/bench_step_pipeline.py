"""Step-pipeline engine throughput vs. the pre-refactor monolith.

Runs the identical 180-socket Moonshot workload through the frozen
pre-refactor engine (``_legacy_engine.LegacySimulation``) and the
current step-pipeline :class:`repro.sim.engine.Simulation`, and reports
engine steps per second for both.  The pipeline run must

- produce bit-identical results to the legacy engine (the refactor's
  core contract: same RNG draw order, same float op order), and
- clear the speedup threshold: >= 1.3x locally (the refactor's
  acceptance target), relaxable through ``BENCH_MIN_SPEEDUP`` for
  noisy shared CI runners (the CI smoke uses a sanity threshold).

The measurement is written as BENCH JSON: one ``BENCH {...}`` line on
stdout and ``benchmarks/results/step_pipeline.json`` on disk.
"""

import os

import numpy as np
import pytest

from repro.config.presets import smoke
from repro.core import get_scheduler
from repro.server.topology import moonshot_sut
from repro.sim.engine import Simulation
from repro.workloads.arrivals import ArrivalProcess
from repro.workloads.benchmark import BenchmarkSet

from _legacy_engine import LegacySimulation
from _timing import (
    ADAPTIVE_ROUNDS_MAX,
    ADAPTIVE_ROUNDS_MIN,
    ROUNDS,
    alternating_best_of,
    best_of,
    write_bench_json,
)

#: Required pipeline-vs-legacy speedup.  The refactor targets >= 1.3x
#: on an idle machine; CI smoke overrides this with a lower sanity
#: threshold because shared runners time noisily.
MIN_SPEEDUP = float(os.environ.get("BENCH_MIN_SPEEDUP", "1.3"))

#: Maximum tolerated profiling slowdown (fraction).  The chained
#: timestamp scheme costs about one clock read per component hook per
#: step; 0.02 is the observability layer's acceptance target on an
#: idle machine, relaxable for noisy shared CI runners.
MAX_PROFILE_OVERHEAD = float(
    os.environ.get("BENCH_MAX_PROFILE_OVERHEAD", "0.02")
)

SEED = 7
LOAD = 0.6


def _workload():
    topology = moonshot_sut(n_rows=15)
    params = smoke(seed=SEED)
    arrivals = ArrivalProcess(
        benchmark_set=BenchmarkSet.COMPUTATION,
        load=LOAD,
        n_sockets=topology.n_sockets,
        seed=params.seed,
        duration_scale=params.duration_scale,
    )
    jobs = arrivals.generate(params.sim_time_s)
    n_steps = int(round(params.sim_time_s / params.power_manager_interval_s))
    return topology, params, jobs, n_steps


def _best_rate(factory, jobs, n_steps):
    """Best-of-N steps/sec for one engine, plus its (stable) result."""
    best_s, result = best_of(lambda: factory().run(list(jobs)))
    return n_steps / best_s, result


def test_step_pipeline_speedup(record_artifact):
    topology, params, jobs, n_steps = _workload()

    legacy_rate, legacy_result = _best_rate(
        lambda: LegacySimulation(topology, params, get_scheduler("CF")),
        jobs,
        n_steps,
    )
    pipeline_rate, pipeline_result = _best_rate(
        lambda: Simulation(topology, params, get_scheduler("CF")),
        jobs,
        n_steps,
    )

    # The refactor's contract: not merely statistically close — the
    # pipeline replays the exact trajectory of the monolith.
    assert pipeline_result.energy_j == legacy_result.energy_j
    assert (
        pipeline_result.n_jobs_completed == legacy_result.n_jobs_completed
    )
    assert np.array_equal(
        pipeline_result.max_chip_c, legacy_result.max_chip_c
    )
    assert np.array_equal(
        pipeline_result.work_done, legacy_result.work_done
    )

    speedup = pipeline_rate / legacy_rate
    payload = {
        "benchmark": "step_pipeline",
        "n_sockets": topology.n_sockets,
        "n_steps": n_steps,
        "scheduler": "CF",
        "load": LOAD,
        "seed": SEED,
        "rounds": ROUNDS,
        "legacy_steps_per_s": round(legacy_rate, 1),
        "pipeline_steps_per_s": round(pipeline_rate, 1),
        "speedup": round(speedup, 3),
        "min_speedup": MIN_SPEEDUP,
    }
    line = write_bench_json("step_pipeline.json", payload)
    record_artifact("step_pipeline", line + "\n")

    assert speedup >= MIN_SPEEDUP, (
        f"step pipeline reached only {speedup:.2f}x over the legacy "
        f"engine (required {MIN_SPEEDUP}x): {line}"
    )


def test_profiling_overhead(record_artifact):
    """StepProfiler must cost < 2% wall-clock on the full 180-socket SUT
    and leave the float trajectory untouched."""
    from repro.sim.fingerprint import result_fingerprint

    topology, params, jobs, n_steps = _workload()

    # Interference spikes (neighbour load, GC) inflate individual runs
    # by 5-15% — an order of magnitude more than the effect under
    # measurement — so means and medians are useless here; only the
    # noise *floor* is stable.  Alternating the variants run by run
    # gives both the same shot at quiet windows, and the best-of ratio
    # then isolates the instrumentation cost.
    def _run(**kwargs):
        sim = Simulation(topology, params, get_scheduler("CF"), **kwargs)
        return sim.run(list(jobs))

    best, results, rounds = alternating_best_of(
        {
            "plain": lambda: _run(),
            "profiled": lambda: _run(profile=True),
        },
        stop=lambda floors: (
            floors["profiled"] / floors["plain"] - 1.0
            < MAX_PROFILE_OVERHEAD
        ),
        rounds_min=ADAPTIVE_ROUNDS_MIN,
        rounds_max=ADAPTIVE_ROUNDS_MAX,
    )
    overhead = best["profiled"] / best["plain"] - 1.0
    plain_rate = n_steps / best["plain"]
    profiled_rate = n_steps / best["profiled"]
    plain_result = results["plain"]
    profiled_result = results["profiled"]

    # Profiling is strictly observational: bit-identical trajectory.
    assert result_fingerprint(profiled_result) == result_fingerprint(
        plain_result
    )
    profile = profiled_result.profile
    assert profile is not None
    assert profile.n_steps == n_steps

    payload = {
        "benchmark": "profiler_overhead",
        "n_sockets": topology.n_sockets,
        "n_steps": n_steps,
        "scheduler": "CF",
        "load": LOAD,
        "seed": SEED,
        "rounds": rounds,
        "plain_steps_per_s": round(plain_rate, 1),
        "profiled_steps_per_s": round(profiled_rate, 1),
        "overhead": round(overhead, 4),
        "max_overhead": MAX_PROFILE_OVERHEAD,
    }
    line = write_bench_json("profiler_overhead.json", payload)
    print(profile.render())
    record_artifact(
        "profiler_overhead", line + "\n\n" + profile.render() + "\n"
    )

    assert overhead < MAX_PROFILE_OVERHEAD, (
        f"profiling cost {overhead * 100:.2f}% wall-clock "
        f"(allowed {MAX_PROFILE_OVERHEAD * 100:.1f}%): {line}"
    )


if __name__ == "__main__":
    pytest.main([__file__, "-v", "-s"])

"""Regenerate Figure 11 (existing schemes at 30% / 70% load)."""

from repro.experiments import fig11_existing_schemes

from conftest import capture_main


def test_fig11_existing_schemes(benchmark, record_artifact):
    result = benchmark.pedantic(
        fig11_existing_schemes.run, rounds=1, iterations=1
    )
    low, high = result.loads
    # At low load HF and MinHR are clearly worse than CF...
    assert result.expansion_vs_cf[("HF", low)] > 1.03
    assert result.expansion_vs_cf[("MinHR", low)] > 1.03
    # ...and Predictive is at least CF-par.
    assert result.expansion_vs_cf[("Predictive", low)] <= 1.005
    # At high load the ordering flips: HF / MinHR beat CF.
    assert result.expansion_vs_cf[("HF", high)] < 1.0
    assert result.expansion_vs_cf[("MinHR", high)] < 1.0
    # Predictive has lost its advantage.
    assert result.expansion_vs_cf[("Predictive", high)] > 0.99
    assert result.best_at(high) in ("HF", "MinHR", "Random")
    record_artifact(
        "fig11", capture_main(fig11_existing_schemes.main)
    )

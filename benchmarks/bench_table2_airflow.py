"""Regenerate Table II (airflow requirements per server class)."""

import pytest

from repro.experiments import table2_airflow

from conftest import capture_main


def test_table2_airflow(benchmark, record_artifact):
    result = benchmark(table2_airflow.run)
    values = {name: cfm for name, _, cfm in result.rows_data}
    assert values["1U"] == pytest.approx(18.30, abs=0.01)
    assert values["Blade"] == pytest.approx(37.05, abs=0.01)
    assert values["DensityOpt"] == pytest.approx(51.74, abs=0.01)
    record_artifact("table2", capture_main(table2_airflow.main))

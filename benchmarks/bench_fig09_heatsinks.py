"""Regenerate Figure 9 (heat-sink thermals and on-die spreads)."""

from repro.experiments import fig09_heatsinks

from conftest import capture_main


def test_fig09_heatsinks(benchmark, record_artifact):
    result = benchmark(fig09_heatsinks.run)
    low, high = result.spread_range()
    # Figure 9a: 4-7 degC hot-cold spreads on the small die.
    assert low >= 3.5
    assert high <= 7.5
    # Figure 9b: 30-fin advantage 3-4 degC (low power), 6-7 (high).
    advantage = result.sink_advantage()
    assert 2.5 <= advantage["low_power"] <= 5.0
    assert 5.5 <= advantage["high_power"] <= 8.5
    record_artifact("fig09", capture_main(fig09_heatsinks.main))

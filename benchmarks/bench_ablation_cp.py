"""Ablation: CP's two design choices (downwind term, row restriction).

Compares the full CouplingPredictor against (a) CP without the downwind
slowdown term (degenerating to row-restricted Predictive) and (b) CP
searching all idle sockets instead of one random row.
"""

from repro.config.presets import scaled
from repro.core import CouplingPredictor, get_scheduler
from repro.server.topology import moonshot_sut
from repro.sim.runner import run_once
from repro.workloads.benchmark import BenchmarkSet


def _expansion(scheduler, load, topology, params):
    return run_once(
        topology, params, scheduler, BenchmarkSet.COMPUTATION, load
    ).mean_runtime_expansion


def test_ablation_cp_design(benchmark, record_artifact):
    topology = moonshot_sut(n_rows=3)
    params = scaled(sim_time_s=16.0, warmup_s=6.0)

    def sweep():
        out = {}
        for load in (0.3, 0.8):
            out[("CF", load)] = _expansion(
                get_scheduler("CF"), load, topology, params
            )
            out[("CP", load)] = _expansion(
                CouplingPredictor(), load, topology, params
            )
            out[("CP-nocoupling", load)] = _expansion(
                CouplingPredictor(coupling_aware=False),
                load,
                topology,
                params,
            )
            out[("CP-global", load)] = _expansion(
                CouplingPredictor(row_restricted=False),
                load,
                topology,
                params,
            )
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # The downwind term is what buys the high-load benefit.
    assert (
        results[("CP", 0.8)] <= results[("CP-nocoupling", 0.8)] + 0.002
    )
    # Full CP beats CF at both load extremes.
    for load in (0.3, 0.8):
        assert results[("CP", load)] < results[("CF", load)]
    lines = [
        f"{name} @ {load:.0%}: expansion/CF = "
        f"{results[(name, load)] / results[('CF', load)]:.4f}"
        for load in (0.3, 0.8)
        for name in ("CP", "CP-nocoupling", "CP-global")
    ]
    record_artifact(
        "ablation_cp", "CP design ablation\n" + "\n".join(lines)
    )

"""Validation bench: scaled presets reproduce paper-faithful behaviour.

DESIGN.md argues the scaled preset (10x faster sink constant, 10x
longer jobs, warm-started field) preserves the paper-faithful regime
because every steady-state temperature is unchanged and the ordering
job << sink-tau << horizon is maintained.  This bench checks the claim
empirically: a short warm-started run with the *exact Table III
physics* (30 s sink constant, 1 ms power manager, unscaled ms jobs)
must agree with the scaled preset on the paper's metrics.
"""

import pytest

from repro.config.presets import paper_faithful, scaled
from repro.core import get_scheduler
from repro.metrics.zones import zone_report
from repro.server.topology import moonshot_sut
from repro.sim.runner import run_once
from repro.workloads.benchmark import BenchmarkSet

LOAD = 0.7


def _run(params, topology):
    return run_once(
        topology,
        params,
        get_scheduler("CF"),
        BenchmarkSet.COMPUTATION,
        LOAD,
    )


def test_validation_scaling(benchmark, record_artifact):
    topology = moonshot_sut(n_rows=2)

    def compare():
        # The faithful run needs a horizon of several 30 s sink time
        # constants past warm-up for the scheduler-specific thermal
        # redistribution to settle (the paper used 30 minutes).
        faithful = paper_faithful().with_overrides(
            sim_time_s=120.0, warmup_s=60.0
        )
        fast = scaled(sim_time_s=24.0, warmup_s=6.0)
        return {
            "faithful": _run(faithful, topology),
            "scaled": _run(fast, topology),
        }

    results = benchmark.pedantic(compare, rounds=1, iterations=1)
    faithful = results["faithful"]
    fast = results["scaled"]

    # Same offered load -> similar utilisation and expansion.
    assert fast.utilization == pytest.approx(
        faithful.utilization, abs=0.08
    )
    assert fast.mean_runtime_expansion == pytest.approx(
        faithful.mean_runtime_expansion, abs=0.05
    )
    # The thermal field agrees: same front/back frequency structure.
    zf = zone_report(faithful)
    zs = zone_report(fast)
    assert zs.front_freq == pytest.approx(zf.front_freq, abs=0.06)
    assert zs.back_freq == pytest.approx(zf.back_freq, abs=0.06)
    # Transient peaks run a few degC hotter under the faster sink
    # constant (more excursions per window); steady temps match.
    assert fast.max_chip_c.max() == pytest.approx(
        faithful.max_chip_c.max(), abs=12.0
    )
    record_artifact(
        "validation_scaling",
        "paper-faithful vs scaled preset (CF, 70% load, 24-socket SUT)\n"
        f"expansion: {faithful.mean_runtime_expansion:.4f} vs "
        f"{fast.mean_runtime_expansion:.4f}\n"
        f"front freq: {zf.front_freq:.3f} vs {zs.front_freq:.3f}\n"
        f"back freq:  {zf.back_freq:.3f} vs {zs.back_freq:.3f}\n"
        f"max chip:   {faithful.max_chip_c.max():.1f} vs "
        f"{fast.max_chip_c.max():.1f}",
    )

"""Extension bench: dynamic fan control trade-off.

Quantifies the cooling-performance trade-off: capping fan speed saves
cubic fan energy but strengthens coupling and costs performance; the
controller at full range keeps performance while modulating with load.
"""

from repro.config.presets import scaled
from repro.core import get_scheduler
from repro.server.topology import moonshot_sut
from repro.sim.engine import Simulation
from repro.thermal.fan_control import FanController
from repro.workloads.arrivals import ArrivalProcess
from repro.workloads.benchmark import BenchmarkSet


def _run(max_scale):
    topology = moonshot_sut(n_rows=3)
    params = scaled(sim_time_s=14.0, warmup_s=5.0)
    jobs = ArrivalProcess(
        benchmark_set=BenchmarkSet.COMPUTATION,
        load=0.7,
        n_sockets=topology.n_sockets,
        seed=0,
        duration_scale=params.duration_scale,
    ).generate(params.sim_time_s)
    controller = FanController(
        design_total_cfm=topology.total_airflow_cfm(),
        min_scale=0.4,
        max_scale=max_scale,
    )
    return Simulation(
        topology,
        params,
        get_scheduler("CP"),
        fan_controller=controller,
    ).run(jobs)


def test_extension_fan_control(benchmark, record_artifact):
    def sweep():
        return {scale: _run(scale) for scale in (0.5, 1.0)}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    starved = results[0.5]
    nominal = results[1.0]
    # Less airflow -> hotter chips and worse performance...
    assert starved.max_chip_c.max() > nominal.max_chip_c.max()
    assert (
        starved.mean_runtime_expansion
        >= nominal.mean_runtime_expansion
    )
    # ...but lower fan energy.
    assert starved.cooling_energy_j < nominal.cooling_energy_j
    record_artifact(
        "extension_fan_control",
        "Fan ceiling trade-off at 70% load (CP)\n"
        + "\n".join(
            f"max_scale={scale}: expansion="
            f"{r.mean_runtime_expansion:.4f} "
            f"cooling_kJ={r.cooling_energy_j / 1000:.2f} "
            f"max_chip={r.max_chip_c.max():.1f}"
            for scale, r in results.items()
        ),
    )

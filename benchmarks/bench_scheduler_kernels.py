"""Scheduler-kernel and thermal-solver speedups vs. the scalar paths.

Two measurements, both against in-tree reference implementations that
remain available behind flags (``use_kernel=False`` on the policies,
``DetailedChipModel.solve_via_network``):

- **placement_e2e** — a placement-heavy 180-socket Moonshot run under
  full-search CouplingPredictor (``row_restricted=False``: every idle
  socket scored per decision, the policy's worst case).  The vectorised
  :class:`~repro.core.kernels.PlacementKernel` must produce a
  bit-identical trajectory and clear ``BENCH_KERNEL_MIN_SPEEDUP``
  (default 1.5x; the committed artifact shows ~14x).
- **detailed_solver** — the repeated detailed-chip-model solve pattern
  of the Fig. 9/10 sweeps (two sinks x 19 power levels x 3 ambients).
  The factorization-cached fast path must match the rebuilt-network
  reference bit for bit and clear ``BENCH_SOLVER_MIN_SPEEDUP``
  (default 3x).

Both results land in one committed artifact,
``benchmarks/results/scheduler_kernels.json``.  Running the module
directly with ``--smoke`` (the CI perf-regression job) lowers both
thresholds to 1.0 — any regression below parity fails, with no flaky
absolute-time bars — and trims the best-of rounds for runner time.
"""

import os
import sys

import pytest

from repro.config.presets import smoke
from repro.core.coupling_predictor import CouplingPredictor
from repro.server.topology import moonshot_sut
from repro.sim.engine import Simulation
from repro.sim.fingerprint import result_fingerprint
from repro.thermal.detailed_model import DetailedChipModel
from repro.thermal.heatsink import FIN_18, FIN_30
from repro.workloads.arrivals import ArrivalProcess
from repro.workloads.benchmark import BenchmarkSet

from _timing import ROUNDS, best_of, write_bench_json

#: Required kernel-vs-scalar end-to-end speedup.  The committed
#: artifact shows ~14x on an idle machine; 1.5x is the acceptance
#: floor, and the CI smoke overrides with 1.0 (regression-only guard).
KERNEL_MIN_SPEEDUP = float(
    os.environ.get("BENCH_KERNEL_MIN_SPEEDUP", "1.5")
)

#: Required fast-vs-network solver speedup on the repeated-solve grid.
SOLVER_MIN_SPEEDUP = float(
    os.environ.get("BENCH_SOLVER_MIN_SPEEDUP", "3.0")
)

#: Best-of rounds (the scalar baseline is slow; smoke trims this).
KERNEL_ROUNDS = int(os.environ.get("BENCH_KERNEL_ROUNDS", str(ROUNDS)))

SEED = 7
LOAD = 0.8


def _workload():
    topology = moonshot_sut(n_rows=15)
    params = smoke(seed=SEED)
    arrivals = ArrivalProcess(
        benchmark_set=BenchmarkSet.COMPUTATION,
        load=LOAD,
        n_sockets=topology.n_sockets,
        seed=params.seed,
        duration_scale=params.duration_scale,
    )
    jobs = arrivals.generate(params.sim_time_s)
    n_steps = int(round(params.sim_time_s / params.power_manager_interval_s))
    return topology, params, jobs, n_steps


def test_placement_kernel_speedup(record_artifact):
    topology, params, jobs, n_steps = _workload()

    def _run(use_kernel):
        sim = Simulation(
            topology,
            params,
            CouplingPredictor(row_restricted=False, use_kernel=use_kernel),
        )
        return sim.run(list(jobs))

    kernel_s, kernel_result = best_of(
        lambda: _run(True), rounds=KERNEL_ROUNDS
    )
    scalar_s, scalar_result = best_of(
        lambda: _run(False), rounds=KERNEL_ROUNDS
    )

    # The kernel's contract: the exact scalar trajectory, faster.
    assert result_fingerprint(kernel_result) == result_fingerprint(
        scalar_result
    )

    speedup = scalar_s / kernel_s
    payload = {
        "benchmark": "placement_kernel",
        "n_sockets": topology.n_sockets,
        "n_steps": n_steps,
        "scheduler": "CP(row_restricted=False)",
        "load": LOAD,
        "seed": SEED,
        "rounds": KERNEL_ROUNDS,
        "scalar_steps_per_s": round(n_steps / scalar_s, 1),
        "kernel_steps_per_s": round(n_steps / kernel_s, 1),
        "speedup": round(speedup, 3),
        "min_speedup": KERNEL_MIN_SPEEDUP,
    }
    line = write_bench_json(
        "scheduler_kernels.json", {"placement_e2e": payload}, merge=True
    )
    record_artifact("placement_kernel", line + "\n")

    assert speedup >= KERNEL_MIN_SPEEDUP, (
        f"placement kernel reached only {speedup:.2f}x over the scalar "
        f"path (required {KERNEL_MIN_SPEEDUP}x): {line}"
    )


#: The Fig. 9/10-style repeated-solve grid: per-block power splits at
#: 19 total-power levels, three ambients, both sink variants.
_POWER_SPLIT = {
    "core0": 0.10,
    "core1": 0.10,
    "core2": 0.10,
    "core3": 0.10,
    "l2": 0.10,
    "gpu": 0.40,
    "uncore": 0.06,
    "io": 0.04,
}
_POWERS_W = [4.0 + 0.5 * i for i in range(19)]
_AMBIENTS_C = [25.0, 32.0, 38.5]


def _solve_grid(solver):
    results = []
    for power in _POWERS_W:
        block_power = {
            name: power * frac for name, frac in _POWER_SPLIT.items()
        }
        for ambient in _AMBIENTS_C:
            result = solver(ambient, block_power)
            results.append(
                (
                    result.spreader_c,
                    result.sink_base_c,
                    tuple(sorted(result.block_temperatures_c.items())),
                )
            )
    return results


def test_detailed_solver_speedup(record_artifact):
    models = [DetailedChipModel(sink) for sink in (FIN_18, FIN_30)]

    def _fast():
        return [_solve_grid(model.solve) for model in models]

    def _reference():
        return [
            _solve_grid(model.solve_via_network) for model in models
        ]

    fast_s, fast_results = best_of(_fast)
    ref_s, ref_results = best_of(_reference)

    # Bit-identical temperatures, path for path.
    assert fast_results == ref_results

    n_solves = len(models) * len(_POWERS_W) * len(_AMBIENTS_C)
    speedup = ref_s / fast_s
    payload = {
        "benchmark": "detailed_solver",
        "n_solves": n_solves,
        "rounds": ROUNDS,
        "reference_solves_per_s": round(n_solves / ref_s, 1),
        "fast_solves_per_s": round(n_solves / fast_s, 1),
        "speedup": round(speedup, 3),
        "min_speedup": SOLVER_MIN_SPEEDUP,
    }
    line = write_bench_json(
        "scheduler_kernels.json", {"detailed_solver": payload}, merge=True
    )
    record_artifact("detailed_solver", line + "\n")

    assert speedup >= SOLVER_MIN_SPEEDUP, (
        f"factorization-cached solver reached only {speedup:.2f}x over "
        f"the rebuilt-network path (required {SOLVER_MIN_SPEEDUP}x): "
        f"{line}"
    )


if __name__ == "__main__":
    argv = sys.argv[1:]
    if "--smoke" in argv:
        # CI perf-regression smoke: guard against the kernels slipping
        # below parity with their scalar baselines, without flaky
        # absolute thresholds, and with fewer rounds of the slow
        # scalar baseline.
        argv.remove("--smoke")
        os.environ.setdefault("BENCH_KERNEL_MIN_SPEEDUP", "1.0")
        os.environ.setdefault("BENCH_SOLVER_MIN_SPEEDUP", "1.0")
        os.environ.setdefault("BENCH_KERNEL_ROUNDS", "2")
    sys.exit(pytest.main([__file__, "-v", "-s"] + argv))

"""Fleet-service throughput: micro-batching vs. per-message dispatch.

Drives one seeded mixed interactive/batch query stream (600 requests
over two 180-socket chassis, 25% what-if scenarios, placements drawn
from a small pool of shared chassis states) through the virtual-time
fleet drive loop twice:

- **per_message** — batching off (``max_batch=1``), warm-field cache
  off: every query is one message, one steady-state solve, one
  post-answer snapshot.  This is the coordinator's legacy hot path.
- **batched** — a 0.5s coalescing window with ``max_batch=64`` and a
  16-entry warm-field cache: compatible queued queries ride one
  :class:`~repro.fleet.messages.QueryBatch`, the equilibrium field is
  solved once per distinct chassis state per batch, and what-if
  scenarios stack into single fleet-tensor calls.

The two runs must agree **bit for bit** on every answer (status and
payload) — micro-batching is a transport/compute optimisation, never a
semantic one — and the batched run must clear
``BENCH_FLEET_MIN_SPEEDUP`` (default 3x; the CI smoke run lowers the
bar to 1.5x and trims the workload).  Wall-clock queries/sec is the
headline; virtual-clock admission-to-answer p50/p99 are reported for
both variants so the latency cost of the coalescing window stays
visible next to the throughput win.

The measurement alternates the two variants
(:func:`_timing.alternating_best_of`) so interference bursts on shared
runners hit both floors equally, and keeps sampling until the ratio
clears the threshold with margin or the round cap is hit.
"""

import os
import sys

import pytest

from repro.fleet import (
    FleetConfig,
    demo_fleet,
    drive_fleet,
    generate_workload,
    latency_stats,
)

from _timing import alternating_best_of, write_bench_json

#: Required batched-vs-per-message throughput ratio.  The committed
#: artifact clears 3x on an idle machine; the CI smoke overrides with
#: 1.5 (guarding the mechanism, not the machine).
FLEET_MIN_SPEEDUP = float(
    os.environ.get("BENCH_FLEET_MIN_SPEEDUP", "3.0")
)

#: Stream length (the smoke run trims this for runner time).
FLEET_REQUESTS = int(os.environ.get("BENCH_FLEET_REQUESTS", "600"))

SEED = 7
HORIZON_S = 2.0
N_STATES = 2
WHAT_IF_FRACTION = 0.25
TICK_S = 0.05
BATCH_WINDOW_S = 0.5
MAX_BATCH = 64
WARM_CAPACITY = 16


def _config(batch_window_s, max_batch):
    return FleetConfig(
        max_queue=2048,
        max_inflight_per_worker=256,
        request_timeout_s=60.0,
        queue_timeout_s=120.0,
        retry_jitter_s=0.0,
        max_staleness_s=600.0,
        log_heartbeats=False,
        batch_window_s=batch_window_s,
        max_batch=max_batch,
    )


def _answers(coordinator):
    """Status + payload per request — the differential oracle's view."""
    return {
        rid: (answer.status.value, repr(answer.payload))
        for rid, answer in coordinator.answers.items()
    }


def test_fleet_throughput(record_artifact):
    registry = demo_fleet(n_chassis=2, n_rows=15, replicas=1)
    workload = generate_workload(
        registry,
        seed=SEED,
        n_requests=FLEET_REQUESTS,
        horizon_s=HORIZON_S,
        n_states=N_STATES,
        what_if_fraction=WHAT_IF_FRACTION,
    )

    variants = {
        "per_message": lambda: drive_fleet(
            registry,
            workload,
            _config(batch_window_s=0.0, max_batch=1),
            tick_s=TICK_S,
            warm_capacity=0,
        ),
        "batched": lambda: drive_fleet(
            registry,
            workload,
            _config(
                batch_window_s=BATCH_WINDOW_S, max_batch=MAX_BATCH
            ),
            tick_s=TICK_S,
            warm_capacity=WARM_CAPACITY,
        ),
    }

    def _cleared(best):
        # Keep sampling until the ratio clears the bar with margin.
        return (
            best["per_message"] / best["batched"]
            >= FLEET_MIN_SPEEDUP * 1.1
        )

    best, results, rounds = alternating_best_of(
        variants, stop=_cleared
    )

    serial = results["per_message"]
    batched = results["batched"]

    # Differential oracle: batching must not change a single answer.
    assert _answers(serial) == _answers(batched)
    assert len(serial.answers) == FLEET_REQUESTS

    batch_events = [
        event
        for event in batched.events
        if event["type"] == "fleet_batch"
    ]
    assert batch_events, "batched run dispatched no batches"
    n_batched_queries = sum(e["size"] for e in batch_events)
    warm_hits = sum(e["warm_hits"] for e in batch_events)
    warm_misses = sum(e["warm_misses"] for e in batch_events)

    serial_latency = latency_stats(serial.events)
    batched_latency = latency_stats(batched.events)
    speedup = best["per_message"] / best["batched"]

    payload = {
        "benchmark": "fleet_throughput",
        "n_requests": FLEET_REQUESTS,
        "n_chassis": 2,
        "n_sockets_per_chassis": 180,
        "n_states": N_STATES,
        "what_if_fraction": WHAT_IF_FRACTION,
        "seed": SEED,
        "rounds": rounds,
        "batch_window_s": BATCH_WINDOW_S,
        "max_batch": MAX_BATCH,
        "warm_capacity": WARM_CAPACITY,
        "per_message_s": round(best["per_message"], 4),
        "batched_s": round(best["batched"], 4),
        "per_message_qps": round(
            FLEET_REQUESTS / best["per_message"], 1
        ),
        "batched_qps": round(FLEET_REQUESTS / best["batched"], 1),
        "speedup": round(speedup, 3),
        "min_speedup": FLEET_MIN_SPEEDUP,
        "n_batches": len(batch_events),
        "mean_batch_size": round(
            n_batched_queries / len(batch_events), 2
        ),
        "warm_hits": warm_hits,
        "warm_misses": warm_misses,
        "per_message_p50_s": round(serial_latency["p50_s"], 4),
        "per_message_p99_s": round(serial_latency["p99_s"], 4),
        "batched_p50_s": round(batched_latency["p50_s"], 4),
        "batched_p99_s": round(batched_latency["p99_s"], 4),
    }
    line = write_bench_json("fleet_throughput.json", payload)
    record_artifact("fleet_throughput", line + "\n")

    assert speedup >= FLEET_MIN_SPEEDUP, (
        f"micro-batched dispatch reached only {speedup:.2f}x over the "
        f"per-message baseline (required {FLEET_MIN_SPEEDUP}x): {line}"
    )


if __name__ == "__main__":
    argv = sys.argv[1:]
    if "--smoke" in argv:
        # CI perf-regression smoke: a lighter stream and a 1.5x floor —
        # enough to catch the batched path regressing toward the
        # per-message baseline without flaky absolute-time bars.
        argv.remove("--smoke")
        os.environ.setdefault("BENCH_FLEET_MIN_SPEEDUP", "1.5")
        os.environ.setdefault("BENCH_FLEET_REQUESTS", "300")
    sys.exit(pytest.main([__file__, "-v", "-s"] + argv))

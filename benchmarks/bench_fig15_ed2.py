"""Regenerate Figure 15 (ED^2 vs CF across loads and workloads)."""

from repro.experiments import fig15_ed2
from repro.workloads.benchmark import BenchmarkSet

from conftest import capture_main


def test_fig15_ed2(benchmark, record_artifact):
    result = benchmark.pedantic(fig15_ed2.run, rounds=1, iterations=1)
    computation = BenchmarkSet.COMPUTATION
    # CP imposes no energy-delay penalty over CF at any load...
    for benchmark_set in result.benchmark_sets:
        for load in result.loads:
            assert (
                result.ed2_vs_cf[("CP", benchmark_set, load)] < 1.05
            )
    # ...and improves ED^2 where it improves performance.
    assert result.best_ed2(computation) < 0.95
    # CP tracks the best existing scheme per load.
    for load in result.loads:
        best_existing = min(
            result.ed2_vs_cf[(scheme, computation, load)]
            for scheme in ("HF", "MinHR", "Predictive")
        )
        cp = result.ed2_vs_cf[("CP", computation, load)]
        assert cp <= best_existing + 0.06, load
    record_artifact("fig15", capture_main(fig15_ed2.main))

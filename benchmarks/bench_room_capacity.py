"""Regenerate the room sustainable-load artifact (CRAC sensitivity).

Runs the full ``room`` experiment family — sustainable-load curves for
the three chassis mixes across the CRAC setpoint sweep, the placement
comparison at the reference setpoint and the diurnal free-cooling
envelope — and commits the numbers under ``benchmarks/results/``:
``room_capacity.txt`` (the printed tables) plus the machine-readable
``room_capacity.json`` sidecar carrying the structured curves.

Physics gates asserted on every run:

- every mix's curve derates monotonically with a warming CRAC supply;
- the strongly coupled mix derates at least as fast as the uncoupled
  one at every setpoint (in-chassis coupling multiplies the room-level
  inlet rise);
- inlet-aware ``coolest`` placement never sustains less room load than
  the paper's room-blind uniform placement.
"""

import io
from contextlib import redirect_stdout

from repro.experiments import room_scenarios

from _timing import best_of, write_bench_json

#: The room family is analytical (no transient simulation); a small
#: best-of keeps the committed timing representative without making
#: the bench heavy.
ROOM_ROUNDS = 3


def test_room_capacity(record_artifact):
    best_s, result = best_of(room_scenarios.run, rounds=ROOM_ROUNDS)

    assert len(result.mixes) >= 3
    for mix in result.mixes:
        loads = [p.max_utilization for p in result.curves[mix]]
        assert loads == sorted(loads, reverse=True), mix
    coupled = [p.max_utilization for p in result.curves["coupled"]]
    uncoupled = [p.max_utilization for p in result.curves["uncoupled"]]
    assert all(u >= c for u, c in zip(uncoupled, coupled))
    for mix in result.mixes:
        assert (
            result.placement_loads[(mix, "coolest")]
            >= result.placement_loads[(mix, "paper")] - 1e-9
        ), mix

    payload = {
        "bench": "room_capacity",
        "best_s": best_s,
        "rounds": ROOM_ROUNDS,
        "crac_setpoints_c": list(result.crac_setpoints_c),
        "curves": result.to_json_dict()["curves"],
        "placement_loads": result.to_json_dict()["placement_loads"],
        "reference_crac_c": result.reference_crac_c,
        "diurnal": result.to_json_dict()["diurnal"],
        "benchmark_set": result.benchmark_set.value,
    }
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        room_scenarios.main()
    line = write_bench_json("room_capacity.json", payload)
    record_artifact(
        "room_capacity", buffer.getvalue() + "\n" + line + "\n"
    )

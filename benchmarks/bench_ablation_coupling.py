"""Ablation: the CF -> HF crossover exists only under thermal coupling.

Sweeps the coupling mixing factor.  With coupling switched (almost) off,
HF has no high-load story: CF matches or beats it everywhere.  At the
calibrated coupling strength HF overtakes CF at high load — the paper's
central observation.
"""

import pytest

from repro.config.presets import scaled
from repro.core import get_scheduler
from repro.server.topology import moonshot_sut
from repro.sim.runner import run_once
from repro.workloads.benchmark import BenchmarkSet

LOAD = 0.8


def _hf_over_cf(mixing_factor: float) -> float:
    topology = moonshot_sut(n_rows=3, mixing_factor=mixing_factor)
    params = scaled(sim_time_s=16.0, warmup_s=6.0)
    expansion = {}
    for scheme in ("CF", "HF"):
        expansion[scheme] = run_once(
            topology,
            params,
            get_scheduler(scheme),
            BenchmarkSet.COMPUTATION,
            LOAD,
        ).mean_runtime_expansion
    return expansion["HF"] / expansion["CF"]


def test_ablation_coupling_strength(benchmark, record_artifact):
    def sweep():
        return {
            mixing: _hf_over_cf(mixing) for mixing in (0.05, 3.6)
        }

    ratios = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # Without coupling HF cannot win at high load...
    assert ratios[0.05] >= 0.999
    # ...with the calibrated coupling it does.
    assert ratios[3.6] < 1.0
    # And coupling strictly worsens HF's relative standing... inverted:
    # stronger coupling helps HF (its whole point is avoiding coupling
    # damage).
    assert ratios[3.6] < ratios[0.05]
    record_artifact(
        "ablation_coupling",
        "HF/CF expansion at 80% load by mixing factor\n"
        + "\n".join(f"kappa={k}: {v:.4f}" for k, v in ratios.items()),
    )

"""Extension bench: robustness under a 20% -> 90% load ramp."""

from repro.experiments import load_transient

from conftest import capture_main


def test_extension_load_transient(benchmark, record_artifact):
    result = benchmark.pedantic(
        load_transient.run, rounds=1, iterations=1
    )
    relative = result.relative_to("CF")
    # CP never loses to CF over the whole ramp and is the (tied) best
    # end-to-end scheme.
    assert relative["CP"] <= 1.005
    assert result.expansion["CP"] <= min(
        result.expansion[s] for s in ("HF", "MinHR", "Predictive")
    ) * 1.01
    record_artifact(
        "extension_load_transient", capture_main(load_transient.main)
    )

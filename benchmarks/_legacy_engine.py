"""Frozen copy of the pre-pipeline monolithic engine.

This module preserves the engine exactly as it stood before the
step-pipeline refactor — one monolithic ``run`` loop plus the
state-by-state DVFS ladder walk — so ``bench_step_pipeline.py`` can
measure the refactor's speedup against the real historical baseline
instead of a synthetic stand-in.  It reuses the live repro modules for
everything the refactor did *not* restructure (state, results, thermal
state container, workload models), and keeps local copies of the two
hot paths the refactor replaced:

- ``_legacy_select_frequencies`` — the per-DVFS-state Python loop that
  re-derived power and predicted temperature once per ladder state;
- ``LegacySimulation.run`` — the monolithic step loop calling
  ``TwoNodeThermalState.step`` (six temporaries per call) instead of
  the fused ``step_decayed``.

Do not use this for experiments; it exists only as a benchmark
reference and for the bit-identity cross-check inside the benchmark.
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

import numpy as np

from repro.config.parameters import SimulationParameters
from repro.errors import SimulationError
from repro.server.topology import ServerTopology
from repro.sim.engine import _warm_start
from repro.sim.power_manager import (
    dynamic_power,
    predicted_chip_temperature,
)
from repro.sim.results import SimulationResult
from repro.sim.state import SimulationState
from repro.workloads.job import Job
from repro.workloads.power_model import leakage_power


def _legacy_select_frequencies(
    sink_c,
    chip_c,
    dyn_max_w,
    dyn_exp,
    tdp_w,
    theta_offset,
    theta_slope,
    ladder,
    params,
):
    """The historical bottom-up ladder walk (one pass per DVFS state)."""
    leak = leakage_power(chip_c, 1.0) * tdp_w
    freq = np.full(sink_c.shape, float(ladder.min_mhz))
    for state in ladder.states_mhz:
        power = dynamic_power(state, dyn_max_w, dyn_exp, ladder.max_mhz)
        power = power + leak
        chip_eq = predicted_chip_temperature(
            sink_c, power, params.r_int, theta_offset, theta_slope
        )
        allowed = chip_eq <= params.temperature_limit_c
        if ladder.is_boost(state):
            allowed &= chip_eq <= params.boost_chip_temp_limit_c
        freq = np.where(allowed, float(state), freq)
    return freq


def _leakage(chip_c: np.ndarray, tdp_w: np.ndarray) -> np.ndarray:
    return leakage_power(chip_c, 1.0) * tdp_w


class LegacySimulation:
    """The pre-refactor monolithic engine (no migration/fan/trace/audit

    hooks — the benchmark exercises the always-on hot path only).
    """

    def __init__(
        self,
        topology: ServerTopology,
        params: SimulationParameters,
        scheduler,
    ):
        self.topology = topology
        self.params = params
        self.scheduler = scheduler

    def run(self, jobs: Sequence[Job]) -> SimulationResult:
        topology = self.topology
        params = self.params
        state = SimulationState(topology, params)
        rng = np.random.default_rng(params.seed + 0x5EED)
        self.scheduler.reset(state, rng)

        ladder = state.ladder
        max_mhz = float(ladder.max_mhz)
        span_mhz = float(ladder.max_mhz - ladder.min_mhz)
        sustained = float(ladder.sustained_mhz)
        dt = params.power_manager_interval_s
        dt_ms = dt * 1000.0
        n_steps = int(round(params.sim_time_s / dt))
        warmup = params.warmup_s
        history_alpha = 1.0 - np.exp(-dt / params.history_tau_s)

        r_ext = topology.r_ext_array
        theta_off = topology.theta_offset_array
        theta_slope = topology.theta_slope_array
        gated_power = topology.gated_power_array
        tdp = topology.tdp_array
        coupling = topology.coupling
        inlet = params.inlet_c

        result = SimulationResult(
            scheduler_name=getattr(self.scheduler, "name", "unknown"),
            params=params,
            topology=topology,
            n_jobs_submitted=len(jobs),
            measured_span_s=params.measured_span_s,
        )

        ordered = sorted(jobs, key=lambda job: job.arrival_s)
        if params.warm_start and ordered:
            _warm_start(state, ordered)
        pointer = 0
        queue: deque = deque()

        for step in range(n_steps):
            t = step * dt
            state.time_s = t

            while (
                pointer < len(ordered)
                and ordered[pointer].arrival_s <= t
            ):
                queue.append(ordered[pointer])
                pointer += 1
            if len(queue) > result.max_queue_length:
                result.max_queue_length = len(queue)

            if queue:
                idle = state.idle_socket_ids()
                while queue and idle.size:
                    job = queue.popleft()
                    socket_id = int(
                        self.scheduler.select_socket(job, idle, state)
                    )
                    state.assign(job, socket_id)
                    idle = idle[idle != socket_id]

            freq = _legacy_select_frequencies(
                sink_c=state.sink_c,
                chip_c=state.chip_c,
                dyn_max_w=state.dyn_max_w,
                dyn_exp=state.dyn_exp,
                tdp_w=tdp,
                theta_offset=theta_off,
                theta_slope=theta_slope,
                ladder=ladder,
                params=params,
            )
            state.freq_mhz = np.where(
                state.busy, freq, float(ladder.min_mhz)
            )
            busy_power = (
                dynamic_power(
                    state.freq_mhz, state.dyn_max_w, state.dyn_exp, max_mhz
                )
                + _leakage(state.chip_c, tdp)
            )
            power = np.where(state.busy, busy_power, gated_power)
            state.power_w = power

            rate = 1.0 - state.perf_drop * (max_mhz - state.freq_mhz) / (
                span_mhz if span_mhz > 0 else 1.0
            )
            done_ms = rate * dt_ms
            busy_frac = state.busy.astype(float)
            retired = np.where(state.busy, done_ms, 0.0)
            completing = state.busy & (
                state.remaining_work_ms <= done_ms
            )
            in_window = t >= warmup
            if completing.any():
                for socket_id in np.nonzero(completing)[0]:
                    remaining = state.remaining_work_ms[socket_id]
                    frac = remaining / done_ms[socket_id]
                    retired[socket_id] = remaining
                    busy_frac[socket_id] = frac
                    power[socket_id] = (
                        power[socket_id] * frac
                        + gated_power[socket_id] * (1.0 - frac)
                    )
                    job = state.release(socket_id)
                    job.finish_s = t + frac * dt
                    if in_window:
                        result.completed_jobs.append(job)
            running = state.busy
            state.remaining_work_ms[running] -= done_ms[running]

            sink_heat = state.thermal.sink_heat_output_w(
                state.ambient_c, r_ext
            )
            rises = coupling.entry_temperatures(inlet, sink_heat) - inlet
            state.ambient_c = inlet + rises
            theta = theta_off + theta_slope * power
            state.thermal.step(
                dt, state.ambient_c, power, params.r_int, r_ext, theta
            )
            state.history_c += history_alpha * (
                state.chip_c - state.history_c
            )
            state.busy_ema += history_alpha * (
                state.busy - state.busy_ema
            )

            if in_window:
                result.energy_j += float(power.sum()) * dt
                result.work_done += retired
                result.busy_time_s += busy_frac * dt
                rel = state.freq_mhz / max_mhz
                result.freq_time_product += rel * busy_frac * dt
                result.boost_time_s += (
                    (state.freq_mhz > sustained) & (busy_frac > 0)
                ) * busy_frac * dt
                np.maximum(
                    result.max_chip_c, state.chip_c, out=result.max_chip_c
                )

        if not result.completed_jobs:
            raise SimulationError(
                "no jobs completed in the measurement window; increase "
                "sim_time_s or the offered load"
            )
        return result

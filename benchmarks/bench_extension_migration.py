"""Extension bench: thermal migration of long-running jobs.

The paper (Section VI) argues its scheduling machinery applies to
workload migration when jobs are long.  This bench quantifies it: with
100x-length jobs at high load, enabling the MigrationPolicy on top of
plain CF recovers part of the coupling-aware gain.
"""

from repro.config.presets import scaled
from repro.core import get_scheduler
from repro.core.migration import MigrationPolicy
from repro.server.topology import moonshot_sut
from repro.sim.engine import Simulation
from repro.workloads.arrivals import ArrivalProcess
from repro.workloads.benchmark import BenchmarkSet


def _run(migrator):
    topology = moonshot_sut(n_rows=3)
    params = scaled(sim_time_s=14.0, warmup_s=5.0).with_overrides(
        duration_scale=100.0
    )
    jobs = ArrivalProcess(
        benchmark_set=BenchmarkSet.COMPUTATION,
        load=0.45,
        n_sockets=topology.n_sockets,
        seed=0,
        duration_scale=params.duration_scale,
    ).generate(params.sim_time_s)
    return Simulation(
        topology, params, get_scheduler("CF"), migrator=migrator
    ).run(jobs)


def test_extension_migration(benchmark, record_artifact):
    def sweep():
        return {
            "baseline": _run(None),
            "migrating": _run(
                MigrationPolicy(interval_s=0.05, min_gain_mhz=300.0)
            ),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    baseline = results["baseline"]
    migrating = results["migrating"]
    assert migrating.n_migrations > 0
    # Migration must not hurt and should help with long jobs.
    assert (
        migrating.mean_runtime_expansion
        <= baseline.mean_runtime_expansion * 1.005
    )
    record_artifact(
        "extension_migration",
        "CF with long jobs (100x) at 70% load\n"
        f"baseline expansion:  {baseline.mean_runtime_expansion:.4f}\n"
        f"migrating expansion: {migrating.mean_runtime_expansion:.4f}\n"
        f"migrations: {migrating.n_migrations}",
    )

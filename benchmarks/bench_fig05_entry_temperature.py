"""Regenerate Figure 5 (entry temperature vs degree of coupling)."""

import pytest

from repro.experiments import fig05_entry_temperature

from conftest import capture_main


def test_fig05_entry_temperature(benchmark, record_artifact):
    result = benchmark(fig05_entry_temperature.run)
    # Paper's example: ~10 degC mean difference, degree 5 vs 1, at
    # 15 W / 6 CFM.
    delta = result.mean_entry_delta(15.0, 6.0, 1, 5)
    assert delta == pytest.approx(8.8, abs=1.5)
    # Mean entry temperature rises with degree everywhere.
    for power in (5.0, 15.0, 45.0, 140.0):
        for airflow in (6.0, 12.0, 24.0):
            means = [m for _, m, _ in result.series(power, airflow)]
            assert means == sorted(means)
    # CoV rises with degree in the moderate-rise regime Figure 5 plots
    # (for extreme power/airflow ratios the staircase dominates the
    # inlet and absolute-temperature CoV saturates).
    for power, airflow in ((5.0, 6.0), (15.0, 6.0), (15.0, 12.0)):
        covs = [c for _, _, c in result.series(power, airflow)]
        assert covs == sorted(covs)
    record_artifact(
        "fig05", capture_main(fig05_entry_temperature.main)
    )

"""Regenerate Figure 14 (performance vs CF across schemes x loads x sets).

This is the paper's headline experiment and the heaviest benchmark: a
full scheduler x load x workload sweep (10 schemes x 5 loads x 3 sets by
default).  Scale up with REPRO_ROWS / REPRO_SIM_TIME.
"""

from repro.experiments import fig14_performance
from repro.workloads.benchmark import BenchmarkSet

from conftest import capture_main


def test_fig14_performance(benchmark, record_artifact):
    result = benchmark.pedantic(
        fig14_performance.run, rounds=1, iterations=1
    )
    computation = BenchmarkSet.COMPUTATION
    storage = BenchmarkSet.STORAGE

    # CP never loses badly to CF anywhere and wins on average for the
    # frequency-sensitive sets.
    for benchmark_set in result.benchmark_sets:
        for load in result.loads:
            assert (
                result.performance_vs_cf[("CP", benchmark_set, load)]
                > 0.97
            )
    assert result.average_gain("CP", computation) > 1.005

    # The largest CP margins appear for Computation (paper: up to 17%).
    assert result.peak_gain("CP", computation) > result.peak_gain(
        "CP", storage
    )

    # HF / MinHR: poor at the lowest load, competitive at the highest.
    low, high = result.loads[0], result.loads[-1]
    assert result.performance_vs_cf[("HF", computation, low)] < 0.95
    assert result.performance_vs_cf[("HF", computation, high)] > 0.99

    # Storage is muted: every scheme within a narrow band of CF.
    for scheme in result.schemes:
        for load in result.loads:
            value = result.performance_vs_cf[(scheme, storage, load)]
            assert 0.93 < value < 1.07, (scheme, load)

    record_artifact("fig14", capture_main(fig14_performance.main))

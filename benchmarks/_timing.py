"""Shared timing harness for the benchmark suite.

Two measurement idioms, extracted from ``bench_step_pipeline.py`` so
every bench scores runs the same way:

- :func:`best_of` — best-of-N wall-clock of a single variant.  On
  shared machines interference spikes (neighbour load, GC) inflate
  individual runs by far more than the effects under measurement; only
  the noise *floor* is stable, so the minimum over a few rounds is the
  score.
- :func:`alternating_best_of` — adaptive best-of over several variants
  run in alternation.  Alternating gives every variant the same shot at
  quiet windows; sampling continues past a minimum round count until a
  caller-supplied predicate says the measured ratio has cleared its
  threshold (or a round cap is hit), since on virtualised runners
  host-steal bursts can inflate either floor for seconds at a time.

:func:`write_bench_json` standardises the BENCH output contract: one
``BENCH {...}`` line on stdout plus a committed JSON artifact under
``benchmarks/results/``.

:func:`write_text_artifact` writes the human-readable ``.txt`` artifact
*and* always emits a machine-readable ``.json`` sidecar next to it —
``BENCH`` lines sidecar to their parsed payload (identical to what
:func:`write_bench_json` writes), plain tables/figures to their lines —
so every committed artifact can be consumed without scraping text.
"""

import json
import os
import time

#: Default best-of repetitions; the least-interfered round is scored.
ROUNDS = 5

#: Default round bounds for the adaptive alternating measurement.
ADAPTIVE_ROUNDS_MIN = 6
ADAPTIVE_ROUNDS_MAX = 30

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def best_of(fn, rounds=ROUNDS):
    """Best (minimum) wall-clock seconds of ``fn()`` over ``rounds``.

    Returns:
        ``(best_seconds, last_result)`` — the result is stable across
        rounds for deterministic workloads, so the last one stands in
        for all of them.
    """
    best_s = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best_s = min(best_s, elapsed)
    return best_s, result


def alternating_best_of(
    variants,
    stop=None,
    rounds_min=ADAPTIVE_ROUNDS_MIN,
    rounds_max=ADAPTIVE_ROUNDS_MAX,
):
    """Adaptive alternating best-of across named variants.

    Args:
        variants: Ordered mapping of ``name -> zero-arg callable``.
            Every round runs each variant once, in order.
        stop: Optional ``stop(best) -> bool`` predicate over the
            current ``name -> best_seconds`` floors; once it returns
            True (and at least ``rounds_min`` rounds have run),
            sampling stops early.
        rounds_min: Minimum full rounds before ``stop`` is consulted.
        rounds_max: Hard cap on rounds.

    Returns:
        ``(best, results, rounds)``: the per-variant best seconds, the
        per-variant last results, and the rounds actually run.
    """
    best = {name: float("inf") for name in variants}
    results = {}
    rounds = 0
    for rounds in range(1, rounds_max + 1):
        for name, fn in variants.items():
            start = time.perf_counter()
            results[name] = fn()
            elapsed = time.perf_counter() - start
            best[name] = min(best[name], elapsed)
        if stop is not None and rounds >= rounds_min and stop(best):
            break
    return best, results, rounds


def write_bench_json(filename, payload, merge=False):
    """Emit the BENCH line and persist the JSON artifact.

    Args:
        filename: Artifact name under ``benchmarks/results/`` (with
            extension, e.g. ``"step_pipeline.json"``).
        payload: JSON-ready measurement dict.
        merge: Merge ``payload``'s keys into an existing artifact
            instead of replacing it (used when several tests share one
            results file).

    Returns:
        The printed ``BENCH ...`` line (for artifact recording).
    """
    line = "BENCH " + json.dumps(payload, sort_keys=True)
    print(line)
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, filename)
    merged = payload
    if merge and os.path.exists(path):
        with open(path) as handle:
            merged = json.load(handle)
        merged.update(payload)
    with open(path, "w") as handle:
        json.dump(merged, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return line


def parse_bench_lines(text):
    """Extract every ``BENCH {...}`` payload embedded in ``text``."""
    return [
        json.loads(line[len("BENCH ") :])
        for line in text.splitlines()
        if line.startswith("BENCH ")
    ]


def write_text_artifact(name, text):
    """Write ``<name>.txt`` plus its machine-readable JSON sidecar.

    The sidecar at ``<name>.json`` is the parsed payload when ``text``
    is a single ``BENCH`` line (byte-identical to what
    :func:`write_bench_json` would emit for the same payload, so the
    two writers can share a stem), a ``{"artifact", "bench"}`` wrapper
    for several BENCH lines, and a ``{"artifact", "lines"}`` wrapper
    for plain tables/figures.
    """
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as handle:
        handle.write(text)
    payloads = parse_bench_lines(text)
    if len(payloads) == 1:
        sidecar = payloads[0]
    elif payloads:
        sidecar = {"artifact": name, "bench": payloads}
    else:
        sidecar = {"artifact": name, "lines": text.splitlines()}
    path = os.path.join(RESULTS_DIR, f"{name}.json")
    with open(path, "w") as handle:
        json.dump(sidecar, handle, indent=2, sort_keys=True)
        handle.write("\n")

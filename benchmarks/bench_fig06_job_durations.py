"""Regenerate Figure 6 (job duration statistics per set)."""

from repro.experiments import fig06_job_durations

from conftest import capture_main


def test_fig06_job_durations(benchmark, record_artifact):
    result = benchmark.pedantic(
        fig06_job_durations.run, rounds=1, iterations=1
    )
    for stats in result.stats.values():
        # Figure 6a: a few ms means, maxima ~2 orders above the mean.
        assert 2.0 <= stats.mean_ms <= 10.0
        assert stats.max_over_mean > 20
        # Figure 6b: intra-set CoV in the 0.25-0.33 band.
        assert 0.24 <= stats.cov <= 0.34
    record_artifact("fig06", capture_main(fig06_job_durations.main))

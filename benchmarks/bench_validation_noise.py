"""Validation bench: CP's gains exceed workload-seed noise.

Figure-14 style ratios are only meaningful if scheduler differences
exceed run-to-run variance.  This bench runs the CF/CP comparison at
the pivotal loads over three workload seeds and checks that the
reported gain is consistent in sign and larger than the seed spread.
"""

import numpy as np

from repro.config.presets import scaled
from repro.core import get_scheduler
from repro.server.topology import moonshot_sut
from repro.sim.runner import run_once
from repro.workloads.benchmark import BenchmarkSet

SEEDS = (0, 1, 2)
LOAD = 0.3


def _gain(seed: int, topology) -> float:
    params = scaled(sim_time_s=16.0, warmup_s=6.0, seed=seed)
    cf = run_once(
        topology,
        params,
        get_scheduler("CF"),
        BenchmarkSet.COMPUTATION,
        LOAD,
    )
    cp = run_once(
        topology,
        params,
        get_scheduler("CP"),
        BenchmarkSet.COMPUTATION,
        LOAD,
    )
    return cf.mean_runtime_expansion / cp.mean_runtime_expansion


def test_validation_noise(benchmark, record_artifact):
    topology = moonshot_sut(n_rows=3)

    def sweep():
        return [_gain(seed, topology) for seed in SEEDS]

    gains = benchmark.pedantic(sweep, rounds=1, iterations=1)
    gains = np.asarray(gains)
    # Consistent direction across seeds...
    assert (gains > 1.0).all()
    # ...and the mean gain dominates the seed spread.
    assert gains.mean() - 1.0 > 2.0 * gains.std()
    record_artifact(
        "validation_noise",
        "CP performance gain vs CF at 30% Computation load by seed\n"
        + "\n".join(
            f"seed {seed}: {gain:.4f}"
            for seed, gain in zip(SEEDS, gains)
        )
        + f"\nmean {gains.mean():.4f}, std {gains.std():.4f}",
    )

"""Regenerate Figure 13 (zone frequency and work-done split)."""

from repro.experiments import fig13_zone_behavior

from conftest import capture_main


def test_fig13_zone_behavior(benchmark, record_artifact):
    result = benchmark.pedantic(
        fig13_zone_behavior.run, rounds=1, iterations=1
    )
    low, high = result.loads
    # Front-loading schemes put most work in the front half at low load.
    for scheme in ("CF", "Balanced-L", "Predictive", "CP"):
        assert result.reports[(scheme, low)].front_work > 0.6, scheme
    # HF / MinHR / Random do not front-load.
    for scheme in ("HF", "MinHR", "Random"):
        assert result.reports[(scheme, low)].front_work < 0.6, scheme
    # At high load the back half works more and runs slower (CF).
    cf_low = result.reports[("CF", low)]
    cf_high = result.reports[("CF", high)]
    assert cf_high.back_work > cf_low.back_work
    assert cf_high.back_freq < cf_high.front_freq
    record_artifact("fig13", capture_main(fig13_zone_behavior.main))

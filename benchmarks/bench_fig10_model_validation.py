"""Regenerate Figure 10 (simplified model validation)."""

from repro.experiments import fig10_model_validation

from conftest import capture_main


def test_fig10_model_validation(benchmark, record_artifact):
    result = benchmark(fig10_model_validation.run)
    # Paper: Equation 1 agrees with the detailed model within ~2 degC,
    # irrespective of heat sink.
    assert result.max_abs_error_c <= 2.0
    assert len(result.points) == 38
    record_artifact(
        "fig10", capture_main(fig10_model_validation.main)
    )

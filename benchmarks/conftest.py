"""Shared helpers for the benchmark harness.

Each benchmark module regenerates one paper table or figure.  Heavy
simulations run exactly once inside ``benchmark.pedantic`` (the metric of
interest is the experiment's wall time, not micro-op throughput), and
every module writes the regenerated rows/series to
``benchmarks/results/<artifact>.txt`` so the numbers can be inspected
after a run.
"""

import io
import os
from contextlib import redirect_stdout

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture
def record_artifact():
    """Write a regenerated artifact's text to benchmarks/results/."""

    def _record(name: str, text: str) -> None:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        path = os.path.join(RESULTS_DIR, f"{name}.txt")
        with open(path, "w") as handle:
            handle.write(text)

    return _record


def capture_main(main) -> str:
    """Run an experiment's ``main()`` capturing its printed output."""
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        main()
    return buffer.getvalue()

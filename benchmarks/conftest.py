"""Shared helpers for the benchmark harness.

Each benchmark module regenerates one paper table or figure.  Heavy
simulations run exactly once inside ``benchmark.pedantic`` (the metric of
interest is the experiment's wall time, not micro-op throughput), and
every module writes the regenerated rows/series to
``benchmarks/results/<artifact>.txt`` so the numbers can be inspected
after a run.
"""

import io
import os
from contextlib import redirect_stdout

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture
def record_artifact():
    """Write a regenerated artifact to benchmarks/results/.

    Delegates to :func:`_timing.write_text_artifact`, so every artifact
    gets both the human-readable ``.txt`` and a machine-readable
    ``.json`` sidecar.
    """
    from _timing import write_text_artifact

    return write_text_artifact


def capture_main(main) -> str:
    """Run an experiment's ``main()`` capturing its printed output."""
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        main()
    return buffer.getvalue()

"""Regenerate Table III (simulation model parameters)."""

from repro.experiments import table3_parameters

from conftest import capture_main


def test_table3_parameters(benchmark, record_artifact):
    result = benchmark(table3_parameters.run)
    rendered = dict(result.rows_data)
    assert rendered["Temperature limit"] == "95 C"
    assert rendered["R_Ext 18-fin"] == "1.578 Celsius/Watt"
    record_artifact("table3", capture_main(table3_parameters.main))

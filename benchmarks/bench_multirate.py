"""Adaptive multi-rate stepping speedup vs the fixed-step engine.

A sweep-dominated, low-arrival-rate workload on the full 180-socket
Moonshot SUT: long decision-free stretches where the fixed engine burns
one pipeline pass per millisecond while the multi-rate driver
(:mod:`repro.sim.multirate`) collapses each quiescent window into a few
closed-form thermal substeps.  ROADMAP item #2 asks for >=10x here, and
``BENCH_MIN_MULTIRATE_SPEEDUP`` (default 10) enforces it; the CI smoke
(``--smoke``) lowers the floor to 3x so host-steal bursts on shared
runners cannot flake the guard.

The speedup only counts alongside correctness, so the run also asserts
the differential contract in-line: the adaptive decision fingerprint
(:func:`repro.sim.fingerprint.decision_fingerprint`) equals the fixed
run's bit for bit, the epsilon-set end metrics stay within the
documented bounds, and the stepping summary accounts for every engine
step exactly once.

The committed artifact is ``benchmarks/results/multirate_stepping.json``.
"""

import os
import sys

import pytest

from repro.config.presets import scaled
from repro.core import get_scheduler
from repro.server.topology import moonshot_sut
from repro.sim.engine import Simulation
from repro.sim.fingerprint import decision_fingerprint
from repro.workloads.arrivals import ArrivalProcess
from repro.workloads.benchmark import BenchmarkSet

from _timing import alternating_best_of, write_bench_json

#: Required adaptive-vs-fixed end-to-end speedup.  The committed
#: artifact shows ~15x on an idle machine; 10x is the acceptance floor
#: (ROADMAP item #2), and the CI smoke overrides with 3.0.
MIN_SPEEDUP = float(
    os.environ.get("BENCH_MIN_MULTIRATE_SPEEDUP", "10.0")
)

#: Bound on the absolute drift of ``max_chip_c``, degC (matches the
#: differential suite's EPSILON_C).
EPSILON_C = 0.25

#: Bound on the relative drift of integrated energies.
EPSILON_ENERGY_REL = 1e-3

SEED = 7
#: Low enough that arrivals are sparse on 180 sockets: the horizon is
#: dominated by quiescent windows, the regime the driver targets.
LOAD = 0.0005


def _workload():
    topology = moonshot_sut(n_rows=15)
    params = scaled(sim_time_s=16.0, warmup_s=4.0, seed=SEED)
    arrivals = ArrivalProcess(
        benchmark_set=BenchmarkSet.COMPUTATION,
        load=LOAD,
        n_sockets=topology.n_sockets,
        seed=params.seed,
        duration_scale=params.duration_scale,
    )
    jobs = arrivals.generate(params.sim_time_s)
    n_steps = int(
        round(params.sim_time_s / params.power_manager_interval_s)
    )
    return topology, params, jobs, n_steps


def test_multirate_stepping_speedup(record_artifact):
    topology, params, jobs, n_steps = _workload()

    def _run(stepping):
        sim = Simulation(
            topology, params, get_scheduler("CF"), stepping=stepping
        )
        return sim.run(list(jobs))

    best, results, rounds = alternating_best_of(
        {
            "fixed": lambda: _run("fixed"),
            "adaptive": lambda: _run("adaptive"),
        },
        stop=lambda floors: (
            floors["fixed"] / floors["adaptive"] >= MIN_SPEEDUP
        ),
    )
    fixed, adaptive = results["fixed"], results["adaptive"]

    # The driver's contract: bit-identical decisions, bounded epsilon
    # on the integrated thermal metrics, every step accounted for.
    assert decision_fingerprint(fixed) == decision_fingerprint(adaptive)
    assert (
        abs(adaptive.max_chip_c - fixed.max_chip_c).max() <= EPSILON_C
    )
    for field in ("energy_j", "cooling_energy_j"):
        reference = getattr(fixed, field)
        drift = abs(getattr(adaptive, field) - reference)
        assert drift <= EPSILON_ENERGY_REL * max(abs(reference), 1.0)
    summary = adaptive.stepping
    assert summary is not None and summary["mode"] == "adaptive"
    assert (
        summary["executed_steps"] + summary["skipped_steps"]
        == summary["n_steps"]
    )

    speedup = best["fixed"] / best["adaptive"]
    payload = {
        "benchmark": "multirate_stepping",
        "n_sockets": topology.n_sockets,
        "n_steps": n_steps,
        "scheduler": "CF",
        "load": LOAD,
        "seed": SEED,
        "rounds": rounds,
        "fixed_steps_per_s": round(n_steps / best["fixed"], 1),
        "adaptive_steps_per_s": round(n_steps / best["adaptive"], 1),
        "executed_steps": summary["executed_steps"],
        "skipped_steps": summary["skipped_steps"],
        "n_windows": summary["n_windows"],
        "speedup": round(speedup, 3),
        "min_speedup": MIN_SPEEDUP,
    }
    line = write_bench_json("multirate_stepping.json", payload)
    record_artifact("multirate_stepping", line + "\n")

    assert speedup >= MIN_SPEEDUP, (
        f"adaptive stepping reached only {speedup:.2f}x over the fixed "
        f"engine (required {MIN_SPEEDUP}x): {line}"
    )


if __name__ == "__main__":
    argv = sys.argv[1:]
    if "--smoke" in argv:
        # CI perf-regression smoke: a 3x floor catches the driver
        # degenerating to fixed stepping without flaking on loaded
        # runners where the full 10x bar is wall-clock-sensitive.
        argv.remove("--smoke")
        os.environ.setdefault("BENCH_MIN_MULTIRATE_SPEEDUP", "3.0")
    sys.exit(pytest.main([__file__, "-v", "-s"] + argv))

#!/usr/bin/env python3
"""Lint the array-backend seam: no direct numpy/scipy in seam modules.

The modules refactored onto ``repro.backend`` (docs/architecture.md
§11) must take their array namespace from the seam — the module-level
handle ``from ..backend import numpy_xp as np`` for host-side work, or
an injected :class:`repro.backend.ArrayBackend` for backend-governed
kernels.  A direct ``import numpy`` there silently reintroduces
eager-numpy semantics into code that must also run traced under JAX;
a direct ``scipy`` import bypasses the backend's LinearSolver
factorization (scipy is an *optional* dependency, import-guarded in
exactly one place).

Rules enforced:

1. Seam-managed modules (``SEAM_MODULES``) must not import ``numpy``
   — except the allowlisted scalar reference paths in
   ``ALLOW_NUMPY``, which validate host Python floats and are
   documented as staying on eager numpy.
2. Seam-managed modules must not import ``scipy`` at all.
3. Repo-wide, ``scipy`` may only be imported from
   ``backend/numpy_backend.py`` (the guarded LAPACK fast path).
4. Imports inside ``if TYPE_CHECKING:`` blocks are exempt (typing
   only, never executed).

Run from the repository root::

    python scripts/lint_backend_seam.py

Exit status 0 when clean, 1 with one line per violation otherwise.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import List

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"

#: Modules on the array-backend seam, relative to ``src/repro``.
SEAM_MODULES = (
    "core/kernels.py",
    "core/prediction.py",
    "sim/batched.py",
    "sim/pipeline.py",
    "sim/power_manager.py",
    "sim/steady_state.py",
    "thermal/detailed_model.py",
    "thermal/dynamics.py",
    "thermal/rc_network.py",
    "workloads/power_model.py",
)

#: Seam modules whose *scalar reference* implementations are allowed a
#: direct numpy import: they validate host Python floats and document
#: bit-identity of the vectorized paths against themselves.
ALLOW_NUMPY = frozenset({"workloads/power_model.py"})

#: The one module allowed to import scipy (guarded LAPACK fast path).
SCIPY_HOME = "backend/numpy_backend.py"

#: Module roots the seam forbids (rule 1 and 2).
FORBIDDEN_ROOTS = ("numpy", "scipy")


def _type_checking_lines(tree: ast.AST) -> set:
    """Line numbers covered by ``if TYPE_CHECKING:`` blocks."""
    lines = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.If):
            continue
        test = node.test
        name = None
        if isinstance(test, ast.Name):
            name = test.id
        elif isinstance(test, ast.Attribute):
            name = test.attr
        if name != "TYPE_CHECKING":
            continue
        for child in node.body:
            end = getattr(child, "end_lineno", child.lineno)
            lines.update(range(child.lineno, end + 1))
    return lines


def _import_roots(node: ast.AST):
    """Top-level module names an import statement binds."""
    if isinstance(node, ast.Import):
        return [alias.name.split(".")[0] for alias in node.names]
    if isinstance(node, ast.ImportFrom):
        if node.level:  # relative import: never a third-party root
            return []
        if node.module is None:  # pragma: no cover - "from . import"
            return []
        return [node.module.split(".")[0]]
    return []


def check_source(source: str, rel: str) -> List[str]:
    """Seam violations in one module's source, as report lines.

    Args:
        source: The module text.
        rel: Path relative to ``src/repro`` (selects the rule set).
    """
    tree = ast.parse(source, filename=rel)
    exempt = _type_checking_lines(tree)
    violations = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.Import, ast.ImportFrom)):
            continue
        if node.lineno in exempt:
            continue
        for root in _import_roots(node):
            if root == "numpy" and rel in ALLOW_NUMPY:
                continue
            if root == "scipy" and rel == SCIPY_HOME:
                continue
            if root in FORBIDDEN_ROOTS:
                violations.append(
                    f"{rel}:{node.lineno}: direct '{root}' import in "
                    f"seam-managed module — go through repro.backend "
                    f"(numpy_xp / ArrayBackend)"
                )
    return violations


def _scipy_escapes() -> List[str]:
    """Rule 3: scipy imports anywhere outside its one guarded home."""
    violations = []
    for path in sorted(SRC.rglob("*.py")):
        rel = path.relative_to(SRC).as_posix()
        if rel == SCIPY_HOME:
            continue
        tree = ast.parse(path.read_text(), filename=rel)
        exempt = _type_checking_lines(tree)
        for node in ast.walk(tree):
            if not isinstance(node, (ast.Import, ast.ImportFrom)):
                continue
            if node.lineno in exempt:
                continue
            if "scipy" in _import_roots(node):
                violations.append(
                    f"{rel}:{node.lineno}: scipy import outside "
                    f"{SCIPY_HOME} — scipy is optional and must stay "
                    f"behind the backend's factorize()"
                )
    return violations


def main() -> int:
    violations: List[str] = []
    for rel in SEAM_MODULES:
        path = SRC / rel
        if not path.exists():
            violations.append(f"{rel}: seam module missing from tree")
            continue
        violations.extend(check_source(path.read_text(), rel))
    violations.extend(_scipy_escapes())
    if violations:
        for line in violations:
            print(line)
        print(f"backend seam lint: {len(violations)} violation(s)")
        return 1
    print(
        f"backend seam lint: ok "
        f"({len(SEAM_MODULES)} seam modules, scipy confined to "
        f"{SCIPY_HOME})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Fail CI when measured line coverage drops below the gate.

Reads a JSON coverage report produced by either

- ``coverage json`` (coverage.py; the percentage lives at
  ``totals.percent_covered``), or
- ``scripts/measure_coverage.py`` (the stdlib fallback tracer; the
  percentage lives at top-level ``percent``),

and compares it against ``--min-percent``.  The gate value lives in the
CI workflow so lowering it shows up in review.

Usage::

    python scripts/coverage_gate.py coverage.json --min-percent 92.4

Exit status: 0 when the gate holds, 1 when coverage is below the gate,
2 when the report is missing or unreadable.
"""

from __future__ import annotations

import argparse
import json
import sys


def extract_percent(report: dict) -> float:
    """The total covered percentage from either report format."""
    totals = report.get("totals")
    if isinstance(totals, dict) and "percent_covered" in totals:
        return float(totals["percent_covered"])
    if "percent" in report:
        return float(report["percent"])
    raise KeyError(
        "report has neither totals.percent_covered (coverage.py) "
        "nor percent (measure_coverage.py)"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("report", help="JSON coverage report path")
    parser.add_argument(
        "--min-percent",
        type=float,
        required=True,
        help="minimum acceptable total line coverage",
    )
    args = parser.parse_args(argv)
    try:
        with open(args.report, "r", encoding="utf-8") as handle:
            report = json.load(handle)
        percent = extract_percent(report)
    except (OSError, ValueError, KeyError) as exc:
        print(f"coverage gate: cannot read {args.report}: {exc}", file=sys.stderr)
        return 2
    if percent < args.min_percent:
        print(
            f"coverage gate FAILED: {percent:.2f}% < {args.min_percent:.2f}%",
            file=sys.stderr,
        )
        return 1
    print(f"coverage gate ok: {percent:.2f}% >= {args.min_percent:.2f}%")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python
"""Stdlib-only line-coverage measurement of ``src/repro`` over the suite.

This is the fallback measurement tool for environments where
``coverage.py`` cannot be installed.  It mirrors coverage.py's line
model closely enough to calibrate the CI gate:

- *executable lines* are taken from the compiled code objects'
  ``co_lines()`` tables (every statement line, including ``def`` /
  ``class`` headers), minus lines carrying a ``pragma: no cover``
  marker and minus module/class/function docstring lines;
- *covered lines* are recorded by a :func:`sys.settrace` tracer that
  activates only for frames whose code lives under ``src/repro``;
- the percentage is ``100 * covered / executable`` over **every**
  ``.py`` file beneath ``src/repro``, imported or not — the same
  denominator ``coverage run --source`` uses.

Like a plain (concurrency-unaware) ``coverage run``, lines executed
only inside forked sweep workers or spawned subprocesses are not
credited to the parent's measurement.

Usage::

    python scripts/measure_coverage.py [-o coverage_lines.json] [pytest args]

Exit status is pytest's exit status, so a failing suite fails the
measurement run too.
"""

from __future__ import annotations

import argparse
import ast
import io
import json
import os
import sys
import threading

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(ROOT, "src")
PACKAGE = os.path.join(SRC, "repro")

PRAGMA = "pragma: no cover"


def _docstring_lines(tree: ast.AST) -> set:
    """Line numbers spanned by module/class/function docstrings."""
    lines = set()
    for node in ast.walk(tree):
        if not isinstance(
            node,
            (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef),
        ):
            continue
        body = getattr(node, "body", [])
        if (
            body
            and isinstance(body[0], ast.Expr)
            and isinstance(body[0].value, ast.Constant)
            and isinstance(body[0].value.value, str)
        ):
            expr = body[0]
            lines.update(range(expr.lineno, (expr.end_lineno or expr.lineno) + 1))
    return lines


def executable_lines(path: str) -> set:
    """The measurable statement lines of one source file."""
    with open(path, "rb") as handle:
        source = handle.read()
    code = compile(source, path, "exec")
    lines = set()
    stack = [code]
    while stack:
        current = stack.pop()
        for const in current.co_consts:
            if isinstance(const, type(current)):
                stack.append(const)
        for _start, _end, line in current.co_lines():
            if line is not None and line > 0:
                lines.add(line)
    text = source.decode("utf-8")
    source_lines = text.splitlines()
    lines = {
        line
        for line in lines
        if line <= len(source_lines) and PRAGMA not in source_lines[line - 1]
    }
    lines -= _docstring_lines(ast.parse(text))
    return lines


def collect_files() -> dict:
    """Map every package source file to its executable line set."""
    files = {}
    for dirpath, _dirnames, filenames in os.walk(PACKAGE):
        if "__pycache__" in dirpath:
            continue
        for name in sorted(filenames):
            if name.endswith(".py"):
                path = os.path.join(dirpath, name)
                files[path] = executable_lines(path)
    return files


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "-o",
        "--output",
        default="coverage_lines.json",
        help="where to write the JSON report",
    )
    parser.add_argument(
        "pytest_args",
        nargs="*",
        default=[],
        help="extra arguments forwarded to pytest (default: -q tests)",
    )
    args = parser.parse_args(argv)

    import pytest

    hit: dict = {}

    def tracer(frame, event, arg):
        filename = frame.f_code.co_filename
        if not filename.startswith(PACKAGE):
            return None
        lineset = hit.get(filename)
        if lineset is None:
            lineset = hit[filename] = set()

        def local(frame, event, _arg):
            if event == "line":
                lineset.add(frame.f_lineno)
            return local

        if event == "call":
            local(frame, "line", None)
            return local
        return None

    pytest_args = args.pytest_args or ["-q", "tests"]
    threading.settrace(tracer)
    sys.settrace(tracer)
    try:
        status = pytest.main(pytest_args)
    finally:
        sys.settrace(None)
        threading.settrace(None)

    files = collect_files()
    total_statements = 0
    total_covered = 0
    per_file = {}
    for path, statements in sorted(files.items()):
        covered = hit.get(path, set()) & statements
        total_statements += len(statements)
        total_covered += len(covered)
        rel = os.path.relpath(path, ROOT)
        per_file[rel] = {
            "statements": len(statements),
            "covered": len(covered),
            "percent": round(100.0 * len(covered) / len(statements), 2)
            if statements
            else 100.0,
        }
    percent = (
        100.0 * total_covered / total_statements if total_statements else 100.0
    )
    report = {
        "tool": "measure_coverage.py",
        "percent": round(percent, 2),
        "covered": total_covered,
        "statements": total_statements,
        "files": per_file,
    }
    with io.open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(
        f"COVERAGE {report['percent']:.2f}% "
        f"({total_covered}/{total_statements} lines) -> {args.output}"
    )
    return int(status)


if __name__ == "__main__":
    sys.exit(main())

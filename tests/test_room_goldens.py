"""Golden-fixture regression tests for the room layer.

Two fixtures pin the room model end to end:

- ``goldens/room_curve.json`` — the sustainable-load curve of a fixed
  3-chassis mixed room across five CRAC setpoints (the room-level
  analogue of the chassis derating curve), plus the placement
  comparison at the reference setpoint.
- ``goldens/room_mixed_fleet.json`` — one converged mixed-fleet
  equilibrium: inlets, exhausts, per-chassis hottest chips, iteration
  count and the solution's bit-exact fingerprint.

Plus the fingerprint oracle the PR's acceptance criteria name: a
1-chassis zero-recirculation room is **bit-identical** to the
chassis-only :func:`~repro.sim.steady_state.solve_steady_state` — the
room layer adds exactly nothing when there is no room.

Regenerate after an intentional model change with::

    PYTHONPATH=src python tests/test_room_goldens.py
"""

import dataclasses
import json
import os

import numpy as np
import pytest

from repro.config.presets import scaled
from repro.errors import RoomConvergenceError
from repro.fleet.registry import ChassisSpec
from repro.room import (
    Room,
    downwind_recirculation,
    max_sustainable_room_load,
    solve_room,
    zero_recirculation,
)
from repro.sim.steady_state import solve_steady_state
from repro.workloads.benchmark import BenchmarkSet

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "goldens")

#: Fixed golden scenario.
GOLDEN_SEED = 0
GOLDEN_CRAC_SETPOINTS = (14.0, 18.0, 22.0, 26.0, 30.0)
GOLDEN_REFERENCE_CRAC = 22.0
GOLDEN_UTILIZATION = 0.7
GOLDEN_DYN_W = 15.0
GOLDEN_PLACEMENTS = ("paper", "coolest", "minhr")

#: Relative tolerance on float metrics (deterministic run; this only
#: absorbs cross-platform libm/BLAS noise).
REL_TOL = 1e-9


def golden_room() -> Room:
    """3 heterogeneous chassis under downwind-drift recirculation."""
    return Room(
        chassis=(
            ChassisSpec(
                chassis_id="g-coupled",
                n_rows=1,
                lanes_per_row=2,
                chain_length=6,
                sockets_per_cartridge_depth=2,
            ),
            ChassisSpec(
                chassis_id="g-shallow",
                n_rows=1,
                lanes_per_row=2,
                chain_length=2,
                sockets_per_cartridge_depth=2,
            ),
            ChassisSpec(
                chassis_id="g-uncoupled",
                n_rows=1,
                lanes_per_row=4,
                chain_length=1,
                sockets_per_cartridge_depth=1,
            ),
        ),
        recirculation=downwind_recirculation(3),
    )


def compute_curve() -> dict:
    """The room sustainable-load curve plus placement comparison."""
    room = golden_room()
    curve = [
        {
            "crac_supply_c": crac,
            "max_utilization": max_sustainable_room_load(
                room,
                crac,
                benchmark_set=BenchmarkSet.COMPUTATION,
                seed=GOLDEN_SEED,
            ),
        }
        for crac in GOLDEN_CRAC_SETPOINTS
    ]
    placements = {
        policy: max_sustainable_room_load(
            room,
            GOLDEN_REFERENCE_CRAC,
            placement=policy,
            benchmark_set=BenchmarkSet.COMPUTATION,
            seed=GOLDEN_SEED,
        )
        for policy in GOLDEN_PLACEMENTS
    }
    return {
        "room": room.fingerprint(),
        "curve": curve,
        "placements": placements,
    }


def compute_mixed_fleet() -> dict:
    """One converged mixed-fleet equilibrium, pinned bit-exactly."""
    room = golden_room()
    solution = solve_room(
        room,
        GOLDEN_UTILIZATION,
        GOLDEN_DYN_W,
        GOLDEN_REFERENCE_CRAC,
        seed=GOLDEN_SEED,
    )
    return {
        "room": room.fingerprint(),
        "n_iterations": solution.n_iterations,
        "inlet_c": [float(v) for v in solution.inlet_c],
        "exhaust_w": [float(v) for v in solution.exhaust_w],
        "max_chip_c": [float(v) for v in solution.max_chip_c],
        "total_power_w": solution.total_power_w,
        "fingerprint": solution.fingerprint(),
    }


FIXTURES = {
    "room_curve.json": compute_curve,
    "room_mixed_fleet.json": compute_mixed_fleet,
}


def fixture_path(name: str) -> str:
    return os.path.join(GOLDEN_DIR, name)


def test_room_curve_matches_golden():
    with open(fixture_path("room_curve.json")) as handle:
        expected = json.load(handle)
    actual = compute_curve()
    assert actual["room"] == expected["room"]
    assert len(actual["curve"]) == len(expected["curve"])
    for got, want in zip(actual["curve"], expected["curve"]):
        assert got["crac_supply_c"] == want["crac_supply_c"]
        assert got["max_utilization"] == pytest.approx(
            want["max_utilization"], rel=REL_TOL
        )
    for policy in GOLDEN_PLACEMENTS:
        assert actual["placements"][policy] == pytest.approx(
            expected["placements"][policy], rel=REL_TOL
        ), policy


def test_room_curve_derates_monotonically():
    """Physics gate on the fixture itself: a warmer CRAC can never buy
    more sustainable load."""
    with open(fixture_path("room_curve.json")) as handle:
        curve = json.load(handle)["curve"]
    loads = [point["max_utilization"] for point in curve]
    assert loads == sorted(loads, reverse=True)
    assert loads[0] > loads[-1]


def test_mixed_fleet_matches_golden():
    with open(fixture_path("room_mixed_fleet.json")) as handle:
        expected = json.load(handle)
    actual = compute_mixed_fleet()
    assert actual["room"] == expected["room"]
    assert actual["n_iterations"] == expected["n_iterations"]
    for key in ("inlet_c", "exhaust_w", "max_chip_c"):
        assert actual[key] == pytest.approx(
            expected[key], rel=REL_TOL
        ), key
    assert actual["total_power_w"] == pytest.approx(
        expected["total_power_w"], rel=REL_TOL
    )
    # The fingerprint hashes raw IEEE-754 bytes: identical platforms
    # must reproduce it exactly.
    assert actual["fingerprint"] == expected["fingerprint"]


def test_single_chassis_zero_recirculation_oracle():
    """The acceptance oracle: a 1-chassis zero-recirculation room is
    bit-identical to the chassis-only steady-state solver."""
    spec = golden_room().chassis[0]
    room = Room(
        chassis=(spec,), recirculation=zero_recirculation(1)
    )
    solution = solve_room(
        room,
        GOLDEN_UTILIZATION,
        GOLDEN_DYN_W,
        GOLDEN_REFERENCE_CRAC,
        seed=GOLDEN_SEED,
    )
    assert solution.n_iterations == 1
    topology = spec.build_topology()
    params = dataclasses.replace(
        scaled(seed=GOLDEN_SEED), inlet_c=GOLDEN_REFERENCE_CRAC
    )
    n = topology.n_sockets
    alone = solve_steady_state(
        topology,
        params,
        np.full(n, GOLDEN_DYN_W),
        np.full(n, GOLDEN_UTILIZATION),
    )
    for field in ("power_w", "ambient_c", "sink_c", "chip_c"):
        np.testing.assert_array_equal(
            getattr(solution.fields[0], field),
            getattr(alone, field),
            err_msg=field,
        )
    # And the room inlet is exactly the CRAC supply.
    np.testing.assert_array_equal(
        solution.inlet_c, np.array([GOLDEN_REFERENCE_CRAC])
    )


def test_divergence_raises_typed_error():
    """All-golden scenarios converge; a pathological room must fail
    with the typed error, never silent nonsense."""
    room = Room(
        chassis=(
            ChassisSpec(
                chassis_id="hot",
                n_rows=4,
                lanes_per_row=2,
                chain_length=6,
                sockets_per_cartridge_depth=2,
            ),
        ),
        recirculation=dataclasses.replace(
            zero_recirculation(1),
            matrix=np.array([[0.9]]),
        ),
    )
    with pytest.raises(RoomConvergenceError) as excinfo:
        solve_room(room, 1.0, 20.0, 30.0)
    error = excinfo.value
    assert error.residuals_c
    assert error.tolerance_c > 0
    assert any(
        marker in error.reason
        for marker in ("limit", "grow", "budget")
    )


def regenerate() -> None:
    """Rewrite the room golden fixtures from the current model."""
    os.makedirs(GOLDEN_DIR, exist_ok=True)
    for name, compute in FIXTURES.items():
        path = fixture_path(name)
        with open(path, "w") as handle:
            json.dump(compute(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {path}")


if __name__ == "__main__":
    regenerate()

"""Tests for repro.sim.power_manager."""

import numpy as np
import pytest

from repro.config.parameters import SimulationParameters
from repro.server.processors import X2150_LADDER
from repro.sim.power_manager import (
    dynamic_power,
    predicted_chip_temperature,
    select_frequencies,
    select_frequencies_steady,
)

PARAMS = SimulationParameters()


def _socket_arrays(
    n=1, sink=25.0, chip=30.0, dyn_max=11.4, exp=1.7, r_ext=1.578,
    theta_off=4.41, theta_slope=-0.0896,
):
    return dict(
        sink_c=np.full(n, sink),
        chip_c=np.full(n, chip),
        dyn_max_w=np.full(n, dyn_max),
        dyn_exp=np.full(n, exp),
        tdp_w=np.full(n, 22.0),
        theta_offset=np.full(n, theta_off),
        theta_slope=np.full(n, theta_slope),
    )


class TestDynamicPower:
    def test_max_frequency_full_power(self):
        assert dynamic_power(1900.0, 11.4, 1.7, 1900.0) == pytest.approx(
            11.4
        )

    def test_power_law(self):
        p = dynamic_power(1500.0, 11.4, 1.7, 1900.0)
        assert p == pytest.approx(11.4 * (1500 / 1900) ** 1.7)

    def test_vectorised(self):
        p = dynamic_power(
            np.array([1100.0, 1900.0]), np.array([10.0, 10.0]),
            np.array([1.5, 1.5]), 1900.0,
        )
        assert p.shape == (2,)
        assert p[0] < p[1]


class TestPredictedChipTemperature:
    def test_matches_hand_calculation(self):
        t = predicted_chip_temperature(
            40.0, 15.0, 0.205, 4.41, -0.0896
        )
        assert t == pytest.approx(40.0 + 15 * 0.205 + 4.41 - 0.0896 * 15)


class TestSelectFrequencies:
    def test_cold_socket_gets_top_boost(self):
        arrays = _socket_arrays(sink=20.0, chip=22.0)
        freq = select_frequencies(
            ladder=X2150_LADDER, params=PARAMS, **arrays
        )
        assert freq[0] == 1900.0

    def test_warm_sink_loses_boost_keeps_sustained(self):
        """Above the boost governor threshold: sustained 1500 MHz."""
        arrays = _socket_arrays(sink=50.0, chip=55.0)
        freq = select_frequencies(
            ladder=X2150_LADDER, params=PARAMS, **arrays
        )
        assert freq[0] == 1500.0

    def test_very_hot_sink_deep_throttle(self):
        arrays = _socket_arrays(sink=93.0, chip=94.0)
        freq = select_frequencies(
            ladder=X2150_LADDER, params=PARAMS, **arrays
        )
        assert freq[0] < 1500.0

    def test_minimum_state_always_available(self):
        arrays = _socket_arrays(sink=200.0, chip=200.0)
        freq = select_frequencies(
            ladder=X2150_LADDER, params=PARAMS, **arrays
        )
        assert freq[0] == 1100.0

    def test_monotone_in_sink_temperature(self):
        freqs = []
        for sink in (20.0, 45.0, 70.0, 90.0, 95.0):
            arrays = _socket_arrays(sink=sink, chip=sink + 3)
            freqs.append(
                select_frequencies(
                    ladder=X2150_LADDER, params=PARAMS, **arrays
                )[0]
            )
        assert freqs == sorted(freqs, reverse=True)

    def test_vectorised_mixed_sockets(self):
        arrays = _socket_arrays(n=3)
        arrays["sink_c"] = np.array([20.0, 50.0, 94.0])
        arrays["chip_c"] = np.array([22.0, 52.0, 95.0])
        freq = select_frequencies(
            ladder=X2150_LADDER, params=PARAMS, **arrays
        )
        assert freq[0] == 1900.0
        assert freq[1] == 1500.0
        assert freq[2] <= 1300.0

    def test_boost_governor_calibration(self):
        """A busy Computation socket at inlet air settles around the
        sustained frequency: boosting pushes its quasi-equilibrium chip
        temperature past the governor threshold, running sustained pulls
        it back under."""
        # Sink at its steady state under sustained operation.
        sustained_power = dynamic_power(1500.0, 11.4, 1.7, 1900.0) + 5.0
        sink_ss = 18.0 + sustained_power * 1.578
        arrays = _socket_arrays(sink=sink_ss, chip=sink_ss + 5)
        freq = select_frequencies(
            ladder=X2150_LADDER, params=PARAMS, **arrays
        )
        assert freq[0] >= 1500.0  # boost or sustained, never throttled

        boost_power = 11.4 + 5.0
        sink_boost_ss = 18.0 + boost_power * 1.578
        arrays = _socket_arrays(sink=sink_boost_ss, chip=sink_boost_ss + 6)
        freq = select_frequencies(
            ladder=X2150_LADDER, params=PARAMS, **arrays
        )
        assert freq[0] == 1500.0  # boost no longer grantable


class TestSelectFrequenciesSteady:
    def test_cool_ambient_allows_boost(self):
        arrays = _socket_arrays(sink=20.0, chip=22.0)
        del arrays["sink_c"]
        freq = select_frequencies_steady(
            ambient_c=np.array([18.0]),
            r_ext=np.array([1.578]),
            ladder=X2150_LADDER,
            params=PARAMS,
            **arrays,
        )
        assert freq[0] >= 1500.0

    def test_hot_ambient_throttles(self):
        arrays = _socket_arrays(sink=20.0, chip=60.0)
        del arrays["sink_c"]
        freq = select_frequencies_steady(
            ambient_c=np.array([75.0]),
            r_ext=np.array([1.578]),
            ladder=X2150_LADDER,
            params=PARAMS,
            **arrays,
        )
        assert freq[0] < 1500.0

    def test_graded_response_to_ambient(self):
        """Steady prediction steps down gradually with ambient."""
        arrays = _socket_arrays(sink=0.0, chip=60.0)
        del arrays["sink_c"]
        freqs = [
            select_frequencies_steady(
                ambient_c=np.array([amb]),
                r_ext=np.array([1.578]),
                ladder=X2150_LADDER,
                params=PARAMS,
                **arrays,
            )[0]
            for amb in np.linspace(18.0, 80.0, 30)
        ]
        assert freqs == sorted(freqs, reverse=True)
        assert len(set(freqs)) >= 3  # several distinct states appear

"""End-to-end assertions of the paper's headline qualitative results.

These are the reproduction's acceptance tests: each asserts a *shape*
the paper reports (who wins, where, in which direction), not absolute
numbers.  They run scaled-down simulations (3 SUT rows, short horizon)
and are the slowest tests in the suite.
"""

import pytest

from repro.config.presets import scaled
from repro.core import get_scheduler
from repro.metrics.zones import zone_report
from repro.server.topology import moonshot_sut
from repro.sim.runner import run_once
from repro.workloads.benchmark import BenchmarkSet


@pytest.fixture(scope="module")
def topology():
    return moonshot_sut(n_rows=3)


@pytest.fixture(scope="module")
def params():
    return scaled(sim_time_s=16.0, warmup_s=6.0)


@pytest.fixture(scope="module")
def results(topology, params):
    """Expansion for the pivotal schemes at a low and a high load."""
    schemes = ("CF", "HF", "MinHR", "Predictive", "CP", "Random")
    out = {}
    for load in (0.3, 0.8):
        for scheme in schemes:
            result = run_once(
                topology,
                params,
                get_scheduler(scheme),
                BenchmarkSet.COMPUTATION,
                load,
            )
            out[(scheme, load)] = result
    return out


def expansion(results, scheme, load):
    return results[(scheme, load)].mean_runtime_expansion


class TestFigure11Shape:
    def test_hf_clearly_worse_at_low_load(self, results):
        assert expansion(results, "HF", 0.3) > 1.03 * expansion(
            results, "CF", 0.3
        )

    def test_minhr_clearly_worse_at_low_load(self, results):
        assert expansion(results, "MinHR", 0.3) > 1.03 * expansion(
            results, "CF", 0.3
        )

    def test_hf_catches_up_at_high_load(self, results):
        """The CF->HF crossover: HF beats CF at high load."""
        assert expansion(results, "HF", 0.8) < expansion(
            results, "CF", 0.8
        )

    def test_minhr_best_existing_at_high_load(self, results):
        assert expansion(results, "MinHR", 0.8) < expansion(
            results, "CF", 0.8
        )
        assert expansion(results, "MinHR", 0.8) < expansion(
            results, "Predictive", 0.8
        )

    def test_predictive_good_at_low_load(self, results):
        assert expansion(results, "Predictive", 0.3) <= 1.005 * expansion(
            results, "CF", 0.3
        )

    def test_predictive_loses_advantage_at_high_load(self, results):
        assert expansion(results, "Predictive", 0.8) > 0.995 * expansion(
            results, "CF", 0.8
        )

    def test_random_improves_relative_to_cf_at_high_load(self, results):
        low = expansion(results, "Random", 0.3) / expansion(
            results, "CF", 0.3
        )
        high = expansion(results, "Random", 0.8) / expansion(
            results, "CF", 0.8
        )
        assert high < low


class TestCPShape:
    def test_cp_best_at_low_load(self, results):
        cp = expansion(results, "CP", 0.3)
        for scheme in ("CF", "HF", "MinHR", "Predictive", "Random"):
            assert cp <= expansion(results, scheme, 0.3) * 1.001, scheme

    def test_cp_beats_cf_at_high_load(self, results):
        assert expansion(results, "CP", 0.8) < expansion(
            results, "CF", 0.8
        )

    def test_cp_close_to_best_at_high_load(self, results):
        """CP matches HF/MinHR within ~2% at high load."""
        best = min(
            expansion(results, scheme, 0.8)
            for scheme in ("HF", "MinHR", "CF", "Predictive", "Random")
        )
        assert expansion(results, "CP", 0.8) <= best * 1.02

    def test_cp_robust_across_loads(self, results):
        """No existing scheme dominates CP at both load extremes."""
        for scheme in ("CF", "HF", "MinHR", "Predictive"):
            dominated = all(
                expansion(results, "CP", load)
                > expansion(results, scheme, load) * 1.005
                for load in (0.3, 0.8)
            )
            assert not dominated, scheme


class TestFigure13Shape:
    def test_cf_front_loads_at_low_load(self, results):
        report = zone_report(results[("CF", 0.3)])
        assert report.front_work > 0.75

    def test_hf_back_loads(self, results):
        report = zone_report(results[("HF", 0.3)])
        assert report.back_work > 0.75

    def test_back_half_slower_at_high_load(self, results):
        report = zone_report(results[("CF", 0.8)])
        assert report.back_freq < report.front_freq

    def test_back_half_works_more_at_high_load(self, results):
        low = zone_report(results[("CF", 0.3)]).back_work
        high = zone_report(results[("CF", 0.8)]).back_work
        assert high > low

    def test_predictive_prefers_even_zones(self, results, topology):
        """Predictive concentrates work on zone 2 — the front-half even
        zone with the better 30-fin heat sink (the paper: "Predictive is
        performing most of its work on zone 2")."""
        import numpy as np

        result = results[("Predictive", 0.3)]
        zone2 = np.isin(
            np.arange(topology.n_sockets), topology.sockets_in_zone(2)
        )
        # Zone 2 holds 1/6 of sockets; Predictive gives it far more
        # than its proportional share of the work.
        assert result.work_fraction(zone2) > 2.0 / 6.0


class TestEnergyShape:
    def test_cp_no_energy_penalty_vs_cf(self, results):
        """CP buys performance without extra energy (Figure 15)."""
        for load in (0.3, 0.8):
            cp = results[("CP", load)]
            cf = results[("CF", load)]
            ed2_ratio = cp.ed2_j_s2 / cf.ed2_j_s2
            assert ed2_ratio < 1.02

    def test_energy_scales_with_load(self, results):
        assert (
            results[("CF", 0.8)].energy_j
            > results[("CF", 0.3)].energy_j
        )


class TestStorageMuted:
    def test_storage_spread_smaller_than_computation(
        self, topology, params
    ):
        """Figure 14: Storage shows muted differences across schemes."""
        spreads = {}
        for benchmark_set in (
            BenchmarkSet.COMPUTATION,
            BenchmarkSet.STORAGE,
        ):
            values = [
                run_once(
                    topology,
                    params,
                    get_scheduler(scheme),
                    benchmark_set,
                    0.3,
                ).mean_runtime_expansion
                for scheme in ("CF", "HF", "CP")
            ]
            spreads[benchmark_set] = max(values) / min(values) - 1.0
        assert (
            spreads[BenchmarkSet.STORAGE]
            < spreads[BenchmarkSet.COMPUTATION] / 2
        )

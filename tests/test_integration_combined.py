"""Whole-stack integration: every optional engine feature at once."""

import numpy as np
import pytest

from repro.config.presets import smoke
from repro.core import get_scheduler
from repro.core.migration import MigrationPolicy
from repro.sim.engine import Simulation
from repro.sim.export import result_summary
from repro.sim.tracing import TraceConfig
from repro.thermal.fan_control import FanController
from repro.workloads.benchmark import BenchmarkSet
from repro.workloads.load_profile import (
    VaryingLoadProcess,
    ramp_profile,
)


@pytest.fixture(scope="module")
def combined_result():
    from repro.server.topology import moonshot_sut

    topology = moonshot_sut(n_rows=2)
    params = smoke(seed=1).with_overrides(duration_scale=60.0)
    phases = ramp_profile(
        0.3, 0.9, steps=2, total_duration_s=params.sim_time_s
    )
    jobs = VaryingLoadProcess(
        benchmark_set=BenchmarkSet.COMPUTATION,
        phases=phases,
        n_sockets=topology.n_sockets,
        seed=1,
        duration_scale=params.duration_scale,
    ).generate()
    sim = Simulation(
        topology,
        params,
        get_scheduler("CP"),
        migrator=MigrationPolicy(interval_s=0.1, min_gain_mhz=300.0),
        fan_controller=FanController(
            design_total_cfm=topology.total_airflow_cfm()
        ),
        trace_config=TraceConfig(interval_s=0.1),
    )
    return sim.run(jobs), topology


class TestCombinedRun:
    def test_completes_jobs(self, combined_result):
        result, _ = combined_result
        assert result.n_jobs_completed > 0

    def test_all_features_active(self, combined_result):
        result, _ = combined_result
        assert result.trace is not None
        assert len(result.trace) > 0
        assert result.cooling_energy_j > 0
        # Migration may or may not trigger at this scale; the counter
        # must at least be wired.
        assert result.n_migrations >= 0

    def test_fan_scale_responds_to_ramp(self, combined_result):
        result, _ = combined_result
        assert 0.4 <= result.mean_airflow_scale <= 1.25

    def test_invariants_still_hold(self, combined_result):
        result, topology = combined_result
        assert (
            result.busy_time_s <= result.measured_span_s + 1e-9
        ).all()
        assert (result.boost_time_s <= result.busy_time_s + 1e-9).all()
        assert result.max_chip_c.max() < 130.0
        for job in result.completed_jobs:
            assert job.runtime_expansion >= 1.0 - 1e-9

    def test_trace_utilization_rises_through_ramp(self, combined_result):
        result, _ = combined_result
        util = np.asarray(result.trace.utilization)
        half = len(util) // 2
        assert util[half:].mean() > util[:half].mean()

    def test_exportable(self, combined_result):
        result, _ = combined_result
        summary = result_summary(result, BenchmarkSet.COMPUTATION, 0.6)
        assert summary["n_migrations"] == result.n_migrations
        assert summary["scheduler"] == "CP"

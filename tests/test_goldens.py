"""Golden-trace regression tests for the end-to-end simulation.

Each golden fixture pins the key metrics of one small fixed-seed
simulation (an 8-socket topology over a short horizon) for one
scheduler.  The tolerances are tight: any change to the physics, the
power manager, the workload generator or a policy that silently shifts
results fails these tests loudly, and an intentional model change must
regenerate the fixtures and justify the diff in review.

Regenerate after an intentional change with::

    PYTHONPATH=src python tests/test_goldens.py

which rewrites every JSON fixture under ``tests/goldens/``.
"""

import json
import os

import pytest

from repro.config.presets import smoke
from repro.core import get_scheduler
from repro.server.topology import ServerTopology
from repro.sim.invariants import InvariantAuditor
from repro.sim.runner import run_once
from repro.workloads.benchmark import BenchmarkSet

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "goldens")

#: Schedulers pinned by a golden fixture.
GOLDEN_SCHEDULERS = ("CF", "Balanced", "CP")

#: Fixed scenario shared by every fixture.
GOLDEN_SEED = 11
GOLDEN_LOAD = 0.6
GOLDEN_SET = BenchmarkSet.COMPUTATION

#: Relative tolerance on float metrics.  The run is deterministic, so
#: this only needs to absorb cross-platform libm/BLAS noise.
REL_TOL = 1e-9


def golden_topology() -> ServerTopology:
    """An 8-socket SUT: 2 rows x 2 lanes x 2 chain positions."""
    return ServerTopology(
        n_rows=2,
        lanes_per_row=2,
        chain_length=2,
        sockets_per_cartridge_depth=2,
    )


def golden_params():
    """Short fixed-seed horizon (smoke preset)."""
    return smoke(seed=GOLDEN_SEED)


def compute_metrics(scheduler_name: str) -> dict:
    """Run the golden scenario for one scheduler; extract key metrics.

    The run executes under the invariant auditor, so a golden run also
    certifies a violation-free trajectory.
    """
    result = run_once(
        golden_topology(),
        golden_params(),
        get_scheduler(scheduler_name),
        GOLDEN_SET,
        GOLDEN_LOAD,
        auditor=InvariantAuditor(interval_steps=25),
    )
    return {
        "scheduler": scheduler_name,
        "n_jobs_submitted": result.n_jobs_submitted,
        "n_jobs_completed": result.n_jobs_completed,
        "energy_j": result.energy_j,
        "mean_relative_frequency": result.average_relative_frequency(),
        "mean_runtime_expansion": result.mean_runtime_expansion,
        "max_chip_c": float(result.max_chip_c.max()),
    }


def fixture_path(scheduler_name: str) -> str:
    return os.path.join(
        GOLDEN_DIR, f"{scheduler_name.lower()}.json"
    )


@pytest.mark.parametrize("scheduler_name", GOLDEN_SCHEDULERS)
def test_golden_metrics(scheduler_name):
    with open(fixture_path(scheduler_name)) as handle:
        expected = json.load(handle)
    actual = compute_metrics(scheduler_name)
    assert actual.keys() == expected.keys()
    assert actual["scheduler"] == expected["scheduler"]
    assert actual["n_jobs_submitted"] == expected["n_jobs_submitted"]
    assert actual["n_jobs_completed"] == expected["n_jobs_completed"]
    for key in (
        "energy_j",
        "mean_relative_frequency",
        "mean_runtime_expansion",
        "max_chip_c",
    ):
        assert actual[key] == pytest.approx(
            expected[key], rel=REL_TOL
        ), key


def test_goldens_distinguish_schedulers():
    """The scenario is sensitive enough that policies differ — a
    fixture mix-up cannot pass silently."""
    energies = set()
    for scheduler_name in GOLDEN_SCHEDULERS:
        with open(fixture_path(scheduler_name)) as handle:
            energies.add(json.load(handle)["energy_j"])
    assert len(energies) == len(GOLDEN_SCHEDULERS)


def regenerate() -> None:
    """Rewrite every golden fixture from the current model."""
    os.makedirs(GOLDEN_DIR, exist_ok=True)
    for scheduler_name in GOLDEN_SCHEDULERS:
        metrics = compute_metrics(scheduler_name)
        path = fixture_path(scheduler_name)
        with open(path, "w") as handle:
            json.dump(metrics, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {path}")


if __name__ == "__main__":
    regenerate()

"""Tests for the terminal visualisation helpers."""

import pytest

from repro.errors import ReproError
from repro.viz import bar_chart, line_chart, sparkline


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_min_max_levels(self):
        line = sparkline([0.0, 1.0])
        assert line[0] == "▁"
        assert line[1] == "█"

    def test_flat_series(self):
        assert sparkline([5.0, 5.0, 5.0]) == "▁▁▁"

    def test_monotone_series_monotone_glyphs(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert list(line) == sorted(line, key="▁▂▃▄▅▆▇█".index)

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            sparkline([])

    def test_nan_rejected(self):
        with pytest.raises(ReproError):
            sparkline([1.0, float("nan")])


class TestBarChart:
    def test_one_row_per_label(self):
        chart = bar_chart(["a", "bb"], [1.0, 2.0])
        assert len(chart.splitlines()) == 2

    def test_longest_bar_for_peak(self):
        chart = bar_chart(["a", "b"], [1.0, 4.0], width=8)
        rows = chart.splitlines()
        assert rows[1].count("█") == 8
        assert rows[0].count("█") == 2

    def test_unit_suffix(self):
        chart = bar_chart(["x"], [3.0], unit="W")
        assert "3W" in chart

    def test_mismatched_inputs_rejected(self):
        with pytest.raises(ReproError):
            bar_chart(["a"], [1.0, 2.0])

    def test_negative_rejected(self):
        with pytest.raises(ReproError):
            bar_chart(["a"], [-1.0])

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            bar_chart([], [])


class TestLineChart:
    def test_height_and_legend(self):
        chart = line_chart({"temp": [1, 2, 3]}, height=5)
        lines = chart.splitlines()
        assert len(lines) == 6  # height + legend
        assert "t=temp" in lines[-1]

    def test_markers_present(self):
        chart = line_chart(
            {"alpha": [0, 1, 2], "beta": [2, 1, 0]}, height=4
        )
        assert "a" in chart
        assert "b" in chart

    def test_extremes_on_boundary_rows(self):
        chart = line_chart({"x": [0.0, 10.0]}, height=4, width=2)
        lines = chart.splitlines()
        assert "x" in lines[0]  # max on top row
        assert "x" in lines[-2]  # min on bottom row

    def test_axis_labels_show_range(self):
        chart = line_chart({"x": [2.0, 8.0]}, height=3)
        assert "8.00" in chart
        assert "2.00" in chart

    def test_flat_series_does_not_crash(self):
        chart = line_chart({"flat": [1.0, 1.0, 1.0]}, height=3)
        assert "f" in chart

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            line_chart({})
        with pytest.raises(ReproError):
            line_chart({"x": []})

"""Tests for repro.workloads.perf_model."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.server.processors import FrequencyLadder
from repro.workloads.benchmark import BenchmarkSet
from repro.workloads.perf_model import PerfModel, relative_performance


class TestRelativePerformance:
    def test_unity_at_max_frequency(self):
        for benchmark_set in BenchmarkSet:
            model = PerfModel.for_set(benchmark_set)
            assert model.relative_performance(1900) == pytest.approx(1.0)

    def test_figure7_drop_at_min(self):
        """Computation loses ~35%, GP ~25%, Storage ~10% at 1100 MHz."""
        expectations = {
            BenchmarkSet.COMPUTATION: 0.65,
            BenchmarkSet.GENERAL_PURPOSE: 0.75,
            BenchmarkSet.STORAGE: 0.90,
        }
        for benchmark_set, expected in expectations.items():
            model = PerfModel.for_set(benchmark_set)
            assert model.relative_performance(1100) == pytest.approx(
                expected
            )

    def test_paper_phrasing_800mhz_reduction(self):
        """Performance drops ~35% for an 800 MHz reduction (Computation)."""
        model = PerfModel.for_set(BenchmarkSet.COMPUTATION)
        drop = 1.0 - model.relative_performance(1900 - 800)
        assert drop == pytest.approx(0.35)

    def test_linear_between_endpoints(self):
        model = PerfModel.for_set(BenchmarkSet.COMPUTATION)
        mid = model.relative_performance(1500)
        assert mid == pytest.approx((1.0 + 0.65) / 2)

    def test_monotone_in_frequency(self):
        model = PerfModel.for_set(BenchmarkSet.GENERAL_PURPOSE)
        perfs = [
            model.relative_performance(f)
            for f in (1100, 1300, 1500, 1700, 1900)
        ]
        assert perfs == sorted(perfs)

    def test_vectorised(self):
        model = PerfModel.for_set(BenchmarkSet.STORAGE)
        out = model.relative_performance(np.array([1100.0, 1900.0]))
        assert out.shape == (2,)
        assert out[1] == pytest.approx(1.0)

    def test_runtime_expansion_inverse(self):
        model = PerfModel.for_set(BenchmarkSet.COMPUTATION)
        assert model.runtime_expansion(1100) == pytest.approx(1 / 0.65)

    def test_execution_rate_equals_relative_performance(self):
        model = PerfModel.for_set(BenchmarkSet.COMPUTATION)
        assert model.execution_rate(1500) == pytest.approx(
            model.relative_performance(1500)
        )

    def test_invalid_drop_rejected(self):
        with pytest.raises(WorkloadError):
            relative_performance(1500, 1.5)
        with pytest.raises(WorkloadError):
            PerfModel(perf_drop_at_min=-0.1)

    def test_degenerate_single_state_ladder(self):
        ladder = FrequencyLadder(states_mhz=(1000,), sustained_mhz=1000)
        assert relative_performance(1000, 0.3, ladder) == pytest.approx(
            1.0
        )

"""Tests for the fleet coordinator: queueing, retries, degradation."""

import pytest

from repro.errors import FleetError
from repro.fleet.compute import ChassisSnapshot
from repro.fleet.coordinator import FleetConfig, FleetCoordinator
from repro.fleet.messages import (
    AnswerStatus,
    PlacementQuery,
    RequestClass,
    WhatIfQuery,
)
from repro.fleet.registry import (
    ChassisSpec,
    FleetRegistry,
    WorkerSpec,
)
from repro.fleet.supervision import SupervisionPolicy, WorkerState


class ScriptedHandle:
    """A hand-driven WorkerHandle: tests place messages in ``inbox``."""

    def __init__(self, worker_id, cold_on_start=False):
        self.worker_id = worker_id
        self.cold_on_start = cold_on_start
        self.sent = []
        self.inbox = []
        self.starts = 0
        self.stops = 0

    def start(self, now):
        self.starts += 1
        return self.cold_on_start

    def stop(self, now):
        self.stops += 1

    def send(self, request_id, query, now):
        self.sent.append((request_id, query, now))

    def poll(self, now):
        messages, self.inbox = self.inbox, []
        return messages


def make_fleet(replicas=0, **config_kw):
    registry = FleetRegistry(
        chassis={"c0": ChassisSpec(chassis_id="c0")},
        workers=tuple(
            WorkerSpec(worker_id=f"w{i}", chassis_id="c0")
            for i in range(1 + replicas)
        ),
    )
    handles = {
        w.worker_id: ScriptedHandle(w.worker_id)
        for w in registry.workers
    }
    config_kw.setdefault("retry_jitter_s", 0.0)
    coordinator = FleetCoordinator(
        registry=registry,
        handles=handles,
        policy=SupervisionPolicy(
            heartbeat_interval_s=1.0,
            missed_heartbeats=2,
            restart_backoff_s=0.5,
            restart_backoff_cap_s=2.0,
            max_restarts=1,
        ),
        config=FleetConfig(**config_kw),
    )
    coordinator.start(0.0)
    return coordinator, handles


def snapshot(chassis="c0", t=0.0):
    return ChassisSnapshot(
        chassis_id=chassis,
        t=t,
        utilization=(0.5, 0.5),
        chip_c=(48.0, 41.0),
        power_w=(22.0, 21.0),
    )


def query(cls=RequestClass.INTERACTIVE):
    return PlacementQuery(
        chassis="c0", job_power_w=10.0, request_class=cls
    )


class TestHappyPath:
    def test_answer_round_trip_exactly_once(self):
        coordinator, handles = make_fleet()
        rid = coordinator.submit(query(), 0.0)
        coordinator.tick(0.1)
        assert handles["w0"].sent[0][0] == rid
        handles["w0"].inbox.append(("answer", rid, {"socket": 1}))
        coordinator.tick(0.2)
        answer = coordinator.answers[rid]
        assert answer.status is AnswerStatus.OK
        assert answer.payload == {"socket": 1}
        assert answer.attempts == 1
        terminals = [
            e
            for e in coordinator.events
            if e["type"] in ("fleet_answer", "fleet_shed")
            and e["request_id"] == rid
        ]
        assert len(terminals) == 1
        assert coordinator.pending == 0

    def test_unknown_chassis_fails_immediately(self):
        coordinator, _ = make_fleet()
        rid = coordinator.submit(
            PlacementQuery(chassis="nope", job_power_w=5.0), 0.0
        )
        assert coordinator.answers[rid].status is AnswerStatus.FAILED
        assert "nope" in coordinator.answers[rid].reason

    def test_snapshot_messages_update_cache(self):
        coordinator, handles = make_fleet()
        handles["w0"].inbox.append(("snapshot", snapshot()))
        coordinator.tick(0.5)
        snap, received_t = coordinator.snapshots["c0"]
        assert snap.peak_chip_c == 48.0
        assert received_t == 0.5

    def test_callback_fires_on_completion(self):
        coordinator, handles = make_fleet()
        seen = []
        rid = coordinator.submit(query(), 0.0, callback=seen.append)
        coordinator.tick(0.1)
        handles["w0"].inbox.append(("answer", rid, {}))
        coordinator.tick(0.2)
        assert [a.request_id for a in seen] == [rid]


class TestBackpressure:
    def test_queue_bound_sheds_batch_arrivals(self):
        coordinator, _ = make_fleet(
            max_queue=2, max_inflight_per_worker=1
        )
        # One request goes inflight; two more fill the queue.
        blocker = coordinator.submit(query(RequestClass.BATCH), 0.0)
        coordinator.tick(0.0)
        rids = [
            blocker,
            coordinator.submit(query(RequestClass.BATCH), 0.0),
            coordinator.submit(query(RequestClass.BATCH), 0.0),
        ]
        assert len(coordinator.queue) == 2
        shed_rid = coordinator.submit(
            WhatIfQuery(chassis="c0", scenarios=((0.5, 9.0),)), 0.1
        )
        answer = coordinator.answers[shed_rid]
        assert answer.status is AnswerStatus.SHED
        assert answer.reason == "queue_full"
        for rid in rids:
            assert rid not in coordinator.answers

    def test_interactive_evicts_youngest_batch(self):
        coordinator, _ = make_fleet(
            max_queue=2, max_inflight_per_worker=1
        )
        blocker = coordinator.submit(query(RequestClass.BATCH), 0.0)
        coordinator.tick(0.0)  # blocker goes inflight
        older = coordinator.submit(query(RequestClass.BATCH), 0.1)
        younger = coordinator.submit(query(RequestClass.BATCH), 0.2)
        vip = coordinator.submit(query(RequestClass.INTERACTIVE), 0.3)
        assert coordinator.answers[younger].status is AnswerStatus.SHED
        assert (
            coordinator.answers[younger].reason
            == "evicted_for_interactive"
        )
        assert older not in coordinator.answers
        assert vip not in coordinator.answers
        assert blocker not in coordinator.answers
        assert len(coordinator.queue) == 2

    def test_interactive_full_queue_sheds_the_arrival(self):
        coordinator, _ = make_fleet(
            max_queue=1, max_inflight_per_worker=1
        )
        coordinator.submit(query(), 0.0)
        coordinator.tick(0.0)
        coordinator.submit(query(), 0.1)  # fills the queue
        shed = coordinator.submit(query(), 0.2)
        assert coordinator.answers[shed].status is AnswerStatus.SHED
        assert coordinator.answers[shed].reason == "queue_full"

    def test_shed_emits_no_answer_event(self):
        coordinator, _ = make_fleet(
            max_queue=1, max_inflight_per_worker=1
        )
        coordinator.submit(query(), 0.0)
        coordinator.tick(0.0)
        coordinator.submit(query(), 0.1)
        shed = coordinator.submit(query(), 0.2)
        kinds = [
            e["type"]
            for e in coordinator.events
            if e.get("request_id") == shed
        ]
        assert kinds == ["fleet_submit", "fleet_shed"]


class TestRetriesAndTimeouts:
    def test_timeout_retries_on_replica_only(self):
        coordinator, handles = make_fleet(
            replicas=1, request_timeout_s=1.0, max_attempts=2
        )
        rid = coordinator.submit(query(), 0.0)
        coordinator.tick(0.0)
        assert [s[0] for s in handles["w0"].sent] == [rid]
        coordinator.tick(1.5)  # w0 hung: attempt abandoned
        assert [s[0] for s in handles["w1"].sent] == [rid]
        assert [s[0] for s in handles["w0"].sent] == [rid]
        handles["w1"].inbox.append(("answer", rid, {"socket": 0}))
        coordinator.tick(1.6)
        answer = coordinator.answers[rid]
        assert answer.status is AnswerStatus.OK
        assert answer.attempts == 2

    def test_late_answer_from_abandoned_attempt_dropped(self):
        coordinator, handles = make_fleet(
            replicas=1, request_timeout_s=1.0, max_attempts=2
        )
        rid = coordinator.submit(query(), 0.0)
        coordinator.tick(0.0)
        coordinator.tick(1.5)  # retried on w1
        handles["w1"].inbox.append(("answer", rid, {"ok": 1}))
        handles["w0"].inbox.append(("answer", rid, {"late": 1}))
        coordinator.tick(1.6)
        assert coordinator.answers[rid].payload == {"late": 1} or (
            coordinator.answers[rid].payload == {"ok": 1}
        )
        drops = [
            e for e in coordinator.events if e["type"] == "fleet_drop"
        ]
        assert len(drops) == 1
        assert drops[0]["reason"] == "late_answer"
        terminals = [
            e
            for e in coordinator.events
            if e["type"] == "fleet_answer"
            and e["request_id"] == rid
        ]
        assert len(terminals) == 1

    def test_retries_exhausted_fails_without_snapshot(self):
        coordinator, handles = make_fleet(
            request_timeout_s=1.0, max_attempts=1
        )
        rid = coordinator.submit(query(), 0.0)
        coordinator.tick(0.0)
        coordinator.tick(1.5)
        answer = coordinator.answers[rid]
        assert answer.status is AnswerStatus.FAILED
        assert "retries_exhausted" in answer.reason
        assert "no snapshot" in answer.reason

    def test_retries_exhausted_degrades_with_snapshot(self):
        coordinator, handles = make_fleet(
            request_timeout_s=1.0,
            max_attempts=1,
            max_staleness_s=60.0,
        )
        handles["w0"].inbox.append(("snapshot", snapshot()))
        coordinator.tick(0.2)
        rid = coordinator.submit(query(), 0.3)
        coordinator.tick(0.3)
        coordinator.tick(1.5)
        answer = coordinator.answers[rid]
        assert answer.status is AnswerStatus.DEGRADED
        assert answer.staleness_s == pytest.approx(1.3)
        assert answer.payload["from_snapshot"] is True
        # The stale field's coolest socket is index 1 (41 C < 48 C).
        assert answer.payload["socket"] == 1

    def test_queue_timeout_resolves_waiting_request(self):
        coordinator, _ = make_fleet(
            max_inflight_per_worker=1,
            queue_timeout_s=2.0,
        )
        blocker = coordinator.submit(query(), 0.0)
        coordinator.tick(0.0)
        waiter = coordinator.submit(query(), 0.1)
        coordinator.tick(2.5)
        answer = coordinator.answers[waiter]
        assert answer.status is AnswerStatus.FAILED
        assert "queue_timeout" in answer.reason
        assert blocker not in coordinator.answers


class TestDegradedServing:
    def quarantine_w0(self, coordinator, handles, now=0.0):
        """Burn w0's restart budget (max_restarts=1) via exits."""
        handles["w0"].inbox.append(("exit",))
        coordinator.tick(now)  # exit -> RESTARTING
        sup = coordinator.supervisors["w0"]
        restart_t = sup.next_restart_t
        coordinator.tick(restart_t)  # restart runs
        handles["w0"].inbox.append(("exit",))
        coordinator.tick(restart_t + 0.1)
        assert sup.state is WorkerState.QUARANTINED

    def test_quarantined_chassis_serves_tagged_stale_answers(self):
        coordinator, handles = make_fleet(max_staleness_s=60.0)
        handles["w0"].inbox.append(("snapshot", snapshot()))
        coordinator.tick(0.0)
        self.quarantine_w0(coordinator, handles, 0.1)
        rid = coordinator.submit(query(), 5.0)
        coordinator.tick(5.0)
        answer = coordinator.answers[rid]
        assert answer.status is AnswerStatus.DEGRADED
        assert "chassis_quarantined" in answer.reason
        assert answer.staleness_s == pytest.approx(5.0)
        degraded = [
            e
            for e in coordinator.events
            if e["type"] == "fleet_degraded"
        ]
        assert degraded[-1]["staleness_s"] == pytest.approx(5.0)

    def test_stale_snapshot_beyond_bound_fails(self):
        coordinator, handles = make_fleet(max_staleness_s=2.0)
        handles["w0"].inbox.append(("snapshot", snapshot()))
        coordinator.tick(0.0)
        self.quarantine_w0(coordinator, handles, 0.1)
        rid = coordinator.submit(query(), 10.0)
        coordinator.tick(10.0)
        answer = coordinator.answers[rid]
        assert answer.status is AnswerStatus.FAILED
        assert "snapshot stale" in answer.reason

    def test_worker_death_requeues_inflight(self):
        coordinator, handles = make_fleet(replicas=1)
        rid = coordinator.submit(query(), 0.0)
        coordinator.tick(0.0)
        assert [s[0] for s in handles["w0"].sent] == [rid]
        handles["w0"].inbox.append(("exit",))
        coordinator.tick(0.5)
        # Recovered onto the replica (no exclusion: work is lost, not
        # hung).
        assert [s[0] for s in handles["w1"].sent] == [rid]
        handles["w1"].inbox.append(("answer", rid, {}))
        coordinator.tick(0.6)
        assert coordinator.answers[rid].status is AnswerStatus.OK


class TestLifecycle:
    def test_finish_resolves_stragglers_as_shutdown(self):
        coordinator, handles = make_fleet(max_inflight_per_worker=1)
        inflight = coordinator.submit(query(), 0.0)
        coordinator.tick(0.0)
        queued = coordinator.submit(query(), 0.1)
        coordinator.finish(1.0)
        for rid in (inflight, queued):
            answer = coordinator.answers[rid]
            assert answer.status is AnswerStatus.FAILED
            assert "shutdown" in answer.reason
        assert coordinator.pending == 0
        assert handles["w0"].stops == 1
        assert coordinator.events[-1]["type"] == "fleet_end"

    def test_double_start_rejected(self):
        coordinator, _ = make_fleet()
        with pytest.raises(FleetError):
            coordinator.start(1.0)

    def test_tick_before_start_rejected(self):
        registry = FleetRegistry(
            chassis={"c0": ChassisSpec(chassis_id="c0")},
            workers=(WorkerSpec(worker_id="w0", chassis_id="c0"),),
        )
        coordinator = FleetCoordinator(
            registry=registry,
            handles={"w0": ScriptedHandle("w0")},
            policy=SupervisionPolicy(heartbeat_interval_s=1.0),
        )
        with pytest.raises(FleetError):
            coordinator.tick(0.0)

    def test_missing_handle_rejected(self):
        registry = FleetRegistry(
            chassis={"c0": ChassisSpec(chassis_id="c0")},
            workers=(WorkerSpec(worker_id="w0", chassis_id="c0"),),
        )
        with pytest.raises(FleetError, match="w0"):
            FleetCoordinator(
                registry=registry,
                handles={},
                policy=SupervisionPolicy(heartbeat_interval_s=1.0),
            )

    def test_restart_with_cold_flag_emits_restart_event(self):
        coordinator, handles = make_fleet()
        handles["w0"].cold_on_start = True
        handles["w0"].inbox.append(("exit",))
        coordinator.tick(0.0)
        sup = coordinator.supervisors["w0"]
        coordinator.tick(sup.next_restart_t)
        restarts = [
            e
            for e in coordinator.events
            if e["type"] == "fleet_restart"
        ]
        assert restarts[-1]["cold"] is True
        assert handles["w0"].starts == 2  # initial + restart

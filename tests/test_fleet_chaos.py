"""Chaos-harness tests: determinism, invariants, degraded serving."""

import json

import pytest

from repro.errors import FleetError
from repro.fleet.chaos import (
    AnswerDelay,
    ChaosRunConfig,
    ChaosSchedule,
    CheckpointCorruption,
    WorkerHang,
    WorkerKill,
    run_chaos,
)
from repro.fleet.invariants import (
    check_fleet_events,
    check_fleet_log,
    has_fleet_events,
)
from repro.fleet.registry import demo_fleet

CFG = ChaosRunConfig(
    seed=11,
    horizon_s=12.0,
    n_chassis=2,
    n_requests=18,
    burst_size=10,
    n_chaos_events=5,
)


class TestSchedule:
    def test_fingerprint_stable_and_content_sensitive(self):
        a = ChaosSchedule((WorkerKill(t=1.0, worker="w0"),))
        b = ChaosSchedule((WorkerKill(t=1.0, worker="w0"),))
        c = ChaosSchedule((WorkerKill(t=2.0, worker="w0"),))
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != c.fingerprint()

    def test_events_sorted_by_time(self):
        schedule = ChaosSchedule(
            (
                WorkerHang(t=5.0, worker="w0", duration_s=1.0),
                WorkerKill(t=1.0, worker="w0"),
            )
        )
        assert [e.t for e in schedule.events] == [1.0, 5.0]

    def test_random_is_seed_deterministic(self):
        kwargs = dict(
            seed=3, horizon_s=10.0, workers=["a", "b"], n_events=8
        )
        assert (
            ChaosSchedule.random(**kwargs).fingerprint()
            == ChaosSchedule.random(**kwargs).fingerprint()
        )
        assert (
            ChaosSchedule.random(**kwargs).fingerprint()
            != ChaosSchedule.random(**{**kwargs, "seed": 4}).fingerprint()
        )

    def test_rejects_non_events_and_negative_times(self):
        with pytest.raises(FleetError):
            ChaosSchedule(("kill w0",))
        with pytest.raises(FleetError):
            ChaosSchedule((WorkerKill(t=-1.0, worker="w0"),))


class TestDeterminism:
    def test_same_seed_reproduces_log_bit_for_bit(self, tmp_path):
        run_chaos(CFG, out_dir=tmp_path / "a")
        run_chaos(CFG, out_dir=tmp_path / "b")
        log_a = (tmp_path / "a" / "fleet.jsonl").read_bytes()
        log_b = (tmp_path / "b" / "fleet.jsonl").read_bytes()
        assert log_a == log_b
        assert len(log_a) > 0

    def test_different_seed_differs(self, tmp_path):
        import dataclasses

        run_chaos(CFG, out_dir=tmp_path / "a")
        run_chaos(
            dataclasses.replace(CFG, seed=CFG.seed + 1),
            out_dir=tmp_path / "b",
        )
        assert (tmp_path / "a" / "fleet.jsonl").read_bytes() != (
            tmp_path / "b" / "fleet.jsonl"
        ).read_bytes()

    def test_report_summary_is_json_safe(self):
        report = run_chaos(CFG)
        parsed = json.loads(json.dumps(report.summary()))
        assert parsed["seed"] == CFG.seed
        assert parsed["problems"] == []


class TestInvariantsUnderChaos:
    def test_every_request_reaches_exactly_one_terminal(self):
        report = run_chaos(CFG)
        assert report.ok, report.problems
        events = report.coordinator.events
        submits = [
            e["request_id"]
            for e in events
            if e["type"] == "fleet_submit"
        ]
        terminals = [
            e["request_id"]
            for e in events
            if e["type"] in ("fleet_answer", "fleet_shed")
        ]
        assert sorted(submits) == sorted(terminals)
        assert len(set(submits)) == len(submits)
        assert report.coordinator.pending == 0

    def test_queue_bound_never_exceeded(self):
        report = run_chaos(CFG)
        max_queue = report.coordinator.config.max_queue
        assert report.coordinator.peak_queue_len <= max_queue
        for event in report.coordinator.events:
            if event["type"] == "fleet_submit":
                assert event["queue_len"] <= max_queue

    def test_log_passes_checker_from_disk(self, tmp_path):
        report = run_chaos(CFG, out_dir=tmp_path)
        assert check_fleet_log(report.log_path) == []

    def test_obs_check_audits_fleet_logs(self, tmp_path):
        from repro.obs.check import check_directory

        run_chaos(CFG, out_dir=tmp_path)
        assert check_directory(tmp_path) == []


class TestTargetedScenarios:
    def test_flapping_worker_quarantined_chassis_serves_stale(self):
        registry = demo_fleet(n_chassis=1, replicas=0)
        schedule = ChaosSchedule(
            tuple(
                WorkerKill(t=t, worker="c0-w0")
                for t in (1.0, 2.0, 3.5, 5.0)
            )
        )
        report = run_chaos(
            ChaosRunConfig(
                seed=2,
                horizon_s=12.0,
                n_chassis=1,
                n_requests=16,
                burst_size=0,
                n_chaos_events=0,
            ),
            registry=registry,
            schedule=schedule,
        )
        assert report.ok, report.problems
        assert (
            report.coordinator.worker_states()["c0-w0"]
            == "quarantined"
        )
        degraded = [
            a
            for a in report.coordinator.answers.values()
            if a.status.value == "degraded"
        ]
        assert degraded, "quarantined chassis must serve stale answers"
        for answer in degraded:
            assert answer.staleness_s >= 0.0
            assert answer.payload.get("from_snapshot") is True

    def test_checkpoint_corruption_forces_cold_restart(self, tmp_path):
        registry = demo_fleet(n_chassis=1, replicas=0)
        schedule = ChaosSchedule(
            (
                CheckpointCorruption(t=1.0, worker="c0-w0"),
                WorkerKill(t=1.1, worker="c0-w0"),
            )
        )
        report = run_chaos(
            ChaosRunConfig(
                seed=1,
                horizon_s=8.0,
                n_chassis=1,
                n_requests=6,
                burst_size=0,
                n_chaos_events=0,
            ),
            out_dir=tmp_path,
            registry=registry,
            schedule=schedule,
        )
        assert report.ok, report.problems
        restarts = [
            e
            for e in report.coordinator.events
            if e["type"] == "fleet_restart"
        ]
        assert restarts and restarts[0]["cold"] is True

    def test_hang_triggers_suspect_and_recovery(self):
        registry = demo_fleet(n_chassis=1, replicas=1)
        schedule = ChaosSchedule(
            (WorkerHang(t=1.0, worker="c0-w0", duration_s=2.0),)
        )
        report = run_chaos(
            ChaosRunConfig(
                seed=4,
                horizon_s=10.0,
                n_chassis=1,
                n_requests=10,
                burst_size=0,
                n_chaos_events=0,
            ),
            registry=registry,
            schedule=schedule,
        )
        assert report.ok, report.problems
        states = [
            (e["worker"], e["old"], e["new"])
            for e in report.coordinator.events
            if e["type"] == "fleet_worker_state"
        ]
        assert ("c0-w0", "healthy", "suspect") in states

    def test_answer_delay_is_survivable(self):
        registry = demo_fleet(n_chassis=1, replicas=1)
        schedule = ChaosSchedule(
            (
                AnswerDelay(
                    t=0.5,
                    worker="c0-w0",
                    extra_s=2.5,
                    duration_s=4.0,
                ),
            )
        )
        report = run_chaos(
            ChaosRunConfig(
                seed=6,
                horizon_s=10.0,
                n_chassis=1,
                n_requests=8,
                burst_size=0,
                n_chaos_events=0,
            ),
            registry=registry,
            schedule=schedule,
        )
        assert report.ok, report.problems


class TestCheckerCatchesViolations:
    def base(self):
        return [
            {
                "v": 1,
                "type": "fleet_start",
                "n_workers": 1,
                "n_chassis": 1,
                "seed": 0,
                "max_queue": 2,
                "max_staleness_s": 10.0,
            },
            {
                "v": 1,
                "type": "fleet_submit",
                "t": 0.0,
                "request_id": 0,
                "kind": "placement",
                "request_class": "interactive",
                "chassis": "c0",
                "queue_len": 1,
            },
        ]

    def answer(self, rid=0, t=1.0):
        return {
            "v": 1,
            "type": "fleet_answer",
            "t": t,
            "request_id": rid,
            "status": "ok",
            "attempts": 1,
        }

    def test_clean_stream_passes(self):
        assert check_fleet_events(self.base() + [self.answer()]) == []

    def test_lost_request_detected(self):
        problems = check_fleet_events(self.base())
        assert any("never reached" in p for p in problems)

    def test_duplicate_terminal_detected(self):
        events = self.base() + [self.answer(), self.answer(t=2.0)]
        problems = check_fleet_events(events)
        assert any("2 terminal events" in p for p in problems)

    def test_orphan_terminal_detected(self):
        events = self.base() + [
            self.answer(),
            self.answer(rid=7, t=2.0),
        ]
        problems = check_fleet_events(events)
        assert any("without a" in p for p in problems)

    def test_queue_overflow_detected(self):
        events = self.base() + [self.answer()]
        events[1]["queue_len"] = 3  # max_queue is 2
        problems = check_fleet_events(events)
        assert any("exceeds" in p for p in problems)

    def test_staleness_bound_violation_detected(self):
        events = self.base() + [
            {
                "v": 1,
                "type": "fleet_degraded",
                "t": 0.5,
                "request_id": 0,
                "chassis": "c0",
                "staleness_s": 99.0,
            },
            self.answer(),
        ]
        problems = check_fleet_events(events)
        assert any("exceeds bound" in p for p in problems)

    def test_illegal_transition_detected(self):
        events = self.base() + [
            {
                "v": 1,
                "type": "fleet_worker_state",
                "t": 0.5,
                "worker": "w0",
                "old": "quarantined",
                "new": "healthy",
            },
            self.answer(),
        ]
        problems = check_fleet_events(events)
        assert any("illegal transition" in p for p in problems)

    def test_wrong_old_state_detected(self):
        events = self.base() + [
            {
                "v": 1,
                "type": "fleet_worker_state",
                "t": 0.5,
                "worker": "w0",
                "old": "healthy",  # worker was never marked healthy
                "new": "suspect",
            },
            self.answer(),
        ]
        problems = check_fleet_events(events)
        assert any("claims old state" in p for p in problems)

    def test_non_monotonic_heartbeat_detected(self):
        beat = {
            "v": 1,
            "type": "fleet_heartbeat",
            "t": 0.5,
            "worker": "w0",
            "seq": 3,
        }
        events = self.base() + [beat, dict(beat, t=0.6), self.answer()]
        problems = check_fleet_events(events)
        assert any("does not increase" in p for p in problems)

    def test_seq_reset_allowed_after_restart(self):
        events = self.base() + [
            {
                "v": 1,
                "type": "fleet_heartbeat",
                "t": 0.5,
                "worker": "w0",
                "seq": 3,
            },
            {
                "v": 1,
                "type": "fleet_restart",
                "t": 0.8,
                "worker": "w0",
                "attempt": 1,
                "backoff_s": 0.5,
                "cold": False,
            },
            {
                "v": 1,
                "type": "fleet_heartbeat",
                "t": 1.0,
                "worker": "w0",
                "seq": 0,
            },
            self.answer(t=2.0),
        ]
        assert check_fleet_events(events) == []

    def test_events_after_end_detected(self):
        events = self.base() + [
            self.answer(),
            {"v": 1, "type": "fleet_end", "t": 3.0, "n_answered": 1, "n_shed": 0},
            self.answer(rid=0, t=4.0),
        ]
        problems = check_fleet_events(events)
        assert any("after fleet_end" in p for p in problems)

    def test_time_regression_detected(self):
        events = self.base() + [self.answer(t=1.0)]
        events.append(
            {
                "v": 1,
                "type": "fleet_drop",
                "t": 0.2,
                "request_id": 0,
                "reason": "late_answer",
            }
        )
        problems = check_fleet_events(events)
        assert any("backwards" in p for p in problems)

    def test_non_fleet_events_ignored(self):
        events = [{"v": 1, "type": "sweep_start", "n_points": 3}]
        assert check_fleet_events(events) == []
        assert not has_fleet_events(events)
        assert has_fleet_events(self.base())

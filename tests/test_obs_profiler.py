"""The step profiler: accounting model, serialisation, engine wiring."""

from types import SimpleNamespace

import pytest

from repro.errors import ObservabilityError
from repro.obs.profiler import ComponentProfile, RunProfile, StepProfiler
from repro.sim.engine import Engine


class _FakeClock:
    """A deterministic monotonic clock: +1.0 s per reading."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        self.now += 1.0
        return self.now


class _NullComponent:
    def on_run_start(self, ctx):
        pass

    def on_step(self, ctx):
        pass

    def on_run_end(self, ctx):
        pass


def _fake_ctx(n_steps):
    return SimpleNamespace(
        n_steps=n_steps,
        dt=0.001,
        warmup_s=0.0,
        state=SimpleNamespace(time_s=0.0),
        result=SimpleNamespace(profile=None),
        step=0,
        time_s=0.0,
        in_window=False,
    )


# -- StepProfiler lifecycle ------------------------------------------------


def test_profile_before_bind_raises():
    with pytest.raises(ObservabilityError, match="never attached"):
        StepProfiler().profile()


def test_bind_zeroes_accounting():
    profiler = StepProfiler(clock=_FakeClock())
    components = [_NullComponent(), _NullComponent()]
    profiler.bind(components)
    profiler.totals_s[0] = 3.0
    profiler.calls[1] = 7
    profiler.engine_elapsed_s = 9.0
    profiler.bind(components)
    assert profiler.totals_s == [0.0, 0.0]
    assert profiler.calls == [0, 0]
    assert profiler.engine_elapsed_s == 0.0


def test_reset_unbinds():
    profiler = StepProfiler()
    profiler.bind([_NullComponent()])
    profiler.reset()
    with pytest.raises(ObservabilityError):
        profiler.profile()


# -- exact accounting with a deterministic clock ---------------------------


def test_engine_accounting_is_exact():
    """With a +1 s/reading clock, chained timestamps attribute exactly
    ``n_steps + 2`` seconds to every component (one per hook call)."""
    n_steps, n_components = 5, 3
    profiler = StepProfiler(clock=_FakeClock())
    components = [_NullComponent() for _ in range(n_components)]
    ctx = _fake_ctx(n_steps)
    Engine(components, profiler=profiler).run(ctx)
    profile = ctx.result.profile
    assert isinstance(profile, RunProfile)
    assert profile.n_steps == n_steps
    assert [c.name for c in profile.components] == [
        "_NullComponent"
    ] * n_components
    for entry in profile.components:
        assert entry.calls == n_steps + 2
        assert entry.total_s == float(n_steps + 2)
    # The engine's own loop overhead (its extra clock reads) stays in
    # elapsed-but-unattributed time, so the sum bound is strict here.
    assert profile.total_component_s < profile.engine_elapsed_s


def test_unprofiled_engine_attaches_no_profile():
    ctx = _fake_ctx(3)
    Engine([_NullComponent()]).run(ctx)
    assert ctx.result.profile is None


# -- RunProfile ------------------------------------------------------------


def _profile():
    return RunProfile(
        engine_elapsed_s=2.0,
        n_steps=100,
        components=(
            ComponentProfile(name="Placer", calls=102, total_s=0.5),
            ComponentProfile(name="ThermalUpdater", calls=102, total_s=1.0),
        ),
    )


def test_round_trip_through_dict():
    profile = _profile()
    assert RunProfile.from_dict(profile.to_dict()) == profile


def test_from_dict_rejects_malformed():
    with pytest.raises(ObservabilityError, match="malformed profile"):
        RunProfile.from_dict({"engine_elapsed_s": 1.0})
    with pytest.raises(ObservabilityError, match="malformed profile"):
        RunProfile.from_dict(
            {
                "engine_elapsed_s": 1.0,
                "n_steps": 1,
                "components": [{"name": "X"}],
            }
        )


def test_share_and_mean():
    profile = _profile()
    assert profile.total_component_s == pytest.approx(1.5)
    assert profile.share(profile.components[1]) == pytest.approx(0.5)
    assert profile.components[0].mean_us == pytest.approx(
        0.5 / 102 * 1e6
    )


def test_zero_call_and_zero_elapsed_edges():
    entry = ComponentProfile(name="X", calls=0, total_s=0.0)
    assert entry.mean_us == 0.0
    empty = RunProfile(engine_elapsed_s=0.0, n_steps=0, components=(entry,))
    assert empty.share(entry) == 0.0
    assert "(engine loop)" in empty.render()  # no division by zero


def test_render_contains_components_and_loop_row():
    text = _profile().render()
    assert "Placer" in text
    assert "ThermalUpdater" in text
    assert "(engine loop)" in text
    assert "50.0%" in text  # ThermalUpdater's share of 2.0 s


# -- named sub-component buckets -------------------------------------------


def _bucketed_profile():
    return RunProfile(
        engine_elapsed_s=2.0,
        n_steps=100,
        components=(
            ComponentProfile(name="Placer", calls=102, total_s=0.5),
        ),
        buckets=(
            ComponentProfile(name="place:CP", calls=40, total_s=0.25),
        ),
    )


def test_bucket_round_trip_through_dict():
    profile = _bucketed_profile()
    data = profile.to_dict()
    assert data["buckets"] == [
        {"name": "place:CP", "calls": 40, "total_s": 0.25}
    ]
    assert RunProfile.from_dict(data) == profile


def test_from_dict_accepts_pre_bucket_digests():
    """Manifests written before buckets existed still load."""
    data = _profile().to_dict()
    del data["buckets"]
    assert RunProfile.from_dict(data).buckets == ()


def test_buckets_do_not_count_as_component_time():
    profile = _bucketed_profile()
    assert profile.total_component_s == pytest.approx(0.5)


def test_render_indents_bucket_rows_after_loop_row():
    text = _bucketed_profile().render()
    assert "  place:CP" in text
    assert text.index("place:CP") > text.index("(engine loop)")


def test_profiled_run_exposes_placement_bucket(small_sut):
    """An end-to-end profiled run reports the scheduler's scoring time
    under ``place:<policy>``, bounded by the Placer's own total."""
    from repro.config.presets import smoke
    from repro.core import get_scheduler
    from repro.sim.engine import Simulation
    from repro.workloads.arrivals import ArrivalProcess
    from repro.workloads.benchmark import BenchmarkSet

    params = smoke(seed=6)
    arrivals = ArrivalProcess(
        benchmark_set=BenchmarkSet.COMPUTATION,
        load=0.6,
        n_sockets=small_sut.n_sockets,
        seed=params.seed,
        duration_scale=params.duration_scale,
    )
    jobs = arrivals.generate(params.sim_time_s)
    result = Simulation(
        small_sut, params, get_scheduler("CP"), profile=True
    ).run(jobs)
    profile = result.profile
    (bucket,) = [
        entry for entry in profile.buckets if entry.name == "place:CP"
    ]
    assert 0 < bucket.calls <= len(jobs)
    (placer,) = [
        entry for entry in profile.components if entry.name == "Placer"
    ]
    assert 0.0 <= bucket.total_s <= placer.total_s

"""Tests for the crash-resilient sweep harness.

Covers the bounded LRU sweep cache, on-disk checkpointing (atomic
writes, corruption tolerance, bit-identical resume after a hard kill),
and the pool recovery ladder: transient worker failures retry with
backoff, worker deaths rebuild the pool, deterministic errors
propagate immediately, and hung points raise after their timeout.
"""

import os
import pickle
import signal
import subprocess
import sys
import time

import pytest

from repro.config.presets import smoke
from repro.errors import ConfigurationError, SimulationError
from repro.sim import parallel
from repro.sim.checkpoint import CHECKPOINT_SUFFIX, SweepCheckpoint
from repro.sim.fingerprint import result_fingerprint
from repro.sim.parallel import (
    SweepCache,
    _fork_available,
    config_key,
    execute_sweep,
)
from repro.sim.results import SimulationResult
from repro.workloads.benchmark import BenchmarkSet

POINTS = [
    ("CF", BenchmarkSet.COMPUTATION, 0.3),
    ("HF", BenchmarkSet.COMPUTATION, 0.3),
    ("CF", BenchmarkSet.COMPUTATION, 0.7),
    ("CP", BenchmarkSet.COMPUTATION, 0.7),
]

needs_fork = pytest.mark.skipif(
    not _fork_available(), reason="platform cannot fork"
)


def _fingerprints(results):
    return [result_fingerprint(r) for r in results]


class TestLRUCache:
    def _result(self, small_sut):
        return SimulationResult("stub", smoke(), small_sut)

    def test_evicts_least_recently_used(self, small_sut):
        cache = SweepCache(max_entries=2)
        stub = self._result(small_sut)
        cache.put("a", stub)
        cache.put("b", stub)
        cache.put("c", stub)
        assert cache.keys() == ["b", "c"]
        assert cache.evictions == 1
        assert len(cache) == 2
        assert cache.get("a") is None

    def test_hits_refresh_recency(self, small_sut):
        cache = SweepCache(max_entries=2)
        stub = self._result(small_sut)
        cache.put("a", stub)
        cache.put("b", stub)
        assert cache.get("a") is stub
        cache.put("c", stub)
        # "b" (least recently used) went, not "a".
        assert cache.keys() == ["a", "c"]
        assert cache.get("b") is None

    def test_reinsert_refreshes_recency(self, small_sut):
        cache = SweepCache(max_entries=2)
        stub = self._result(small_sut)
        cache.put("a", stub)
        cache.put("b", stub)
        cache.put("a", stub)
        cache.put("c", stub)
        assert cache.keys() == ["a", "c"]

    def test_counters_and_clear(self, small_sut):
        cache = SweepCache(max_entries=1)
        stub = self._result(small_sut)
        cache.put("a", stub)
        cache.get("a")
        cache.get("missing")
        cache.put("b", stub)
        assert (cache.hits, cache.misses, cache.evictions) == (1, 1, 1)
        cache.clear()
        assert (cache.hits, cache.misses, cache.evictions) == (0, 0, 0)
        assert len(cache) == 0

    def test_env_bound_honoured(self, monkeypatch, small_sut):
        monkeypatch.setenv(parallel.ENV_CACHE_MAX, "3")
        cache = SweepCache()
        assert cache.max_entries == 3
        monkeypatch.setenv(parallel.ENV_CACHE_MAX, "0")
        assert SweepCache().max_entries is None
        monkeypatch.delenv(parallel.ENV_CACHE_MAX)
        assert SweepCache().max_entries == parallel.DEFAULT_CACHE_MAX

    def test_env_bound_validated(self, monkeypatch):
        monkeypatch.setenv(parallel.ENV_CACHE_MAX, "many")
        with pytest.raises(ConfigurationError):
            SweepCache()

    def test_explicit_bound_validated(self):
        with pytest.raises(ConfigurationError):
            SweepCache(max_entries=0)


class TestSweepCheckpoint:
    def test_roundtrip(self, tmp_path, small_sut):
        checkpoint = SweepCheckpoint(tmp_path)
        result = SimulationResult("stub", smoke(), small_sut)
        checkpoint.save("k1", result)
        loaded = checkpoint.load("k1")
        assert loaded.scheduler_name == "stub"
        assert checkpoint.saves == 1 and checkpoint.loads == 1
        assert len(checkpoint) == 1

    def test_missing_key_is_a_miss(self, tmp_path):
        checkpoint = SweepCheckpoint(tmp_path)
        assert checkpoint.load("nothing") is None
        assert checkpoint.loads == 0

    def test_corrupt_file_dropped_and_recomputed(
        self, tmp_path, small_sut
    ):
        checkpoint = SweepCheckpoint(tmp_path)
        path = tmp_path / f"bad{CHECKPOINT_SUFFIX}"
        path.write_bytes(b"truncated garbage")
        assert checkpoint.load("bad") is None
        assert checkpoint.dropped == 1
        assert not path.exists()

    def test_wrong_type_dropped(self, tmp_path):
        checkpoint = SweepCheckpoint(tmp_path)
        path = tmp_path / f"odd{CHECKPOINT_SUFFIX}"
        path.write_bytes(pickle.dumps({"not": "a result"}))
        assert checkpoint.load("odd") is None
        assert checkpoint.dropped == 1

    def test_no_temp_files_left_behind(self, tmp_path, small_sut):
        checkpoint = SweepCheckpoint(tmp_path)
        result = SimulationResult("stub", smoke(), small_sut)
        for i in range(3):
            checkpoint.save(f"k{i}", result)
        leftovers = [
            name
            for name in os.listdir(tmp_path)
            if name.startswith(".tmp-")
        ]
        assert leftovers == []

    def test_file_path_rejected(self, tmp_path):
        file_path = tmp_path / "plain"
        file_path.write_text("x")
        with pytest.raises(SimulationError):
            SweepCheckpoint(file_path)


class TestCheckpointedSweep:
    def test_partial_then_full_resume_is_bit_identical(
        self, tmp_path, small_sut
    ):
        params = smoke(seed=2)
        fresh = execute_sweep(small_sut, params, POINTS)
        checkpoint = SweepCheckpoint(tmp_path)
        execute_sweep(
            small_sut, params, POINTS[:2], checkpoint=checkpoint
        )
        assert len(checkpoint) == 2
        resumed_cp = SweepCheckpoint(tmp_path)
        resumed = execute_sweep(
            small_sut, params, POINTS, checkpoint=resumed_cp
        )
        assert resumed_cp.loads == 2
        assert _fingerprints(resumed) == _fingerprints(fresh)

    def test_sigkill_mid_sweep_resumes_bit_identically(
        self, tmp_path, small_sut
    ):
        """A sweep hard-killed after 2 points resumes from disk.

        The victim process runs the real serial sweep with
        checkpointing and SIGKILLs itself the moment two points are on
        disk — no clean shutdown, no atexit.  The resumed sweep must
        load exactly those two points and reproduce the uninterrupted
        sweep bit-for-bit.
        """
        script = """
import os, signal
from repro.config.presets import smoke
from repro.server.topology import moonshot_sut
from repro.sim import parallel
from repro.sim.checkpoint import CHECKPOINT_SUFFIX, SweepCheckpoint
from repro.sim.parallel import execute_sweep
from repro.workloads.benchmark import BenchmarkSet

directory = os.environ["CKPT_DIR"]
real_run_point = parallel._run_point

def killing_run_point(*args, **kwargs):
    done = sum(
        1 for name in os.listdir(directory)
        if name.endswith(CHECKPOINT_SUFFIX)
    ) if os.path.isdir(directory) else 0
    if done >= 2:
        os.kill(os.getpid(), signal.SIGKILL)
    return real_run_point(*args, **kwargs)

parallel._run_point = killing_run_point
points = [
    ("CF", BenchmarkSet.COMPUTATION, 0.3),
    ("HF", BenchmarkSet.COMPUTATION, 0.3),
    ("CF", BenchmarkSet.COMPUTATION, 0.7),
    ("CP", BenchmarkSet.COMPUTATION, 0.7),
]
execute_sweep(
    moonshot_sut(n_rows=2), smoke(seed=2), points,
    checkpoint=SweepCheckpoint(directory),
)
raise SystemExit("sweep was supposed to be killed")
"""
        env = dict(os.environ, CKPT_DIR=str(tmp_path))
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, ["src", env.get("PYTHONPATH")])
        )
        victim = subprocess.run(
            [sys.executable, "-c", script],
            env=env,
            cwd=os.path.dirname(os.path.dirname(__file__)),
            capture_output=True,
            timeout=300,
        )
        assert victim.returncode == -signal.SIGKILL, victim.stderr
        checkpoint = SweepCheckpoint(tmp_path)
        assert len(checkpoint) == 2

        params = smoke(seed=2)
        resumed = execute_sweep(
            small_sut, params, POINTS, checkpoint=checkpoint
        )
        assert checkpoint.loads == 2
        fresh = execute_sweep(small_sut, params, POINTS)
        assert _fingerprints(resumed) == _fingerprints(fresh)


class _FlakyRunPoint:
    """Fork-inheritable stand-in for ``parallel._run_point``.

    Misbehaves (once, or always) for one victim scheduler, then runs
    the real point.  A marker file records attempts across processes.
    """

    def __init__(self, marker, victim, mode):
        self.marker = marker
        self.victim = victim
        self.mode = mode

    def _attempts(self):
        try:
            with open(self.marker) as handle:
                return len(handle.read())
        except FileNotFoundError:
            return 0

    def __call__(
        self,
        topology,
        params,
        point,
        audit,
        audit_interval,
        fault_schedule=None,
        telemetry=None,
        profile=False,
        point_key=None,
        stepping="fixed",
        multirate=None,
        backend="numpy",
    ):
        from repro.core import get_scheduler
        from repro.sim.runner import run_once

        name, benchmark_set, load = point
        if name == self.victim:
            first = self._attempts() == 0
            with open(self.marker, "a") as handle:
                handle.write("x")
            if self.mode == "hang":
                time.sleep(300)
            if first:
                if self.mode == "kill":
                    os.kill(os.getpid(), signal.SIGKILL)
                if self.mode == "raise":
                    raise RuntimeError("transient worker failure")
            if self.mode == "fatal":
                raise SimulationError("deterministic failure")
        return run_once(
            topology,
            params,
            get_scheduler(name),
            benchmark_set,
            load,
            fault_schedule=fault_schedule,
            telemetry=telemetry,
            profile=profile,
            stepping=stepping,
            multirate=multirate,
            backend=backend,
        )


@needs_fork
class TestPoolRecovery:
    @pytest.fixture
    def serial_fingerprints(self, small_sut):
        return _fingerprints(
            execute_sweep(small_sut, smoke(seed=2), POINTS)
        )

    def _patched(self, monkeypatch, tmp_path, mode):
        flaky = _FlakyRunPoint(str(tmp_path / "marker"), "HF", mode)
        monkeypatch.setattr(parallel, "_run_point", flaky)
        return flaky

    def test_raise_once_point_retries_and_succeeds(
        self, monkeypatch, tmp_path, small_sut, serial_fingerprints
    ):
        flaky = self._patched(monkeypatch, tmp_path, "raise")
        results = execute_sweep(
            small_sut,
            smoke(seed=2),
            POINTS,
            max_workers=2,
            max_retries=2,
            retry_backoff_s=0.01,
        )
        assert flaky._attempts() == 2
        assert _fingerprints(results) == serial_fingerprints

    def test_killed_worker_rebuilds_pool_and_succeeds(
        self, monkeypatch, tmp_path, small_sut, serial_fingerprints
    ):
        flaky = self._patched(monkeypatch, tmp_path, "kill")
        results = execute_sweep(
            small_sut,
            smoke(seed=2),
            POINTS,
            max_workers=2,
            max_retries=2,
            retry_backoff_s=0.01,
        )
        assert flaky._attempts() == 2
        assert _fingerprints(results) == serial_fingerprints

    def test_deterministic_error_propagates_without_retry(
        self, monkeypatch, tmp_path, small_sut
    ):
        flaky = self._patched(monkeypatch, tmp_path, "fatal")
        with pytest.raises(SimulationError, match="deterministic"):
            execute_sweep(
                small_sut,
                smoke(seed=2),
                POINTS,
                max_workers=2,
                max_retries=3,
                retry_backoff_s=0.01,
            )
        assert flaky._attempts() == 1

    def test_hung_point_raises_after_timeout(
        self, monkeypatch, tmp_path, small_sut
    ):
        self._patched(monkeypatch, tmp_path, "hang")
        start = time.monotonic()
        with pytest.raises(SimulationError, match="timeout"):
            execute_sweep(
                small_sut,
                smoke(seed=2),
                POINTS,
                max_workers=2,
                timeout_s=2.0,
                max_retries=1,
                retry_backoff_s=0.01,
            )
        # Two rounds of a 2 s timeout, not 300 s of sleeping.
        assert time.monotonic() - start < 60

    def test_finished_points_checkpoint_despite_crashes(
        self, monkeypatch, tmp_path, small_sut
    ):
        self._patched(monkeypatch, tmp_path, "kill")
        checkpoint = SweepCheckpoint(tmp_path / "ckpt")
        execute_sweep(
            small_sut,
            smoke(seed=2),
            POINTS,
            max_workers=2,
            max_retries=2,
            retry_backoff_s=0.01,
            checkpoint=checkpoint,
        )
        assert len(checkpoint) == len(POINTS)


class TestValidation:
    def test_bad_retry_and_timeout_arguments(self, small_sut):
        params = smoke(seed=2)
        with pytest.raises(ConfigurationError):
            execute_sweep(
                small_sut, params, POINTS[:1], max_retries=-1
            )
        with pytest.raises(ConfigurationError):
            execute_sweep(
                small_sut, params, POINTS[:1], timeout_s=0.0
            )
        with pytest.raises(ConfigurationError):
            execute_sweep(
                small_sut, params, POINTS[:1], retry_backoff_s=-0.1
            )

    def test_fault_schedule_keys_are_distinct(self, small_sut):
        from repro.faults import FaultSchedule, SocketKillFault

        params = smoke(seed=2)
        schedule = FaultSchedule(
            events=(SocketKillFault(socket_id=0, start_s=1.0),)
        )
        plain = config_key(
            small_sut, params, "CF", BenchmarkSet.COMPUTATION, 0.5
        )
        faulted = config_key(
            small_sut,
            params,
            "CF",
            BenchmarkSet.COMPUTATION,
            0.5,
            fault_schedule=schedule,
        )
        empty = config_key(
            small_sut,
            params,
            "CF",
            BenchmarkSet.COMPUTATION,
            0.5,
            fault_schedule=FaultSchedule(),
        )
        assert len({plain, faulted, empty}) == 3

"""Tests for repro.thermal.airflow (Table II and the fan model)."""

import pytest

from repro.errors import ThermalModelError
from repro.thermal.airflow import (
    FanModel,
    airflow_table,
    fans_for_server,
    server_airflow_requirement,
)


class TestTableII:
    EXPECTED = {
        "1U": 18.30,
        "2U": 12.94,
        "Other": 10.03,
        "Blade": 37.05,
        "DensityOpt": 51.74,
    }

    def test_all_rows_match_paper(self):
        for name, power, cfm in airflow_table():
            assert cfm == pytest.approx(self.EXPECTED[name], abs=0.01)

    def test_covers_all_five_classes(self):
        names = [row[0] for row in airflow_table()]
        assert sorted(names) == sorted(self.EXPECTED)

    def test_tighter_budget_needs_more_airflow(self):
        relaxed = server_airflow_requirement(208.0, 25.0)
        tight = server_airflow_requirement(208.0, 15.0)
        assert tight > relaxed


class TestFanModel:
    def test_flow_linear_in_speed(self):
        fan = FanModel(max_cfm=100.0, max_power_w=30.0)
        assert fan.flow_at(0.5) == pytest.approx(50.0)

    def test_power_cubic_in_speed(self):
        fan = FanModel(max_cfm=100.0, max_power_w=40.0)
        assert fan.power_at(0.5) == pytest.approx(5.0)

    def test_speed_for_flow_roundtrip(self):
        fan = FanModel()
        speed = fan.speed_for_flow(60.0)
        assert fan.flow_at(speed) == pytest.approx(60.0)

    def test_over_capacity_rejected(self):
        fan = FanModel(max_cfm=80.0)
        with pytest.raises(ThermalModelError):
            fan.speed_for_flow(81.0)

    def test_speed_out_of_range_rejected(self):
        fan = FanModel()
        with pytest.raises(ThermalModelError):
            fan.flow_at(1.5)
        with pytest.raises(ThermalModelError):
            fan.power_at(-0.1)

    def test_invalid_fan_rejected(self):
        with pytest.raises(ThermalModelError):
            FanModel(max_cfm=0.0)
        with pytest.raises(ThermalModelError):
            FanModel(max_power_w=-1.0)


class TestFansForServer:
    def test_sut_needs_multiple_fans(self):
        # 400 CFM server with 100 CFM fans at 80% utilisation -> 5 fans.
        assert fans_for_server(400.0, FanModel(max_cfm=100.0)) == 5

    def test_zero_flow_still_one_fan(self):
        assert fans_for_server(0.0, FanModel()) == 1

    def test_exact_fit(self):
        fan = FanModel(max_cfm=100.0)
        assert fans_for_server(160.0, fan, utilization=0.8) == 2

    def test_bad_utilization_rejected(self):
        with pytest.raises(ThermalModelError):
            fans_for_server(100.0, FanModel(), utilization=0.0)

    def test_negative_flow_rejected(self):
        with pytest.raises(ThermalModelError):
            fans_for_server(-1.0, FanModel())

"""Tests for the analytical (non-simulation) experiment modules."""

import pytest

from repro.experiments import (
    fig01_survey,
    fig05_entry_temperature,
    fig06_job_durations,
    fig07_power_performance,
    fig09_heatsinks,
    fig10_model_validation,
    table1_catalog,
    table2_airflow,
    table3_parameters,
)
from repro.experiments.common import ExperimentConfig, format_table
from repro.workloads.benchmark import BenchmarkSet


class TestFormatTable:
    def test_renders_all_rows(self):
        text = format_table(["a", "bb"], [[1, 2], [3, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "bb" in lines[0]

    def test_column_alignment(self):
        text = format_table(["x"], [["longvalue"], ["s"]])
        lines = text.splitlines()
        assert len(lines[2]) >= len("longvalue")


class TestExperimentConfig:
    def test_defaults(self):
        config = ExperimentConfig()
        assert config.n_rows >= 1
        assert config.topology().n_sockets == config.n_rows * 12

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_ROWS", "5")
        assert ExperimentConfig().n_rows == 5

    def test_parameters_seeded(self):
        assert ExperimentConfig(seed=7).parameters().seed == 7


class TestFig01:
    def test_shape(self):
        result = fig01_survey.run()
        assert len(result.stats) == 5
        rows = result.rows()
        assert len(rows) == 5


class TestFig05:
    def test_paper_example(self):
        result = fig05_entry_temperature.run()
        delta = result.mean_entry_delta(15.0, 6.0, 1, 5)
        assert delta == pytest.approx(8.8, abs=1.5)

    def test_cov_monotone_in_degree(self):
        result = fig05_entry_temperature.run()
        series = result.series(15.0, 6.0)
        covs = [cov for _, _, cov in series]
        assert covs == sorted(covs)


class TestFig06:
    def test_cov_in_band(self):
        result = fig06_job_durations.run(samples_per_app=2000)
        for stats in result.stats.values():
            assert 0.24 <= stats.cov <= 0.34

    def test_two_orders_of_magnitude_tails(self):
        result = fig06_job_durations.run(samples_per_app=20000)
        for stats in result.stats.values():
            assert stats.max_over_mean > 20


class TestFig07:
    def test_figure7_anchors(self):
        result = fig07_power_performance.run()
        comp = result.power_w[BenchmarkSet.COMPUTATION]
        assert comp[1900] == pytest.approx(18.0)
        stor = result.power_w[BenchmarkSet.STORAGE]
        assert stor[1900] == pytest.approx(10.5)
        perf = result.performance[BenchmarkSet.COMPUTATION]
        assert perf[1100] == pytest.approx(0.65)

    def test_row_count(self):
        result = fig07_power_performance.run()
        assert len(result.rows()) == 3 * 5


class TestFig09:
    def test_spread_in_paper_band(self):
        result = fig09_heatsinks.run()
        low, high = result.spread_range()
        assert low >= 3.5
        assert high <= 7.5

    def test_sink_advantage_bands(self):
        result = fig09_heatsinks.run()
        advantage = result.sink_advantage()
        assert 2.5 <= advantage["low_power"] <= 5.0
        assert 5.5 <= advantage["high_power"] <= 8.5

    def test_peak_correlated_with_power(self):
        result = fig09_heatsinks.run()
        points = result.for_sink("18-fin")
        temps = [p.max_temperature_c for p in points]
        assert temps == sorted(temps)


class TestFig10:
    def test_within_two_degrees(self):
        result = fig10_model_validation.run()
        assert result.max_abs_error_c <= 2.0

    def test_holds_for_both_sinks(self):
        result = fig10_model_validation.run()
        for sink_name in ("18-fin", "30-fin"):
            errors = [
                abs(p.error_c)
                for p in result.points
                if p.sink_name == sink_name
            ]
            assert max(errors) <= 2.0

    def test_covers_all_apps_both_sinks(self):
        result = fig10_model_validation.run()
        assert len(result.points) == 38


class TestTables:
    def test_table1(self):
        result = table1_catalog.run()
        assert len(result.rows()) == 11
        assert result.max_density == pytest.approx(72.0)
        assert result.max_degree == 11

    def test_table2(self):
        result = table2_airflow.run()
        values = {name: cfm for name, _, cfm in result.rows_data}
        assert values["1U"] == pytest.approx(18.30, abs=0.01)
        assert values["DensityOpt"] == pytest.approx(51.74, abs=0.01)

    def test_table3(self):
        result = table3_parameters.run()
        rendered = dict(result.rows_data)
        assert rendered["Temperature limit"] == "95 C"


class TestMains:
    @pytest.mark.parametrize(
        "module",
        [
            fig01_survey,
            fig05_entry_temperature,
            fig07_power_performance,
            table1_catalog,
            table2_airflow,
            table3_parameters,
        ],
    )
    def test_main_prints(self, module, capsys):
        module.main()
        out = capsys.readouterr().out
        assert len(out) > 50

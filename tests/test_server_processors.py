"""Tests for repro.server.processors."""

import pytest

from repro.errors import ConfigurationError
from repro.server.processors import (
    FrequencyLadder,
    OPTERON_X2150,
    ProcessorSpec,
    X2150_LADDER,
)


class TestX2150Ladder:
    def test_states_match_datasheet(self):
        assert X2150_LADDER.states_mhz == (1100, 1300, 1500, 1700, 1900)

    def test_range_endpoints(self):
        assert X2150_LADDER.min_mhz == 1100
        assert X2150_LADDER.max_mhz == 1900

    def test_boost_states(self):
        assert X2150_LADDER.boost_states_mhz == (1700, 1900)

    def test_sustained_not_boost(self):
        assert not X2150_LADDER.is_boost(1500)
        assert X2150_LADDER.is_boost(1700)
        assert X2150_LADDER.is_boost(1900)


class TestFrequencyLadder:
    def test_highest_not_above(self):
        assert X2150_LADDER.highest_not_above(1600) == 1500
        assert X2150_LADDER.highest_not_above(1900) == 1900
        assert X2150_LADDER.highest_not_above(2500) == 1900

    def test_highest_not_above_below_min_falls_back(self):
        assert X2150_LADDER.highest_not_above(500) == 1100

    def test_step_down(self):
        assert X2150_LADDER.step_down(1900) == 1700
        assert X2150_LADDER.step_down(1100) == 1100

    def test_step_up(self):
        assert X2150_LADDER.step_up(1100) == 1300
        assert X2150_LADDER.step_up(1900) == 1900

    def test_step_on_unknown_state_rejected(self):
        with pytest.raises(ConfigurationError):
            X2150_LADDER.step_down(1600)
        with pytest.raises(ConfigurationError):
            X2150_LADDER.step_up(2000)

    def test_unsorted_states_rejected(self):
        with pytest.raises(ConfigurationError):
            FrequencyLadder(states_mhz=(1500, 1100), sustained_mhz=1100)

    def test_duplicate_states_rejected(self):
        with pytest.raises(ConfigurationError):
            FrequencyLadder(
                states_mhz=(1100, 1100, 1500), sustained_mhz=1100
            )

    def test_sustained_must_be_a_state(self):
        with pytest.raises(ConfigurationError):
            FrequencyLadder(states_mhz=(1100, 1500), sustained_mhz=1300)

    def test_empty_ladder_rejected(self):
        with pytest.raises(ConfigurationError):
            FrequencyLadder(states_mhz=(), sustained_mhz=1100)

    def test_single_state_ladder(self):
        ladder = FrequencyLadder(states_mhz=(1000,), sustained_mhz=1000)
        assert ladder.boost_states_mhz == ()
        assert ladder.highest_not_above(900) == 1000


class TestProcessorSpec:
    def test_x2150_tdp(self):
        assert OPTERON_X2150.tdp_w == pytest.approx(22.0)

    def test_x2150_has_ladder(self):
        assert OPTERON_X2150.ladder is X2150_LADDER

    def test_non_positive_tdp_rejected(self):
        with pytest.raises(ConfigurationError):
            ProcessorSpec(name="bad", tdp_w=0.0)

"""Smoke tests for the simulation-backed experiment modules.

Full-size versions run in the benchmark harness; here we exercise the
experiment plumbing (config handling, result containers, row
formatting) on minimal configurations.
"""

import pytest

from repro.experiments import (
    fig03_motivation,
    fig11_existing_schemes,
    fig13_zone_behavior,
    fig14_performance,
    fig15_ed2,
)
from repro.experiments.common import ExperimentConfig
from repro.workloads.benchmark import BenchmarkSet


@pytest.fixture(scope="module")
def tiny_config():
    return ExperimentConfig(
        n_rows=2,
        sim_time_s=6.0,
        warmup_s=2.0,
        loads=(0.4,),
        benchmark_sets=(BenchmarkSet.STORAGE,),
    )


class TestFig03:
    def test_runs_and_reports(self):
        result = fig03_motivation.run(
            load=0.5, sim_time_s=8.0, warmup_s=3.0
        )
        assert set(result.performance) == {
            "uncoupled/CF",
            "uncoupled/HF",
            "coupled/CF",
            "coupled/HF",
        }
        assert result.cf_advantage_uncoupled > 0.8
        assert result.hf_advantage_coupled > 0.8


class TestFig11:
    def test_structure(self, tiny_config):
        result = fig11_existing_schemes.run(
            tiny_config, loads=(0.4,), schemes=("CF", "HF")
        )
        assert result.expansion_vs_cf[("CF", 0.4)] == 1.0
        assert ("HF", 0.4) in result.expansion_vs_cf
        assert len(result.rows()) == 2

    def test_best_at(self, tiny_config):
        result = fig11_existing_schemes.run(
            tiny_config, loads=(0.4,), schemes=("CF", "HF")
        )
        assert result.best_at(0.4) in ("CF", "HF")


class TestFig13:
    def test_reports_all_cells(self, tiny_config):
        result = fig13_zone_behavior.run(
            tiny_config, loads=(0.4,), schemes=("CF", "HF")
        )
        assert set(result.reports) == {("CF", 0.4), ("HF", 0.4)}
        rows = result.rows(0.4)
        assert len(rows) == 2
        for row in rows:
            front_work, back_work = row[4], row[5]
            assert front_work + back_work == pytest.approx(1.0, abs=0.01)


class TestFig14:
    def test_structure_and_helpers(self, tiny_config):
        result = fig14_performance.run(
            tiny_config, schemes=("CF", "CP")
        )
        key = ("CP", BenchmarkSet.STORAGE, 0.4)
        assert key in result.performance_vs_cf
        assert result.average_gain("CP", BenchmarkSet.STORAGE) > 0.9
        assert result.peak_gain("CF", BenchmarkSet.STORAGE) == 1.0
        assert len(result.rows(BenchmarkSet.STORAGE)) == 2


class TestFig15:
    def test_structure_and_helpers(self, tiny_config):
        result = fig15_ed2.run(tiny_config, schemes=("CF", "CP"))
        assert result.ed2_vs_cf[
            ("CF", BenchmarkSet.STORAGE, 0.4)
        ] == 1.0
        assert result.best_ed2(BenchmarkSet.STORAGE) > 0.5
        assert len(result.rows(BenchmarkSet.STORAGE)) == 2

"""Tests for repro.analysis.survey (Figure 1)."""

import pytest

from repro.analysis.survey import (
    ServerClass,
    ServerRecord,
    class_statistics,
    generate_population,
)
from repro.errors import ConfigurationError


class TestPopulation:
    def test_410_designs(self):
        assert len(generate_population()) == 410

    def test_400_rack_and_blade_designs(self):
        population = generate_population()
        classic = [
            r
            for r in population
            if r.server_class != ServerClass.DENSITY_OPT
        ]
        assert len(classic) == 400

    def test_ten_density_optimized_designs(self):
        population = generate_population()
        dense = [
            r
            for r in population
            if r.server_class == ServerClass.DENSITY_OPT
        ]
        assert len(dense) == 10

    def test_years_within_survey_range(self):
        for record in generate_population():
            assert 2007 <= record.year <= 2016

    def test_deterministic_given_seed(self):
        a = generate_population(seed=1)
        b = generate_population(seed=1)
        assert [r.power_per_u_w for r in a] == [
            r.power_per_u_w for r in b
        ]

    def test_different_seeds_differ(self):
        a = generate_population(seed=1)
        b = generate_population(seed=2)
        assert [r.power_per_u_w for r in a] != [
            r.power_per_u_w for r in b
        ]

    def test_positive_densities(self):
        for record in generate_population():
            assert record.power_per_u_w > 0
            assert record.sockets_per_u > 0


class TestClassStatistics:
    EXPECTED_POWER = {
        ServerClass.U1: 208.0,
        ServerClass.U2: 147.0,
        ServerClass.OTHER: 114.0,
        ServerClass.BLADE: 421.0,
        ServerClass.DENSITY_OPT: 588.0,
    }
    EXPECTED_SOCKETS = {
        ServerClass.U1: 1.79,
        ServerClass.U2: 1.15,
        ServerClass.OTHER: 0.78,
        ServerClass.BLADE: 3.47,
        ServerClass.DENSITY_OPT: 25.0,
    }

    def test_power_density_means_match_paper(self):
        stats = class_statistics(generate_population())
        for server_class, expected in self.EXPECTED_POWER.items():
            assert stats[
                server_class
            ].mean_power_per_u_w == pytest.approx(expected, rel=1e-6)

    def test_socket_density_means_match_paper(self):
        stats = class_statistics(generate_population())
        for server_class, expected in self.EXPECTED_SOCKETS.items():
            assert stats[
                server_class
            ].mean_sockets_per_u == pytest.approx(expected, rel=1e-6)

    def test_density_optimized_is_the_extreme(self):
        """~50% more power and ~6x sockets over blades (Section I)."""
        stats = class_statistics(generate_population())
        blade = stats[ServerClass.BLADE]
        dense = stats[ServerClass.DENSITY_OPT]
        power_step = dense.mean_power_per_u_w / blade.mean_power_per_u_w
        socket_step = dense.mean_sockets_per_u / blade.mean_sockets_per_u
        assert power_step == pytest.approx(1.40, abs=0.05)
        assert socket_step == pytest.approx(7.2, abs=1.0)

    def test_ordering_of_classes(self):
        stats = class_statistics(generate_population())
        power = [
            stats[c].mean_power_per_u_w
            for c in (
                ServerClass.OTHER,
                ServerClass.U2,
                ServerClass.U1,
                ServerClass.BLADE,
                ServerClass.DENSITY_OPT,
            )
        ]
        assert power == sorted(power)

    def test_empty_population_rejected(self):
        with pytest.raises(ConfigurationError):
            class_statistics([])

    def test_invalid_record_rejected(self):
        with pytest.raises(ConfigurationError):
            ServerRecord(
                name="bad",
                server_class=ServerClass.U1,
                year=2010,
                power_per_u_w=-5.0,
                sockets_per_u=1.0,
            )

"""Provenance manifests: round-trips, guards, and true reproduction."""

import dataclasses
import json

import pytest

from repro.config.presets import smoke
from repro.core import get_scheduler
from repro.errors import ObservabilityError
from repro.faults.spec import parse_fault_spec
from repro.obs.manifest import (
    RunManifest,
    manifest_for_point,
    rerun_from_manifest,
    verify_manifest,
)
from repro.server.topology import moonshot_sut
from repro.sim.fingerprint import result_fingerprint
from repro.sim.runner import run_once
from repro.thermal import FIN_18
from repro.workloads.benchmark import BenchmarkSet


@pytest.fixture
def manifest(small_sut):
    return manifest_for_point(
        small_sut, smoke(seed=4), "CF", BenchmarkSet.COMPUTATION, 0.5
    )


# -- (de)serialisation -----------------------------------------------------


def test_round_trip_through_dict(manifest):
    assert RunManifest.from_dict(manifest.to_dict()) == manifest


def test_save_and_read(tmp_path, manifest):
    path = manifest.save(tmp_path / "run.manifest.json")
    assert RunManifest.read(path) == manifest


def test_unknown_fields_rejected(manifest):
    data = manifest.to_dict()
    data["surprise"] = 1
    with pytest.raises(ObservabilityError, match="unknown fields"):
        RunManifest.from_dict(data)


def test_read_rejects_invalid_json(tmp_path):
    path = tmp_path / "bad.manifest.json"
    path.write_text("{not json", encoding="utf-8")
    with pytest.raises(ObservabilityError, match="not valid JSON"):
        RunManifest.read(path)


def test_read_missing_file_raises(tmp_path):
    with pytest.raises(ObservabilityError, match="cannot read"):
        RunManifest.read(tmp_path / "absent.manifest.json")


def test_version_guard(manifest):
    assert manifest.version_compatible
    stale = dataclasses.replace(manifest, package_version="0.0.0-other")
    assert not stale.version_compatible


# -- recipe fidelity -------------------------------------------------------


def test_topology_recipe_proven_reconstructible(manifest, small_sut):
    topology = manifest.topology
    assert topology["reconstructible"] is True
    assert topology["n_sockets"] == small_sut.n_sockets
    assert topology["processor"] == small_sut.processor.name


def test_uniform_sink_topology_marked_non_reconstructible():
    """An ablation topology the scalar recipe cannot express must say
    so, and replaying it must fail cleanly rather than silently build
    the wrong machine."""
    exotic = moonshot_sut(n_rows=2, uniform_sink=FIN_18)
    manifest = manifest_for_point(
        exotic, smoke(seed=4), "CF", BenchmarkSet.COMPUTATION, 0.5
    )
    assert manifest.topology["reconstructible"] is False
    with pytest.raises(ObservabilityError, match="not reconstructible"):
        rerun_from_manifest(manifest)


def test_fault_schedule_round_trips(small_sut):
    schedule = parse_fault_spec(
        "fan:row=0,scale=0.5,start=2;kill:socket=3,start=4",
        topology=small_sut,
        horizon_s=10.0,
    )
    manifest = manifest_for_point(
        small_sut,
        smoke(seed=4),
        "CF",
        BenchmarkSet.COMPUTATION,
        0.5,
        fault_schedule=schedule,
    )
    assert manifest.fault["fingerprint"] == schedule.fingerprint()
    # A fingerprint survives the JSON round-trip...
    rebuilt = RunManifest.from_dict(
        json.loads(json.dumps(manifest.to_dict()))
    )
    assert rebuilt.fault == manifest.fault


def test_tampered_fault_payload_rejected(small_sut):
    schedule = parse_fault_spec(
        "kill:socket=3,start=4", topology=small_sut, horizon_s=10.0
    )
    manifest = manifest_for_point(
        small_sut,
        smoke(seed=4),
        "CF",
        BenchmarkSet.COMPUTATION,
        0.5,
        fault_schedule=schedule,
    )
    data = manifest.to_dict()
    data["fault"]["events"][0]["start_s"] = 5.0  # edit the schedule...
    tampered = RunManifest.from_dict(data)  # ...but not the fingerprint
    with pytest.raises(ObservabilityError, match="fingerprint"):
        rerun_from_manifest(tampered)


# -- the reproduction contract ---------------------------------------------


def test_manifest_reproduces_identical_fingerprint(small_sut):
    """The tentpole promise: a result's manifest alone re-runs the
    simulation to a bit-identical fingerprint."""
    params = smoke(seed=4)
    result = run_once(
        small_sut, params, get_scheduler("CP"), BenchmarkSet.COMPUTATION, 0.6
    )
    manifest = manifest_for_point(
        small_sut,
        params,
        "CP",
        BenchmarkSet.COMPUTATION,
        0.6,
        result=result,
    )
    assert manifest.result_fingerprint == result_fingerprint(result)
    assert verify_manifest(manifest)


def test_verify_without_fingerprint_raises(manifest):
    with pytest.raises(ObservabilityError, match="no result fingerprint"):
        verify_manifest(manifest)

"""Tests for repro.core.prediction."""

import numpy as np
import pytest

from repro.core.prediction import (
    predict_downwind_slowdown,
    predict_job_frequency,
    predicted_job_power,
)
from repro.sim.state import SimulationState
from repro.workloads.job import Job
from repro.workloads.pcmark import PCMARK_APPS, app_by_name


@pytest.fixture
def state(small_sut, smoke_params):
    return SimulationState(small_sut, smoke_params)


def make_job(app_name="video-transcode"):
    return Job(
        job_id=0, app=app_by_name(app_name), arrival_s=0.0, work_ms=5.0
    )


class TestPredictJobFrequency:
    def test_cold_sockets_predict_boost(self, state):
        freq = predict_job_frequency(
            state, np.array([0, 1, 2]), make_job()
        )
        assert (freq == 1900.0).all()

    def test_warm_sink_predicts_sustained(self, state):
        state.thermal.sink_c[4] = 60.0
        state.thermal.chip_c[4] = 62.0
        freq = predict_job_frequency(state, np.array([4]), make_job())
        assert freq[0] == 1500.0

    def test_hot_sink_predicts_throttle(self, state):
        state.thermal.sink_c[4] = 93.0
        state.thermal.chip_c[4] = 94.0
        freq = predict_job_frequency(state, np.array([4]), make_job())
        assert freq[0] < 1500.0

    def test_sink_override(self, state):
        freq_cold = predict_job_frequency(
            state, np.array([0]), make_job(), sink_c=np.array([20.0])
        )
        freq_hot = predict_job_frequency(
            state, np.array([0]), make_job(), sink_c=np.array([90.0])
        )
        assert freq_cold[0] > freq_hot[0]

    def test_storage_job_predicts_higher_than_computation(self, state):
        """Lower power jobs fit under the limit at hotter sockets."""
        state.thermal.sink_c[0] = 91.0
        state.thermal.chip_c[0] = 92.0
        comp = predict_job_frequency(
            state, np.array([0]), make_job("video-transcode")
        )
        stor = predict_job_frequency(
            state, np.array([0]), make_job("file-copy")
        )
        assert stor[0] >= comp[0]


class TestPredictedJobPower:
    def test_power_grows_with_frequency(self, state):
        job = make_job()
        low = predicted_job_power(state, 0, job, 1100.0)
        high = predicted_job_power(state, 0, job, 1900.0)
        assert high > low

    def test_includes_leakage(self, state):
        job = make_job()
        state.thermal.chip_c[0] = 90.0
        hot = predicted_job_power(state, 0, job, 1500.0)
        state.thermal.chip_c[0] = 30.0
        cold = predicted_job_power(state, 0, job, 1500.0)
        assert hot > cold


class TestPredictDownwindSlowdown:
    def test_no_downwind_no_slowdown(self, state):
        last = int(
            np.nonzero(
                state.topology.chain_pos_array
                == state.topology.chain_length - 1
            )[0][0]
        )
        assert predict_downwind_slowdown(state, last, 18.0) == 0.0

    def test_idle_downwind_no_slowdown(self, state):
        assert predict_downwind_slowdown(state, 0, 18.0) == 0.0

    def test_busy_marginal_downwind_slows(self, state):
        topo = state.topology
        lane0 = [
            s.socket_id
            for s in topo.sites
            if s.row == 0 and s.lane == 0
        ]
        victim = lane0[1]
        state.assign(
            Job(
                job_id=1,
                app=PCMARK_APPS[0],
                arrival_s=0.0,
                work_ms=100.0,
            ),
            victim,
        )
        state.busy_ema[victim] = 1.0
        state.ambient_c[victim] = 66.0  # near a steady-state threshold
        slow = predict_downwind_slowdown(state, lane0[0], 18.0)
        assert slow > 0.0

    def test_slowdown_scaled_by_utilisation(self, state):
        topo = state.topology
        lane0 = [
            s.socket_id
            for s in topo.sites
            if s.row == 0 and s.lane == 0
        ]
        victim = lane0[1]
        state.assign(
            Job(
                job_id=1,
                app=PCMARK_APPS[0],
                arrival_s=0.0,
                work_ms=100.0,
            ),
            victim,
        )
        state.ambient_c[victim] = 66.0
        state.busy_ema[victim] = 1.0
        full = predict_downwind_slowdown(state, lane0[0], 18.0)
        state.busy_ema[victim] = 0.25
        quarter = predict_downwind_slowdown(state, lane0[0], 18.0)
        assert quarter == pytest.approx(0.25 * full)

    def test_more_power_more_slowdown(self, state):
        topo = state.topology
        lane0 = [
            s.socket_id
            for s in topo.sites
            if s.row == 0 and s.lane == 0
        ]
        for victim in lane0[1:]:
            state.assign(
                Job(
                    job_id=victim,
                    app=PCMARK_APPS[0],
                    arrival_s=0.0,
                    work_ms=100.0,
                ),
                victim,
            )
            state.busy_ema[victim] = 1.0
            state.ambient_c[victim] = 55.0 + 3 * victim % 10
        small = predict_downwind_slowdown(state, lane0[0], 8.0)
        large = predict_downwind_slowdown(state, lane0[0], 22.0)
        assert large >= small

"""Tests for repro.thermal.analytical (the Figure 5 model)."""

import numpy as np
import pytest

from repro.errors import ThermalModelError
from repro.thermal.analytical import (
    EntryTemperatureModel,
    entry_temperature_profile,
    entry_temperature_statistics,
)


class TestEntryTemperatureProfile:
    def test_upstream_socket_sees_inlet(self):
        profile = entry_temperature_profile(5, 15.0, 6.0)
        assert profile[0] == pytest.approx(18.0)

    def test_linear_staircase(self):
        profile = entry_temperature_profile(3, 10.0, 5.0, inlet_c=20.0)
        rises = np.diff(profile)
        np.testing.assert_allclose(rises, rises[0])
        assert rises[0] == pytest.approx(1.76 * 10.0 / 5.0)

    def test_length_is_degree_plus_one(self):
        assert entry_temperature_profile(7, 10.0, 6.0).size == 8

    def test_degree_zero_single_socket(self):
        profile = entry_temperature_profile(0, 100.0, 6.0)
        assert profile.size == 1
        assert profile[0] == pytest.approx(18.0)

    def test_mixing_factor_scales_rise(self):
        base = entry_temperature_profile(2, 10.0, 6.0)
        mixed = entry_temperature_profile(2, 10.0, 6.0, mixing_factor=2.0)
        assert (mixed[1] - 18.0) == pytest.approx(2 * (base[1] - 18.0))

    def test_negative_degree_rejected(self):
        with pytest.raises(ThermalModelError):
            entry_temperature_profile(-1, 10.0, 6.0)

    def test_zero_airflow_rejected(self):
        with pytest.raises(ThermalModelError):
            entry_temperature_profile(2, 10.0, 0.0)


class TestEntryTemperatureStatistics:
    def test_mean_rises_with_degree(self):
        means = [
            entry_temperature_statistics(d, 15.0, 6.0).mean_c
            for d in (1, 3, 5, 11)
        ]
        assert means == sorted(means)
        assert means[0] < means[-1]

    def test_cov_rises_with_degree(self):
        covs = [
            entry_temperature_statistics(d, 15.0, 6.0).cov
            for d in (1, 3, 5, 11)
        ]
        assert covs == sorted(covs)

    def test_paper_example_degree5_vs_degree1(self):
        """15 W at 6 CFM: ~10 degC mean difference, degree 5 vs 1."""
        d5 = entry_temperature_statistics(5, 15.0, 6.0).mean_c
        d1 = entry_temperature_statistics(1, 15.0, 6.0).mean_c
        assert d5 - d1 == pytest.approx(8.8, abs=1.0)

    def test_higher_power_higher_mean(self):
        low = entry_temperature_statistics(5, 5.0, 6.0).mean_c
        high = entry_temperature_statistics(5, 140.0, 6.0).mean_c
        assert high > low

    def test_more_airflow_lower_mean(self):
        starved = entry_temperature_statistics(5, 15.0, 6.0).mean_c
        generous = entry_temperature_statistics(5, 15.0, 24.0).mean_c
        assert generous < starved

    def test_max_is_most_downstream(self):
        stats = entry_temperature_statistics(5, 15.0, 6.0)
        profile = entry_temperature_profile(5, 15.0, 6.0)
        assert stats.max_c == pytest.approx(profile[-1])

    def test_mean_rise_excludes_inlet(self):
        stats = entry_temperature_statistics(4, 10.0, 6.0)
        assert stats.mean_rise_c == pytest.approx(stats.mean_c - 18.0)


class TestSweep:
    def test_sweep_covers_full_grid(self):
        model = EntryTemperatureModel()
        rows = model.sweep([1, 5], [15.0], [6.0, 12.0])
        assert len(rows) == 4
        keys = {(r["degree"], r["airflow_cfm"]) for r in rows}
        assert keys == {(1, 6.0), (1, 12.0), (5, 6.0), (5, 12.0)}

    def test_sweep_row_fields(self):
        rows = EntryTemperatureModel().sweep([3], [10.0], [6.0])
        row = rows[0]
        for field in (
            "degree",
            "power_w",
            "airflow_cfm",
            "mean_entry_c",
            "cov",
            "max_entry_c",
        ):
            assert field in row

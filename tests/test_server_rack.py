"""Tests for the rack-level thermal model."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.server.rack import ChassisSlot, RackModel, moonshot_rack


class TestChassisSlot:
    def test_exhaust_rise_first_law(self):
        slot = ChassisSlot(name="c", airflow_cfm=400.0)
        # 1.76 * 3600 / 400 = 15.84
        assert slot.exhaust_rise_c(3600.0) == pytest.approx(15.84)

    def test_zero_power_zero_rise(self):
        slot = ChassisSlot(name="c")
        assert slot.exhaust_rise_c(0.0) == 0.0

    def test_invalid_inputs_rejected(self):
        with pytest.raises(TopologyError):
            ChassisSlot(name="c", airflow_cfm=0.0)
        with pytest.raises(TopologyError):
            ChassisSlot(name="c").exhaust_rise_c(-1.0)


class TestRackModel:
    def test_bottom_chassis_breathes_cold_aisle(self):
        rack = moonshot_rack(n_chassis=4)
        inlets = rack.chassis_inlets([3600.0] * 4)
        assert inlets[0] == pytest.approx(18.0)

    def test_inlets_monotone_under_uniform_load(self):
        rack = moonshot_rack(n_chassis=6)
        inlets = rack.chassis_inlets([2000.0] * 6)
        assert (np.diff(inlets) >= -1e-9).all()

    def test_no_recirculation_means_uniform_inlets(self):
        rack = moonshot_rack(n_chassis=4, recirculation=0.0)
        inlets = rack.chassis_inlets([3600.0] * 4)
        np.testing.assert_allclose(inlets, 18.0)

    def test_idle_rack_at_room_temperature(self):
        rack = moonshot_rack(n_chassis=4)
        inlets = rack.chassis_inlets([0.0] * 4)
        np.testing.assert_allclose(inlets, 18.0)

    def test_recirculation_compounds_up_the_rack(self):
        rack = moonshot_rack(n_chassis=8, recirculation=0.3)
        inlets = rack.chassis_inlets([3600.0] * 8)
        assert inlets[-1] > inlets[1]

    def test_wrong_power_length_rejected(self):
        rack = moonshot_rack(n_chassis=4)
        with pytest.raises(TopologyError):
            rack.chassis_inlets([100.0] * 3)

    def test_invalid_recirculation_rejected(self):
        with pytest.raises(TopologyError):
            moonshot_rack(recirculation=1.0)

    def test_empty_rack_rejected(self):
        with pytest.raises(TopologyError):
            RackModel([])


class TestLoadAssignment:
    def test_top_down_fills_top_first(self):
        rack = moonshot_rack(n_chassis=4)
        loads = rack.assign_load(1.5, policy="top-down")
        assert loads == [0.0, 0.0, 0.5, 1.0]

    def test_bottom_up_fills_bottom_first(self):
        rack = moonshot_rack(n_chassis=4)
        loads = rack.assign_load(1.5, policy="bottom-up")
        assert loads == [1.0, 0.5, 0.0, 0.0]

    def test_uniform(self):
        rack = moonshot_rack(n_chassis=4)
        loads = rack.assign_load(2.0, policy="uniform")
        assert loads == [0.5] * 4

    def test_load_conserved(self):
        rack = moonshot_rack(n_chassis=5)
        for policy in ("top-down", "bottom-up", "uniform"):
            assert sum(rack.assign_load(2.7, policy)) == pytest.approx(
                2.7
            )

    def test_unknown_policy_rejected(self):
        rack = moonshot_rack()
        with pytest.raises(TopologyError):
            rack.assign_load(1.0, policy="sideways")

    def test_out_of_range_load_rejected(self):
        rack = moonshot_rack(n_chassis=2)
        with pytest.raises(TopologyError):
            rack.assign_load(3.0)


class TestRackLevelThermalScheduling:
    def test_concentration_is_translation_invariant(self):
        """A contiguous loaded block heats itself the same wherever it
        sits: among the *loaded* chassis, top-down and bottom-up
        concentration tie (unlike the intra-chassis case, where idle
        heat sinks sit downwind of the load)."""
        rack = moonshot_rack(n_chassis=8, recirculation=0.25)
        for load in (2.0, 4.0, 6.0):
            worst = {}
            for policy in ("top-down", "bottom-up"):
                loads = rack.assign_load(load, policy)
                inlets = rack.inlets_for_load(load, policy)
                worst[policy] = max(
                    inlet
                    for inlet, l in zip(inlets, loads)
                    if l > 0
                )
            assert worst["top-down"] == pytest.approx(
                worst["bottom-up"], abs=0.2
            )

    def test_uniform_spreading_minimises_worst_inlet(self):
        """The rack-level Balanced analogue wins: spreading load keeps
        every intake cooler than any concentration policy."""
        rack = moonshot_rack(n_chassis=8, recirculation=0.25)
        for load in (2.0, 4.0, 6.0):
            uniform = float(
                rack.inlets_for_load(load, "uniform").max()
            )
            concentrated = float(
                rack.inlets_for_load(load, "bottom-up").max()
            )
            assert uniform < concentrated

    def test_inlets_for_load_convenience(self):
        rack = moonshot_rack(n_chassis=4)
        inlets = rack.inlets_for_load(2.0, "bottom-up")
        assert inlets.shape == (4,)
        assert inlets[1] > 18.0  # heated by the loaded bottom chassis

    def test_composes_with_socket_simulation(
        self, small_sut, smoke_params
    ):
        """Rack inlet feeds the intra-server simulation."""
        from repro.core import get_scheduler
        from repro.sim.runner import run_once
        from repro.workloads.benchmark import BenchmarkSet

        rack = moonshot_rack(n_chassis=4, recirculation=0.3)
        hot_inlet = float(
            rack.inlets_for_load(3.0, "bottom-up")[-1]
        )
        cool = run_once(
            small_sut,
            smoke_params,
            get_scheduler("CF"),
            BenchmarkSet.COMPUTATION,
            0.6,
        )
        hot = run_once(
            small_sut,
            smoke_params.with_overrides(inlet_c=hot_inlet),
            get_scheduler("CF"),
            BenchmarkSet.COMPUTATION,
            0.6,
        )
        assert hot_inlet > 20.0
        assert (
            hot.mean_runtime_expansion
            >= cool.mean_runtime_expansion
        )

"""Property-based tests for the thermal substrate under the auditor's
invariants: relaxation steps, the two-node model and the coupling chain.

These pin the properties the runtime :class:`repro.sim.invariants.
InvariantAuditor` relies on — no overshoot, monotonicity in the step
size, large-step stability, chip >= sink at steady power, and entry
temperatures non-decreasing along the airflow direction.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.thermal.coupling import CouplingChain, CouplingMatrix
from repro.thermal.dynamics import (
    TwoNodeThermalState,
    exponential_step,
)

temps = st.floats(-40.0, 150.0)
taus = st.floats(0.001, 100.0)
heats = st.floats(0.0, 60.0)


class TestExponentialStepProperties:
    @given(start=temps, target=temps, dt=st.floats(0.0, 1e6), tau=taus)
    def test_never_overshoots_target(self, start, target, dt, tau):
        out = float(
            exponential_step(
                np.array([start]), np.array([target]), dt, tau
            )[0]
        )
        if start <= target:
            assert start - 1e-9 <= out <= target + 1e-9
        else:
            assert target - 1e-9 <= out <= start + 1e-9

    @given(
        start=temps,
        target=temps,
        dt1=st.floats(0.0, 50.0),
        extra=st.floats(0.0, 50.0),
        tau=taus,
    )
    def test_monotone_in_dt(self, start, target, dt1, extra, tau):
        """A longer step lands at least as close to the target."""
        t = np.array([target])
        near = float(exponential_step(np.array([start]), t, dt1, tau)[0])
        nearer = float(
            exponential_step(np.array([start]), t, dt1 + extra, tau)[0]
        )
        assert abs(nearer - target) <= abs(near - target) + 1e-9

    @given(start=temps, target=temps, tau=taus)
    def test_stable_for_huge_steps(self, start, target, tau):
        """Steps of thousands of time constants converge, never blow up."""
        out = float(
            exponential_step(
                np.array([start]), np.array([target]), 1e9 * tau, tau
            )[0]
        )
        assert np.isfinite(out)
        assert out == pytest.approx(target, abs=1e-6)


class TestTwoNodeProperties:
    @settings(max_examples=50)
    @given(
        ambient=st.floats(10.0, 45.0),
        power=st.floats(0.5, 30.0),
        n_steps=st.integers(1, 60),
        dt=st.floats(0.001, 2.0),
    )
    def test_chip_at_least_sink_at_steady_power(
        self, ambient, power, n_steps, dt
    ):
        """Under constant non-negative power the chip node never falls
        below the sink node: the internal resistance and the (positive,
        realistic-power) Equation 1 correction only add heat on top."""
        n = 4
        state = TwoNodeThermalState.at_ambient(
            n, ambient, chip_tau_s=0.005, socket_tau_s=1.0
        )
        ambient_arr = np.full(n, ambient)
        power_arr = np.full(n, power)
        r_int = np.full(n, 0.205)
        r_ext = np.full(n, 0.7)
        theta = np.maximum(4.41 - 0.0896 * power_arr, 0.0)
        for _ in range(n_steps):
            state.step(dt, ambient_arr, power_arr, r_int, r_ext, theta)
            assert (state.chip_c >= state.sink_c - 1e-9).all()

    @settings(max_examples=50)
    @given(
        ambient=st.floats(10.0, 45.0),
        power=st.floats(0.0, 30.0),
        dt=st.floats(0.001, 5.0),
    )
    def test_sink_never_overshoots_steady_target(
        self, ambient, power, dt
    ):
        n = 3
        state = TwoNodeThermalState.at_ambient(n, ambient)
        target = ambient + power * 0.7
        for _ in range(20):
            state.step(
                dt,
                np.full(n, ambient),
                np.full(n, power),
                np.full(n, 0.205),
                np.full(n, 0.7),
                np.zeros(n),
            )
            assert (state.sink_c <= target + 1e-9).all()
            assert (state.sink_c >= ambient - 1e-9).all()


class TestCouplingMonotonicity:
    @settings(max_examples=100)
    @given(
        n=st.integers(2, 10),
        heat=st.lists(heats, min_size=10, max_size=10),
        inlet=st.floats(0.0, 45.0),
        cfm=st.floats(1.0, 50.0),
        kappa=st.floats(0.5, 6.0),
    )
    def test_entry_temps_monotone_along_airflow(
        self, n, heat, inlet, cfm, kappa
    ):
        """With full excess retention (the calibrated default), entry
        temperatures never decrease downstream for non-negative sink
        heat — even when the heat profile itself is arbitrary."""
        chain = CouplingChain(
            socket_ids=list(range(n)),
            airflow_cfm=cfm,
            mixing_factor=kappa,
        )
        matrix = CouplingMatrix(n, [chain])
        entry = matrix.entry_temperatures(
            inlet, np.asarray(heat[:n])
        )
        assert (np.diff(entry) >= -1e-9).all()
        assert (entry >= inlet - 1e-9).all()

    @settings(max_examples=50)
    @given(
        n=st.integers(2, 8),
        heat=st.lists(heats, min_size=8, max_size=8),
        extra=st.floats(0.1, 40.0),
        position=st.integers(0, 6),
    )
    def test_more_heat_never_cools_downstream(
        self, n, heat, extra, position
    ):
        """Entry temperatures are monotone in every heat input."""
        position = position % n
        chain = CouplingChain(
            socket_ids=list(range(n)), airflow_cfm=6.35
        )
        matrix = CouplingMatrix(n, [chain])
        base_heat = np.asarray(heat[:n])
        bumped = base_heat.copy()
        bumped[position] += extra
        base = matrix.entry_temperatures(18.0, base_heat)
        hotter = matrix.entry_temperatures(18.0, bumped)
        assert (hotter >= base - 1e-12).all()

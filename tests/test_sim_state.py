"""Tests for repro.sim.state."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.state import SimulationState
from repro.workloads.job import Job
from repro.workloads.pcmark import PCMARK_APPS


@pytest.fixture
def state(small_sut, smoke_params):
    return SimulationState(small_sut, smoke_params)


def make_job(job_id=0):
    return Job(
        job_id=job_id, app=PCMARK_APPS[0], arrival_s=0.0, work_ms=5.0
    )


class TestInitialState:
    def test_everything_idle(self, state):
        assert not state.busy.any()
        assert state.idle_socket_ids().size == state.n_sockets

    def test_thermal_field_at_inlet(self, state):
        np.testing.assert_allclose(state.chip_c, 18.0)
        np.testing.assert_allclose(state.ambient_c, 18.0)

    def test_power_starts_gated(self, state):
        np.testing.assert_allclose(
            state.power_w, state.topology.gated_power_array
        )

    def test_ladder_from_topology(self, state):
        assert state.ladder.max_mhz == 1900


class TestAssignRelease:
    def test_assign_marks_busy(self, state):
        job = make_job()
        state.assign(job, 3)
        assert state.busy[3]
        assert state.idle_socket_ids().size == state.n_sockets - 1
        assert 3 not in state.idle_socket_ids()

    def test_assign_records_job_metadata(self, state):
        state.time_s = 1.5
        job = make_job()
        state.assign(job, 0)
        assert job.socket_id == 0
        assert job.start_s == 1.5
        assert state.running_jobs[0] is job

    def test_assign_sets_power_parameters(self, state):
        job = make_job()
        state.assign(job, 0)
        expected_dyn = job.app.power_at_max_w - 0.3 * 22.0
        assert state.dyn_max_w[0] == pytest.approx(expected_dyn)
        assert state.perf_drop[0] == pytest.approx(0.35)
        assert state.remaining_work_ms[0] == pytest.approx(5.0)

    def test_double_assign_rejected(self, state):
        state.assign(make_job(0), 0)
        with pytest.raises(SimulationError):
            state.assign(make_job(1), 0)

    def test_out_of_range_socket_rejected(self, state):
        with pytest.raises(SimulationError):
            state.assign(make_job(), 999)

    def test_release_returns_job_and_clears(self, state):
        job = make_job()
        state.assign(job, 5)
        released = state.release(5)
        assert released is job
        assert not state.busy[5]
        assert state.dyn_max_w[5] == 0.0
        assert state.running_jobs[5] is None

    def test_release_idle_socket_rejected(self, state):
        with pytest.raises(SimulationError):
            state.release(0)

"""Room inputs in the sweep-cache key: no aliasing, ever.

The regression this suite pins: ``config_key`` historically hashed
only chassis-level inputs (topology, params, scheduler, workload,
load), so two room solves differing *only* in recirculation matrix or
CRAC setpoint — or a room solve and a chassis-only sweep point over
the same topology — would have collided in the process-wide
``shared_cache`` and served each other's results.  The ``room=``
parameter folds the room fingerprint, the CRAC setpoint and the exact
placement vector into the digest; chassis-only keys are unchanged.
"""

import numpy as np
import pytest

from repro.config.presets import scaled
from repro.fleet.registry import ChassisSpec
from repro.room import (
    Room,
    RoomKey,
    downwind_recirculation,
    room_solve_key,
    row_layout_recirculation,
    solve_room_cached,
    zero_recirculation,
)
from repro.room.model import _topology_for
from repro.sim.parallel import SweepCache, config_key
from repro.workloads.benchmark import BenchmarkSet


def small_room(recirculation) -> Room:
    return Room(
        chassis=(
            ChassisSpec(
                chassis_id="r0",
                n_rows=1,
                lanes_per_row=2,
                chain_length=6,
                sockets_per_cartridge_depth=2,
            ),
            ChassisSpec(
                chassis_id="r1",
                n_rows=1,
                lanes_per_row=4,
                chain_length=1,
                sockets_per_cartridge_depth=1,
            ),
        ),
        recirculation=recirculation,
    )


def chassis_key(room: Room, load: float, room_key=None) -> str:
    """A key over the room's lead topology, with/without room inputs."""
    return config_key(
        _topology_for(room.chassis[0]),
        scaled(seed=0),
        "room",
        BenchmarkSet.COMPUTATION,
        load,
        room=room_key,
    )


class TestConfigKeyRoomInputs:
    def test_room_key_never_aliases_chassis_key(self):
        """The regression: same topology/params/load, with and without
        room inputs, must produce different keys."""
        room = small_room(zero_recirculation(2))
        bare = chassis_key(room, 0.5)
        roomed = chassis_key(
            room,
            0.5,
            RoomKey(fingerprint=room.fingerprint(), crac_supply_c=18.0),
        )
        assert bare != roomed

    def test_chassis_only_keys_are_unchanged_by_the_feature(self):
        """``room=None`` is the default: pre-existing cache and
        checkpoint keys survive the signature extension."""
        room = small_room(zero_recirculation(2))
        assert chassis_key(room, 0.5) == config_key(
            _topology_for(room.chassis[0]),
            scaled(seed=0),
            "room",
            BenchmarkSet.COMPUTATION,
            0.5,
        )

    def test_crac_setpoint_distinguishes_keys(self):
        room = small_room(zero_recirculation(2))
        cool = RoomKey(room.fingerprint(), crac_supply_c=18.0)
        warm = RoomKey(room.fingerprint(), crac_supply_c=26.0)
        assert chassis_key(room, 0.5, cool) != chassis_key(
            room, 0.5, warm
        )

    def test_recirculation_matrix_distinguishes_keys(self):
        """Two rooms over the same chassis, different coupling."""
        isolated = small_room(zero_recirculation(2))
        coupled = small_room(downwind_recirculation(2))
        assert isolated.fingerprint() != coupled.fingerprint()
        assert chassis_key(
            isolated, 0.5, RoomKey(isolated.fingerprint(), 18.0)
        ) != chassis_key(
            coupled, 0.5, RoomKey(coupled.fingerprint(), 18.0)
        )

    def test_detail_distinguishes_keys(self):
        room = small_room(zero_recirculation(2))
        a = RoomKey(room.fingerprint(), 18.0, detail="placement:a")
        b = RoomKey(room.fingerprint(), 18.0, detail="placement:b")
        assert chassis_key(room, 0.5, a) != chassis_key(room, 0.5, b)


class TestRoomSolveKey:
    def test_placement_vector_joins_the_key(self):
        """Same mean load, different placement: distinct keys (the
        mean-utilisation argument alone would collide)."""
        room = small_room(row_layout_recirculation(2))
        uniform = room_solve_key(
            room, np.array([0.5, 0.5]), np.array([10.0, 10.0]), 18.0
        )
        skewed = room_solve_key(
            room, np.array([0.2, 0.8]), np.array([10.0, 10.0]), 18.0
        )
        assert uniform != skewed

    def test_seed_and_backend_join_the_key(self):
        room = small_room(row_layout_recirculation(2))
        util = np.array([0.5, 0.5])
        dyn = np.array([10.0, 10.0])
        base = room_solve_key(room, util, dyn, 18.0, seed=0)
        assert base != room_solve_key(room, util, dyn, 18.0, seed=1)
        assert base != room_solve_key(
            room, util, dyn, 18.0, backend="jax"
        )


class TestSharedCacheRoundTrip:
    def test_cache_hit_returns_the_exact_solution(self, monkeypatch):
        """Second identical solve comes from the cache, bit-identical,
        and a different CRAC setpoint misses."""
        cache = SweepCache(max_entries=8)
        monkeypatch.setattr(
            "repro.room.capacity.shared_cache", cache
        )
        room = small_room(row_layout_recirculation(2))
        first = solve_room_cached(room, 0.6, 12.0, 18.0)
        assert len(cache) == 1
        again = solve_room_cached(room, 0.6, 12.0, 18.0)
        assert again is first  # served from cache, not re-solved
        warmer = solve_room_cached(room, 0.6, 12.0, 22.0)
        assert warmer is not first
        assert len(cache) == 2
        assert warmer.fingerprint() != first.fingerprint()

    def test_rooms_with_different_recirculation_never_alias(
        self, monkeypatch
    ):
        """The collision scenario end to end: identical chassis and
        load, different recirculation matrices."""
        cache = SweepCache(max_entries=8)
        monkeypatch.setattr(
            "repro.room.capacity.shared_cache", cache
        )
        isolated = solve_room_cached(
            small_room(zero_recirculation(2)), 0.6, 12.0, 18.0
        )
        coupled = solve_room_cached(
            small_room(downwind_recirculation(2)), 0.6, 12.0, 18.0
        )
        assert len(cache) == 2
        # The isolated room's inlets sit exactly at the CRAC supply;
        # the coupled room's downwind chassis runs warmer — the cache
        # kept them apart.
        np.testing.assert_array_equal(
            isolated.inlet_c, np.full(2, 18.0)
        )
        assert coupled.inlet_c[1] > 18.0

    def test_use_cache_false_bypasses_the_cache(self, monkeypatch):
        cache = SweepCache(max_entries=8)
        monkeypatch.setattr(
            "repro.room.capacity.shared_cache", cache
        )
        room = small_room(row_layout_recirculation(2))
        a = solve_room_cached(room, 0.6, 12.0, 18.0, use_cache=False)
        b = solve_room_cached(room, 0.6, 12.0, 18.0, use_cache=False)
        assert len(cache) == 0
        assert a is not b
        assert a.fingerprint() == b.fingerprint()

"""Tests for repro.thermal.dynamics (two-node transient model)."""

import numpy as np
import pytest

from repro.errors import ThermalModelError
from repro.thermal.dynamics import TwoNodeThermalState, exponential_step


class TestExponentialStep:
    def test_zero_dt_is_identity(self):
        current = np.array([10.0, 50.0])
        target = np.array([90.0, 90.0])
        out = exponential_step(current, target, 0.0, 30.0)
        np.testing.assert_allclose(out, current)

    def test_converges_to_target(self):
        current = np.array([10.0])
        target = np.array([90.0])
        out = exponential_step(current, target, 600.0, 30.0)
        assert out[0] == pytest.approx(90.0, abs=1e-3)

    def test_one_tau_covers_63_percent(self):
        out = exponential_step(
            np.array([0.0]), np.array([100.0]), 30.0, 30.0
        )
        assert out[0] == pytest.approx(63.21, abs=0.01)

    def test_never_overshoots(self):
        out = exponential_step(
            np.array([0.0]), np.array([100.0]), 1e6, 1.0
        )
        assert out[0] <= 100.0

    def test_negative_dt_rejected(self):
        with pytest.raises(ThermalModelError):
            exponential_step(np.zeros(1), np.ones(1), -0.1, 1.0)

    def test_zero_tau_rejected(self):
        with pytest.raises(ThermalModelError):
            exponential_step(np.zeros(1), np.ones(1), 0.1, 0.0)

    def test_step_size_invariance(self):
        """Two half steps equal one full step (exact integrator)."""
        current = np.array([20.0])
        target = np.array([80.0])
        one = exponential_step(current, target, 10.0, 30.0)
        half = exponential_step(current, target, 5.0, 30.0)
        two = exponential_step(half, target, 5.0, 30.0)
        np.testing.assert_allclose(one, two, rtol=1e-12)


class TestTwoNodeThermalState:
    def _constants(self, n):
        return dict(
            r_int=np.full(n, 0.205),
            r_ext=np.full(n, 1.578),
            theta=np.full(n, 3.0),
        )

    def test_at_ambient_equilibrium(self):
        state = TwoNodeThermalState.at_ambient(4, 18.0)
        np.testing.assert_allclose(state.sink_c, 18.0)
        np.testing.assert_allclose(state.chip_c, 18.0)

    def test_zero_power_stays_at_ambient_except_theta(self):
        state = TwoNodeThermalState.at_ambient(2, 18.0)
        consts = self._constants(2)
        for _ in range(100):
            state.step(
                1.0,
                np.full(2, 18.0),
                np.zeros(2),
                consts["r_int"],
                consts["r_ext"],
                consts["theta"],
            )
        np.testing.assert_allclose(state.sink_c, 18.0, atol=1e-6)
        # Chip settles theta above the sink even at zero power.
        np.testing.assert_allclose(state.chip_c, 21.0, atol=1e-3)

    def test_steady_state_matches_equation_1(self):
        state = TwoNodeThermalState.at_ambient(
            1, 18.0, socket_tau_s=1.0, chip_tau_s=0.005
        )
        power = np.array([15.0])
        ambient = np.array([25.0])
        consts = self._constants(1)
        for _ in range(20000):
            state.step(
                0.01,
                ambient,
                power,
                consts["r_int"],
                consts["r_ext"],
                consts["theta"],
            )
        expected = 25.0 + 15.0 * (0.205 + 1.578) + 3.0
        assert state.chip_c[0] == pytest.approx(expected, abs=0.01)

    def test_chip_faster_than_sink(self):
        state = TwoNodeThermalState.at_ambient(1, 18.0)
        consts = self._constants(1)
        state.step(
            0.05,  # 10 chip taus, tiny fraction of the sink tau
            np.array([18.0]),
            np.array([15.0]),
            consts["r_int"],
            consts["r_ext"],
            consts["theta"],
        )
        chip_rise = state.chip_c[0] - 18.0
        sink_rise = state.sink_c[0] - 18.0
        assert chip_rise > 10 * sink_rise

    def test_sink_heat_output_in_steady_state_equals_power(self):
        state = TwoNodeThermalState.at_ambient(1, 18.0, socket_tau_s=0.5)
        power = np.array([12.0])
        ambient = np.array([20.0])
        consts = self._constants(1)
        for _ in range(10000):
            state.step(
                0.01,
                ambient,
                power,
                consts["r_int"],
                consts["r_ext"],
                consts["theta"],
            )
        heat = state.sink_heat_output_w(ambient, consts["r_ext"])
        assert heat[0] == pytest.approx(12.0, abs=0.01)

    def test_sink_heat_output_never_negative(self):
        state = TwoNodeThermalState.at_ambient(1, 18.0)
        heat = state.sink_heat_output_w(
            np.array([50.0]), np.array([1.578])
        )
        assert heat[0] == 0.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ThermalModelError):
            TwoNodeThermalState(
                sink_c=np.zeros(3), chip_c=np.zeros(2)
            )

    def test_bad_tau_rejected(self):
        with pytest.raises(ThermalModelError):
            TwoNodeThermalState.at_ambient(1, 18.0, chip_tau_s=0.0)

    def test_zero_sockets_rejected(self):
        with pytest.raises(ThermalModelError):
            TwoNodeThermalState.at_ambient(0, 18.0)

"""Tests for the capacity-planning utilities."""

import pytest

from repro.analysis.capacity import (
    derating_curve,
    max_sustainable_utilization,
    sustained_dynamic_power_w,
    throttle_onset_zone,
)
from repro.config.parameters import SimulationParameters
from repro.errors import ReproError
from repro.server.topology import moonshot_sut, two_socket_system
from repro.workloads.benchmark import BenchmarkSet

PARAMS = SimulationParameters()


class TestSustainedPower:
    def test_ordering_across_sets(self):
        comp = sustained_dynamic_power_w(BenchmarkSet.COMPUTATION)
        gp = sustained_dynamic_power_w(BenchmarkSet.GENERAL_PURPOSE)
        stor = sustained_dynamic_power_w(BenchmarkSet.STORAGE)
        assert comp > gp > stor > 0


class TestMaxSustainableUtilization:
    def test_within_unit_interval(self, small_sut):
        util = max_sustainable_utilization(small_sut, PARAMS)
        assert 0.0 <= util <= 1.0

    def test_sut_throttles_below_full_load(self, small_sut):
        """The calibrated SUT cannot sustain 100% Computation load
        without some chip reaching the 95 C limit."""
        util = max_sustainable_utilization(
            small_sut, PARAMS, BenchmarkSet.COMPUTATION
        )
        assert util < 1.0
        assert util > 0.3

    def test_storage_sustains_more_than_computation(self, small_sut):
        comp = max_sustainable_utilization(
            small_sut, PARAMS, BenchmarkSet.COMPUTATION
        )
        stor = max_sustainable_utilization(
            small_sut, PARAMS, BenchmarkSet.STORAGE
        )
        assert stor >= comp

    def test_uncoupled_system_never_throttles(self):
        """A 2-socket uncoupled server at 18 C inlet has full headroom."""
        topology = two_socket_system(coupled=False)
        util = max_sustainable_utilization(topology, PARAMS)
        assert util == 1.0

    def test_tighter_limit_less_capacity(self, small_sut):
        loose = max_sustainable_utilization(
            small_sut, PARAMS, limit_c=95.0
        )
        tight = max_sustainable_utilization(
            small_sut, PARAMS, limit_c=85.0
        )
        assert tight <= loose

    def test_impossible_limit_gives_zero(self, small_sut):
        util = max_sustainable_utilization(
            small_sut, PARAMS, limit_c=19.0
        )
        assert util == 0.0


class TestDeratingCurve:
    def test_monotone_in_inlet(self, small_sut):
        points = derating_curve(
            small_sut, PARAMS, inlets_c=(18.0, 30.0, 45.0)
        )
        utils = [p.max_utilization for p in points]
        assert utils == sorted(utils, reverse=True)

    def test_point_fields(self, small_sut):
        points = derating_curve(small_sut, PARAMS, inlets_c=(25.0,))
        assert points[0].inlet_c == 25.0
        assert 0.0 <= points[0].max_utilization <= 1.0

    def test_empty_inlets_rejected(self, small_sut):
        with pytest.raises(ReproError):
            derating_curve(small_sut, PARAMS, inlets_c=())


class TestThrottleOnsetZone:
    def test_most_downstream_region_throttles_first(self, small_sut):
        zone, util = throttle_onset_zone(small_sut, PARAMS)
        assert zone >= 4  # back half of the 6-zone chain
        assert 0.0 < util < 1.0

    def test_never_throttling_system(self):
        topology = two_socket_system(coupled=False)
        zone, util = throttle_onset_zone(topology, PARAMS)
        assert (zone, util) == (0, 1.0)

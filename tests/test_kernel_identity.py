"""Bit-identity oracle for the vectorised placement/solver kernels.

PR 5 replaced the predictive policies' per-candidate Python scoring
loop with the batched :class:`~repro.core.kernels.PlacementKernel`
(plus the batched :func:`~repro.core.prediction.predict_job_powers`)
and gave the detailed chip model a factorization-cached fast solve
path.  Every one of those kernels keeps its scalar reference
implementation in-tree (``use_kernel=False``,
``DetailedChipModel.solve_via_network``), and this suite pins the
cardinal contract: kernel and reference produce the *same bits*.

The run-level oracle spans 19 (policy configuration, benchmark set,
load) combinations — both predictive policies, full-search and
row-restricted CP, the coupling-ablated CP, all benchmark sets, and
the load extremes — comparing full content fingerprints.  Below that,
function-level probes assert equality inside live scheduling decisions
(batched powers, batched downwind losses against a cold *and* a warm
per-step frequency cache).
"""

import numpy as np
import pytest

from repro.config.presets import smoke
from repro.core.coupling_predictor import CouplingPredictor
from repro.core.kernels import PlacementKernel
from repro.core.prediction import (
    predict_downwind_slowdown,
    predict_job_frequency,
    predict_job_powers,
    predicted_job_power,
)
from repro.core.predictive import Predictive
from repro.sim.engine import Simulation
from repro.sim.fingerprint import result_fingerprint
from repro.sim.runner import run_once
from repro.workloads.arrivals import ArrivalProcess
from repro.workloads.benchmark import BenchmarkSet

COMPUTATION = BenchmarkSet.COMPUTATION
GENERAL = BenchmarkSet.GENERAL_PURPOSE
STORAGE = BenchmarkSet.STORAGE


def _oracle_configs():
    """The 19 (policy kwargs, benchmark set, load) configurations.

    Default CP over every set and three loads, full-search CP and the
    coupling ablation over the load range, and Predictive across sets
    and extremes — every kernel code path under every workload mix.
    """
    configs = []
    for benchmark_set in (COMPUTATION, GENERAL, STORAGE):
        for load in (0.3, 0.5, 0.9):
            configs.append(("CP", {}, benchmark_set, load))
    for load in (0.3, 0.5, 0.9):
        configs.append(
            ("CP", {"row_restricted": False}, COMPUTATION, load)
        )
    for load in (0.3, 0.9):
        configs.append(
            ("CP", {"coupling_aware": False}, COMPUTATION, load)
        )
    for benchmark_set in (COMPUTATION, GENERAL, STORAGE):
        configs.append(("Predictive", {}, benchmark_set, 0.5))
    for load in (0.3, 0.9):
        configs.append(("Predictive", {}, COMPUTATION, load))
    return configs


def _make_policy(policy, kwargs, use_kernel):
    cls = {"CP": CouplingPredictor, "Predictive": Predictive}[policy]
    return cls(use_kernel=use_kernel, **kwargs)


def test_oracle_covers_nineteen_configs():
    assert len(_oracle_configs()) == 19


@pytest.mark.parametrize(
    "policy,kwargs,benchmark_set,load",
    _oracle_configs(),
    ids=lambda value: getattr(
        value, "value", str(value).replace(" ", "")
    ),
)
def test_kernel_runs_are_bit_identical(
    small_sut, policy, kwargs, benchmark_set, load
):
    params = smoke(seed=4)
    kernel = run_once(
        small_sut,
        params,
        _make_policy(policy, kwargs, use_kernel=True),
        benchmark_set,
        load,
    )
    scalar = run_once(
        small_sut,
        params,
        _make_policy(policy, kwargs, use_kernel=False),
        benchmark_set,
        load,
    )
    assert result_fingerprint(kernel) == result_fingerprint(scalar)


class _ProbingCP(CouplingPredictor):
    """CP that cross-checks every kernel against its scalar twin inside
    live decisions (real views, real temperatures, mid-drain busy
    flips) before delegating to the normal kernel path."""

    def __init__(self):
        super().__init__(row_restricted=False, use_kernel=True)
        self.decisions = 0
        self.pairs_checked = 0

    def select_socket(self, job, idle_ids, view):
        candidates = idle_ids
        freq = predict_job_frequency(view, candidates, job)
        powers = predict_job_powers(view, candidates, job, freq)
        scalar_powers = np.array(
            [
                predicted_job_power(view, int(s), job, float(f))
                for s, f in zip(candidates, freq)
            ]
        )
        assert powers.tobytes() == scalar_powers.tobytes()

        # A cold kernel (empty frequency cache) every decision...
        cold = PlacementKernel(view.topology)
        cold_losses = cold.downwind_losses(view, candidates, powers)
        scalar_losses = np.array(
            [
                predict_downwind_slowdown(view, int(s), float(p))
                for s, p in zip(candidates, powers)
            ]
        )
        assert cold_losses.tobytes() == scalar_losses.tobytes()
        self.decisions += 1
        self.pairs_checked += candidates.size
        # ...and the policy's own warm kernel (per-step cache reused
        # across the drain) via the normal path; the run-level oracle
        # pins that its choices match the scalar policy's.
        return super().select_socket(job, idle_ids, view)


def test_kernels_match_scalars_inside_live_decisions(small_sut):
    params = smoke(seed=11)
    probe = _ProbingCP()
    arrivals = ArrivalProcess(
        benchmark_set=COMPUTATION,
        load=0.7,
        n_sockets=small_sut.n_sockets,
        seed=params.seed,
        duration_scale=params.duration_scale,
    )
    jobs = arrivals.generate(params.sim_time_s)
    Simulation(small_sut, params, probe).run(jobs)
    assert probe.decisions > 10
    assert probe.pairs_checked > probe.decisions


def test_kernel_survives_engine_reuse(small_sut):
    """One Simulation instance re-run twice: the per-step frequency
    cache must be invalidated by reset(), keeping run 2 identical to a
    fresh scheduler's run."""
    params = smoke(seed=4)

    def _jobs():
        arrivals = ArrivalProcess(
            benchmark_set=COMPUTATION,
            load=0.6,
            n_sockets=small_sut.n_sockets,
            seed=params.seed,
            duration_scale=params.duration_scale,
        )
        return arrivals.generate(params.sim_time_s)

    sim = Simulation(
        small_sut, params, CouplingPredictor(row_restricted=False)
    )
    first = sim.run(_jobs())
    second = sim.run(_jobs())
    fresh = Simulation(
        small_sut, params, CouplingPredictor(row_restricted=False)
    ).run(_jobs())
    assert result_fingerprint(first) == result_fingerprint(fresh)
    assert result_fingerprint(second) == result_fingerprint(fresh)

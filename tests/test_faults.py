"""Tests for repro.faults: events, schedules, injection, degradation."""

import numpy as np
import pytest

from repro.config.presets import smoke
from repro.core import get_scheduler
from repro.errors import ConfigurationError
from repro.faults import (
    DVFSStuckFault,
    FanLaneFault,
    FaultResponse,
    FaultSchedule,
    FaultState,
    PowerCapFault,
    SensorFault,
    SensorFaultMode,
    SocketKillFault,
    parse_fault_spec,
)
from repro.faults.injector import FaultInjector
from repro.sim.fingerprint import result_fingerprint
from repro.sim.invariants import InvariantAuditor, InvariantViolation
from repro.sim.runner import run_once
from repro.workloads.benchmark import BenchmarkSet

#: Response whose trip point sits far below normal operating chip
#: temperatures — forces trips on demand.  The recovery deadline is
#: pushed past the smoke horizon because the floor-state equilibrium
#: can sit *above* such an artificial trip point (permanent latching is
#: then the correct physical behaviour, not a response failure).
FORCE_TRIPS = FaultResponse(trip_margin_c=-40.0, trip_recovery_taus=4.0)


def _run(topology, schedule=None, scheme="CF", load=0.6, auditor=None):
    return run_once(
        topology,
        smoke(seed=11),
        get_scheduler(scheme),
        BenchmarkSet.COMPUTATION,
        load,
        auditor=auditor,
        fault_schedule=schedule,
    )


class TestEventValidation:
    def test_negative_start_rejected(self):
        with pytest.raises(ConfigurationError):
            SocketKillFault(socket_id=0, start_s=-1.0)

    def test_end_before_start_rejected(self):
        with pytest.raises(ConfigurationError):
            SocketKillFault(socket_id=0, start_s=2.0, end_s=1.0)

    @pytest.mark.parametrize("scale", [0.0, -0.5, 1.5])
    def test_fan_scale_bounds(self, scale):
        with pytest.raises(ConfigurationError):
            FanLaneFault(row=0, scale=scale)

    def test_sensor_stuck_requires_value(self):
        with pytest.raises(ConfigurationError):
            SensorFault(socket_id=0, mode=SensorFaultMode.STUCK)

    def test_sensor_bias_must_be_nonzero(self):
        with pytest.raises(ConfigurationError):
            SensorFault(
                socket_id=0, mode=SensorFaultMode.BIAS, bias_c=0.0
            )

    def test_dvfs_stuck_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            DVFSStuckFault(socket_id=0, stuck_mhz=0.0)

    def test_power_cap_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            PowerCapFault(cap_mhz=-100.0)


class TestSchedule:
    def test_rejects_non_events(self):
        with pytest.raises(ConfigurationError):
            FaultSchedule(events=("not an event",))

    def test_fingerprint_is_content_addressed(self):
        a = FaultSchedule(
            events=(SocketKillFault(socket_id=1, start_s=1.0),)
        )
        b = FaultSchedule(
            events=(SocketKillFault(socket_id=1, start_s=1.0),)
        )
        c = FaultSchedule(
            events=(SocketKillFault(socket_id=2, start_s=1.0),)
        )
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != c.fingerprint()
        assert a.fingerprint() != FaultSchedule().fingerprint()

    def test_response_joins_the_fingerprint(self):
        base = FaultSchedule()
        harsh = FaultSchedule(
            response=FaultResponse(trip_margin_c=1.0)
        )
        assert base.fingerprint() != harsh.fingerprint()

    def test_validate_rejects_out_of_range(self, small_sut):
        bad_socket = FaultSchedule(
            events=(
                SocketKillFault(socket_id=small_sut.n_sockets),
            )
        )
        with pytest.raises(ConfigurationError):
            bad_socket.validate(small_sut)
        bad_row = FaultSchedule(
            events=(FanLaneFault(row=small_sut.n_rows, scale=0.5),)
        )
        with pytest.raises(ConfigurationError):
            bad_row.validate(small_sut)

    def test_validate_rejects_non_ladder_frequencies(self, small_sut):
        off_ladder = FaultSchedule(
            events=(DVFSStuckFault(socket_id=0, stuck_mhz=1234.0),)
        )
        with pytest.raises(ConfigurationError):
            off_ladder.validate(small_sut)

    def test_random_is_seed_deterministic(self, small_sut):
        a = FaultSchedule.random(small_sut, seed=5, n_events=6)
        b = FaultSchedule.random(small_sut, seed=5, n_events=6)
        c = FaultSchedule.random(small_sut, seed=6, n_events=6)
        assert a.fingerprint() == b.fingerprint()
        assert a.fingerprint() != c.fingerprint()
        a.validate(small_sut)
        assert len(a) == 6


class TestSpecParser:
    def test_parses_clauses(self, small_sut):
        schedule = parse_fault_spec(
            "fan:row=0,scale=0.5,start=2;kill:socket=3,start=4",
            topology=small_sut,
        )
        assert [type(e).__name__ for e in schedule.events] == [
            "FanLaneFault",
            "SocketKillFault",
        ]
        fan, kill = schedule.events
        assert fan.row == 0 and fan.scale == 0.5 and fan.start_s == 2.0
        assert kill.socket_id == 3 and kill.start_s == 4.0

    def test_random_clause(self, small_sut):
        schedule = parse_fault_spec(
            "random:seed=9,n=4", topology=small_sut
        )
        assert len(schedule) == 4
        again = parse_fault_spec("random:seed=9,n=4", topology=small_sut)
        assert schedule.fingerprint() == again.fingerprint()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_fault_spec("meteor:row=0")

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_fault_spec("kill:socket=0,sockets=1")


class TestFaultState:
    @pytest.fixture
    def state(self, small_sut):
        return FaultState(small_sut, smoke(), FaultResponse())

    def test_observe_passthrough_is_readonly_and_exact(self, state):
        true = np.linspace(30.0, 60.0, state.alive.size)
        seen = state.observe("chip_c", true)
        assert not seen.flags.writeable
        assert np.array_equal(seen, true)

    def test_observe_applies_bias_stuck_dropout(self, state):
        true = np.full(state.alive.size, 50.0)
        state.sensor_bias[0] = 10.0
        state.sensor_stuck[1] = 99.0
        state.sensor_dropout[2] = True
        state._held["chip_c"][2] = 42.0
        state.sensors_faulty = True
        seen = state.observe("chip_c", true)
        assert seen[0] == 60.0
        assert seen[1] == 99.0
        assert seen[2] == 42.0
        assert seen[3] == 50.0
        assert not seen.flags.writeable

    def test_override_order_stuck_cap_trip(self, state):
        freq = np.full(state.alive.size, 1500.0)
        state.dvfs_stuck_mhz[0] = 1900.0
        state.power_cap_mhz = 1300.0
        state.tripped[1] = True
        out = state.override_frequencies(freq, min_mhz=1100.0)
        # The cap ceilings even a wedged ladder; the trip forces the
        # floor past both.
        assert out[0] == 1300.0
        assert out[1] == 1100.0
        assert out[2] == 1300.0

    def test_no_override_returns_same_object(self, state):
        freq = np.full(state.alive.size, 1500.0)
        assert state.override_frequencies(freq, 1100.0) is freq

    def test_trip_latch_hold_and_hysteresis(self, small_sut):
        response = FaultResponse(
            trip_margin_c=5.0, trip_hysteresis_c=3.0, trip_hold_s=0.1
        )
        state = FaultState(small_sut, smoke(), response)
        dt = 0.002
        hot = np.full(small_sut.n_sockets, 101.0)
        cool = np.full(small_sut.n_sockets, 98.0)
        cold = np.full(small_sut.n_sockets, 90.0)
        state.update_trips(hot, step=0, dt=dt)
        assert state.tripped.all() and state.n_trips == state.alive.size
        # Cooled below the trip point but not past the hysteresis band.
        state.update_trips(cool, step=100, dt=dt)
        assert state.tripped.all()
        # Past the band but before the hold time has elapsed.
        state.update_trips(cold, step=10, dt=dt)
        assert state.tripped.all()
        # Past the band and held long enough: untrip.
        state.update_trips(cold, step=100, dt=dt)
        assert not state.tripped.any()
        assert (state.trip_step == -1).all()

    def test_dead_sockets_never_trip(self, small_sut):
        state = FaultState(small_sut, smoke(), FaultResponse())
        state.alive[0] = False
        hot = np.full(small_sut.n_sockets, 150.0)
        state.update_trips(hot, step=0, dt=0.002)
        assert not state.tripped[0]
        assert state.tripped[1:].all()

    def test_zero_dead_power(self, state):
        power = np.full(state.alive.size, 7.0)
        state.alive[3] = False
        state.zero_dead_power(power)
        assert power[3] == 0.0
        assert (power[:3] == 7.0).all()


class TestInjectionBehaviour:
    def test_kill_empties_socket_and_revival_restores(self, small_sut):
        killed = FaultSchedule(
            events=(SocketKillFault(socket_id=3, start_s=1.0),)
        )
        result = _run(small_sut, killed, load=0.9)
        assert result.fault_summary["n_dead_at_end"] == 1
        # No job may start on the dead socket after the kill.
        for job in result.completed_jobs:
            if job.socket_id == 3:
                assert job.start_s < 1.0
        revived = FaultSchedule(
            events=(
                SocketKillFault(socket_id=3, start_s=1.0, end_s=2.0),
            )
        )
        back = _run(small_sut, revived, load=0.9)
        assert back.fault_summary["n_dead_at_end"] == 0

    def test_kill_of_busy_socket_evicts(self, small_sut):
        schedule = FaultSchedule(
            events=tuple(
                SocketKillFault(socket_id=s, start_s=1.5)
                for s in range(6)
            )
        )
        result = _run(small_sut, schedule, load=0.9)
        assert result.fault_summary["n_evictions"] >= 1
        assert result.fault_summary["n_dead_at_end"] == 6

    def test_fan_fault_heats_its_row(self, small_sut):
        healthy = _run(small_sut, load=0.9)
        faulted = _run(
            small_sut,
            FaultSchedule(
                events=(FanLaneFault(row=0, scale=0.3, start_s=0.5),)
            ),
            load=0.9,
        )
        row0 = small_sut.row_array == 0
        row1 = small_sut.row_array == 1
        delta0 = (
            faulted.max_chip_c[row0] - healthy.max_chip_c[row0]
        ).mean()
        delta1 = (
            faulted.max_chip_c[row1] - healthy.max_chip_c[row1]
        ).mean()
        assert delta0 > 1.0
        assert delta0 > 3.0 * abs(delta1)

    def test_power_cap_lowers_frequency(self, small_sut):
        healthy = _run(small_sut, load=0.7)
        capped = _run(
            small_sut,
            FaultSchedule(
                events=(PowerCapFault(cap_mhz=1100.0, start_s=0.0),)
            ),
            load=0.7,
        )
        assert (
            capped.average_relative_frequency()
            < healthy.average_relative_frequency() - 0.05
        )

    def test_transient_cap_clears(self, small_sut):
        transient = _run(
            small_sut,
            FaultSchedule(
                events=(
                    PowerCapFault(
                        cap_mhz=1100.0, start_s=0.6, end_s=1.2
                    ),
                )
            ),
            load=0.7,
        )
        permanent = _run(
            small_sut,
            FaultSchedule(
                events=(PowerCapFault(cap_mhz=1100.0, start_s=0.6),)
            ),
            load=0.7,
        )
        assert (
            transient.average_relative_frequency()
            > permanent.average_relative_frequency()
        )

    def test_sensor_fault_changes_placement_not_physics(self, small_sut):
        healthy = _run(small_sut, load=0.7)
        blinded = _run(
            small_sut,
            FaultSchedule(
                events=(
                    SensorFault(
                        socket_id=0,
                        mode=SensorFaultMode.STUCK,
                        stuck_c=10.0,
                        start_s=0.0,
                    ),
                )
            ),
            load=0.7,
            auditor=InvariantAuditor(),
        )
        # CF chases the impossibly cool reading, so the runs diverge —
        # yet the audited *true* physics stays consistent.
        assert result_fingerprint(
            healthy, include_fault_summary=False
        ) != result_fingerprint(blinded, include_fault_summary=False)

    def test_fault_runs_are_deterministic(self, small_sut):
        schedule = FaultSchedule.random(small_sut, seed=3, n_events=5)
        a = _run(small_sut, schedule, load=0.7)
        b = _run(small_sut, schedule, load=0.7)
        assert result_fingerprint(a) == result_fingerprint(b)
        assert a.fault_summary == b.fault_summary

    def test_summary_names_the_schedule(self, small_sut):
        schedule = FaultSchedule(
            events=(SocketKillFault(socket_id=0, start_s=1.0),)
        )
        result = _run(small_sut, schedule)
        assert (
            result.fault_summary["schedule_fingerprint"]
            == schedule.fingerprint()
        )
        assert result.fault_summary["n_events"] == 1

    def test_transition_step_is_deterministic(self):
        assert FaultInjector._step_of(1.0, 0.002) == 500
        assert FaultInjector._step_of(0.0, 0.002) == 0
        # A time landing within float noise of a step boundary maps to
        # that step, not the next one.
        assert FaultInjector._step_of(0.006, 0.002) == 3


class TestGracefulDegradationAudit:
    def test_forced_trips_pass_fault_aware_audit(self, small_sut):
        schedule = FaultSchedule(response=FORCE_TRIPS)
        result = _run(
            small_sut,
            schedule,
            scheme="CP",
            auditor=InvariantAuditor(interval_steps=25),
        )
        assert result.fault_summary["n_trips"] > 0

    def test_broken_trip_response_fails_audit(
        self, small_sut, monkeypatch
    ):
        # Sever the emergency-throttle path: trips latch but the floor
        # is never forced.  The fault-aware envelope must catch it.
        monkeypatch.setattr(
            FaultState,
            "override_frequencies",
            lambda self, freq_mhz, min_mhz: freq_mhz,
        )
        schedule = FaultSchedule(response=FORCE_TRIPS)
        with pytest.raises(InvariantViolation) as excinfo:
            _run(
                small_sut,
                schedule,
                scheme="CP",
                auditor=InvariantAuditor(interval_steps=25),
            )
        assert "floor" in excinfo.value.invariant

    def test_broken_kill_response_fails_audit(
        self, small_sut, monkeypatch
    ):
        # Sever the power-gating path: a killed socket keeps drawing.
        monkeypatch.setattr(
            FaultState, "zero_dead_power", lambda self, power_w: None
        )
        schedule = FaultSchedule(
            events=(SocketKillFault(socket_id=0, start_s=1.0),)
        )
        with pytest.raises(InvariantViolation) as excinfo:
            _run(
                small_sut,
                schedule,
                load=0.9,
                auditor=InvariantAuditor(interval_steps=25),
            )
        assert excinfo.value.invariant == "dead sockets draw zero power"


class TestFaultAwareView:
    def test_dead_sockets_leave_the_idle_set(self, small_sut):
        from repro.sim.pipeline import EngineContext
        from repro.sim.view import FaultAwareSchedulerView

        ctx = EngineContext.create(
            small_sut, smoke(), get_scheduler("CF"), [], 0
        )
        state = FaultState(small_sut, smoke(), FaultResponse())
        view = FaultAwareSchedulerView(ctx.state, state)
        assert 5 in view.idle_socket_ids()
        state.alive[5] = False
        assert 5 not in view.idle_socket_ids()
        assert not view.alive[5]

    def test_view_reports_observed_temperatures(self, small_sut):
        from repro.sim.pipeline import EngineContext
        from repro.sim.view import FaultAwareSchedulerView

        ctx = EngineContext.create(
            small_sut, smoke(), get_scheduler("CF"), [], 0
        )
        state = FaultState(small_sut, smoke(), FaultResponse())
        view = FaultAwareSchedulerView(ctx.state, state)
        state.sensor_bias[0] = 25.0
        state.sensors_faulty = True
        assert view.chip_c[0] == ctx.state.chip_c[0] + 25.0
        assert view.sink_c[0] == ctx.state.sink_c[0] + 25.0
        with pytest.raises(ValueError):
            view.chip_c[0] = 0.0

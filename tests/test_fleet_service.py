"""Process-worker and asyncio service tests (real time, real pipes)."""

import asyncio
import multiprocessing
import threading
import time

import pytest

from repro.errors import FleetError
from repro.fleet.compute import ChassisSnapshot
from repro.fleet.coordinator import FleetConfig
from repro.fleet.messages import PlacementQuery
from repro.fleet.registry import (
    ChassisSpec,
    FleetRegistry,
    WorkerSpec,
)
from repro.fleet.service import (
    FleetService,
    query_fleet,
    query_from_json,
)
from repro.fleet.supervision import SupervisionPolicy
from repro.fleet.worker import (
    ProcessWorkerHandle,
    snapshot_key,
    worker_main,
)

SPEC = ChassisSpec(
    chassis_id="c0",
    n_rows=1,
    lanes_per_row=1,
    chain_length=2,
    sockets_per_cartridge_depth=2,
)

REGISTRY = FleetRegistry(
    chassis={"c0": SPEC},
    workers=(WorkerSpec(worker_id="c0-w0", chassis_id="c0"),),
)


def drain(conn, timeout_s=10.0, until=None):
    """Collect messages from a worker pipe until a predicate matches."""
    messages = []
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if conn.poll(0.05):
            messages.append(conn.recv())
            if until is not None and until(messages[-1]):
                return messages
    raise AssertionError(f"timed out; got {messages}")


class TestWorkerMain:
    def run_worker(self, checkpoint_dir=None):
        parent, child = multiprocessing.Pipe(duplex=True)
        thread = threading.Thread(
            target=worker_main,
            args=(child, SPEC, "c0-w0", 0.2, checkpoint_dir),
            daemon=True,
        )
        thread.start()
        return parent, thread

    def test_hello_snapshot_heartbeat_and_answer(self):
        parent, thread = self.run_worker()
        messages = drain(parent, until=lambda m: m[0] == "heartbeat")
        kinds = [m[0] for m in messages]
        assert kinds[0] == "hello"
        assert messages[0][1] is False  # warm start (no checkpoint)
        assert "snapshot" in kinds
        parent.send(
            (
                "request",
                7,
                PlacementQuery(chassis="c0", job_power_w=5.0),
            )
        )
        messages = drain(parent, until=lambda m: m[0] == "answer")
        answer = messages[-1]
        assert answer[1] == 7
        assert answer[2]["socket"] in (0, 1)
        parent.send(("stop",))
        thread.join(timeout=5.0)
        assert not thread.is_alive()

    def test_corrupt_checkpoint_recovers_cold(self, tmp_path):
        from repro.sim.checkpoint import CHECKPOINT_SUFFIX

        poison = tmp_path / f"{snapshot_key('c0-w0')}{CHECKPOINT_SUFFIX}"
        poison.write_bytes(b"\x80garbage")
        parent, thread = self.run_worker(checkpoint_dir=str(tmp_path))
        messages = drain(parent, until=lambda m: m[0] == "snapshot")
        hello = messages[0]
        assert hello[0] == "hello"
        assert hello[1] is True  # cold: the checkpoint was corrupt
        # The poisoned file was dropped and replaced by a fresh,
        # valid snapshot.
        import pickle

        recovered = pickle.loads(poison.read_bytes())
        assert isinstance(recovered, ChassisSnapshot)
        parent.send(("stop",))
        thread.join(timeout=5.0)

    def test_warm_recovery_reuses_checkpointed_snapshot(self, tmp_path):
        from repro.sim.checkpoint import SweepCheckpoint

        checkpoint = SweepCheckpoint(
            tmp_path, expected_type=ChassisSnapshot
        )
        canned = ChassisSnapshot(
            chassis_id="c0",
            t=42.0,
            utilization=(0.1, 0.2),
            chip_c=(30.0, 31.0),
            power_w=(10.0, 11.0),
        )
        checkpoint.save(snapshot_key("c0-w0"), canned)
        parent, thread = self.run_worker(checkpoint_dir=str(tmp_path))
        messages = drain(parent, until=lambda m: m[0] == "snapshot")
        assert messages[0][1] is False  # warm
        snap = messages[-1][1]
        assert snap.t == 42.0  # recovered, not recomputed
        parent.send(("stop",))
        thread.join(timeout=5.0)


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="needs process workers",
)
class TestProcessWorkerHandle:
    def test_round_trip_and_exit_reporting(self):
        handle = ProcessWorkerHandle(
            spec=SPEC, worker_id="c0-w0", heartbeat_interval_s=0.2
        )
        assert handle.start(0.0) is None  # cold flag arrives in hello
        try:
            messages = []
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                messages.extend(handle.poll(0.0))
                if any(m[0] == "hello" for m in messages):
                    break
                time.sleep(0.05)
            assert any(m[0] == "hello" for m in messages)
            handle.send(
                1,
                PlacementQuery(chassis="c0", job_power_w=4.0),
                0.0,
            )
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                messages.extend(handle.poll(0.0))
                if any(m[0] == "answer" for m in messages):
                    break
                time.sleep(0.05)
            answers = [m for m in messages if m[0] == "answer"]
            assert answers and answers[0][1] == 1
        finally:
            handle.stop(0.0)
        # After stop, poll is inert and safe.
        assert handle.poll(0.0) == []


class TestQueryFromJson:
    def test_placement_parsed(self):
        query = query_from_json(
            {
                "kind": "placement",
                "chassis": "c0",
                "job_power_w": 9.0,
            }
        )
        assert isinstance(query, PlacementQuery)
        assert query.job_power_w == 9.0

    def test_what_if_parsed(self):
        query = query_from_json(
            {
                "kind": "what_if",
                "chassis": "c0",
                "scenarios": [[0.5, 10.0]],
            }
        )
        assert query.scenarios == ((0.5, 10.0),)

    @pytest.mark.parametrize(
        "obj",
        [
            {"kind": "mystery"},
            {"kind": "placement"},
            {"kind": "placement", "chassis": "c0", "job_power_w": "x"},
            "not an object",
        ],
    )
    def test_malformed_queries_rejected(self, obj):
        with pytest.raises(FleetError):
            query_from_json(obj)


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="needs process workers",
)
class TestFleetService:
    def test_end_to_end_over_tcp(self):
        async def scenario():
            service = FleetService(
                REGISTRY,
                policy=SupervisionPolicy(heartbeat_interval_s=0.2),
                config=FleetConfig(
                    request_timeout_s=15.0,
                    queue_timeout_s=30.0,
                    log_heartbeats=False,
                ),
                tick_interval_s=0.02,
            )
            server = await service.serve(host="127.0.0.1", port=0)
            port = server.sockets[0].getsockname()[1]
            try:
                answer = await asyncio.wait_for(
                    query_fleet(
                        {
                            "kind": "placement",
                            "chassis": "c0",
                            "job_power_w": 6.0,
                        },
                        port=port,
                    ),
                    timeout=30.0,
                )
            finally:
                server.close()
                await server.wait_closed()
                await service.stop()
            return answer

        answer = asyncio.run(scenario())
        assert answer["status"] == "ok"
        assert answer["payload"]["socket"] in (0, 1)
        assert answer["attempts"] == 1

    def test_submit_direct(self):
        async def scenario():
            service = FleetService(
                REGISTRY,
                policy=SupervisionPolicy(heartbeat_interval_s=0.2),
                config=FleetConfig(
                    request_timeout_s=15.0,
                    queue_timeout_s=30.0,
                    log_heartbeats=False,
                ),
                tick_interval_s=0.02,
            )
            await service.start()
            try:
                return await asyncio.wait_for(
                    service.submit(
                        PlacementQuery(chassis="c0", job_power_w=3.0)
                    ),
                    timeout=30.0,
                )
            finally:
                await service.stop()

        answer = asyncio.run(scenario())
        assert answer.status.value == "ok"

"""Regression pins for the model calibration.

These tests freeze the calibrated operating points that the headline
reproduction depends on (docs/architecture.md §2-3).  If a future
change moves one of these numbers, the scheduler comparisons will
silently drift — better to fail here with context.
"""

import numpy as np
import pytest

from repro.config.parameters import SimulationParameters
from repro.server.processors import X2150_LADDER
from repro.server.topology import moonshot_sut
from repro.sim.power_manager import dynamic_power, select_frequencies
from repro.sim.steady_state import uniform_load_field
from repro.thermal.coupling import (
    CARTRIDGE_MIXING_FACTOR,
    DEFAULT_MIXING_FACTOR,
)
from repro.units import AIR_HEATING_CONSTANT
from repro.workloads.power_model import (
    LEAKAGE_TDP_FRACTION,
    leakage_power,
)

PARAMS = SimulationParameters()


def pick_frequency(sink_c, chip_c, dyn_max=11.4, exp=1.7, r_ext=1.578,
                   theta_off=4.41, theta_slope=-0.0896):
    return float(
        select_frequencies(
            sink_c=np.array([sink_c]),
            chip_c=np.array([chip_c]),
            dyn_max_w=np.array([dyn_max]),
            dyn_exp=np.array([exp]),
            tdp_w=np.array([22.0]),
            theta_offset=np.array([theta_off]),
            theta_slope=np.array([theta_slope]),
            ladder=X2150_LADDER,
            params=PARAMS,
        )[0]
    )


class TestCalibrationConstants:
    def test_mixing_factors(self):
        assert CARTRIDGE_MIXING_FACTOR == pytest.approx(1.92)
        assert DEFAULT_MIXING_FACTOR == pytest.approx(3.6)

    def test_boost_governor_threshold(self):
        assert PARAMS.boost_chip_temp_limit_c == pytest.approx(45.0)

    def test_leakage_anchors(self):
        assert LEAKAGE_TDP_FRACTION == pytest.approx(0.30)
        assert leakage_power(90.0, 22.0) == pytest.approx(6.6)

    def test_air_heating_constant(self):
        assert AIR_HEATING_CONSTANT == pytest.approx(1.76)


class TestBoostGovernorOperatingPoints:
    """The BKDG behaviour the governor was calibrated to."""

    def test_fresh_front_socket_boosts(self):
        # Idle-cooled socket at the 18 C inlet.
        assert pick_frequency(sink_c=20.0, chip_c=22.0) == 1900.0

    def test_saturated_front_socket_holds_sustained(self):
        """A socket whose sink reached the boost-power steady state at
        the inlet can no longer boost but holds 1500 MHz — i.e. a fully
        loaded socket 'sustains the highest non-boost state'."""
        leak = float(leakage_power(50.0, 22.0))
        boost_power = 11.4 + leak
        sink_ss = 18.0 + boost_power * 1.578
        freq = pick_frequency(sink_c=sink_ss, chip_c=sink_ss + 6.0)
        assert freq == 1500.0

    def test_hot_downstream_socket_deep_throttles(self):
        assert pick_frequency(sink_c=92.0, chip_c=93.0) < 1500.0


class TestSUTSteadyOperatingPoints:
    """Zone-level steady thermals at the calibrated coupling."""

    def test_full_load_back_half_near_throttle(self):
        topology = moonshot_sut(n_rows=1)
        dyn_sustained = float(
            dynamic_power(1500.0, 11.4, 1.7, 1900.0)
        )
        field = uniform_load_field(
            topology, PARAMS, utilization=1.0,
            dynamic_power_w=dyn_sustained,
        )
        back = ~topology.front_half_mask()
        # The calibrated regime: full sustained load pushes the back
        # half to the edge of (or past) the 95 C limit.
        assert field.chip_c[back].max() > 90.0
        # ...while the front half keeps plenty of headroom.
        front = topology.front_half_mask()
        assert field.chip_c[front].min() < 60.0

    def test_thirty_percent_load_back_loses_boost_headroom(self):
        topology = moonshot_sut(n_rows=1)
        dyn = float(dynamic_power(1900.0, 11.4, 1.7, 1900.0))
        field = uniform_load_field(
            topology, PARAMS, utilization=0.3, dynamic_power_w=dyn
        )
        # Downstream ambients exceed what the boost governor tolerates
        # for a busy socket even at 30% uniform load.
        last_zone = topology.sockets_in_zone(topology.n_zones)
        assert field.ambient_c[last_zone].mean() > 30.0

    def test_idle_chain_gated_heating_small(self):
        topology = moonshot_sut(n_rows=1)
        field = uniform_load_field(
            topology, PARAMS, utilization=0.0, dynamic_power_w=0.0
        )
        # Gated sockets (10% TDP = 2.2 W each) warm the most
        # downstream entry by ~2.2 degC per upwind position at the
        # calibrated coupling: +11 degC at the end of the chain.
        assert field.ambient_c.max() == pytest.approx(29.0, abs=1.0)

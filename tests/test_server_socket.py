"""Tests for repro.server.socket_."""

import pytest

from repro.errors import ConfigurationError
from repro.server.processors import OPTERON_X2150
from repro.server.socket_ import SocketSpec
from repro.thermal.heatsink import FIN_18, FIN_30
from repro.workloads.benchmark import BenchmarkSet, profile_for
from repro.errors import WorkloadError


class TestSocketSpec:
    def test_tdp_from_processor(self):
        spec = SocketSpec(processor=OPTERON_X2150, sink=FIN_18)
        assert spec.tdp_w == pytest.approx(22.0)

    def test_gated_power_default_ten_percent(self):
        spec = SocketSpec(processor=OPTERON_X2150, sink=FIN_30)
        assert spec.gated_power_w == pytest.approx(2.2)

    def test_custom_gated_fraction(self):
        spec = SocketSpec(
            processor=OPTERON_X2150,
            sink=FIN_18,
            gated_power_fraction=0.05,
        )
        assert spec.gated_power_w == pytest.approx(1.1)

    def test_invalid_gated_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            SocketSpec(
                processor=OPTERON_X2150,
                sink=FIN_18,
                gated_power_fraction=1.0,
            )
        with pytest.raises(ConfigurationError):
            SocketSpec(
                processor=OPTERON_X2150,
                sink=FIN_18,
                gated_power_fraction=-0.1,
            )

    def test_frozen(self):
        spec = SocketSpec(processor=OPTERON_X2150, sink=FIN_18)
        with pytest.raises(Exception):
            spec.gated_power_fraction = 0.2


class TestProfileLookup:
    def test_every_set_has_profile(self):
        for benchmark_set in BenchmarkSet:
            profile = profile_for(benchmark_set)
            assert profile.benchmark_set == benchmark_set

    def test_unknown_set_rejected(self):
        with pytest.raises(WorkloadError):
            profile_for("not-a-set")

"""Tests for repro.units."""

import math

import pytest

from repro import units
from repro.errors import ThermalModelError


class TestAirflowForPower:
    def test_table_ii_1u_value(self):
        assert units.airflow_for_power(208.0, 20.0) == pytest.approx(
            18.30, abs=0.01
        )

    def test_table_ii_density_optimized_value(self):
        assert units.airflow_for_power(588.0, 20.0) == pytest.approx(
            51.74, abs=0.01
        )

    def test_zero_power_needs_no_airflow(self):
        assert units.airflow_for_power(0.0, 20.0) == 0.0

    def test_negative_power_rejected(self):
        with pytest.raises(ThermalModelError):
            units.airflow_for_power(-1.0, 20.0)

    def test_zero_delta_t_rejected(self):
        with pytest.raises(ThermalModelError):
            units.airflow_for_power(100.0, 0.0)

    def test_scales_linearly_with_power(self):
        one = units.airflow_for_power(100.0, 20.0)
        two = units.airflow_for_power(200.0, 20.0)
        assert two == pytest.approx(2 * one)


class TestAirTemperatureRise:
    def test_inverse_of_airflow_for_power(self):
        cfm = units.airflow_for_power(150.0, 20.0)
        assert units.air_temperature_rise(150.0, cfm) == pytest.approx(
            20.0
        )

    def test_cfd_anecdote_scale(self):
        # A 15 W socket at 6.35 CFM heats well-mixed air ~4.2 degC.
        rise = units.air_temperature_rise(15.0, 6.35)
        assert rise == pytest.approx(4.16, abs=0.05)

    def test_zero_airflow_rejected(self):
        with pytest.raises(ThermalModelError):
            units.air_temperature_rise(10.0, 0.0)

    def test_negative_power_rejected(self):
        with pytest.raises(ThermalModelError):
            units.air_temperature_rise(-5.0, 10.0)


class TestConversions:
    def test_cfm_roundtrip(self):
        assert units.m3s_to_cfm(units.cfm_to_m3s(123.0)) == pytest.approx(
            123.0
        )

    def test_one_cfm_in_si(self):
        assert units.cfm_to_m3s(1.0) == pytest.approx(4.719e-4, rel=1e-3)

    def test_celsius_kelvin_roundtrip(self):
        assert units.kelvin_to_celsius(
            units.celsius_to_kelvin(36.6)
        ) == pytest.approx(36.6)

    def test_mhz_to_ghz(self):
        assert units.mhz_to_ghz(1900) == pytest.approx(1.9)


class TestDensities:
    def test_watts_per_u(self):
        assert units.watts_per_u(400.0, 4.0) == pytest.approx(100.0)

    def test_sockets_per_u_moonshot(self):
        assert units.sockets_per_u(180, 4.0) == pytest.approx(45.0)

    def test_zero_height_rejected(self):
        with pytest.raises(ThermalModelError):
            units.watts_per_u(100.0, 0.0)
        with pytest.raises(ThermalModelError):
            units.sockets_per_u(10, 0.0)

    def test_heating_constant_from_air_properties(self):
        # 1 / (rho * cp) converted to CFM * degC / W should be ~1.76.
        si = 1.0 / (units.AIR_DENSITY * units.AIR_SPECIFIC_HEAT)
        cfm_constant = si / units.CFM_TO_M3S
        assert cfm_constant == pytest.approx(
            units.AIR_HEATING_CONSTANT, rel=0.01
        )

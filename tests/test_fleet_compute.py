"""Tests for fleet messages, registry and per-chassis compute."""

import numpy as np
import pytest

from repro.errors import FleetError
from repro.fleet.compute import (
    ChassisCompute,
    ChassisSnapshot,
    degraded_payload,
)
from repro.fleet.messages import (
    FleetAnswer,
    FleetBusy,
    AnswerStatus,
    PlacementQuery,
    RequestClass,
    WhatIfQuery,
)
from repro.fleet.registry import (
    ChassisSpec,
    FleetRegistry,
    WorkerSpec,
    demo_fleet,
    spec_from_catalog,
)
from repro.server.catalog import TABLE_I_SYSTEMS

SPEC = ChassisSpec(
    chassis_id="c0",
    n_rows=1,
    lanes_per_row=1,
    chain_length=4,
    sockets_per_cartridge_depth=2,
)


class TestMessages:
    def test_placement_rejects_non_positive_power(self):
        with pytest.raises(FleetError):
            PlacementQuery(chassis="c0", job_power_w=0.0)

    def test_what_if_needs_scenarios(self):
        with pytest.raises(FleetError):
            WhatIfQuery(chassis="c0", scenarios=())

    def test_defaults_interactive_vs_batch(self):
        assert (
            PlacementQuery(chassis="c0", job_power_w=1.0).request_class
            is RequestClass.INTERACTIVE
        )
        assert (
            WhatIfQuery(
                chassis="c0", scenarios=((0.5, 5.0),)
            ).request_class
            is RequestClass.BATCH
        )

    def test_answer_round_trips_to_json_dict(self):
        answer = FleetAnswer(
            request_id=3,
            status=AnswerStatus.DEGRADED,
            payload={"socket": 1},
            staleness_s=2.5,
            attempts=2,
            reason="retries_exhausted",
        )
        wire = answer.to_dict()
        assert wire["status"] == "degraded"
        assert wire["staleness_s"] == 2.5
        assert wire["payload"] == {"socket": 1}

    def test_fleet_busy_carries_the_shed_answer(self):
        answer = FleetAnswer(
            request_id=0, status=AnswerStatus.SHED, reason="queue_full"
        )
        exc = FleetBusy(answer)
        assert exc.answer is answer
        assert "queue_full" in str(exc)


class TestRegistry:
    def test_duplicate_worker_rejected(self):
        with pytest.raises(FleetError, match="duplicate"):
            FleetRegistry(
                chassis={"c0": SPEC},
                workers=(
                    WorkerSpec("w0", "c0"),
                    WorkerSpec("w0", "c0"),
                ),
            )

    def test_worker_for_unknown_chassis_rejected(self):
        with pytest.raises(FleetError, match="unknown"):
            FleetRegistry(
                chassis={"c0": SPEC},
                workers=(WorkerSpec("w0", "c1"),),
            )

    def test_workers_for_preserves_primary_order(self):
        registry = demo_fleet(n_chassis=2, replicas=1)
        workers = registry.workers_for("c1")
        assert [w.worker_id for w in workers] == ["c1-w0", "c1-w1"]

    def test_demo_fleet_is_heterogeneous(self):
        registry = demo_fleet(n_chassis=3)
        shapes = {
            (spec.chain_length, spec.lanes_per_row, spec.inlet_c)
            for spec in registry.chassis.values()
        }
        assert len(shapes) == 3  # distinct coupling and inlets

    def test_spec_from_catalog_maps_coupling_degree(self):
        by_degree = {
            s.degree_of_coupling: s for s in TABLE_I_SYSTEMS
        }
        high = spec_from_catalog(by_degree[max(by_degree)], "h")
        low = spec_from_catalog(by_degree[min(by_degree)], "l")
        assert high.chain_length > low.chain_length

    def test_spec_is_picklable(self):
        import pickle

        spec = demo_fleet().chassis["c0"]
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec


class TestChassisCompute:
    def test_snapshot_is_deterministic(self):
        a = ChassisCompute(SPEC).snapshot()
        b = ChassisCompute(SPEC).snapshot()
        assert a.chip_c == b.chip_c
        assert a.power_w == b.power_w
        assert len(a.chip_c) == SPEC.chain_length

    def test_placement_prefers_upwind_sockets(self):
        compute = ChassisCompute(SPEC)
        result = compute.place(
            PlacementQuery(chassis="c0", job_power_w=12.0)
        )
        # Uniform load on a single serial chain: the coolest landing
        # is the front (upwind) socket.
        assert result["socket"] == 0
        assert result["predicted_peak_c"] >= result["base_peak_c"]

    def test_placement_scores_all_candidates(self):
        compute = ChassisCompute(SPEC)
        hot = tuple(
            0.9 if i == 0 else 0.1 for i in range(SPEC.chain_length)
        )
        result = compute.place(
            PlacementQuery(
                chassis="c0", job_power_w=12.0, utilization=hot
            )
        )
        assert 0 <= result["socket"] < SPEC.chain_length

    def test_utilization_shape_checked(self):
        compute = ChassisCompute(SPEC)
        with pytest.raises(FleetError, match="sockets"):
            compute.place(
                PlacementQuery(
                    chassis="c0",
                    job_power_w=5.0,
                    utilization=(0.5, 0.5),
                )
            )

    def test_what_if_batches_scenarios(self):
        compute = ChassisCompute(SPEC)
        result = compute.what_if(
            WhatIfQuery(
                chassis="c0",
                scenarios=((0.3, 8.0), (0.9, 14.0)),
            )
        )
        assert len(result["peak_chip_c"]) == 2
        # Hotter scenario runs hotter.
        assert result["peak_chip_c"][1] > result["peak_chip_c"][0]

    def test_what_if_answers_are_memoised(self):
        compute = ChassisCompute(SPEC)
        q = WhatIfQuery(chassis="c0", scenarios=((0.5, 10.0),))
        first = compute.what_if(q)
        assert compute.cache.hits == 0
        second = compute.what_if(q)
        assert compute.cache.hits == 1
        assert first == second

    def test_answer_dispatches_and_rejects_unknown(self):
        compute = ChassisCompute(SPEC)
        assert "socket" in compute.answer(
            PlacementQuery(chassis="c0", job_power_w=5.0)
        )
        with pytest.raises(FleetError, match="unknown query"):
            compute.answer(object())

    def test_repeated_answers_identical(self):
        """Queries are pure reads: retries cannot change the answer."""
        compute = ChassisCompute(SPEC)
        q = PlacementQuery(chassis="c0", job_power_w=7.0)
        assert compute.answer(q) == compute.answer(q)


class TestDegradedPayload:
    def snapshot(self):
        return ChassisSnapshot(
            chassis_id="c0",
            t=1.0,
            utilization=(0.5, 0.5, 0.5),
            chip_c=(55.0, 44.0, 61.0),
            power_w=(20.0, 20.0, 20.0),
        )

    def test_placement_picks_coolest_stale_socket(self):
        payload = degraded_payload(
            self.snapshot(),
            PlacementQuery(chassis="c0", job_power_w=5.0),
        )
        assert payload["socket"] == 1
        assert payload["from_snapshot"] is True

    def test_what_if_returns_stale_digest(self):
        payload = degraded_payload(
            self.snapshot(),
            WhatIfQuery(chassis="c0", scenarios=((0.5, 9.0),)),
        )
        assert payload["from_snapshot"] is True
        assert payload["peak_chip_c"] == 61.0
        assert payload["hottest_socket"] == 2

    def test_snapshot_digest_fields(self):
        snap = self.snapshot()
        assert snap.peak_chip_c == 61.0
        assert snap.hottest_socket == 2
        assert np.isclose(snap.summary()["total_power_w"], 60.0)

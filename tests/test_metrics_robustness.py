"""Tests for the robustness (regret) metrics."""

import pytest

from repro.errors import ReproError
from repro.metrics.robustness import (
    most_robust,
    robustness_report,
)

LOADS = (0.3, 0.7)


def grid(**values):
    """Build a (scheme, load) performance map from scheme -> tuple."""
    out = {}
    for scheme, perfs in values.items():
        for load, perf in zip(LOADS, perfs):
            out[(scheme, load)] = perf
    return out


class TestRobustnessReport:
    def test_always_best_scheme_has_zero_regret(self):
        performance = grid(A=(1.0, 1.0), B=(0.9, 0.95))
        reports = robustness_report(performance, ("A", "B"), LOADS)
        assert reports["A"].worst_regret == pytest.approx(0.0)
        assert reports["A"].wins == 2

    def test_regret_measured_vs_per_load_best(self):
        performance = grid(A=(1.0, 0.9), B=(0.9, 1.0))
        reports = robustness_report(performance, ("A", "B"), LOADS)
        assert reports["A"].worst_regret == pytest.approx(0.1)
        assert reports["B"].worst_regret == pytest.approx(0.1)
        assert reports["A"].wins == 1
        assert reports["B"].wins == 1

    def test_mean_regret(self):
        performance = grid(A=(1.0, 1.0), B=(0.9, 1.0))
        reports = robustness_report(performance, ("A", "B"), LOADS)
        assert reports["B"].mean_regret == pytest.approx(0.05)

    def test_tie_tolerance_counts_near_best_as_win(self):
        performance = grid(A=(1.0, 1.0), B=(0.998, 1.0))
        reports = robustness_report(
            performance, ("A", "B"), LOADS, tie_tolerance=0.005
        )
        assert reports["B"].wins == 2

    def test_missing_cell_rejected(self):
        performance = {("A", 0.3): 1.0}
        with pytest.raises(ReproError):
            robustness_report(performance, ("A",), LOADS)

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            robustness_report({}, (), LOADS)


class TestMostRobust:
    def test_picks_smallest_worst_regret(self):
        performance = grid(
            A=(1.0, 0.80),  # great then terrible
            B=(0.97, 0.97),  # consistently close
        )
        reports = robustness_report(performance, ("A", "B"), LOADS)
        assert most_robust(reports) == "B"

    def test_cp_style_story(self):
        """A CP-like scheme that is near-best everywhere wins the
        robustness comparison against point-optimised schemes — the
        paper's closing argument."""
        loads = (0.1, 0.5, 0.9)
        performance = {}
        values = {
            "CF": (1.00, 0.99, 0.96),
            "HF": (0.89, 0.99, 1.01),
            "Predictive": (1.00, 1.00, 0.96),
            "CP": (1.00, 1.01, 1.005),
        }
        for scheme, perfs in values.items():
            for load, perf in zip(loads, perfs):
                performance[(scheme, load)] = perf
        reports = robustness_report(
            performance, tuple(values), loads
        )
        assert most_robust(reports) == "CP"
        assert reports["CP"].worst_regret < 0.01
        assert reports["HF"].worst_regret > 0.05

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            most_robust({})

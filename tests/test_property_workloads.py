"""Property-based tests (hypothesis) for the workload substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.server.processors import X2150_LADDER
from repro.workloads.arrivals import ArrivalProcess
from repro.workloads.benchmark import BenchmarkSet
from repro.workloads.pcmark import PCMARK_APPS
from repro.workloads.perf_model import PerfModel
from repro.workloads.power_model import PowerModel, leakage_power

benchmark_sets = st.sampled_from(list(BenchmarkSet))
ladder_freqs = st.sampled_from(X2150_LADDER.states_mhz)
temperatures = st.floats(min_value=0.0, max_value=120.0)


class TestPowerModelProperties:
    @given(benchmark_set=benchmark_sets, freq=ladder_freqs, t=temperatures)
    def test_total_power_positive(self, benchmark_set, freq, t):
        model = PowerModel.for_set(benchmark_set)
        assert model.total_power(freq, t) > 0.0

    @given(benchmark_set=benchmark_sets, t=temperatures)
    def test_power_monotone_in_frequency(self, benchmark_set, t):
        model = PowerModel.for_set(benchmark_set)
        powers = [
            model.total_power(f, t) for f in X2150_LADDER.states_mhz
        ]
        assert powers == sorted(powers)

    @given(benchmark_set=benchmark_sets, freq=ladder_freqs)
    def test_power_monotone_in_temperature(self, benchmark_set, freq):
        model = PowerModel.for_set(benchmark_set)
        assert model.total_power(freq, 95.0) >= model.total_power(
            freq, 40.0
        )

    @given(t1=temperatures, t2=temperatures)
    def test_leakage_monotone(self, t1, t2):
        if t1 <= t2:
            assert leakage_power(t1, 22.0) <= leakage_power(t2, 22.0)

    @given(benchmark_set=benchmark_sets)
    def test_dynamic_power_bounded_by_max(self, benchmark_set):
        model = PowerModel.for_set(benchmark_set)
        for f in X2150_LADDER.states_mhz:
            assert (
                model.dynamic_power(f)
                <= model.dynamic_power_at_max_w + 1e-9
            )


class TestPerfModelProperties:
    @given(benchmark_set=benchmark_sets, freq=ladder_freqs)
    def test_perf_in_unit_interval(self, benchmark_set, freq):
        model = PerfModel.for_set(benchmark_set)
        assert 0.0 < model.relative_performance(freq) <= 1.0

    @given(benchmark_set=benchmark_sets, freq=ladder_freqs)
    def test_expansion_is_inverse_perf(self, benchmark_set, freq):
        model = PerfModel.for_set(benchmark_set)
        assert model.runtime_expansion(freq) == pytest.approx(
            1.0 / model.relative_performance(freq)
        )

    @given(freq=ladder_freqs)
    def test_storage_least_sensitive(self, freq):
        storage = PerfModel.for_set(BenchmarkSet.STORAGE)
        computation = PerfModel.for_set(BenchmarkSet.COMPUTATION)
        assert storage.relative_performance(
            freq
        ) >= computation.relative_performance(freq)


class TestApplicationProperties:
    @settings(max_examples=30)
    @given(
        app_index=st.integers(0, len(PCMARK_APPS) - 1),
        power=st.floats(0.0, 30.0),
    )
    def test_block_power_map_conserves(self, app_index, power):
        app = PCMARK_APPS[app_index]
        blocks = app.block_power_map(power)
        assert sum(blocks.values()) == pytest.approx(power)
        assert all(v >= 0 for v in blocks.values())

    @settings(max_examples=20)
    @given(
        app_index=st.integers(0, len(PCMARK_APPS) - 1),
        seed=st.integers(0, 2**31),
    )
    def test_sampled_durations_positive(self, app_index, seed):
        app = PCMARK_APPS[app_index]
        rng = np.random.default_rng(seed)
        samples = app.sample_durations_ms(100, rng)
        assert (samples > 0).all()


class TestArrivalProperties:
    @settings(max_examples=15, deadline=None)
    @given(
        load=st.floats(0.05, 1.0),
        seed=st.integers(0, 1000),
    )
    def test_arrivals_sorted_within_horizon(self, load, seed):
        process = ArrivalProcess(
            benchmark_set=BenchmarkSet.GENERAL_PURPOSE,
            load=load,
            n_sockets=24,
            seed=seed,
        )
        jobs = process.generate(1.0)
        times = [j.arrival_s for j in jobs]
        assert times == sorted(times)
        assert all(0.0 <= t < 1.0 for t in times)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_job_count_scales_with_load(self, seed):
        def count(load):
            return len(
                ArrivalProcess(
                    benchmark_set=BenchmarkSet.STORAGE,
                    load=load,
                    n_sockets=24,
                    seed=seed,
                ).generate(5.0)
            )

        assert count(0.9) > count(0.1)

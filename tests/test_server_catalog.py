"""Tests for repro.server.catalog (Table I)."""

import pytest

from repro.errors import ConfigurationError
from repro.server.catalog import (
    DensityOptimizedSystem,
    TABLE_I_SYSTEMS,
    find_system,
)


class TestTableI:
    def test_eleven_systems(self):
        assert len(TABLE_I_SYSTEMS) == 11

    def test_m700_entry(self):
        m700 = find_system("ProLiant M700")
        assert m700.total_sockets == 180
        assert m700.socket_tdp_w == pytest.approx(22.0)
        assert m700.degree_of_coupling == 5
        assert m700.cpu == "AMD Opteron X2150"
        assert m700.sockets_per_u == pytest.approx(45.0)

    def test_density_range_matches_paper(self):
        densities = [s.sockets_per_u for s in TABLE_I_SYSTEMS]
        assert min(densities) == pytest.approx(4.0)
        assert max(densities) == pytest.approx(72.0)

    def test_tdp_range_matches_paper(self):
        tdps = [s.socket_tdp_w for s in TABLE_I_SYSTEMS]
        assert min(tdps) == pytest.approx(5.0)
        assert max(tdps) == pytest.approx(140.0)

    def test_degree_range_matches_paper(self):
        degrees = [s.degree_of_coupling for s in TABLE_I_SYSTEMS]
        assert min(degrees) == 1
        assert max(degrees) == 11

    def test_redstone_highest_density(self):
        redstone = find_system("Development server")
        assert redstone.sockets_per_u == pytest.approx(72.0)
        assert redstone.degree_of_coupling == 11

    def test_higher_density_tends_to_lower_power(self):
        """The paper's observation: dense systems use low-power sockets."""
        dense = [s for s in TABLE_I_SYSTEMS if s.sockets_per_u >= 25]
        sparse = [s for s in TABLE_I_SYSTEMS if s.sockets_per_u < 10]
        mean = lambda xs: sum(xs) / len(xs)
        assert mean([s.socket_tdp_w for s in dense]) < mean(
            [s.socket_tdp_w for s in sparse]
        )

    def test_unknown_system_rejected(self):
        with pytest.raises(ConfigurationError):
            find_system("No Such Server")

    def test_power_per_u(self):
        m700 = find_system("ProLiant M700")
        assert m700.power_per_u_w == pytest.approx(180 * 22.0 / 4)


class TestValidation:
    def _kwargs(self, **overrides):
        base = dict(
            organization="X",
            system="Y",
            details="Z",
            application_domain="test",
            height_u=1,
            system_organization="1 x 1",
            total_sockets=1,
            socket_tdp_w=10.0,
            cpu="cpu",
            degree_of_coupling=1,
        )
        base.update(overrides)
        return base

    def test_zero_height_rejected(self):
        with pytest.raises(ConfigurationError):
            DensityOptimizedSystem(**self._kwargs(height_u=0))

    def test_zero_sockets_rejected(self):
        with pytest.raises(ConfigurationError):
            DensityOptimizedSystem(**self._kwargs(total_sockets=0))

    def test_zero_degree_rejected(self):
        with pytest.raises(ConfigurationError):
            DensityOptimizedSystem(**self._kwargs(degree_of_coupling=0))

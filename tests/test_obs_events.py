"""The telemetry event schema: construction and validation."""

import pytest

from repro.errors import ObservabilityError
from repro.obs.events import (
    EVENT_TYPES,
    SCHEMA_VERSION,
    make_event,
    validate_event,
)


def test_make_event_stamps_version_and_type():
    event = make_event("placement", step=3, t=0.003, job_id=7, socket=2)
    assert event["v"] == SCHEMA_VERSION
    assert event["type"] == "placement"
    assert event["socket"] == 2


def test_every_schema_type_has_a_buildable_example():
    """The schema must be internally consistent: a payload built from
    each type's own spec validates."""
    example = {int: 1, float: 0.5, str: "x", bool: True}
    for type_, spec in EVENT_TYPES.items():
        fields = {
            name: example[allowed[0]] for name, allowed in spec.items()
        }
        event = make_event(type_, **fields)
        validate_event(event)


def test_unknown_type_rejected():
    with pytest.raises(ObservabilityError, match="unknown event type"):
        make_event("teleportation", step=1)


def test_missing_required_field_rejected():
    with pytest.raises(ObservabilityError, match="missing required"):
        make_event("placement", step=3, t=0.003, job_id=7)


def test_wrong_field_type_rejected():
    with pytest.raises(ObservabilityError, match="must be int"):
        make_event(
            "placement", step=3, t=0.003, job_id="seven", socket=2
        )


def test_bool_is_not_an_int():
    """``bool`` is an ``int`` subclass in Python, but not in the
    schema: a count field must never silently accept True."""
    with pytest.raises(ObservabilityError, match="got bool"):
        make_event(
            "placement", step=3, t=0.003, job_id=True, socket=2
        )
    # ...while a declared-bool field accepts exactly bools.
    make_event(
        "fault_activation", step=1, t=0.1, fault="X", activating=False
    )
    with pytest.raises(ObservabilityError):
        make_event(
            "fault_activation", step=1, t=0.1, fault="X", activating=1
        )


def test_float_fields_accept_ints():
    make_event("placement", step=3, t=0, job_id=7, socket=2)


def test_non_finite_floats_rejected():
    for bad in (float("nan"), float("inf"), float("-inf")):
        with pytest.raises(ObservabilityError, match="non-finite"):
            make_event(
                "placement", step=3, t=bad, job_id=7, socket=2
            )


def test_extra_fields_allowed():
    """Schema evolution contract: writers may attach extra context."""
    event = make_event(
        "placement", step=3, t=0.003, job_id=7, socket=2, note="hot"
    )
    validate_event(event)


def test_version_mismatch_rejected():
    event = make_event("sweep_end", n_points=4)
    event["v"] = SCHEMA_VERSION + 1
    with pytest.raises(ObservabilityError, match="schema version"):
        validate_event(event)


def test_non_mapping_rejected():
    with pytest.raises(ObservabilityError, match="must be an object"):
        validate_event(["not", "an", "event"])

"""Tests for repro.sim.export."""

import json

import pytest

from repro.config.presets import smoke
from repro.errors import SimulationError
from repro.sim.export import (
    SUMMARY_FIELDS,
    load_json,
    result_summary,
    save_csv,
    save_json,
    sweep_summaries,
)
from repro.sim.results import SimulationResult
from repro.sim.runner import run_sweep
from repro.workloads.benchmark import BenchmarkSet


@pytest.fixture(scope="module")
def sweep(request):
    from repro.server.topology import moonshot_sut

    return run_sweep(
        moonshot_sut(n_rows=2),
        smoke(),
        scheduler_names=("CF", "CP"),
        benchmark_sets=(BenchmarkSet.STORAGE,),
        loads=(0.4,),
    )


class TestResultSummary:
    def test_contains_all_fields(self, sweep):
        result = sweep[("CF", BenchmarkSet.STORAGE, 0.4)]
        summary = result_summary(result, BenchmarkSet.STORAGE, 0.4)
        assert set(summary) == set(SUMMARY_FIELDS)

    def test_values_consistent(self, sweep):
        result = sweep[("CF", BenchmarkSet.STORAGE, 0.4)]
        summary = result_summary(result, BenchmarkSet.STORAGE, 0.4)
        assert summary["scheduler"] == "CF"
        assert summary["benchmark_set"] == "Storage"
        assert summary["load"] == 0.4
        assert summary["performance"] == pytest.approx(
            result.performance
        )
        assert 0.0 <= summary["boost_share"] <= 1.0

    def test_empty_result_rejected(self, sweep):
        result = sweep[("CF", BenchmarkSet.STORAGE, 0.4)]
        empty = SimulationResult(
            scheduler_name="x",
            params=result.params,
            topology=result.topology,
        )
        with pytest.raises(SimulationError):
            result_summary(empty)


class TestSweepSummaries:
    def test_one_row_per_run(self, sweep):
        rows = sweep_summaries(sweep)
        assert len(rows) == len(sweep)
        assert {row["scheduler"] for row in rows} == {"CF", "CP"}


class TestRoundTrips:
    def test_json_roundtrip(self, sweep, tmp_path):
        path = str(tmp_path / "sweep.json")
        save_json(sweep, path)
        rows = load_json(path)
        assert len(rows) == len(sweep)
        assert rows[0]["benchmark_set"] == "Storage"

    def test_json_is_valid(self, sweep, tmp_path):
        path = str(tmp_path / "sweep.json")
        save_json(sweep, path)
        with open(path) as handle:
            json.load(handle)

    def test_csv_header_and_rows(self, sweep, tmp_path):
        path = str(tmp_path / "sweep.csv")
        save_csv(sweep, path)
        with open(path) as handle:
            lines = handle.read().strip().splitlines()
        assert lines[0].split(",") == list(SUMMARY_FIELDS)
        assert len(lines) == 1 + len(sweep)

    def test_load_json_rejects_non_list(self, tmp_path):
        path = str(tmp_path / "bad.json")
        with open(path, "w") as handle:
            json.dump({"not": "a list"}, handle)
        with pytest.raises(SimulationError):
            load_json(path)

"""The ``room`` experiment family end to end: CLI, auditor, errors.

The property/golden/differential suites pin the solver's numerics;
this suite pins the operator surface around it — the ``repro room``
command (tables, JSON artifact, telemetry, audit), the room invariant
auditor's envelopes, the CRAC setpoint search, and every typed
rejection the layer promises.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.__main__ import main
from repro.analysis.capacity import (
    room_capacity_curve,
    room_sustainable_load,
)
from repro.errors import RoomConvergenceError, RoomError
from repro.fleet.registry import ChassisSpec
from repro.room import (
    RecirculationMatrix,
    Room,
    RoomInvariantAuditor,
    RoomInvariantViolation,
    downwind_recirculation,
    max_sustainable_room_load,
    optimize_crac_setpoint,
    room_derating_curve,
    row_layout_recirculation,
    solve_room,
    uniform_recirculation,
    zero_recirculation,
)
from repro.room.placement import _inverse_weights, place_room_load
from repro.workloads.benchmark import BenchmarkSet

TINY = dict(
    n_rows=1,
    lanes_per_row=4,
    chain_length=1,
    sockets_per_cartridge_depth=1,
)

COUPLED = dict(
    n_rows=1,
    lanes_per_row=1,
    chain_length=6,
    sockets_per_cartridge_depth=2,
)


def tiny_room() -> Room:
    return Room(
        chassis=(ChassisSpec(chassis_id="t0", **TINY),),
        recirculation=zero_recirculation(1),
    )


def coupled_room() -> Room:
    return Room(
        chassis=(ChassisSpec(chassis_id="c0", **COUPLED),),
        recirculation=zero_recirculation(1),
    )


class TestRoomCLI:
    def test_room_command_end_to_end(self, tmp_path, capsys):
        """Audited, telemetry-mirrored run with the JSON artifact."""
        out = tmp_path / "room.json"
        telemetry = tmp_path / "telemetry"
        status = main(
            [
                "room",
                "--mixes",
                "mixed",
                "--chassis",
                "2",
                "--setpoints",
                "18",
                "26",
                "--diurnal-step",
                "12",
                "--seed",
                "0",
                "--audit",
                "--telemetry",
                str(telemetry),
                "--out",
                str(out),
            ]
        )
        assert status == 0
        printed = capsys.readouterr().out
        assert "Sustainable room load" in printed
        assert "Placement comparison" in printed
        assert "Diurnal envelope" in printed
        with open(out) as handle:
            artifact = json.load(handle)
        assert artifact["crac_setpoints_c"] == [18.0, 26.0]
        curve = artifact["curves"]["mixed"]
        assert curve[0]["max_utilization"] >= curve[-1]["max_utilization"]
        assert "mixed/coolest" in artifact["placement_loads"]
        assert len(artifact["diurnal"]) == 2
        lines = (telemetry / "room.jsonl").read_text().splitlines()
        assert lines
        assert any('"room_converged"' in line for line in lines)

    def test_room_command_rejects_unknown_mix(self, capsys):
        assert main(["room", "--mixes", "volcano"]) == 1
        assert "unknown chassis mix" in capsys.readouterr().err


class TestRoomInvariantAuditor:
    @pytest.fixture(scope="class")
    def audited(self):
        room = tiny_room()
        return room, solve_room(room, 0.6, 10.0, 20.0)

    def test_converged_solution_passes(self, audited):
        room, solution = audited
        RoomInvariantAuditor().check(room, solution)
        RoomInvariantAuditor(redline_c=500.0).check(room, solution)

    def test_tolerance_must_be_positive(self):
        with pytest.raises(RoomError, match="positive"):
            RoomInvariantAuditor(tolerance_c=0.0)

    def test_non_finite_arrays_rejected(self, audited):
        room, solution = audited
        broken = dataclasses.replace(
            solution, inlet_c=np.array([np.nan])
        )
        with pytest.raises(RoomInvariantViolation, match="non-finite"):
            RoomInvariantAuditor().check(room, broken)

    def test_inlet_below_crac_rejected(self, audited):
        room, solution = audited
        broken = dataclasses.replace(
            solution, inlet_c=solution.inlet_c - 1.0
        )
        with pytest.raises(
            RoomInvariantViolation, match="below the CRAC"
        ):
            RoomInvariantAuditor().check(room, broken)

    def test_fixed_point_drift_rejected(self, audited):
        room, solution = audited
        broken = dataclasses.replace(
            solution, inlet_c=solution.inlet_c + 1.0
        )
        with pytest.raises(RoomInvariantViolation, match="drifts"):
            RoomInvariantAuditor().check(room, broken)

    def test_missing_residual_trail_rejected(self, audited):
        room, solution = audited
        broken = dataclasses.replace(solution, residuals_c=())
        with pytest.raises(
            RoomInvariantViolation, match="no residuals"
        ):
            RoomInvariantAuditor().check(room, broken)

    def test_unconverged_final_residual_rejected(self, audited):
        room, solution = audited
        broken = dataclasses.replace(solution, residuals_c=(1.0,))
        with pytest.raises(
            RoomInvariantViolation, match="above tolerance"
        ):
            RoomInvariantAuditor().check(room, broken)

    def test_entry_below_inlet_rejected(self, audited):
        room, solution = audited
        field = dataclasses.replace(
            solution.fields[0],
            ambient_c=solution.fields[0].ambient_c - 5.0,
        )
        broken = dataclasses.replace(solution, fields=(field,))
        with pytest.raises(
            RoomInvariantViolation, match="below its own inlet"
        ):
            RoomInvariantAuditor().check(room, broken)

    def test_sink_below_entry_rejected(self, audited):
        room, solution = audited
        field = dataclasses.replace(
            solution.fields[0],
            sink_c=solution.fields[0].ambient_c - 1.0,
        )
        broken = dataclasses.replace(solution, fields=(field,))
        with pytest.raises(
            RoomInvariantViolation, match="sink colder"
        ):
            RoomInvariantAuditor().check(room, broken)

    def test_chip_materially_below_sink_rejected(self, audited):
        room, solution = audited
        field = dataclasses.replace(
            solution.fields[0],
            chip_c=solution.fields[0].sink_c - 1.0,
        )
        broken = dataclasses.replace(solution, fields=(field,))
        with pytest.raises(
            RoomInvariantViolation, match="materially colder"
        ):
            RoomInvariantAuditor().check(room, broken)

    def test_exhaust_below_gated_floor_rejected(self, audited):
        """Zero recirculation keeps the fixed point happy, so the
        tampered exhaust trips exactly the gated-floor envelope."""
        room, solution = audited
        broken = dataclasses.replace(
            solution, exhaust_w=np.zeros(1)
        )
        with pytest.raises(
            RoomInvariantViolation, match="gated floor"
        ):
            RoomInvariantAuditor().check(room, broken)

    def test_exhaust_field_disagreement_rejected(self, audited):
        room, solution = audited
        broken = dataclasses.replace(
            solution, exhaust_w=solution.exhaust_w + 1.0
        )
        with pytest.raises(
            RoomInvariantViolation, match="disagrees"
        ):
            RoomInvariantAuditor().check(room, broken)

    def test_redline_enforced_when_set(self, audited):
        room, solution = audited
        with pytest.raises(
            RoomInvariantViolation, match="redline"
        ):
            RoomInvariantAuditor(redline_c=1.0).check(room, solution)


class TestCracSetpointSearch:
    def test_warmest_sustaining_setpoint_wins(self):
        choice = optimize_crac_setpoint(
            coupled_room(),
            (14.0, 18.0, 22.0),
            target_utilization=0.3,
            benchmark_set=BenchmarkSet.COMPUTATION,
        )
        assert choice.meets_target
        assert choice.crac_supply_c == 22.0
        assert choice.max_utilization >= 0.3

    def test_unreachable_target_returns_coldest_fallback(self):
        choice = optimize_crac_setpoint(
            coupled_room(),
            (38.0, 42.0),
            target_utilization=1.0,
            benchmark_set=BenchmarkSet.COMPUTATION,
        )
        assert not choice.meets_target
        assert choice.crac_supply_c == 38.0
        assert choice.max_utilization < 1.0

    def test_empty_candidates_rejected(self):
        with pytest.raises(RoomError, match="candidate"):
            optimize_crac_setpoint(tiny_room(), (), 0.5)

    def test_out_of_range_target_rejected(self):
        with pytest.raises(RoomError, match="target"):
            optimize_crac_setpoint(tiny_room(), (18.0,), 1.5)

    def test_empty_curve_rejected(self):
        with pytest.raises(RoomError, match="setpoint"):
            room_derating_curve(tiny_room(), ())

    def test_room_too_hot_to_idle_sustains_zero(self):
        assert (
            max_sustainable_room_load(
                coupled_room(),
                90.0,
                benchmark_set=BenchmarkSet.COMPUTATION,
            )
            == 0.0
        )

    def test_analysis_delegators_agree_with_room_layer(self):
        """repro.analysis.capacity's thin wrappers are the same math."""
        room = tiny_room()
        assert room_sustainable_load(
            room, 22.0, benchmark_set=BenchmarkSet.COMPUTATION
        ) == max_sustainable_room_load(
            room, 22.0, benchmark_set=BenchmarkSet.COMPUTATION
        )
        curve = room_capacity_curve(
            room, (18.0, 26.0), benchmark_set=BenchmarkSet.COMPUTATION
        )
        assert [p.crac_supply_c for p in curve] == [18.0, 26.0]


class TestTypedRejections:
    def test_room_needs_chassis(self):
        with pytest.raises(RoomError, match="at least one"):
            Room(chassis=(), recirculation=zero_recirculation(1))

    def test_matrix_chassis_count_must_match(self):
        with pytest.raises(RoomError, match="couples"):
            Room(
                chassis=(ChassisSpec(chassis_id="t0", **TINY),),
                recirculation=zero_recirculation(2),
            )

    def test_duplicate_chassis_ids_rejected(self):
        with pytest.raises(RoomError, match="duplicate"):
            Room(
                chassis=(
                    ChassisSpec(chassis_id="t0", **TINY),
                    ChassisSpec(chassis_id="t0", **TINY),
                ),
                recirculation=zero_recirculation(2),
            )

    def test_room_permutation_must_be_valid(self):
        room = tiny_room()
        assert room.total_sockets == 4
        with pytest.raises(RoomError, match="permutation"):
            room.permuted([1])

    def test_solve_room_input_validation(self):
        room = tiny_room()
        with pytest.raises(RoomError, match="shape"):
            solve_room(room, np.array([0.5, 0.5]), 10.0, 20.0)
        with pytest.raises(RoomError, match=r"\[0, 1\]"):
            solve_room(room, 1.5, 10.0, 20.0)
        with pytest.raises(RoomError, match="non-negative"):
            solve_room(room, 0.5, -1.0, 20.0)
        with pytest.raises(RoomError, match="tolerance"):
            solve_room(room, 0.5, 10.0, 20.0, tolerance_c=0.0)
        with pytest.raises(RoomError, match="max_iterations"):
            solve_room(room, 0.5, 10.0, 20.0, max_iterations=0)
        with pytest.raises(RoomError, match="mode"):
            solve_room(room, 0.5, 10.0, 20.0, mode="quantum")

    def test_budget_exhaustion_is_a_typed_divergence(self):
        room = Room(
            chassis=(ChassisSpec(chassis_id="c0", **COUPLED),),
            recirculation=uniform_recirculation(
                1, 0.0, self_coefficient=0.05
            ),
        )
        with pytest.raises(RoomConvergenceError, match="budget"):
            solve_room(room, 0.9, 15.0, 25.0, max_iterations=1)

    def test_growing_residuals_detected_before_the_limit(self):
        """With the hard limit parked out of reach, the loop-gain
        detector (or the budget) still names the divergence."""
        room = Room(
            chassis=(
                ChassisSpec(
                    chassis_id="hot",
                    n_rows=4,
                    lanes_per_row=2,
                    chain_length=6,
                    sockets_per_cartridge_depth=2,
                ),
            ),
            recirculation=dataclasses.replace(
                zero_recirculation(1), matrix=np.array([[0.9]])
            ),
        )
        with pytest.raises(RoomConvergenceError) as excinfo:
            solve_room(
                room, 1.0, 20.0, 30.0, divergence_limit_c=1e9
            )
        assert (
            "grow" in excinfo.value.reason
            or "budget" in excinfo.value.reason
        )

    def test_placement_rejections_and_degenerate_weights(self):
        room = tiny_room()
        with pytest.raises(RoomError, match=r"\[0, 1\]"):
            place_room_load(room, "paper", 1.5)
        with pytest.raises(RoomError, match="unknown room placement"):
            place_room_load(room, "hottest", 0.5)
        # Zero recirculation pressure: MinHR weights degrade to
        # uniform instead of dividing by zero.
        np.testing.assert_array_equal(
            _inverse_weights(np.zeros(3)), np.ones(3)
        )

    def test_recirculation_rejections(self):
        with pytest.raises(RoomError, match=">= 1"):
            RecirculationMatrix(np.zeros((0, 0)))
        with pytest.raises(RoomError, match="exhaust"):
            zero_recirculation(2).inlet_rise(np.zeros(3))
        with pytest.raises(RoomError, match="permutation"):
            zero_recirculation(2).permuted([0, 0])
        with pytest.raises(RoomError, match="decay"):
            row_layout_recirculation(3, decay=1.5)
        with pytest.raises(RoomError, match="decay"):
            downwind_recirculation(3, decay=-0.1)

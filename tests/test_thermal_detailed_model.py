"""Tests for repro.thermal.detailed_model."""

import pytest

from repro.errors import ThermalModelError
from repro.thermal import detailed_model
from repro.thermal.detailed_model import (
    DetailedChipModel,
    FloorplanBlock,
    kabini_floorplan,
)
from repro.thermal.heatsink import FIN_18, FIN_30


class TestFloorplanBlock:
    def test_area(self):
        block = FloorplanBlock("b", 0, 0, 2.5, 2.0)
        assert block.area_mm2 == pytest.approx(5.0)

    def test_center(self):
        block = FloorplanBlock("b", 1.0, 2.0, 2.0, 4.0)
        assert block.center == (2.0, 4.0)

    def test_shared_edge_horizontal_neighbors(self):
        a = FloorplanBlock("a", 0, 0, 2, 2)
        b = FloorplanBlock("b", 2, 0, 2, 2)
        assert a.shared_edge_mm(b) == pytest.approx(2.0)
        assert b.shared_edge_mm(a) == pytest.approx(2.0)

    def test_shared_edge_vertical_neighbors(self):
        a = FloorplanBlock("a", 0, 0, 3, 1)
        b = FloorplanBlock("b", 0, 1, 3, 1)
        assert a.shared_edge_mm(b) == pytest.approx(3.0)

    def test_no_shared_edge_for_distant_blocks(self):
        a = FloorplanBlock("a", 0, 0, 1, 1)
        b = FloorplanBlock("b", 5, 5, 1, 1)
        assert a.shared_edge_mm(b) == 0.0

    def test_partial_overlap_edge(self):
        a = FloorplanBlock("a", 0, 0, 2, 2)
        b = FloorplanBlock("b", 2, 1, 2, 2)
        assert a.shared_edge_mm(b) == pytest.approx(1.0)

    def test_zero_dimension_rejected(self):
        with pytest.raises(ThermalModelError):
            FloorplanBlock("bad", 0, 0, 0.0, 1.0)


class TestKabiniFloorplan:
    def test_total_area_is_100mm2(self):
        total = sum(b.area_mm2 for b in kabini_floorplan())
        assert total == pytest.approx(100.0)

    def test_has_four_cores(self):
        names = {b.name for b in kabini_floorplan()}
        assert {"core0", "core1", "core2", "core3"} <= names

    def test_gpu_is_largest_block(self):
        blocks = {b.name: b for b in kabini_floorplan()}
        assert blocks["gpu"].area_mm2 == max(
            b.area_mm2 for b in kabini_floorplan()
        )


class TestDetailedChipModel:
    def test_uniform_power_tracks_total_resistance(self):
        model = DetailedChipModel(FIN_18)
        low = model.solve_uniform(25.0, 5.0)
        high = model.solve_uniform(25.0, 15.0)
        assert high.max_temperature_c > low.max_temperature_c

    def test_concentrated_power_has_larger_spread(self):
        model = DetailedChipModel(FIN_18)
        uniform = model.solve_uniform(25.0, 12.0)
        concentrated = model.solve(
            25.0, {"core0": 8.0, "gpu": 4.0}
        )
        assert concentrated.spread_c > uniform.spread_c

    def test_hottest_block_carries_the_power(self):
        model = DetailedChipModel(FIN_30)
        result = model.solve(25.0, {"core2": 10.0})
        assert result.hottest_block == "core2"

    def test_30_fin_runs_cooler(self):
        power = {"core0": 4.0, "core1": 4.0, "gpu": 5.0}
        hot = DetailedChipModel(FIN_18).solve(25.0, power)
        cool = DetailedChipModel(FIN_30).solve(25.0, power)
        assert (
            cool.max_temperature_c < hot.max_temperature_c
        )

    def test_ambient_shift_is_additive(self):
        model = DetailedChipModel(FIN_18)
        power = {"core0": 6.0, "uncore": 3.0}
        at20 = model.solve(20.0, power)
        at35 = model.solve(35.0, power)
        assert (
            at35.max_temperature_c - at20.max_temperature_c
        ) == pytest.approx(15.0, abs=1e-6)

    def test_spreader_between_blocks_and_sink(self):
        model = DetailedChipModel(FIN_18)
        result = model.solve(25.0, {"gpu": 10.0})
        assert result.spreader_c >= result.sink_base_c
        assert result.max_temperature_c >= result.spreader_c

    def test_unknown_block_rejected(self):
        model = DetailedChipModel(FIN_18)
        with pytest.raises(ThermalModelError):
            model.solve(25.0, {"nonexistent": 5.0})

    def test_negative_power_rejected(self):
        model = DetailedChipModel(FIN_18)
        with pytest.raises(ThermalModelError):
            model.solve(25.0, {"core0": -1.0})

    def test_negative_uniform_power_rejected(self):
        model = DetailedChipModel(FIN_18)
        with pytest.raises(ThermalModelError):
            model.solve_uniform(25.0, -1.0)

    def test_duplicate_block_names_rejected(self):
        blocks = [
            FloorplanBlock("a", 0, 0, 1, 1),
            FloorplanBlock("a", 1, 0, 1, 1),
        ]
        with pytest.raises(ThermalModelError):
            DetailedChipModel(FIN_18, floorplan=blocks)

    def test_bad_spreading_exponent_rejected(self):
        with pytest.raises(ThermalModelError):
            DetailedChipModel(FIN_18, spreading_exponent=1.5)

    def test_die_area_property(self):
        model = DetailedChipModel(FIN_18)
        assert model.die_area_mm2 == pytest.approx(100.0)


class TestFactorCachedSolve:
    """The fast solve() path vs. the rebuilt-network reference."""

    GRID = [
        (25.0, {"core0": 3.0, "gpu": 6.5, "io": 0.5}),
        (25.0, {"core0": 3.0, "gpu": 6.5, "io": 0.5}),  # repeat: cached
        (38.5, {"core0": 3.0, "gpu": 6.5, "io": 0.5}),  # rhs-only change
        (32.0, {"core1": 1.25, "l2": 0.75}),
        (25.0, {"uncore": 11.0}),
        (25.0, {}),
    ]

    @pytest.mark.parametrize("sink", [FIN_18, FIN_30], ids=["fin18", "fin30"])
    def test_fast_path_bit_identical_to_network(self, sink):
        model = DetailedChipModel(sink)
        for ambient, powers in self.GRID:
            fast = model.solve(ambient, powers)
            reference = model.solve_via_network(ambient, powers)
            assert fast.spreader_c == reference.spreader_c
            assert fast.sink_base_c == reference.sink_base_c
            assert (
                fast.block_temperatures_c == reference.block_temperatures_c
            )

    def test_repeated_total_power_shares_one_factorization(self):
        model = DetailedChipModel(FIN_18)
        model.solve(25.0, {"core0": 4.0})
        model.solve(40.0, {"gpu": 4.0})  # same total -> same g_conv
        assert len(model._factor_cache) == 1
        model.solve(25.0, {"core0": 5.0})
        assert len(model._factor_cache) == 2

    def test_cache_respects_lru_bound(self, monkeypatch):
        monkeypatch.setattr(detailed_model, "FACTOR_CACHE_MAX", 2)
        model = DetailedChipModel(FIN_18)
        for power in (3.0, 4.0, 5.0, 6.0):
            model.solve(25.0, {"core0": power})
        assert len(model._factor_cache) == 2
        # 5.0 and 6.0 survive; re-solving them adds no entry.
        model.solve(25.0, {"core0": 6.0})
        model.solve(25.0, {"core0": 5.0})
        assert len(model._factor_cache) == 2

    def test_cache_hit_is_bit_identical_to_cold_solve(self):
        cold = DetailedChipModel(FIN_30).solve(30.0, {"core3": 7.0})
        model = DetailedChipModel(FIN_30)
        model.solve(30.0, {"core3": 7.0})
        warm = model.solve(30.0, {"core3": 7.0})
        assert warm == cold

    def test_fast_path_still_validates(self):
        model = DetailedChipModel(FIN_18)
        with pytest.raises(ThermalModelError, match="unknown"):
            model.solve(25.0, {"nonexistent": 5.0})
        with pytest.raises(ThermalModelError, match="non-negative"):
            model.solve(25.0, {"core0": -1.0})
        assert len(model._factor_cache) == 0

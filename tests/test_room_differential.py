"""Room solver: batched fleet-tensor path vs the serial reference loop.

``solve_room(mode="batched")`` stacks chassis sharing a topology
recipe into one :func:`~repro.sim.batched.evaluate_fleet` call per
fixed-point iteration, each chassis a
:class:`~repro.sim.batched.FleetPoint` carrying its inlet override.
Under the numpy backend that path must match the per-chassis serial
loop **bit for bit** — every iteration feeds on the previous one's
inlets, so even a single ULP of drift would compound and change the
converged fingerprint.  Under JAX (optional dependency) the match is
epsilon-bounded.
"""

import numpy as np
import pytest

from repro.backend import HAVE_JAX
from repro.fleet.registry import ChassisSpec, spec_from_catalog
from repro.room import (
    Room,
    downwind_recirculation,
    row_layout_recirculation,
    solve_room,
    uniform_recirculation,
)
from repro.server.catalog import TABLE_I_SYSTEMS

FIELDS = ("power_w", "ambient_c", "sink_c", "chip_c")


def catalog_mix(n_chassis: int) -> Room:
    """Heterogeneous chassis cycling through distinct Table-I degrees."""
    by_degree = {}
    for system in TABLE_I_SYSTEMS:
        by_degree.setdefault(system.degree_of_coupling, system)
    cycle = [by_degree[d] for d in sorted(by_degree, reverse=True)]
    return Room(
        chassis=tuple(
            spec_from_catalog(cycle[i % len(cycle)], f"d{i}")
            for i in range(n_chassis)
        ),
        recirculation=row_layout_recirculation(n_chassis),
    )


def homogeneous_mix(n_chassis: int) -> Room:
    """Identical chassis — exercises the single-group batched path."""
    return Room(
        chassis=tuple(
            ChassisSpec(
                chassis_id=f"h{i}",
                n_rows=1,
                lanes_per_row=2,
                chain_length=6,
                sockets_per_cartridge_depth=2,
            )
            for i in range(n_chassis)
        ),
        recirculation=uniform_recirculation(n_chassis, 0.003),
    )


SCENARIOS = [
    pytest.param(catalog_mix(3), 0.7, 15.0, 18.0, id="catalog-3"),
    pytest.param(catalog_mix(5), 0.4, 12.0, 22.0, id="catalog-5"),
    pytest.param(homogeneous_mix(4), 0.9, 18.0, 26.0, id="homog-4"),
    pytest.param(
        Room(
            chassis=(
                ChassisSpec(
                    chassis_id="solo",
                    n_rows=1,
                    lanes_per_row=2,
                    chain_length=6,
                    sockets_per_cartridge_depth=2,
                ),
            ),
            recirculation=downwind_recirculation(1),
        ),
        0.5,
        10.0,
        20.0,
        id="solo",
    ),
]


def _assert_bit_identical(batched, serial):
    assert batched.n_iterations == serial.n_iterations
    assert batched.residuals_c == serial.residuals_c
    np.testing.assert_array_equal(batched.inlet_c, serial.inlet_c)
    np.testing.assert_array_equal(batched.exhaust_w, serial.exhaust_w)
    for i, (left, right) in enumerate(
        zip(batched.fields, serial.fields)
    ):
        for field in FIELDS:
            np.testing.assert_array_equal(
                getattr(left, field),
                getattr(right, field),
                err_msg=f"chassis {i} {field}",
            )
    assert batched.fingerprint() == serial.fingerprint()


@pytest.mark.parametrize("room,utilization,dyn,crac", SCENARIOS)
def test_batched_matches_serial_bit_for_bit(
    room, utilization, dyn, crac
):
    batched = solve_room(
        room, utilization, dyn, crac, mode="batched"
    )
    serial = solve_room(room, utilization, dyn, crac, mode="serial")
    _assert_bit_identical(batched, serial)


def test_per_chassis_utilization_vector_matches_too():
    """Non-uniform placement vectors ride the same contract."""
    room = catalog_mix(3)
    utilization = np.array([0.9, 0.3, 0.6])
    dyn = np.array([15.0, 8.0, 12.0])
    batched = solve_room(room, utilization, dyn, 21.0, mode="batched")
    serial = solve_room(room, utilization, dyn, 21.0, mode="serial")
    _assert_bit_identical(batched, serial)


def test_explicit_numpy_backend_matches_default():
    """Naming the backend cannot change a single bit."""
    room = catalog_mix(3)
    default = solve_room(room, 0.7, 15.0, 18.0)
    named = solve_room(room, 0.7, 15.0, 18.0, backend="numpy")
    _assert_bit_identical(default, named)


@pytest.mark.skipif(not HAVE_JAX, reason="jax not installed")
def test_jax_backend_is_epsilon_bounded():
    """With the optional dependency installed, the JAX fleet-tensor
    path converges to the same equilibrium within float tolerance."""
    room = catalog_mix(3)
    reference = solve_room(room, 0.7, 15.0, 18.0, mode="serial")
    jaxed = solve_room(
        room, 0.7, 15.0, 18.0, mode="batched", backend="jax"
    )
    np.testing.assert_allclose(
        jaxed.inlet_c, reference.inlet_c, rtol=1e-5, atol=1e-4
    )
    np.testing.assert_allclose(
        jaxed.exhaust_w, reference.exhaust_w, rtol=1e-5, atol=1e-3
    )
    np.testing.assert_allclose(
        jaxed.max_chip_c,
        reference.max_chip_c,
        rtol=1e-5,
        atol=1e-3,
    )

"""Tests for repro.workloads.job and repro.workloads.arrivals."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.arrivals import ArrivalProcess, load_to_arrival_rate
from repro.workloads.benchmark import BenchmarkSet
from repro.workloads.job import Job
from repro.workloads.pcmark import PCMARK_APPS


def make_job(**overrides):
    kwargs = dict(
        job_id=1, app=PCMARK_APPS[0], arrival_s=0.5, work_ms=4.0
    )
    kwargs.update(overrides)
    return Job(**kwargs)


class TestJob:
    def test_nominal_duration(self):
        assert make_job(work_ms=8.0).nominal_duration_s == pytest.approx(
            0.008
        )

    def test_runtime_expansion_at_full_speed(self):
        job = make_job(work_ms=10.0)
        job.start_s = 1.0
        job.finish_s = 1.010
        assert job.runtime_expansion == pytest.approx(1.0)

    def test_runtime_expansion_when_throttled(self):
        job = make_job(work_ms=10.0)
        job.start_s = 1.0
        job.finish_s = 1.020
        assert job.runtime_expansion == pytest.approx(2.0)

    def test_response_time_includes_queueing(self):
        job = make_job(arrival_s=1.0, work_ms=10.0)
        job.start_s = 1.5
        job.finish_s = 1.510
        assert job.response_time_s == pytest.approx(0.510)

    def test_incomplete_job_rejects_metrics(self):
        job = make_job()
        assert not job.completed
        with pytest.raises(WorkloadError):
            _ = job.runtime_expansion
        with pytest.raises(WorkloadError):
            _ = job.response_time_s

    def test_invalid_inputs_rejected(self):
        with pytest.raises(WorkloadError):
            make_job(arrival_s=-1.0)
        with pytest.raises(WorkloadError):
            make_job(work_ms=0.0)


class TestLoadToArrivalRate:
    def test_basic_rate(self):
        # 0.5 load, 100 sockets, 10 ms jobs -> 5000 jobs/s.
        assert load_to_arrival_rate(0.5, 100, 10.0) == pytest.approx(
            5000.0
        )

    def test_invalid_load_rejected(self):
        with pytest.raises(WorkloadError):
            load_to_arrival_rate(0.0, 10, 5.0)
        with pytest.raises(WorkloadError):
            load_to_arrival_rate(1.5, 10, 5.0)

    def test_invalid_sockets_rejected(self):
        with pytest.raises(WorkloadError):
            load_to_arrival_rate(0.5, 0, 5.0)


class TestArrivalProcess:
    def _process(self, **overrides):
        kwargs = dict(
            benchmark_set=BenchmarkSet.COMPUTATION,
            load=0.5,
            n_sockets=36,
            seed=7,
        )
        kwargs.update(overrides)
        return ArrivalProcess(**kwargs)

    def test_arrivals_sorted_and_within_horizon(self):
        jobs = self._process().generate(2.0)
        times = [j.arrival_s for j in jobs]
        assert times == sorted(times)
        assert all(0 <= t < 2.0 for t in times)

    def test_deterministic_given_seed(self):
        a = self._process().generate(1.0)
        b = self._process().generate(1.0)
        assert [j.arrival_s for j in a] == [j.arrival_s for j in b]
        assert [j.work_ms for j in a] == [j.work_ms for j in b]

    def test_different_seeds_differ(self):
        a = self._process(seed=1).generate(1.0)
        b = self._process(seed=2).generate(1.0)
        assert [j.arrival_s for j in a] != [j.arrival_s for j in b]

    def test_rate_scales_with_load(self):
        low = self._process(load=0.2).rate_per_s
        high = self._process(load=0.8).rate_per_s
        assert high == pytest.approx(4 * low)

    def test_sustained_capacity_normalisation(self):
        """Load 1.0 saturates the sustained-frequency capacity."""
        process = self._process(load=1.0)
        # Computation: perf(1500) = 1 - 0.35/2 = 0.825.
        assert process.sustained_perf_factor == pytest.approx(0.825)
        nominal = load_to_arrival_rate(
            1.0, 36, process.mean_duration_ms
        )
        assert process.rate_per_s == pytest.approx(0.825 * nominal)

    def test_empirical_rate_close_to_nominal(self):
        process = self._process(load=0.5)
        jobs = process.generate(20.0)
        empirical = len(jobs) / 20.0
        assert empirical == pytest.approx(process.rate_per_s, rel=0.1)

    def test_duration_scale_preserves_load(self):
        base = self._process()
        scaled = self._process(duration_scale=10.0)
        assert scaled.mean_duration_ms == pytest.approx(
            10 * base.mean_duration_ms
        )
        assert scaled.rate_per_s == pytest.approx(
            base.rate_per_s / 10.0
        )

    def test_apps_come_from_requested_set(self):
        jobs = self._process().generate(1.0)
        assert all(
            j.app.benchmark_set == BenchmarkSet.COMPUTATION for j in jobs
        )

    def test_max_jobs_cap(self):
        jobs = self._process().generate(5.0, max_jobs=10)
        assert len(jobs) == 10

    def test_job_ids_sequential(self):
        jobs = self._process().generate(1.0)
        assert [j.job_id for j in jobs] == list(range(len(jobs)))

    def test_invalid_horizon_rejected(self):
        with pytest.raises(WorkloadError):
            self._process().generate(0.0)

    def test_invalid_load_rejected(self):
        with pytest.raises(WorkloadError):
            self._process(load=0.0)

    def test_invalid_duration_scale_rejected(self):
        with pytest.raises(WorkloadError):
            self._process(duration_scale=0.0)

"""Tests for repro.thermal.chip_model (Equation 1)."""

import numpy as np
import pytest

from repro.errors import ThermalModelError
from repro.thermal.chip_model import (
    DEFAULT_R_INT,
    SimplifiedChipModel,
    peak_temperature,
)
from repro.thermal.heatsink import FIN_18, FIN_30


class TestEquation1:
    def test_zero_power_gives_ambient_plus_theta_offset(self):
        t = peak_temperature(20.0, 0.0, FIN_18)
        assert t == pytest.approx(20.0 + FIN_18.theta_offset)

    def test_hand_computed_value_18_fin(self):
        # 30 + 15*(0.205+1.578) + (4.41 - 0.0896*15)
        expected = 30.0 + 15.0 * 1.783 + (4.41 - 0.0896 * 15.0)
        assert peak_temperature(30.0, 15.0, FIN_18) == pytest.approx(
            expected
        )

    def test_monotone_in_power(self):
        temps = [
            peak_temperature(25.0, p, FIN_30) for p in (5.0, 10.0, 20.0)
        ]
        assert temps == sorted(temps)

    def test_monotone_in_ambient(self):
        assert peak_temperature(40.0, 10.0, FIN_18) > peak_temperature(
            20.0, 10.0, FIN_18
        )

    def test_30_fin_cooler_at_same_power(self):
        assert peak_temperature(25.0, 15.0, FIN_30) < peak_temperature(
            25.0, 15.0, FIN_18
        )

    def test_sink_advantage_grows_with_power(self):
        def advantage(p):
            return peak_temperature(25.0, p, FIN_18) - peak_temperature(
                25.0, p, FIN_30
            )

        assert advantage(15.0) > advantage(5.0)

    def test_negative_power_rejected(self):
        with pytest.raises(ThermalModelError):
            peak_temperature(25.0, -1.0, FIN_18)

    def test_bad_r_int_rejected(self):
        with pytest.raises(ThermalModelError):
            peak_temperature(25.0, 10.0, FIN_18, r_int=0.0)


class TestSimplifiedChipModel:
    def test_matches_function(self):
        model = SimplifiedChipModel(FIN_18)
        assert model.peak_temperature(22.0, 12.0) == pytest.approx(
            peak_temperature(22.0, 12.0, FIN_18)
        )

    def test_r_total(self):
        model = SimplifiedChipModel(FIN_30)
        assert model.r_total == pytest.approx(DEFAULT_R_INT + 1.056)

    def test_array_matches_scalar(self):
        model = SimplifiedChipModel(FIN_18)
        ambients = np.array([18.0, 30.0, 55.0])
        powers = np.array([5.0, 12.0, 20.0])
        vector = model.peak_temperature_array(ambients, powers)
        for i in range(3):
            assert vector[i] == pytest.approx(
                model.peak_temperature(ambients[i], powers[i])
            )

    def test_max_power_inverts_equation(self):
        model = SimplifiedChipModel(FIN_18)
        power = model.max_power_for_limit(40.0, 95.0)
        assert model.peak_temperature(40.0, power) == pytest.approx(95.0)

    def test_max_power_clamped_at_zero(self):
        model = SimplifiedChipModel(FIN_18)
        assert model.max_power_for_limit(200.0, 95.0) == 0.0

    def test_ambient_for_limit_inverts_equation(self):
        model = SimplifiedChipModel(FIN_30)
        ambient = model.ambient_for_limit(15.0, 95.0)
        assert model.peak_temperature(ambient, 15.0) == pytest.approx(
            95.0
        )

    def test_invalid_r_int_rejected(self):
        with pytest.raises(ThermalModelError):
            SimplifiedChipModel(FIN_18, r_int=-0.1)

"""Tests for repro.thermal.rc_network."""

import numpy as np
import pytest

from repro.errors import ThermalModelError
from repro.thermal import rc_network
from repro.thermal.rc_network import FactorizedSystem, ThermalNetwork


class TestThermalNetwork:
    def test_single_resistor(self):
        net = ThermalNetwork()
        net.add_boundary("amb", 20.0)
        net.connect("chip", "amb", 2.0)
        net.inject("chip", 10.0)
        temps = net.solve()
        assert temps["chip"] == pytest.approx(40.0)
        assert temps["amb"] == pytest.approx(20.0)

    def test_series_resistors(self):
        net = ThermalNetwork()
        net.add_boundary("amb", 0.0)
        net.connect("chip", "sink", 1.0)
        net.connect("sink", "amb", 2.0)
        net.inject("chip", 5.0)
        temps = net.solve()
        assert temps["sink"] == pytest.approx(10.0)
        assert temps["chip"] == pytest.approx(15.0)

    def test_parallel_resistors_accumulate(self):
        net = ThermalNetwork()
        net.add_boundary("amb", 0.0)
        net.connect("chip", "amb", 2.0)
        net.connect("chip", "amb", 2.0)  # parallel -> 1 degC/W
        net.inject("chip", 10.0)
        assert net.solve()["chip"] == pytest.approx(10.0)

    def test_heat_divides_between_parallel_paths(self):
        net = ThermalNetwork()
        net.add_boundary("amb", 0.0)
        net.connect("chip", "a", 1.0)
        net.connect("a", "amb", 1.0)
        net.connect("chip", "b", 1.0)
        net.connect("b", "amb", 1.0)
        net.inject("chip", 10.0)
        temps = net.solve()
        assert temps["a"] == pytest.approx(temps["b"])
        assert temps["chip"] == pytest.approx(10.0)

    def test_no_injection_equilibrates_to_boundary(self):
        net = ThermalNetwork()
        net.add_boundary("amb", 42.0)
        net.connect("x", "y", 1.0)
        net.connect("y", "amb", 1.0)
        temps = net.solve()
        assert temps["x"] == pytest.approx(42.0)
        assert temps["y"] == pytest.approx(42.0)

    def test_two_boundaries(self):
        net = ThermalNetwork()
        net.add_boundary("hot", 100.0)
        net.add_boundary("cold", 0.0)
        net.connect("mid", "hot", 1.0)
        net.connect("mid", "cold", 1.0)
        assert net.solve()["mid"] == pytest.approx(50.0)

    def test_no_boundary_rejected(self):
        net = ThermalNetwork()
        net.connect("a", "b", 1.0)
        with pytest.raises(ThermalModelError):
            net.solve()

    def test_disconnected_node_rejected(self):
        net = ThermalNetwork()
        net.add_boundary("amb", 0.0)
        net.connect("a", "amb", 1.0)
        net.add_node("floating")
        with pytest.raises(ThermalModelError):
            net.solve()

    def test_self_loop_rejected(self):
        net = ThermalNetwork()
        with pytest.raises(ThermalModelError):
            net.connect("a", "a", 1.0)

    def test_non_positive_resistance_rejected(self):
        net = ThermalNetwork()
        with pytest.raises(ThermalModelError):
            net.connect("a", "b", 0.0)

    def test_node_names_preserved(self):
        net = ThermalNetwork()
        net.add_boundary("amb", 0.0)
        net.connect("first", "amb", 1.0)
        net.connect("second", "amb", 1.0)
        assert net.node_names == ["amb", "first", "second"]

    def test_superposition_of_injections(self):
        def solve(p1, p2):
            net = ThermalNetwork()
            net.add_boundary("amb", 0.0)
            net.connect("a", "amb", 1.0)
            net.connect("a", "b", 1.0)
            net.connect("b", "amb", 3.0)
            net.inject("a", p1)
            net.inject("b", p2)
            return net.solve()

        only_a = solve(4.0, 0.0)
        only_b = solve(0.0, 6.0)
        both = solve(4.0, 6.0)
        for node in ("a", "b"):
            assert both[node] == pytest.approx(
                only_a[node] + only_b[node]
            )

    def test_insertion_order_does_not_change_answer(self):
        """The same physical network built in two different orders (node
        indices, hence matrix layout, differ) solves to the same
        temperatures."""

        def build(order):
            net = ThermalNetwork()
            steps = {
                "amb": lambda: net.add_boundary("amb", 20.0),
                "chip": lambda: net.connect("chip", "sink", 0.5),
                "sink": lambda: net.connect("sink", "amb", 1.5),
            }
            for name in order:
                steps[name]()
            net.inject("chip", 8.0)
            return net.solve()

        first = build(("amb", "chip", "sink"))
        second = build(("sink", "chip", "amb"))
        for node in ("amb", "chip", "sink"):
            assert second[node] == pytest.approx(first[node])


class TestFactorizationCache:
    @staticmethod
    def _net():
        net = ThermalNetwork()
        net.add_boundary("amb", 25.0)
        net.connect("chip", "sink", 1.0)
        net.connect("sink", "amb", 2.0)
        net.inject("chip", 5.0)
        return net

    def test_rhs_only_mutations_keep_factorization(self):
        net = self._net()
        net.solve()
        assembled = net._assembled
        assert assembled is not None
        net.inject("chip", 9.0)
        net.add_boundary("amb", 40.0)  # re-pin: rhs-only
        assert net._assembled is assembled
        temps = net.solve()
        assert net._assembled is assembled
        assert temps["chip"] == pytest.approx(40.0 + 9.0 * 3.0)

    def test_structural_mutations_invalidate(self):
        net = self._net()
        net.solve()
        net.connect("chip", "amb", 4.0)
        assert net._assembled is None
        net.solve()
        net.add_node("extra")
        assert net._assembled is None
        net.connect("extra", "amb", 1.0)
        net.solve()
        net.add_boundary("chip", 10.0)  # newly pinned boundary
        assert net._assembled is None

    def test_cached_resolve_is_bit_identical(self):
        net = self._net()
        first = net.solve()
        second = net.solve()  # answered from the cached factorization
        assert net._assembled is not None
        for node in first:
            assert second[node] == first[node]

    def test_disconnected_network_raises_on_every_solve(self):
        net = self._net()
        net.add_node("floating")
        for _ in range(2):
            with pytest.raises(
                ThermalModelError, match="not.*connected to any boundary"
            ):
                net.solve()


class TestScipylessFallback:
    def test_fallback_matches_factorized_path(self, monkeypatch):
        reference = TestFactorizationCache._net().solve()
        monkeypatch.setattr(rc_network, "HAVE_SCIPY", False)
        fallback = TestFactorizationCache._net().solve()
        for node in reference:
            assert fallback[node] == pytest.approx(reference[node])

    def test_fallback_raises_on_singular_solve(self, monkeypatch):
        monkeypatch.setattr(rc_network, "HAVE_SCIPY", False)
        net = TestFactorizationCache._net()
        net.add_node("floating")
        with pytest.raises(
            ThermalModelError, match="not.*connected to any boundary"
        ):
            net.solve()


class TestFactorizedSystem:
    def test_solves_against_multiple_rhs(self):
        matrix = np.array([[4.0, 1.0], [1.0, 3.0]])
        system = FactorizedSystem(matrix)
        for rhs in ([1.0, 0.0], [0.0, 1.0], [2.5, -7.0]):
            b = np.array(rhs)
            x = system.solve(b)
            assert matrix @ x == pytest.approx(b)

    def test_singular_matrix_rejected(self):
        singular = np.array([[1.0, 1.0], [1.0, 1.0]])
        if rc_network.HAVE_SCIPY:
            with pytest.raises(ThermalModelError, match="zero pivot"):
                FactorizedSystem(singular)
        else:
            with pytest.raises(ThermalModelError, match="zero pivot"):
                FactorizedSystem(singular).solve(np.ones(2))

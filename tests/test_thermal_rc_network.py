"""Tests for repro.thermal.rc_network."""

import pytest

from repro.errors import ThermalModelError
from repro.thermal.rc_network import ThermalNetwork


class TestThermalNetwork:
    def test_single_resistor(self):
        net = ThermalNetwork()
        net.add_boundary("amb", 20.0)
        net.connect("chip", "amb", 2.0)
        net.inject("chip", 10.0)
        temps = net.solve()
        assert temps["chip"] == pytest.approx(40.0)
        assert temps["amb"] == pytest.approx(20.0)

    def test_series_resistors(self):
        net = ThermalNetwork()
        net.add_boundary("amb", 0.0)
        net.connect("chip", "sink", 1.0)
        net.connect("sink", "amb", 2.0)
        net.inject("chip", 5.0)
        temps = net.solve()
        assert temps["sink"] == pytest.approx(10.0)
        assert temps["chip"] == pytest.approx(15.0)

    def test_parallel_resistors_accumulate(self):
        net = ThermalNetwork()
        net.add_boundary("amb", 0.0)
        net.connect("chip", "amb", 2.0)
        net.connect("chip", "amb", 2.0)  # parallel -> 1 degC/W
        net.inject("chip", 10.0)
        assert net.solve()["chip"] == pytest.approx(10.0)

    def test_heat_divides_between_parallel_paths(self):
        net = ThermalNetwork()
        net.add_boundary("amb", 0.0)
        net.connect("chip", "a", 1.0)
        net.connect("a", "amb", 1.0)
        net.connect("chip", "b", 1.0)
        net.connect("b", "amb", 1.0)
        net.inject("chip", 10.0)
        temps = net.solve()
        assert temps["a"] == pytest.approx(temps["b"])
        assert temps["chip"] == pytest.approx(10.0)

    def test_no_injection_equilibrates_to_boundary(self):
        net = ThermalNetwork()
        net.add_boundary("amb", 42.0)
        net.connect("x", "y", 1.0)
        net.connect("y", "amb", 1.0)
        temps = net.solve()
        assert temps["x"] == pytest.approx(42.0)
        assert temps["y"] == pytest.approx(42.0)

    def test_two_boundaries(self):
        net = ThermalNetwork()
        net.add_boundary("hot", 100.0)
        net.add_boundary("cold", 0.0)
        net.connect("mid", "hot", 1.0)
        net.connect("mid", "cold", 1.0)
        assert net.solve()["mid"] == pytest.approx(50.0)

    def test_no_boundary_rejected(self):
        net = ThermalNetwork()
        net.connect("a", "b", 1.0)
        with pytest.raises(ThermalModelError):
            net.solve()

    def test_disconnected_node_rejected(self):
        net = ThermalNetwork()
        net.add_boundary("amb", 0.0)
        net.connect("a", "amb", 1.0)
        net.add_node("floating")
        with pytest.raises(ThermalModelError):
            net.solve()

    def test_self_loop_rejected(self):
        net = ThermalNetwork()
        with pytest.raises(ThermalModelError):
            net.connect("a", "a", 1.0)

    def test_non_positive_resistance_rejected(self):
        net = ThermalNetwork()
        with pytest.raises(ThermalModelError):
            net.connect("a", "b", 0.0)

    def test_node_names_preserved(self):
        net = ThermalNetwork()
        net.add_boundary("amb", 0.0)
        net.connect("first", "amb", 1.0)
        net.connect("second", "amb", 1.0)
        assert net.node_names == ["amb", "first", "second"]

    def test_superposition_of_injections(self):
        def solve(p1, p2):
            net = ThermalNetwork()
            net.add_boundary("amb", 0.0)
            net.connect("a", "amb", 1.0)
            net.connect("a", "b", 1.0)
            net.connect("b", "amb", 3.0)
            net.inject("a", p1)
            net.inject("b", p2)
            return net.solve()

        only_a = solve(4.0, 0.0)
        only_b = solve(0.0, 6.0)
        both = solve(4.0, 6.0)
        for node in ("a", "b"):
            assert both[node] == pytest.approx(
                only_a[node] + only_b[node]
            )

"""Tests for repro.fleet.supervision: state machine, knob, backoff."""

import pytest

from repro.errors import ConfigurationError
from repro.fleet.supervision import (
    DEFAULT_HEARTBEAT_S,
    ENV_HEARTBEAT,
    LEGAL_TRANSITIONS,
    SupervisionPolicy,
    WorkerState,
    WorkerSupervisor,
    heartbeat_interval_from_env,
)


def make_supervisor(policy=None, events=None):
    sink = events if events is not None else []

    def emit(type_, **fields):
        sink.append({"type": type_, **fields})

    return (
        WorkerSupervisor(
            worker_id="w0",
            policy=policy
            or SupervisionPolicy(
                heartbeat_interval_s=1.0,
                missed_heartbeats=2,
                restart_backoff_s=0.5,
                restart_backoff_cap_s=4.0,
                max_restarts=2,
            ),
            emit=emit,
        ),
        sink,
    )


class TestHeartbeatKnob:
    def test_default_without_env(self, monkeypatch):
        monkeypatch.delenv(ENV_HEARTBEAT, raising=False)
        assert heartbeat_interval_from_env() == DEFAULT_HEARTBEAT_S

    def test_env_value_used(self, monkeypatch):
        monkeypatch.setenv(ENV_HEARTBEAT, "0.25")
        assert heartbeat_interval_from_env() == 0.25

    def test_sentinel_defers_to_env(self, monkeypatch):
        monkeypatch.setenv(ENV_HEARTBEAT, "2.5")
        policy = SupervisionPolicy()  # -1.0 sentinel
        assert policy.heartbeat_interval_s == 2.5

    @pytest.mark.parametrize("raw", ["0", "-3", "nope", "inf_x"])
    def test_bad_env_values_rejected_naming_knob(
        self, monkeypatch, raw
    ):
        monkeypatch.setenv(ENV_HEARTBEAT, raw)
        with pytest.raises(ConfigurationError, match=ENV_HEARTBEAT):
            heartbeat_interval_from_env()

    @pytest.mark.parametrize("value", [0.0, -0.5, -2.0])
    def test_explicit_non_positive_rejected(self, value):
        with pytest.raises(ConfigurationError, match=ENV_HEARTBEAT):
            SupervisionPolicy(heartbeat_interval_s=value)

    def test_empty_env_falls_back_to_default(self, monkeypatch):
        monkeypatch.setenv(ENV_HEARTBEAT, "")
        assert heartbeat_interval_from_env() == DEFAULT_HEARTBEAT_S


class TestPolicyValidation:
    def test_backoff_is_capped_exponential(self):
        policy = SupervisionPolicy(
            heartbeat_interval_s=1.0,
            restart_backoff_s=0.5,
            restart_backoff_cap_s=2.0,
        )
        assert policy.backoff_for(1) == 0.5
        assert policy.backoff_for(2) == 1.0
        assert policy.backoff_for(3) == 2.0
        assert policy.backoff_for(10) == 2.0

    def test_deadline_scales_with_missed_beats(self):
        policy = SupervisionPolicy(
            heartbeat_interval_s=0.5, missed_heartbeats=4
        )
        assert policy.heartbeat_deadline_s == 2.0

    def test_cap_below_base_rejected(self):
        with pytest.raises(ConfigurationError):
            SupervisionPolicy(
                heartbeat_interval_s=1.0,
                restart_backoff_s=2.0,
                restart_backoff_cap_s=1.0,
            )

    def test_zero_missed_heartbeats_rejected(self):
        with pytest.raises(ConfigurationError):
            SupervisionPolicy(
                heartbeat_interval_s=1.0, missed_heartbeats=0
            )


class TestStateMachine:
    def test_first_heartbeat_marks_healthy(self):
        sup, events = make_supervisor()
        assert sup.state is WorkerState.STARTING
        sup.observe_heartbeat(0.1, 0)
        assert sup.state is WorkerState.HEALTHY
        assert events[-1]["old"] == "starting"
        assert events[-1]["new"] == "healthy"

    def test_silence_goes_suspect_then_restarting(self):
        sup, events = make_supervisor()
        sup.observe_heartbeat(0.0, 0)
        assert not sup.check(1.9)  # within the 2 s deadline
        assert sup.state is WorkerState.HEALTHY
        assert not sup.check(2.1)
        assert sup.state is WorkerState.SUSPECT
        assert sup.check(4.1)  # 2x deadline of silence: dead
        assert sup.state is WorkerState.RESTARTING

    def test_heartbeat_rescues_suspect(self):
        sup, _ = make_supervisor()
        sup.observe_heartbeat(0.0, 0)
        sup.check(2.5)
        assert sup.state is WorkerState.SUSPECT
        sup.observe_heartbeat(3.0, 1)
        assert sup.state is WorkerState.HEALTHY

    def test_stale_seq_does_not_rescue(self):
        sup, _ = make_supervisor()
        sup.observe_heartbeat(0.0, 5)
        sup.check(2.5)
        assert sup.state is WorkerState.SUSPECT
        sup.observe_heartbeat(3.0, 5)  # replayed old beat
        assert sup.state is WorkerState.SUSPECT

    def test_restart_budget_exhaustion_quarantines(self):
        sup, events = make_supervisor()
        t = 0.0
        for attempt in (1, 2):
            assert sup.note_exit(t)
            assert sup.state is WorkerState.RESTARTING
            assert sup.restarts == attempt
            t = sup.next_restart_t
            assert sup.due_restart(t)
            sup.on_restarted(t, cold=False)
            assert sup.state is WorkerState.STARTING
        assert sup.note_exit(t)  # third strike: budget is 2
        assert sup.state is WorkerState.QUARANTINED
        assert sup.next_restart_t is None
        assert not sup.due_restart(t + 100.0)

    def test_backoff_grows_between_restarts(self):
        sup, _ = make_supervisor()
        sup.note_exit(10.0)
        assert sup.next_restart_t == pytest.approx(10.5)
        sup.on_restarted(10.5, cold=False)
        sup.note_exit(11.0)
        assert sup.next_restart_t == pytest.approx(12.0)

    def test_restart_event_carries_cold_flag(self):
        sup, events = make_supervisor()
        sup.note_exit(0.0)
        sup.on_restarted(0.5, cold=True)
        restart = [e for e in events if e["type"] == "fleet_restart"]
        assert restart[-1]["cold"] is True
        assert restart[-1]["attempt"] == 1
        assert sup.incarnation == 1
        assert sup.last_seq == -1  # new incarnation restarts at 0

    def test_quarantined_ignores_heartbeats(self):
        sup, _ = make_supervisor(
            policy=SupervisionPolicy(
                heartbeat_interval_s=1.0, max_restarts=0
            )
        )
        sup.note_exit(0.0)
        assert sup.state is WorkerState.QUARANTINED
        sup.observe_heartbeat(0.1, 99)
        assert sup.state is WorkerState.QUARANTINED

    def test_exit_while_restarting_is_idempotent(self):
        sup, _ = make_supervisor()
        assert sup.note_exit(0.0)
        assert not sup.note_exit(0.1)
        assert sup.restarts == 1

    def test_starting_worker_that_never_beats_is_restarted(self):
        sup, _ = make_supervisor()
        sup.started_t = 0.0
        assert not sup.check(3.9)
        assert sup.check(4.1)
        assert sup.state is WorkerState.RESTARTING

    def test_all_emitted_transitions_are_legal(self):
        sup, events = make_supervisor()
        sup.observe_heartbeat(0.0, 0)
        sup.check(2.5)
        sup.check(5.0)
        sup.on_restarted(6.0, cold=False)
        sup.observe_heartbeat(6.1, 0)
        for event in events:
            if event["type"] != "fleet_worker_state":
                continue
            pair = (
                WorkerState(event["old"]),
                WorkerState(event["new"]),
            )
            assert pair in LEGAL_TRANSITIONS

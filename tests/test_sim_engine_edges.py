"""Edge-case tests for the simulation engine."""

import numpy as np
import pytest

from repro.config.presets import smoke
from repro.core import get_scheduler
from repro.server.topology import ServerTopology
from repro.sim.engine import Simulation
from repro.workloads.benchmark import BenchmarkSet
from repro.workloads.job import Job
from repro.workloads.pcmark import PCMARK_APPS


def job(job_id, arrival_s, work_ms, app=PCMARK_APPS[0]):
    return Job(
        job_id=job_id, app=app, arrival_s=arrival_s, work_ms=work_ms
    )


def single_socket():
    return ServerTopology(
        n_rows=1,
        lanes_per_row=1,
        chain_length=1,
        sockets_per_cartridge_depth=1,
    )


class TestSingleSocketServer:
    def test_serial_execution(self):
        topology = single_socket()
        params = smoke().with_overrides(warm_start=False, warmup_s=0.0)
        jobs = [job(i, 0.0, 100.0) for i in range(5)]
        result = Simulation(
            topology, params, get_scheduler("CF")
        ).run(jobs)
        assert result.n_jobs_completed == 5
        # Jobs are serialised: starts strictly increase.
        starts = sorted(j.start_s for j in result.completed_jobs)
        assert all(b > a for a, b in zip(starts, starts[1:]))

    def test_no_coupling_on_single_socket(self):
        topology = single_socket()
        assert topology.coupling.downwind_of(0).size == 0


class TestArrivalEdges:
    def test_simultaneous_arrivals(self, small_sut):
        params = smoke().with_overrides(warm_start=False)
        jobs = [job(i, 0.5, 50.0) for i in range(10)]
        result = Simulation(
            small_sut, params, get_scheduler("Random")
        ).run(jobs)
        assert result.n_jobs_completed == 10
        sockets = {j.socket_id for j in result.completed_jobs}
        assert len(sockets) == 10  # all placed on distinct sockets

    def test_job_arriving_after_horizon_ignored(self, small_sut):
        params = smoke().with_overrides(warm_start=False, warmup_s=0.0)
        jobs = [job(0, 0.1, 20.0), job(1, 1e9, 20.0)]
        result = Simulation(
            small_sut, params, get_scheduler("CF")
        ).run(jobs)
        assert result.n_jobs_completed == 1

    def test_job_longer_than_horizon_not_counted(self, small_sut):
        params = smoke().with_overrides(warm_start=False, warmup_s=0.0)
        jobs = [job(0, 0.1, 20.0), job(1, 0.1, 1e9)]
        result = Simulation(
            small_sut, params, get_scheduler("CF")
        ).run(jobs)
        completed_ids = {j.job_id for j in result.completed_jobs}
        assert completed_ids == {0}

    def test_unsorted_input_accepted(self, small_sut):
        params = smoke().with_overrides(warm_start=False)
        jobs = [job(0, 2.0, 20.0), job(1, 0.5, 20.0)]
        result = Simulation(
            small_sut, params, get_scheduler("CF")
        ).run(jobs)
        assert result.n_jobs_completed == 2


class TestTimingAccuracy:
    @staticmethod
    def _params(**overrides):
        base = dict(warm_start=False, warmup_s=0.0)
        base.update(overrides)
        return smoke().with_overrides(**base)

    def test_sub_step_completion_interpolation(self, small_sut):
        """A job of 7.5 ms at full speed finishes in ~7.5 ms of sim
        time, not rounded to the 2 ms power-manager step."""
        params = self._params()
        jobs = [job(0, 0.1, 7.5)]
        result = Simulation(
            small_sut, params, get_scheduler("CF")
        ).run(jobs)
        done = result.completed_jobs[0]
        service = done.finish_s - done.start_s
        assert service == pytest.approx(0.0075, abs=0.0021)

    def test_coarse_power_manager_still_correct(self, small_sut):
        """A 5 ms power-manager period changes granularity, not
        totals."""
        fine = self._params()
        coarse = self._params(power_manager_interval_s=0.005)
        jobs_a = [job(i, 0.01 * i, 40.0) for i in range(30)]
        jobs_b = [job(i, 0.01 * i, 40.0) for i in range(30)]
        fast = Simulation(
            small_sut, fine, get_scheduler("CF")
        ).run(jobs_a)
        slow = Simulation(
            small_sut, coarse, get_scheduler("CF")
        ).run(jobs_b)
        assert slow.n_jobs_completed == fast.n_jobs_completed
        assert slow.mean_runtime_expansion == pytest.approx(
            fast.mean_runtime_expansion, rel=0.05
        )

    def test_work_conservation_per_job(self, small_sut):
        """Service time x average rate equals the job's work."""
        params = self._params()
        jobs = [job(0, 0.1, 100.0)]
        result = Simulation(
            small_sut, params, get_scheduler("CF")
        ).run(jobs)
        done = result.completed_jobs[0]
        # At most the worst-case ladder expansion for Computation.
        assert 1.0 - 1e-6 <= done.runtime_expansion <= 1 / 0.65 + 0.05

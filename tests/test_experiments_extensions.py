"""Tests for the extension experiments (load transient, fig02)."""

import pytest

from repro.experiments import fig02_cartridge_thermals, load_transient
from repro.experiments.common import ExperimentConfig
from repro.workloads.benchmark import BenchmarkSet


class TestFig02:
    def test_cfd_anecdote_reproduced(self):
        result = fig02_cartridge_thermals.run()
        assert result.entry_delta_c == pytest.approx(8.0, abs=1.0)

    def test_two_sink_design_compensates(self):
        """The 30-fin downstream sink nearly cancels the hotter air."""
        result = fig02_cartridge_thermals.run()
        assert abs(result.chip_c[1] - result.chip_c[0]) < 2.0

    def test_longer_chain_monotone_entry(self):
        result = fig02_cartridge_thermals.run(chain_length=6)
        assert list(result.entry_c) == sorted(result.entry_c)
        assert len(result.positions) == 6

    def test_power_scales_delta(self):
        low = fig02_cartridge_thermals.run(power_w=8.0)
        high = fig02_cartridge_thermals.run(power_w=15.0)
        assert high.entry_delta_c > low.entry_delta_c

    def test_main_prints(self, capsys):
        fig02_cartridge_thermals.main()
        assert "Figure 2" in capsys.readouterr().out


class TestLoadTransient:
    def test_tiny_ramp_runs(self):
        config = ExperimentConfig(
            n_rows=2,
            sim_time_s=6.0,
            warmup_s=2.0,
        )
        result = load_transient.run(
            config, schemes=("CF", "CP"), low=0.3, high=0.7, steps=2
        )
        assert set(result.expansion) == {"CF", "CP"}
        assert result.ramp == (0.3, 0.7)
        relative = result.relative_to("CF")
        assert relative["CF"] == pytest.approx(1.0)
        assert result.best in ("CF", "CP")

"""Property-based tests for the detailed model and steady-state solver."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.parameters import SimulationParameters
from repro.server.topology import moonshot_sut
from repro.sim.steady_state import solve_steady_state
from repro.thermal.detailed_model import DetailedChipModel
from repro.thermal.heatsink import FIN_18, FIN_30

PARAMS = SimulationParameters()
TOPOLOGY = moonshot_sut(n_rows=1)

block_names = st.sampled_from(
    ["core0", "core1", "core2", "core3", "l2", "gpu", "uncore", "io"]
)


class TestDetailedModelProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        ambient=st.floats(10.0, 60.0),
        power=st.floats(0.0, 25.0),
        block=block_names,
    )
    def test_hotter_than_ambient(self, ambient, power, block):
        model = DetailedChipModel(FIN_18)
        result = model.solve(ambient, {block: power})
        assert result.min_temperature_c >= ambient - 1e-6

    @settings(max_examples=25, deadline=None)
    @given(
        ambient=st.floats(10.0, 60.0),
        power=st.floats(0.5, 25.0),
        block=block_names,
    )
    def test_powered_block_is_hottest(self, ambient, power, block):
        model = DetailedChipModel(FIN_30)
        result = model.solve(ambient, {block: power})
        assert result.hottest_block == block

    @settings(max_examples=20, deadline=None)
    @given(
        ambient=st.floats(10.0, 60.0),
        p1=st.floats(0.5, 12.0),
        p2=st.floats(0.5, 12.0),
    )
    def test_monotone_in_power(self, ambient, p1, p2):
        model = DetailedChipModel(FIN_18)
        low, high = sorted((p1, p2))
        cool = model.solve_uniform(ambient, low)
        warm = model.solve_uniform(ambient, high)
        assert (
            warm.max_temperature_c >= cool.max_temperature_c - 1e-9
        )

    @settings(max_examples=20, deadline=None)
    @given(
        power=st.floats(0.5, 20.0),
        shift=st.floats(0.5, 30.0),
    )
    def test_ambient_shift_additive(self, power, shift):
        model = DetailedChipModel(FIN_18)
        base = model.solve_uniform(20.0, power)
        moved = model.solve_uniform(20.0 + shift, power)
        assert (
            moved.max_temperature_c - base.max_temperature_c
        ) == pytest.approx(shift, abs=1e-6)

    @settings(max_examples=20, deadline=None)
    @given(power=st.floats(1.0, 20.0))
    def test_spread_invariant_to_ambient(self, power):
        model = DetailedChipModel(FIN_30)
        a = model.solve_uniform(15.0, power)
        b = model.solve_uniform(45.0, power)
        assert a.spread_c == pytest.approx(b.spread_c, abs=1e-6)


class TestSteadyStateProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        utilization=st.floats(0.0, 1.0),
        dynamic=st.floats(0.0, 14.0),
    )
    def test_field_physical(self, utilization, dynamic):
        n = TOPOLOGY.n_sockets
        field = solve_steady_state(
            TOPOLOGY,
            PARAMS,
            np.full(n, dynamic),
            np.full(n, utilization),
        )
        assert (field.ambient_c >= PARAMS.inlet_c - 1e-9).all()
        assert (field.sink_c >= field.ambient_c - 1e-9).all()
        assert (field.chip_c >= field.sink_c - 1e-9).all()
        assert (field.power_w > 0).all()

    @settings(max_examples=15, deadline=None)
    @given(
        u1=st.floats(0.0, 1.0),
        u2=st.floats(0.0, 1.0),
        dynamic=st.floats(1.0, 14.0),
    )
    def test_monotone_in_utilization(self, u1, u2, dynamic):
        n = TOPOLOGY.n_sockets
        low, high = sorted((u1, u2))
        cool = solve_steady_state(
            TOPOLOGY, PARAMS, np.full(n, dynamic), np.full(n, low)
        )
        warm = solve_steady_state(
            TOPOLOGY, PARAMS, np.full(n, dynamic), np.full(n, high)
        )
        assert (warm.chip_c >= cool.chip_c - 1e-6).all()

    @settings(max_examples=15, deadline=None)
    @given(dynamic=st.floats(1.0, 14.0))
    def test_entry_temps_monotone_along_chain(self, dynamic):
        n = TOPOLOGY.n_sockets
        field = solve_steady_state(
            TOPOLOGY, PARAMS, np.full(n, dynamic), np.ones(n)
        )
        for chain in TOPOLOGY.coupling_chains():
            temps = field.ambient_c[list(chain.socket_ids)]
            assert (np.diff(temps) >= -1e-9).all()

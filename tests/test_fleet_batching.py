"""Micro-batching differential and edge-case tests.

The batched dispatch path's contract is that batching is a transport
and compute grouping only: against the same workload, the batched
coordinator must produce **bit-identical** answers to the serial
per-message path, and every per-request guarantee (timeouts, retries,
shedding, exactly one terminal answer) must hold for members of a
batch exactly as it does for lone messages.
"""

import pytest

from repro.errors import ConfigurationError, FleetError
from repro.fleet import (
    DEFAULT_MAX_BATCH,
    ENV_BATCH,
    ChassisCompute,
    FleetConfig,
    FleetCoordinator,
    QueryBatch,
    WarmFieldCache,
    batching_from_env,
    check_fleet_events,
    demo_fleet,
    drive_fleet,
    generate_workload,
    query_from_json,
)
from repro.fleet.messages import (
    AnswerStatus,
    PlacementQuery,
    RequestClass,
    WhatIfQuery,
)
from repro.fleet.registry import (
    ChassisSpec,
    FleetRegistry,
    WorkerSpec,
)
from repro.fleet.supervision import SupervisionPolicy


def _answers(coordinator):
    return {
        rid: (answer.status.value, repr(answer.payload))
        for rid, answer in coordinator.answers.items()
    }


def _config(**kw):
    kw.setdefault("retry_jitter_s", 0.0)
    kw.setdefault("log_heartbeats", False)
    return FleetConfig(**kw)


# -- differential oracle: batched == serial, bit for bit ---------------


@pytest.mark.parametrize("seed", [3, 11, 42])
def test_batched_answers_bit_identical_to_serial(seed):
    registry = demo_fleet(n_chassis=2, n_rows=1, replicas=1)
    workload = generate_workload(
        registry,
        seed=seed,
        n_requests=60,
        horizon_s=1.0,
        what_if_fraction=0.3,
    )
    serial = drive_fleet(
        registry,
        workload,
        _config(batch_window_s=0.0, max_batch=1),
        warm_capacity=0,
    )
    batched = drive_fleet(
        registry,
        workload,
        _config(batch_window_s=0.2, max_batch=16),
        warm_capacity=8,
    )
    assert len(serial.answers) == 60
    assert _answers(serial) == _answers(batched)
    assert check_fleet_events(serial.events) == []
    assert check_fleet_events(batched.events) == []
    batch_events = [
        e for e in batched.events if e["type"] == "fleet_batch"
    ]
    assert batch_events
    assert sum(e["size"] for e in batch_events) >= 60
    assert all(e["size"] >= 1 for e in batch_events)


def test_compute_answer_batch_matches_per_query():
    spec = demo_fleet(n_chassis=1, n_rows=1).chassis["c0"]
    serial_compute = ChassisCompute(spec)
    batch_compute = ChassisCompute(spec, warm_capacity=8)
    queries = [
        PlacementQuery(chassis=spec.chassis_id, job_power_w=9.0),
        WhatIfQuery(
            chassis=spec.chassis_id,
            scenarios=((0.4, 10.0), (0.8, 14.0)),
        ),
        PlacementQuery(
            chassis=spec.chassis_id,
            job_power_w=13.5,
            utilization=(0.7,) * spec.build_topology().n_sockets,
        ),
        PlacementQuery(chassis=spec.chassis_id, job_power_w=6.25),
        WhatIfQuery(
            chassis=spec.chassis_id, scenarios=((0.6, 12.0),)
        ),
    ]
    expected = [serial_compute.answer(q) for q in queries]
    payloads, stats = batch_compute.answer_batch(queries)
    assert payloads == expected  # bit-identical floats included
    # Three placements over two distinct states, one stacked eval.
    assert stats["n_states"] == 2
    assert stats["n_evaluations"] == 1
    assert stats["warm_misses"] >= 2


# -- scripted-handle edges: window, timeout, shed, retry ---------------


class BatchScriptedHandle:
    """Hand-driven worker handle that records batch sends."""

    def __init__(self, worker_id):
        self.worker_id = worker_id
        self.sent = []
        self.batches = []
        self.inbox = []

    def start(self, now):
        return False

    def stop(self, now):
        pass

    def send(self, request_id, query, now):
        self.sent.append((request_id, query, now))

    def send_batch(self, batch, now):
        self.batches.append((batch, now))

    def poll(self, now):
        messages, self.inbox = self.inbox, []
        return messages


def make_batching_fleet(replicas=0, **config_kw):
    registry = FleetRegistry(
        chassis={"c0": ChassisSpec(chassis_id="c0")},
        workers=tuple(
            WorkerSpec(worker_id=f"w{i}", chassis_id="c0")
            for i in range(1 + replicas)
        ),
    )
    handles = {
        w.worker_id: BatchScriptedHandle(w.worker_id)
        for w in registry.workers
    }
    coordinator = FleetCoordinator(
        registry=registry,
        handles=handles,
        policy=SupervisionPolicy(
            heartbeat_interval_s=1.0,
            missed_heartbeats=1000,  # supervision is not under test
        ),
        config=_config(**config_kw),
    )
    coordinator.start(0.0)
    return coordinator, handles


def place(cls=RequestClass.INTERACTIVE):
    return PlacementQuery(
        chassis="c0", job_power_w=10.0, request_class=cls
    )


def test_partial_batch_held_until_window_expires():
    coordinator, handles = make_batching_fleet(
        batch_window_s=1.0, max_batch=4
    )
    coordinator.submit(place(), 0.0)
    coordinator.submit(place(), 0.0)
    coordinator.tick(0.5)
    assert handles["w0"].batches == []  # window still open
    assert len(coordinator.queue) == 2
    coordinator.tick(1.5)
    assert len(handles["w0"].batches) == 1
    batch, sent_at = handles["w0"].batches[0]
    assert len(batch) == 2
    assert sent_at == 1.5
    assert coordinator.queue == []


def test_full_batch_flushes_before_window():
    coordinator, handles = make_batching_fleet(
        batch_window_s=10.0, max_batch=3
    )
    for _ in range(4):
        coordinator.submit(place(), 0.0)
    coordinator.tick(0.1)
    # One full chunk ships immediately; the leftover member waits.
    assert [len(b) for b, _ in handles["w0"].batches] == [3]
    assert len(coordinator.queue) == 1


def test_member_timeout_retries_on_replica_only():
    coordinator, handles = make_batching_fleet(
        replicas=1,
        batch_window_s=0.0,
        max_batch=8,
        request_timeout_s=1.0,
        max_attempts=2,
    )
    rid_a = coordinator.submit(place(), 0.0)
    rid_b = coordinator.submit(place(), 0.0)
    coordinator.tick(0.1)
    batch, _ = handles["w0"].batches[0]
    assert set(batch.request_ids) == {rid_a, rid_b}
    # The worker answers only member A, then hangs on B.
    handles["w0"].inbox.append(
        ("answer_batch", batch.batch_id, [(rid_a, {"ok": 1})], {})
    )
    coordinator.tick(0.2)
    assert coordinator.answers[rid_a].status is AnswerStatus.OK
    assert rid_b not in coordinator.answers
    # B times out inside the batch and retries on the replica only.
    coordinator.tick(1.5)
    assert len(handles["w1"].batches) == 1
    retry_batch, _ = handles["w1"].batches[0]
    assert retry_batch.request_ids == (rid_b,)
    assert handles["w0"].batches[-1][0] is batch  # never re-sent to w0
    handles["w1"].inbox.append(
        (
            "answer_batch",
            retry_batch.batch_id,
            [(rid_b, {"ok": 2})],
            {},
        )
    )
    coordinator.tick(1.6)
    assert coordinator.answers[rid_b].status is AnswerStatus.OK
    assert coordinator.answers[rid_b].attempts == 2
    # A late answer from the abandoned first attempt is dropped.
    handles["w0"].inbox.append(
        ("answer_batch", batch.batch_id, [(rid_b, {"ok": 3})], {})
    )
    coordinator.tick(1.7)
    assert coordinator.answers[rid_b].payload == {"ok": 2}
    drops = [
        e for e in coordinator.events if e["type"] == "fleet_drop"
    ]
    assert [e["request_id"] for e in drops] == [rid_b]
    problems = check_fleet_events(coordinator.events)
    assert problems == []


def test_shed_evicts_held_batch_member():
    coordinator, handles = make_batching_fleet(
        batch_window_s=3.0, max_batch=8, max_queue=2
    )
    rid_batch = coordinator.submit(place(RequestClass.BATCH), 0.0)
    coordinator.submit(place(RequestClass.BATCH), 0.0)
    coordinator.tick(0.1)
    assert handles["w0"].batches == []  # both held for the window
    # The queue is full; an interactive arrival evicts the newest
    # BATCH member even though it was already grouped once.
    rid_int = coordinator.submit(place(), 0.2)
    shed = [
        e for e in coordinator.events if e["type"] == "fleet_shed"
    ]
    assert len(shed) == 1
    assert shed[0]["reason"] == "evicted_for_interactive"
    shed_rid = shed[0]["request_id"]
    assert coordinator.answers[shed_rid].status is AnswerStatus.SHED
    # Window expiry flushes the survivors; the shed member is gone.
    coordinator.tick(3.5)
    batch, _ = handles["w0"].batches[0]
    assert shed_rid not in batch.request_ids
    assert set(batch.request_ids) == (
        {rid_batch, rid_int} - {shed_rid}
    )
    # Answer the survivors: every request ends with exactly one
    # terminal (the shed member got its SHED, nothing got two).
    handles["w0"].inbox.append(
        (
            "answer_batch",
            batch.batch_id,
            [(rid, {"ok": rid}) for rid in batch.request_ids],
            {},
        )
    )
    coordinator.tick(3.6)
    assert check_fleet_events(coordinator.events) == []


def test_queue_timeout_inside_window():
    coordinator, handles = make_batching_fleet(
        batch_window_s=100.0, max_batch=8, queue_timeout_s=1.0
    )
    rid = coordinator.submit(place(), 0.0)
    coordinator.tick(0.5)
    assert handles["w0"].batches == []
    coordinator.tick(2.0)  # queue deadline beats the window
    assert handles["w0"].batches == []
    answer = coordinator.answers[rid]
    assert answer.status in (
        AnswerStatus.DEGRADED,
        AnswerStatus.FAILED,
    )
    assert check_fleet_events(coordinator.events) == []


# -- warm-field cache --------------------------------------------------


def test_warm_cache_hits_are_bit_identical():
    spec = demo_fleet(n_chassis=1, n_rows=1).chassis["c0"]
    compute = ChassisCompute(spec, warm_capacity=4)
    query = PlacementQuery(chassis=spec.chassis_id, job_power_w=8.0)
    cold = compute.place(query)
    assert compute.warm.misses == 1
    warm = compute.place(query)
    assert compute.warm.hits == 1
    assert warm == cold


def test_snapshot_state_change_invalidates_warm_cache():
    spec = demo_fleet(n_chassis=1, n_rows=1).chassis["c0"]
    n = spec.build_topology().n_sockets
    compute = ChassisCompute(spec, warm_capacity=4)
    compute.snapshot()  # establishes the base state, retains nothing
    base_fp = compute.state_fingerprint(None)
    compute.place(
        PlacementQuery(chassis=spec.chassis_id, job_power_w=8.0)
    )
    assert base_fp in compute.warm
    # Same state again: no invalidation, the entry survives.
    compute.snapshot()
    assert base_fp in compute.warm
    # A state *change* drops every entry but re-retains the new field.
    changed = (0.9,) * n
    compute.snapshot(utilization=changed)
    assert base_fp not in compute.warm
    assert compute.state_fingerprint(changed) in compute.warm
    assert len(compute.warm) == 1


def test_warm_cache_capacity_zero_disables_retention():
    cache = WarmFieldCache(capacity=0)
    cache.put("fp", object())
    assert len(cache) == 0
    assert cache.get("fp") is None
    assert cache.misses == 1
    with pytest.raises(FleetError):
        WarmFieldCache(capacity=-1)


def test_warm_cache_evicts_least_recently_used():
    cache = WarmFieldCache(capacity=2)
    a, b, c = object(), object(), object()
    cache.put("a", a)
    cache.put("b", b)
    assert cache.get("a") is a  # refresh a; b is now LRU
    cache.put("c", c)
    assert "b" not in cache
    assert cache.get("a") is a
    assert cache.get("c") is c


# -- configuration: env sentinel, validation, wire parsing -------------


def test_batching_env_parsing(monkeypatch):
    monkeypatch.delenv(ENV_BATCH, raising=False)
    assert batching_from_env() == (0.0, 0)
    monkeypatch.setenv(ENV_BATCH, "0.25")
    assert batching_from_env() == (0.25, 0)
    monkeypatch.setenv(ENV_BATCH, "0.25:16")
    assert batching_from_env() == (0.25, 16)
    for bad in ("soon", "0.25:many", "-1.0", "0.25:-2"):
        monkeypatch.setenv(ENV_BATCH, bad)
        with pytest.raises(ConfigurationError):
            batching_from_env()


def test_resolve_batching_precedence(monkeypatch):
    monkeypatch.setenv(ENV_BATCH, "0.25:16")
    # Explicit values win over the environment.
    assert FleetConfig(
        batch_window_s=0.5, max_batch=4
    ).resolve_batching() == (0.5, 4)
    # The -1.0 sentinel defers to the environment.
    assert FleetConfig().resolve_batching() == (0.25, 16)
    monkeypatch.setenv(ENV_BATCH, "0.25")
    assert FleetConfig().resolve_batching() == (
        0.25,
        DEFAULT_MAX_BATCH,
    )
    monkeypatch.delenv(ENV_BATCH)
    # No env, no explicit values: batching stays off.
    assert FleetConfig().resolve_batching() == (0.0, 1)
    with pytest.raises(FleetError):
        FleetConfig(batch_window_s=-0.5)
    with pytest.raises(FleetError):
        FleetConfig(max_batch=-1)


def test_query_batch_validation():
    ok = PlacementQuery(chassis="c0", job_power_w=5.0)
    with pytest.raises(FleetError):
        QueryBatch(
            batch_id=0, chassis="c0", request_ids=(), queries=()
        )
    with pytest.raises(FleetError):
        QueryBatch(
            batch_id=0,
            chassis="c0",
            request_ids=(1, 2),
            queries=(ok,),
        )
    with pytest.raises(FleetError):
        QueryBatch(
            batch_id=0,
            chassis="c0",
            request_ids=(1, 1),
            queries=(ok, ok),
        )
    with pytest.raises(FleetError):
        QueryBatch(
            batch_id=0,
            chassis="c1",
            request_ids=(1,),
            queries=(ok,),
        )
    batch = QueryBatch(
        batch_id=3, chassis="c0", request_ids=(7,), queries=(ok,)
    )
    assert len(batch) == 1


def test_unknown_request_class_is_rejected():
    with pytest.raises(FleetError, match="unknown request_class"):
        query_from_json(
            {
                "kind": "placement",
                "chassis": "c0",
                "job_power_w": 5.0,
                "request_class": "bulk",
            }
        )
    with pytest.raises(FleetError, match="unknown request_class"):
        query_from_json(
            {
                "kind": "what_if",
                "chassis": "c0",
                "scenarios": [[0.5, 10.0]],
                "request_class": "Interactive",
            }
        )
    # Defaults stay per-kind: placements interactive, what-ifs batch.
    placement = query_from_json(
        {"kind": "placement", "chassis": "c0", "job_power_w": 5.0}
    )
    assert placement.request_class is RequestClass.INTERACTIVE
    what_if = query_from_json(
        {
            "kind": "what_if",
            "chassis": "c0",
            "scenarios": [[0.5, 10.0]],
        }
    )
    assert what_if.request_class is RequestClass.BATCH
    explicit = query_from_json(
        {
            "kind": "placement",
            "chassis": "c0",
            "job_power_w": 5.0,
            "request_class": "batch",
        }
    )
    assert explicit.request_class is RequestClass.BATCH

"""Tests for the repro.metrics package."""

import numpy as np
import pytest

from repro.config.presets import smoke
from repro.core import get_scheduler
from repro.errors import ReproError, SimulationError
from repro.metrics.energy import energy_summary, relative_ed2
from repro.metrics.performance import (
    relative_performance,
    relative_runtime_expansion,
    response_time_stats,
    runtime_expansion_stats,
)
from repro.metrics.stats import coefficient_of_variation, summarize
from repro.metrics.zones import zone_report
from repro.sim.results import SimulationResult
from repro.sim.runner import run_once
from repro.workloads.benchmark import BenchmarkSet


@pytest.fixture(scope="module")
def two_results():
    from repro.server.topology import moonshot_sut

    topology = moonshot_sut(n_rows=2)
    params = smoke()
    cf = run_once(
        topology,
        params,
        get_scheduler("CF"),
        BenchmarkSet.COMPUTATION,
        0.6,
    )
    hf = run_once(
        topology,
        params,
        get_scheduler("HF"),
        BenchmarkSet.COMPUTATION,
        0.6,
    )
    return cf, hf


class TestStats:
    def test_cov_known_value(self):
        assert coefficient_of_variation([2.0, 4.0]) == pytest.approx(
            1.0 / 3.0
        )

    def test_cov_of_constant_is_zero(self):
        assert coefficient_of_variation([5.0, 5.0, 5.0]) == 0.0

    def test_cov_empty_rejected(self):
        with pytest.raises(ReproError):
            coefficient_of_variation([])

    def test_cov_zero_mean_rejected(self):
        with pytest.raises(ReproError):
            coefficient_of_variation([-1.0, 1.0])

    def test_summarize(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.mean == pytest.approx(2.0)
        assert s.minimum == 1.0
        assert s.maximum == 3.0
        assert s.count == 3

    def test_summarize_empty_rejected(self):
        with pytest.raises(ReproError):
            summarize([])


class TestPerformanceMetrics:
    def test_relative_performance_reciprocal(self, two_results):
        cf, hf = two_results
        ratio = relative_performance(hf, cf)
        inverse = relative_runtime_expansion(hf, cf)
        assert ratio == pytest.approx(1.0 / inverse)

    def test_self_relative_is_one(self, two_results):
        cf, _ = two_results
        assert relative_performance(cf, cf) == pytest.approx(1.0)

    def test_expansion_stats_ordering(self, two_results):
        cf, _ = two_results
        stats = runtime_expansion_stats(cf)
        assert (
            1.0 - 1e-9
            <= stats.p50
            <= stats.p95
            <= stats.p99
            <= stats.worst
        )

    def test_response_stats_dominate_expansion(self, two_results):
        """Response (with queueing) >= service expansion pointwise."""
        cf, _ = two_results
        expansion = runtime_expansion_stats(cf)
        response = response_time_stats(cf)
        assert response.mean >= expansion.mean - 1e-9
        assert response.p95 >= expansion.p95 - 1e-9
        assert response.worst >= expansion.worst - 1e-9

    def test_response_stats_empty_rejected(self, two_results):
        cf, _ = two_results
        empty = SimulationResult(
            scheduler_name="x",
            params=cf.params,
            topology=cf.topology,
        )
        with pytest.raises(ReproError):
            response_time_stats(empty)

    def test_expansion_stats_empty_rejected(self, two_results):
        cf, _ = two_results
        empty = SimulationResult(
            scheduler_name="x",
            params=cf.params,
            topology=cf.topology,
        )
        with pytest.raises(ReproError):
            runtime_expansion_stats(empty)


class TestEnergyMetrics:
    def test_ed2_definition(self, two_results):
        cf, _ = two_results
        assert cf.ed2_j_s2 == pytest.approx(
            cf.energy_j * cf.mean_runtime_expansion**2
        )

    def test_relative_ed2_self_is_one(self, two_results):
        cf, _ = two_results
        assert relative_ed2(cf, cf) == pytest.approx(1.0)

    def test_energy_summary_consistent(self, two_results):
        cf, _ = two_results
        summary = energy_summary(cf)
        assert summary.energy_j == pytest.approx(cf.energy_j)
        assert summary.average_power_w == pytest.approx(
            cf.average_power_w
        )
        assert summary.energy_per_job_j == pytest.approx(
            cf.energy_j / cf.n_jobs_completed
        )


class TestZoneMetrics:
    def test_work_fractions_sum_to_one(self, two_results):
        cf, _ = two_results
        report = zone_report(cf)
        assert report.front_work + report.back_work == pytest.approx(
            1.0
        )
        assert 0.0 <= report.even_work <= 1.0

    def test_frequencies_in_unit_range(self, two_results):
        cf, _ = two_results
        report = zone_report(cf)
        for value in (
            report.front_freq,
            report.back_freq,
            report.even_freq,
        ):
            assert 1100 / 1900 - 1e-9 <= value <= 1.0 + 1e-9

    def test_cf_front_loads(self, two_results):
        cf, _ = two_results
        report = zone_report(cf)
        assert report.front_work > 0.5

    def test_hf_back_loads(self, two_results):
        _, hf = two_results
        report = zone_report(hf)
        assert report.back_work > 0.5


class TestSimulationResultGuards:
    def test_empty_result_rejects_metrics(self, two_results):
        cf, _ = two_results
        empty = SimulationResult(
            scheduler_name="x",
            params=cf.params,
            topology=cf.topology,
        )
        with pytest.raises(SimulationError):
            _ = empty.mean_runtime_expansion
        with pytest.raises(SimulationError):
            _ = empty.average_power_w

    def test_work_fraction_of_empty_is_zero(self, two_results):
        cf, _ = two_results
        empty = SimulationResult(
            scheduler_name="x",
            params=cf.params,
            topology=cf.topology,
        )
        mask = np.ones(cf.topology.n_sockets, dtype=bool)
        assert empty.work_fraction(mask) == 0.0

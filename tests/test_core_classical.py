"""Tests for the classical baseline schedulers."""

import numpy as np
import pytest

from repro.core.classical import FirstFit, LeastRecentlyUsed, RoundRobin
from repro.sim.state import SimulationState
from repro.workloads.job import Job
from repro.workloads.pcmark import PCMARK_APPS


@pytest.fixture
def state(small_sut, smoke_params):
    return SimulationState(small_sut, smoke_params)


def make_job(job_id=0):
    return Job(
        job_id=job_id, app=PCMARK_APPS[0], arrival_s=0.0, work_ms=5.0
    )


def reset(policy, state):
    policy.reset(state, np.random.default_rng(0))
    return policy


class TestFirstFit:
    def test_lowest_id(self, state):
        policy = reset(FirstFit(), state)
        idle = np.array([7, 3, 12])
        assert policy.select_socket(make_job(), idle, state) == 3

    def test_skips_busy(self, state):
        policy = reset(FirstFit(), state)
        state.assign(make_job(0), 0)
        idle = state.idle_socket_ids()
        assert policy.select_socket(make_job(1), idle, state) == 1


class TestRoundRobin:
    def test_rotates(self, state):
        policy = reset(RoundRobin(), state)
        idle = state.idle_socket_ids()
        first = policy.select_socket(make_job(0), idle, state)
        second = policy.select_socket(make_job(1), idle, state)
        third = policy.select_socket(make_job(2), idle, state)
        assert (first, second, third) == (0, 1, 2)

    def test_wraps_around(self, state):
        policy = reset(RoundRobin(), state)
        policy._next = state.n_sockets - 1
        idle = state.idle_socket_ids()
        last = policy.select_socket(make_job(0), idle, state)
        assert last == state.n_sockets - 1
        wrapped = policy.select_socket(make_job(1), idle, state)
        assert wrapped == 0

    def test_skips_busy_sockets(self, state):
        policy = reset(RoundRobin(), state)
        state.assign(make_job(0), 0)
        state.assign(make_job(1), 1)
        idle = state.idle_socket_ids()
        assert policy.select_socket(make_job(2), idle, state) == 2

    def test_reset_restarts_rotation(self, state):
        policy = reset(RoundRobin(), state)
        policy.select_socket(make_job(0), state.idle_socket_ids(), state)
        reset(policy, state)
        assert (
            policy.select_socket(
                make_job(1), state.idle_socket_ids(), state
            )
            == 0
        )


class TestLeastRecentlyUsed:
    def test_prefers_never_used(self, state):
        policy = reset(LeastRecentlyUsed(), state)
        state.time_s = 1.0
        first = policy.select_socket(
            make_job(0), state.idle_socket_ids(), state
        )
        state.time_s = 2.0
        second = policy.select_socket(
            make_job(1), state.idle_socket_ids(), state
        )
        assert first != second

    def test_cycles_through_all_before_reuse(self, state):
        policy = reset(LeastRecentlyUsed(), state)
        seen = set()
        for i in range(state.n_sockets):
            state.time_s = float(i)
            seen.add(
                policy.select_socket(
                    make_job(i), state.idle_socket_ids(), state
                )
            )
        assert len(seen) == state.n_sockets

    def test_oldest_first_on_reuse(self, state):
        policy = reset(LeastRecentlyUsed(), state)
        idle = state.idle_socket_ids()
        state.time_s = 0.0
        a = policy.select_socket(make_job(0), idle, state)
        for i in range(1, state.n_sockets):
            state.time_s = float(i)
            policy.select_socket(make_job(i), idle, state)
        state.time_s = 100.0
        again = policy.select_socket(make_job(99), idle, state)
        assert again == a

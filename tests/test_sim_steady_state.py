"""Tests for the closed-form steady-state solver."""

import numpy as np
import pytest

from repro.config.parameters import SimulationParameters
from repro.errors import SimulationError
from repro.sim.steady_state import (
    SteadyStateField,
    solve_steady_state,
    uniform_load_field,
)
from repro.thermal.dynamics import TwoNodeThermalState
from repro.workloads.power_model import leakage_power


PARAMS = SimulationParameters()


class TestUniformLoadField:
    def test_idle_server_near_inlet(self, small_sut):
        field = uniform_load_field(small_sut, PARAMS, 0.0, 0.0)
        # Gated power still warms the air slightly downstream.
        assert field.ambient_c.min() == pytest.approx(18.0)
        assert field.ambient_c.max() < 35.0

    def test_monotone_in_utilization(self, small_sut):
        low = uniform_load_field(small_sut, PARAMS, 0.2, 8.0)
        high = uniform_load_field(small_sut, PARAMS, 0.9, 8.0)
        assert (high.chip_c >= low.chip_c - 1e-9).all()

    def test_downstream_hotter(self, small_sut):
        field = uniform_load_field(small_sut, PARAMS, 0.8, 8.0)
        front = small_sut.front_half_mask()
        assert (
            field.ambient_c[~front].mean()
            > field.ambient_c[front].mean()
        )

    def test_hottest_socket_is_downstream(self, small_sut):
        field = uniform_load_field(small_sut, PARAMS, 0.9, 10.0)
        hottest = field.hottest_socket
        assert small_sut.chain_pos_array[hottest] >= 3

    def test_throttled_mask(self, small_sut):
        cold = uniform_load_field(small_sut, PARAMS, 0.1, 5.0)
        assert not cold.throttled_mask(95.0).any()
        hot = uniform_load_field(small_sut, PARAMS, 1.0, 14.0)
        assert hot.chip_c.max() > cold.chip_c.max()

    def test_invalid_inputs_rejected(self, small_sut):
        with pytest.raises(SimulationError):
            uniform_load_field(small_sut, PARAMS, 1.5, 5.0)
        with pytest.raises(SimulationError):
            uniform_load_field(small_sut, PARAMS, 0.5, -1.0)


class TestSolveSteadyState:
    def test_shape_validation(self, small_sut):
        with pytest.raises(SimulationError):
            solve_steady_state(small_sut, PARAMS, np.zeros(3))
        with pytest.raises(SimulationError):
            solve_steady_state(
                small_sut,
                PARAMS,
                np.zeros(small_sut.n_sockets),
                utilization=np.zeros(3),
            )
        with pytest.raises(SimulationError):
            solve_steady_state(
                small_sut,
                PARAMS,
                np.zeros(small_sut.n_sockets),
                utilization=np.full(small_sut.n_sockets, 2.0),
            )

    def test_power_includes_leakage_fixed_point(self, small_sut):
        field = uniform_load_field(small_sut, PARAMS, 1.0, 8.0)
        expected_leak = (
            leakage_power(field.chip_c, 1.0) * small_sut.tdp_array
        )
        np.testing.assert_allclose(
            field.power_w, 8.0 + expected_leak, rtol=0.02
        )

    def test_matches_transient_convergence(self, small_sut):
        """The closed form equals the transient model run to steady
        state with the same (frozen) powers."""
        field = uniform_load_field(small_sut, PARAMS, 1.0, 9.0)
        state = TwoNodeThermalState.at_ambient(
            small_sut.n_sockets, PARAMS.inlet_c, socket_tau_s=0.5
        )
        theta = (
            small_sut.theta_offset_array
            + small_sut.theta_slope_array * field.power_w
        )
        ambient = field.ambient_c
        for _ in range(4000):
            state.step(
                0.01,
                ambient,
                field.power_w,
                PARAMS.r_int,
                small_sut.r_ext_array,
                theta,
            )
        np.testing.assert_allclose(
            state.chip_c, field.chip_c, atol=0.1
        )

    def test_front_loading_heats_back_more_than_back_loading(
        self, small_sut
    ):
        """The asymmetry at the heart of the paper, in closed form."""
        n = small_sut.n_sockets
        front = small_sut.front_half_mask()
        dynamic = np.full(n, 10.0)
        front_only = solve_steady_state(
            small_sut, PARAMS, dynamic, front.astype(float)
        )
        back_only = solve_steady_state(
            small_sut, PARAMS, dynamic, (~front).astype(float)
        )
        # Front-loading raises the mean entry temperature of the OTHER
        # half far more than back-loading does.
        front_harm = front_only.ambient_c[~front].mean()
        back_harm = back_only.ambient_c[front].mean()
        assert front_harm > back_harm + 10.0


class TestWarmStart:
    @staticmethod
    def _power(small_sut, w):
        return np.full(small_sut.n_sockets, w)

    def test_explicit_default_start_is_bit_identical(self, small_sut):
        """Passing the historical 60 degC uniform start explicitly must
        reproduce the default bit for bit."""
        power = self._power(small_sut, 9.0)
        default = solve_steady_state(small_sut, PARAMS, power)
        explicit = solve_steady_state(
            small_sut,
            PARAMS,
            power,
            initial_chip_c=np.full(small_sut.n_sockets, 60.0),
        )
        assert np.array_equal(default.chip_c, explicit.chip_c)
        assert np.array_equal(default.ambient_c, explicit.ambient_c)
        assert np.array_equal(default.power_w, explicit.power_w)

    def test_warm_start_from_neighbour_converges_close(self, small_sut):
        cold = solve_steady_state(
            small_sut, PARAMS, self._power(small_sut, 10.0)
        )
        warm = solve_steady_state(
            small_sut,
            PARAMS,
            self._power(small_sut, 10.0),
            initial_chip_c=solve_steady_state(
                small_sut, PARAMS, self._power(small_sut, 9.5)
            ).chip_c,
        )
        # Both runs stop at the fixed-point tolerance, from different
        # starts — agreement is bounded by that tolerance, not exact.
        np.testing.assert_allclose(
            warm.chip_c, cold.chip_c, rtol=0, atol=1e-2
        )

    def test_wrong_shape_rejected(self, small_sut):
        with pytest.raises(SimulationError):
            solve_steady_state(
                small_sut,
                PARAMS,
                self._power(small_sut, 8.0),
                initial_chip_c=np.zeros(small_sut.n_sockets + 1),
            )

"""Bit-identity oracle: telemetry and profiling are pure observers.

The observability layer touches the hottest paths of the engine (the
step driver is swapped for an instrumented variant, emission sites are
threaded through placement, DVFS, thermals and faults).  Its cardinal
contract is that a run with telemetry *and* profiling fully enabled
reproduces the exact float trajectory of a bare run.

This suite pins that contract over the same 19-configuration oracle as
``test_fault_free_identity`` — every registered scheduler, every
benchmark set and the load extremes — comparing full content
fingerprints.
"""

import pytest

from repro.config.presets import smoke
from repro.core import all_scheduler_names, get_scheduler
from repro.obs.session import TelemetryConfig
from repro.obs.writer import read_events
from repro.sim.fingerprint import result_fingerprint
from repro.sim.runner import run_once
from repro.workloads.benchmark import BenchmarkSet


def _oracle_configs():
    """The 19 (scheduler, benchmark set, load) oracle configurations."""
    configs = [
        (name, BenchmarkSet.COMPUTATION, 0.5)
        for name in all_scheduler_names()
    ]
    for benchmark_set in (
        BenchmarkSet.COMPUTATION,
        BenchmarkSet.GENERAL_PURPOSE,
        BenchmarkSet.STORAGE,
    ):
        for load in (0.3, 0.9):
            configs.append(("CF", benchmark_set, load))
    return configs


def test_oracle_covers_nineteen_configs():
    assert len(_oracle_configs()) == 19


@pytest.mark.parametrize(
    "scheme,benchmark_set,load",
    _oracle_configs(),
    ids=lambda value: getattr(value, "value", value),
)
def test_telemetry_run_is_bit_identical(
    tmp_path, small_sut, scheme, benchmark_set, load
):
    params = smoke(seed=4)
    bare = run_once(
        small_sut,
        params,
        get_scheduler(scheme),
        benchmark_set,
        load,
    )
    observed = run_once(
        small_sut,
        params,
        get_scheduler(scheme),
        benchmark_set,
        load,
        telemetry=TelemetryConfig(directory=str(tmp_path), profile=True),
    )
    # The machinery ran: a validated event log and a profile exist...
    events = read_events(
        tmp_path / "run-r0.jsonl", strict=True, validate=True
    )
    assert events[0]["type"] == "run_start"
    assert events[-1]["type"] == "run_end"
    assert bare.profile is None
    assert observed.profile is not None
    assert observed.profile.n_steps > 0
    # ...but the trajectory is untouched, to the last bit.
    assert result_fingerprint(bare) == result_fingerprint(observed)


def test_two_telemetry_runs_write_identical_bytes(tmp_path, small_sut):
    """Determinism of the stream itself: same configuration, same
    bytes (modulo the run-name field, identical here by construction)."""
    params = smoke(seed=4)
    logs = []
    for sub in ("a", "b"):
        directory = tmp_path / sub
        run_once(
            small_sut,
            params,
            get_scheduler("CF"),
            BenchmarkSet.COMPUTATION,
            0.5,
            telemetry=str(directory),
        )
        logs.append((directory / "run-r0.jsonl").read_bytes())
    assert logs[0] == logs[1]

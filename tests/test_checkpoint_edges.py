"""Checkpoint durability edge cases: corruption, staleness, bad disks.

``tests/test_checkpoint_resume.py`` covers the happy resume path; this
module attacks the failure modes — every poisoned artifact must read as
a clean miss (recompute), and unwritable storage must raise a
structured error, never corrupt silently.
"""

import dataclasses
import json
import pickle

import pytest

from repro.config.presets import smoke
from repro.core import get_scheduler
from repro.errors import SimulationError
from repro.obs.manifest import manifest_for_point
from repro.sim.checkpoint import CHECKPOINT_SUFFIX, SweepCheckpoint
from repro.sim.runner import run_once
from repro.workloads.benchmark import BenchmarkSet


@pytest.fixture(scope="module")
def small_sut():
    # Shadows the function-scoped conftest fixture: one simulation
    # result serves every test in this module.
    from repro.server.topology import moonshot_sut

    return moonshot_sut(n_rows=2)


@pytest.fixture(scope="module")
def result(small_sut):
    return run_once(
        small_sut,
        smoke(seed=4),
        get_scheduler("CF"),
        BenchmarkSet.COMPUTATION,
        0.5,
    )


def _poisoned_load(tmp_path, payload: bytes):
    """Write raw bytes as a checkpoint and try to load it."""
    checkpoint = SweepCheckpoint(tmp_path)
    path = tmp_path / f"point{CHECKPOINT_SUFFIX}"
    path.write_bytes(payload)
    loaded = checkpoint.load("point")
    return checkpoint, path, loaded


def test_garbage_bytes_dropped(tmp_path):
    checkpoint, path, loaded = _poisoned_load(
        tmp_path, b"\x00not a pickle at all"
    )
    assert loaded is None
    assert checkpoint.dropped == 1
    assert not path.exists()  # the poison was removed, not left to rot


def test_truncated_pickle_dropped(tmp_path, result):
    valid = pickle.dumps(result, pickle.HIGHEST_PROTOCOL)
    checkpoint, path, loaded = _poisoned_load(
        tmp_path, valid[: len(valid) // 2]
    )
    assert loaded is None
    assert checkpoint.dropped == 1
    assert not path.exists()


def test_wrong_type_pickle_dropped(tmp_path):
    checkpoint, path, loaded = _poisoned_load(tmp_path, pickle.dumps(42))
    assert loaded is None
    assert checkpoint.dropped == 1
    assert not path.exists()


def test_version_mismatch_sidecar_drops_checkpoint(
    tmp_path, result, small_sut
):
    """A checkpoint whose manifest sidecar names another package
    version was written by incompatible code: both files go."""
    checkpoint = SweepCheckpoint(tmp_path)
    manifest = manifest_for_point(
        small_sut,
        smoke(seed=4),
        "CF",
        BenchmarkSet.COMPUTATION,
        0.5,
        result=result,
    )
    checkpoint.save("point", result, manifest=manifest)
    assert checkpoint.load("point") is not None

    stale = dataclasses.replace(manifest, package_version="0.0.0-other")
    stale.save(checkpoint.manifest_path("point"))
    assert checkpoint.load("point") is None
    assert checkpoint.dropped == 1
    assert not checkpoint._path("point").exists()
    assert not checkpoint.manifest_path("point").exists()


def test_malformed_sidecar_drops_checkpoint(tmp_path, result):
    checkpoint = SweepCheckpoint(tmp_path)
    checkpoint.save("point", result)
    checkpoint.manifest_path("point").write_text(
        json.dumps({"not": "a manifest"}), encoding="utf-8"
    )
    assert checkpoint.load("point") is None
    assert checkpoint.dropped == 1
    assert not checkpoint._path("point").exists()


def test_valid_sidecar_passes_version_guard(tmp_path, result, small_sut):
    checkpoint = SweepCheckpoint(tmp_path)
    manifest = manifest_for_point(
        small_sut, smoke(seed=4), "CF", BenchmarkSet.COMPUTATION, 0.5
    )
    checkpoint.save("point", result, manifest=manifest)
    assert checkpoint.load("point") is not None
    assert checkpoint.loads == 1
    assert checkpoint.dropped == 0


def test_unwritable_directory_raises_structured_error(tmp_path, result):
    """A path routed *through a file* cannot become a directory; the
    save must surface a SimulationError, not a raw OSError.  (Running
    as root defeats permission-bit fixtures, so the obstruction is
    structural.)"""
    obstruction = tmp_path / "occupied"
    obstruction.write_text("a file, not a directory")
    checkpoint = SweepCheckpoint(obstruction / "sub")
    with pytest.raises(SimulationError, match="cannot write checkpoints"):
        checkpoint.save("point", result)
    assert checkpoint.saves == 0


def test_checkpoint_path_must_not_be_a_file(tmp_path):
    obstruction = tmp_path / "occupied"
    obstruction.write_text("a file, not a directory")
    with pytest.raises(SimulationError, match="not a directory"):
        SweepCheckpoint(obstruction)


def test_len_counts_only_finished_points(tmp_path, result):
    checkpoint = SweepCheckpoint(tmp_path)
    assert len(checkpoint) == 0
    checkpoint.save("a", result)
    checkpoint.save("b", result)
    (tmp_path / f".tmp-stray{CHECKPOINT_SUFFIX}").write_bytes(b"partial")
    (tmp_path / "unrelated.txt").write_text("x")
    assert len(checkpoint) == 2


class TestStrictLoading:
    """load_strict surfaces typed corruption instead of hiding it."""

    def poison(self, tmp_path, payload: bytes):
        path = tmp_path / f"point{CHECKPOINT_SUFFIX}"
        path.write_bytes(payload)
        return SweepCheckpoint(tmp_path), path

    def test_missing_checkpoint_is_a_plain_cold_start(self, tmp_path):
        checkpoint = SweepCheckpoint(tmp_path)
        assert checkpoint.load_strict("absent") is None

    def test_garbage_raises_typed_error_naming_the_path(self, tmp_path):
        from repro.errors import CheckpointCorruptionError

        checkpoint, path = self.poison(tmp_path, b"\xffjunk")
        with pytest.raises(CheckpointCorruptionError) as info:
            checkpoint.load_strict("point")
        assert info.value.path == str(path)
        assert "unpickling failed" in info.value.reason
        assert str(path) in str(info.value)

    def test_typed_error_is_a_simulation_error(self, tmp_path):
        from repro.errors import CheckpointCorruptionError

        assert issubclass(CheckpointCorruptionError, SimulationError)

    def test_poison_dropped_so_next_recovery_is_cold(self, tmp_path):
        from repro.errors import CheckpointCorruptionError

        checkpoint, path = self.poison(tmp_path, b"\xffjunk")
        with pytest.raises(CheckpointCorruptionError):
            checkpoint.load_strict("point")
        assert not path.exists()
        assert checkpoint.dropped == 1
        # The second attempt is a clean cold start, not a crash loop.
        assert checkpoint.load_strict("point") is None

    def test_wrong_payload_type_raises(self, tmp_path):
        from repro.errors import CheckpointCorruptionError

        checkpoint, _ = self.poison(tmp_path, pickle.dumps(42))
        with pytest.raises(CheckpointCorruptionError, match="payload"):
            checkpoint.load_strict("point")

    def test_expected_type_is_configurable(self, tmp_path):
        from repro.fleet.compute import ChassisSnapshot

        snapshot = ChassisSnapshot(
            chassis_id="c0",
            t=0.0,
            utilization=(0.5,),
            chip_c=(40.0,),
            power_w=(20.0,),
        )
        checkpoint = SweepCheckpoint(
            tmp_path, expected_type=ChassisSnapshot
        )
        checkpoint.save("snap", snapshot)
        assert checkpoint.load_strict("snap") == snapshot

    def test_expected_type_rejects_foreign_payload(self, tmp_path, result):
        from repro.errors import CheckpointCorruptionError
        from repro.fleet.compute import ChassisSnapshot

        SweepCheckpoint(tmp_path).save("point", result)
        strict = SweepCheckpoint(
            tmp_path, expected_type=ChassisSnapshot
        )
        with pytest.raises(
            CheckpointCorruptionError, match="ChassisSnapshot"
        ):
            strict.load_strict("point")

    def test_malformed_sidecar_raises_with_sidecar_path(
        self, tmp_path, result
    ):
        from repro.errors import CheckpointCorruptionError

        checkpoint = SweepCheckpoint(tmp_path)
        checkpoint.save("point", result)
        sidecar = checkpoint.manifest_path("point")
        sidecar.write_text("{not json")
        with pytest.raises(CheckpointCorruptionError) as info:
            checkpoint.load_strict("point")
        assert info.value.path == str(sidecar)

    def test_lenient_load_still_hides_corruption(self, tmp_path):
        checkpoint, path = self.poison(tmp_path, b"\xffjunk")
        assert checkpoint.load("point") is None
        assert not path.exists()

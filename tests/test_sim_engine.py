"""Integration tests for the simulation engine."""

import numpy as np
import pytest

from repro.config.presets import smoke
from repro.core import get_scheduler
from repro.errors import SimulationError
from repro.server.topology import moonshot_sut, two_socket_system
from repro.sim.engine import Simulation
from repro.sim.runner import run_once
from repro.workloads.arrivals import ArrivalProcess
from repro.workloads.benchmark import BenchmarkSet
from repro.workloads.job import Job
from repro.workloads.pcmark import PCMARK_APPS


def run_smoke(topology, scheduler_name="CF", load=0.5, **overrides):
    params = smoke().with_overrides(**overrides)
    return run_once(
        topology,
        params,
        get_scheduler(scheduler_name),
        BenchmarkSet.COMPUTATION,
        load,
    )


class TestEngineBasics:
    def test_jobs_complete(self, small_sut):
        result = run_smoke(small_sut)
        assert result.n_jobs_completed > 0
        assert result.n_jobs_submitted >= result.n_jobs_completed

    def test_runtime_expansion_at_least_one(self, small_sut):
        result = run_smoke(small_sut)
        assert result.mean_runtime_expansion >= 1.0 - 1e-9
        for job in result.completed_jobs:
            assert job.runtime_expansion >= 1.0 - 1e-9

    def test_jobs_finish_after_start(self, small_sut):
        result = run_smoke(small_sut)
        for job in result.completed_jobs:
            assert job.finish_s > job.start_s >= job.arrival_s

    def test_deterministic_given_seed(self, small_sut):
        a = run_smoke(small_sut, seed=3)
        b = run_smoke(small_sut, seed=3)
        assert a.mean_runtime_expansion == b.mean_runtime_expansion
        assert a.energy_j == b.energy_j

    def test_different_seed_different_workload(self, small_sut):
        a = run_smoke(small_sut, seed=3)
        b = run_smoke(small_sut, seed=4)
        assert a.n_jobs_completed != b.n_jobs_completed

    def test_energy_positive_and_bounded(self, small_sut):
        result = run_smoke(small_sut)
        assert result.energy_j > 0
        max_power = small_sut.tdp_array.sum()
        assert result.average_power_w < max_power

    def test_utilization_tracks_load(self, small_sut):
        low = run_smoke(small_sut, load=0.2)
        high = run_smoke(small_sut, load=0.8)
        assert low.utilization < high.utilization
        assert 0.05 < low.utilization < 0.5
        assert high.utilization > 0.4

    def test_work_done_conservation(self, small_sut):
        """Retired work equals the summed nominal durations of jobs."""
        result = run_smoke(small_sut, load=0.3)
        completed_work = sum(j.work_ms for j in result.completed_jobs)
        # Work retired in-window >= work of in-window completions minus
        # partial jobs at the window edges; allow generous tolerance.
        assert result.work_done.sum() == pytest.approx(
            completed_work, rel=0.25
        )

    def test_busy_time_below_span(self, small_sut):
        result = run_smoke(small_sut)
        assert (
            result.busy_time_s <= result.measured_span_s + 1e-9
        ).all()

    def test_boost_time_below_busy_time(self, small_sut):
        result = run_smoke(small_sut)
        assert (result.boost_time_s <= result.busy_time_s + 1e-9).all()

    def test_chip_temperatures_physical(self, small_sut):
        result = run_smoke(small_sut, load=0.8)
        assert result.max_chip_c.max() < 130.0
        assert result.max_chip_c.max() > 18.0


class TestThermalBehaviour:
    def test_downstream_hotter_at_load(self, small_sut):
        result = run_smoke(small_sut, load=0.8)
        front = small_sut.front_half_mask()
        assert (
            result.max_chip_c[~front].mean()
            > result.max_chip_c[front].mean()
        )

    def test_downstream_runs_slower(self, small_sut):
        result = run_smoke(small_sut, load=0.8)
        front = small_sut.front_half_mask()
        assert result.average_relative_frequency(
            front
        ) > result.average_relative_frequency(~front)

    def test_no_throttle_when_idle_system(self, small_sut):
        result = run_smoke(small_sut, load=0.05, warm_start=False)
        # Nearly idle system: every executed job runs at/near boost.
        assert result.average_relative_frequency() > 0.95


class TestSchedulerContract:
    def test_engine_rejects_busy_placement(self, small_sut):
        class BadScheduler:
            name = "bad"

            def reset(self, state, rng):
                pass

            def select_socket(self, job, idle_ids, state):
                return 0  # always socket 0, even when busy

        params = smoke()
        arrivals = ArrivalProcess(
            benchmark_set=BenchmarkSet.COMPUTATION,
            load=0.9,
            n_sockets=small_sut.n_sockets,
            seed=0,
            duration_scale=params.duration_scale,
        )
        jobs = arrivals.generate(params.sim_time_s)
        sim = Simulation(small_sut, params, BadScheduler())
        with pytest.raises(SimulationError):
            sim.run(jobs)

    def test_no_completions_raises(self, small_sut):
        sim = Simulation(small_sut, smoke(), get_scheduler("CF"))
        lone = [
            Job(
                job_id=0,
                app=PCMARK_APPS[0],
                arrival_s=2.9,
                work_ms=1e9,
            )
        ]
        with pytest.raises(SimulationError):
            sim.run(lone)

    def test_all_schedulers_run(self, small_sut):
        from repro.core import all_scheduler_names

        for name in all_scheduler_names():
            result = run_smoke(small_sut, scheduler_name=name, load=0.4)
            assert result.n_jobs_completed > 0, name


class TestWarmStart:
    def test_warm_start_prewarms_back_zones(self, small_sut):
        params = smoke()
        arrivals = ArrivalProcess(
            benchmark_set=BenchmarkSet.COMPUTATION,
            load=0.8,
            n_sockets=small_sut.n_sockets,
            seed=0,
            duration_scale=params.duration_scale,
        )
        jobs = arrivals.generate(params.sim_time_s)
        from repro.sim.state import SimulationState
        from repro.sim.engine import _warm_start

        state = SimulationState(small_sut, params)
        _warm_start(state, sorted(jobs, key=lambda j: j.arrival_s))
        front = small_sut.front_half_mask()
        assert state.ambient_c[~front].mean() > state.ambient_c[
            front
        ].mean()
        assert state.busy_ema.mean() > 0.3

    def test_cold_start_runs_cooler_early(self, small_sut):
        warm = run_smoke(small_sut, load=0.7, warm_start=True)
        cold = run_smoke(small_sut, load=0.7, warm_start=False)
        assert (
            cold.max_chip_c.mean() <= warm.max_chip_c.mean() + 1e-9
        )


class TestTwoSocketSystems:
    def test_coupled_system_simulates(self):
        topo = two_socket_system(coupled=True)
        result = run_smoke(topo, load=0.6)
        assert result.n_jobs_completed > 0

    def test_uncoupled_system_simulates(self):
        topo = two_socket_system(coupled=False)
        result = run_smoke(topo, load=0.6)
        assert result.n_jobs_completed > 0

"""Tests for repro.workloads.traces (Xperf-style capture/replay)."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.pcmark import PCMARK_APPS
from repro.workloads.traces import (
    EmpiricalArrivalModel,
    XperfTrace,
    arrival_model_from_trace,
    capture_trace,
)

APP = PCMARK_APPS[0]


class TestXperfTrace:
    def test_busy_fraction(self):
        trace = XperfTrace(
            app_name="x",
            duration_s=10.0,
            busy_intervals_s=((0.0, 2.0), (5.0, 8.0)),
        )
        assert trace.busy_fraction == pytest.approx(0.5)

    def test_job_durations(self):
        trace = XperfTrace(
            app_name="x",
            duration_s=10.0,
            busy_intervals_s=((0.0, 1.0), (2.0, 4.0)),
        )
        assert trace.job_durations_s == [1.0, 2.0]

    def test_inter_arrival_gaps(self):
        trace = XperfTrace(
            app_name="x",
            duration_s=10.0,
            busy_intervals_s=((0.0, 1.0), (3.0, 4.0), (7.0, 8.0)),
        )
        assert trace.inter_arrival_gaps_s == [3.0, 4.0]

    def test_overlapping_intervals_rejected(self):
        with pytest.raises(WorkloadError):
            XperfTrace(
                app_name="x",
                duration_s=10.0,
                busy_intervals_s=((0.0, 3.0), (2.0, 4.0)),
            )

    def test_interval_beyond_duration_rejected(self):
        with pytest.raises(WorkloadError):
            XperfTrace(
                app_name="x",
                duration_s=1.0,
                busy_intervals_s=((0.0, 2.0),),
            )

    def test_empty_interval_rejected(self):
        with pytest.raises(WorkloadError):
            XperfTrace(
                app_name="x",
                duration_s=1.0,
                busy_intervals_s=((0.5, 0.5),),
            )


class TestCaptureTrace:
    def test_busy_fraction_tracks_load(self):
        trace = capture_trace(APP, duration_s=60.0, load=0.5, seed=3)
        assert trace.busy_fraction == pytest.approx(0.5, abs=0.1)

    def test_intervals_sorted_non_overlapping(self):
        trace = capture_trace(APP, duration_s=30.0, load=0.7, seed=1)
        previous_end = 0.0
        for start, end in trace.busy_intervals_s:
            assert start >= previous_end
            assert end > start
            previous_end = end

    def test_deterministic(self):
        a = capture_trace(APP, 10.0, 0.5, seed=9)
        b = capture_trace(APP, 10.0, 0.5, seed=9)
        assert a.busy_intervals_s == b.busy_intervals_s

    def test_high_load_merges_intervals(self):
        """Back-to-back jobs fuse: fewer intervals than jobs at load 1."""
        trace = capture_trace(APP, duration_s=30.0, load=1.0, seed=2)
        mean_interval = (
            sum(trace.job_durations_s) / len(trace.job_durations_s)
        )
        assert mean_interval > APP.mean_duration_ms / 1000.0

    def test_invalid_inputs_rejected(self):
        with pytest.raises(WorkloadError):
            capture_trace(APP, 0.0, 0.5)
        with pytest.raises(WorkloadError):
            capture_trace(APP, 10.0, 0.0)


class TestArrivalModelFromTrace:
    def test_replay_statistics_similar(self):
        trace = capture_trace(APP, duration_s=120.0, load=0.4, seed=5)
        model = arrival_model_from_trace(trace, APP)
        jobs = model.generate(120.0, seed=6)
        replay_mean = sum(j.work_ms for j in jobs) / len(jobs) / 1000.0
        assert replay_mean == pytest.approx(
            model.mean_duration_s, rel=0.3
        )

    def test_replay_sorted_arrivals(self):
        trace = capture_trace(APP, duration_s=60.0, load=0.4, seed=5)
        model = arrival_model_from_trace(trace, APP)
        jobs = model.generate(30.0, seed=1)
        times = [j.arrival_s for j in jobs]
        assert times == sorted(times)

    def test_too_short_trace_rejected(self):
        trace = XperfTrace(
            app_name=APP.name,
            duration_s=1.0,
            busy_intervals_s=((0.0, 0.5),),
        )
        with pytest.raises(WorkloadError):
            arrival_model_from_trace(trace, APP)

    def test_empirical_model_validation(self):
        with pytest.raises(WorkloadError):
            EmpiricalArrivalModel(app=APP, durations_s=[], gaps_s=[1.0])
        with pytest.raises(WorkloadError):
            EmpiricalArrivalModel(
                app=APP, durations_s=[1.0], gaps_s=[-1.0]
            )

    def test_generate_respects_horizon(self):
        trace = capture_trace(APP, duration_s=60.0, load=0.4, seed=5)
        model = arrival_model_from_trace(trace, APP)
        jobs = model.generate(10.0, seed=2)
        assert all(j.arrival_s < 10.0 for j in jobs)

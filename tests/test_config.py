"""Tests for repro.config (parameters and presets)."""

import pytest

from repro.config.parameters import (
    SimulationParameters,
    TABLE_III_ROWS,
    table_iii_rows,
)
from repro.config.presets import paper_faithful, scaled, smoke
from repro.errors import ConfigurationError


class TestSimulationParameters:
    def test_table_iii_defaults(self):
        params = SimulationParameters()
        assert params.temperature_limit_c == 95.0
        assert params.power_manager_interval_s == 0.001
        assert params.chip_tau_s == 0.005
        assert params.socket_tau_s == 30.0
        assert params.inlet_c == 18.0
        assert params.socket_airflow_cfm == 6.35
        assert params.r_int == 0.205
        assert params.sim_time_s == 1800.0

    def test_measured_span(self):
        params = SimulationParameters(sim_time_s=100.0, warmup_s=20.0)
        assert params.measured_span_s == pytest.approx(80.0)

    def test_with_overrides(self):
        params = SimulationParameters().with_overrides(seed=42)
        assert params.seed == 42
        assert params.temperature_limit_c == 95.0

    def test_limit_below_inlet_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationParameters(temperature_limit_c=10.0, inlet_c=18.0)

    def test_boost_threshold_below_inlet_allowed(self):
        """Threshold at/below inlet = boost never grantable (legal)."""
        params = SimulationParameters(boost_chip_temp_limit_c=10.0)
        assert params.boost_chip_temp_limit_c == 10.0

    def test_non_positive_boost_threshold_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationParameters(boost_chip_temp_limit_c=0.0)

    def test_warmup_beyond_horizon_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationParameters(sim_time_s=10.0, warmup_s=10.0)

    def test_non_positive_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationParameters(power_manager_interval_s=0.0)

    def test_non_positive_duration_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationParameters(duration_scale=0.0)

    def test_frozen(self):
        params = SimulationParameters()
        with pytest.raises(Exception):
            params.seed = 5


class TestTableIIIRendering:
    def test_contains_key_rows(self):
        names = {row[0] for row in TABLE_III_ROWS}
        assert "Temperature limit" in names
        assert "R_Ext 18-fin" in names
        assert "Socket thermal time constant" in names

    def test_values_reflect_parameters(self):
        rows = dict(table_iii_rows(SimulationParameters()))
        assert rows["Temperature limit"] == "95 C"
        assert rows["Server inlet temperature"] == "18 C"
        assert rows["Airflow at sockets"] == "6.35 CFM"
        assert rows["R_Int"] == "0.205 Celsius/Watt"


class TestPresets:
    def test_paper_faithful_is_table_iii(self):
        assert paper_faithful() == SimulationParameters()

    def test_scaled_preserves_regime(self):
        """Job duration << socket tau << horizon must hold."""
        params = scaled()
        mean_job_s = 0.006 * params.duration_scale
        assert mean_job_s * 10 < params.socket_tau_s
        assert params.socket_tau_s * 3 < params.sim_time_s

    def test_scaled_keeps_steady_state_physics(self):
        """Scaling only touches time scales, never temperatures."""
        faithful = paper_faithful()
        fast = scaled()
        assert fast.temperature_limit_c == faithful.temperature_limit_c
        assert fast.inlet_c == faithful.inlet_c
        assert fast.r_int == faithful.r_int
        assert (
            fast.boost_chip_temp_limit_c
            == faithful.boost_chip_temp_limit_c
        )

    def test_smoke_is_fast(self):
        params = smoke()
        assert params.sim_time_s <= 5.0

    def test_seed_passthrough(self):
        assert scaled(seed=9).seed == 9
        assert smoke(seed=9).seed == 9

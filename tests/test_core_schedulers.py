"""Unit tests for every scheduling policy."""

import numpy as np
import pytest

from repro.config.presets import smoke
from repro.core import (
    AdaptiveRandom,
    Balanced,
    BalancedLocations,
    CoolestFirst,
    CoolestNeighbors,
    CouplingPredictor,
    HottestFirst,
    MinHR,
    Predictive,
    RandomPolicy,
    Scheduler,
    all_scheduler_names,
    get_scheduler,
    register_scheduler,
)
from repro.errors import SchedulingError
from repro.sim.state import SimulationState
from repro.workloads.job import Job
from repro.workloads.pcmark import PCMARK_APPS


@pytest.fixture
def state(small_sut, smoke_params):
    return SimulationState(small_sut, smoke_params)


def make_job():
    return Job(job_id=0, app=PCMARK_APPS[0], arrival_s=0.0, work_ms=5.0)


def reset(policy, state, seed=0):
    policy.reset(state, np.random.default_rng(seed))
    return policy


class TestRegistry:
    def test_paper_policies_registered(self):
        paper_policies = {
            "A-Random",
            "Balanced",
            "Balanced-L",
            "CF",
            "CN",
            "CP",
            "HF",
            "MinHR",
            "Predictive",
            "Random",
        }
        assert paper_policies <= set(all_scheduler_names())

    def test_classical_baselines_registered(self):
        assert {"FirstFit", "RoundRobin", "LRU"} <= set(
            all_scheduler_names()
        )

    def test_get_scheduler_returns_fresh_instances(self):
        a = get_scheduler("CF")
        b = get_scheduler("CF")
        assert a is not b

    def test_unknown_name_rejected(self):
        with pytest.raises(SchedulingError):
            get_scheduler("LIFO")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(SchedulingError):

            @register_scheduler
            class Clone(CoolestFirst):
                name = "CF"

    def test_non_scheduler_registration_rejected(self):
        with pytest.raises(SchedulingError):
            register_scheduler(int)


class TestCoolestHottestFirst:
    def test_cf_picks_coolest(self, state):
        state.thermal.chip_c[:] = 50.0
        state.thermal.chip_c[7] = 20.0
        policy = reset(CoolestFirst(), state)
        idle = state.idle_socket_ids()
        assert policy.select_socket(make_job(), idle, state) == 7

    def test_hf_picks_hottest(self, state):
        state.thermal.chip_c[:] = 50.0
        state.thermal.chip_c[3] = 80.0
        policy = reset(HottestFirst(), state)
        idle = state.idle_socket_ids()
        assert policy.select_socket(make_job(), idle, state) == 3

    def test_cf_respects_idle_set(self, state):
        state.thermal.chip_c[:] = 50.0
        state.thermal.chip_c[7] = 20.0
        policy = reset(CoolestFirst(), state)
        idle = np.array([1, 2, 3])  # 7 not offered
        assert policy.select_socket(make_job(), idle, state) in idle

    def test_empty_idle_rejected(self, state):
        policy = reset(CoolestFirst(), state)
        with pytest.raises(SchedulingError):
            policy.select_socket(make_job(), np.array([], dtype=int), state)


class TestRandomPolicies:
    def test_random_uniform_coverage(self, state):
        policy = reset(RandomPolicy(), state)
        idle = state.idle_socket_ids()
        picks = {
            policy.select_socket(make_job(), idle, state)
            for _ in range(300)
        }
        assert len(picks) > state.n_sockets // 2

    def test_random_deterministic_given_rng(self, state):
        picks_a = [
            reset(RandomPolicy(), state, seed=5).select_socket(
                make_job(), state.idle_socket_ids(), state
            )
            for _ in range(3)
        ]
        picks_b = [
            reset(RandomPolicy(), state, seed=5).select_socket(
                make_job(), state.idle_socket_ids(), state
            )
            for _ in range(3)
        ]
        assert picks_a == picks_b

    def test_arandom_prefers_cool_history(self, state):
        state.thermal.chip_c[:] = 30.0
        state.history_c[:] = 60.0
        state.history_c[4] = 20.0  # only socket with cool history
        policy = reset(AdaptiveRandom(), state)
        idle = state.idle_socket_ids()
        assert policy.select_socket(make_job(), idle, state) == 4

    def test_arandom_filters_by_current_first(self, state):
        state.thermal.chip_c[:] = 60.0
        state.thermal.chip_c[2] = 20.0
        state.history_c[:] = 20.0  # history ties everywhere
        policy = reset(AdaptiveRandom(), state)
        idle = state.idle_socket_ids()
        assert policy.select_socket(make_job(), idle, state) == 2


class TestMinHR:
    def test_prefers_least_recirculation(self, state):
        policy = reset(MinHR(), state)
        idle = state.idle_socket_ids()
        pick = policy.select_socket(make_job(), idle, state)
        # Most downstream chain position has zero downwind influence.
        assert state.topology.chain_pos_array[pick] == (
            state.topology.chain_length - 1
        )

    def test_random_among_zero_influence(self, state):
        policy = reset(MinHR(), state)
        idle = state.idle_socket_ids()
        picks = {
            policy.select_socket(make_job(), idle, state)
            for _ in range(100)
        }
        assert len(picks) > 1  # ties broken randomly across rows/lanes

    def test_takes_next_best_when_back_busy(self, state):
        policy = reset(MinHR(), state)
        back = np.nonzero(
            state.topology.chain_pos_array
            == state.topology.chain_length - 1
        )[0]
        idle = np.setdiff1d(state.idle_socket_ids(), back)
        pick = policy.select_socket(make_job(), idle, state)
        assert state.topology.chain_pos_array[pick] == (
            state.topology.chain_length - 2
        )


class TestCoolestNeighbors:
    def test_prefers_cool_neighborhood(self, state):
        policy = reset(CoolestNeighbors(), state)
        state.thermal.chip_c[:] = 50.0
        # Socket 0's whole neighbourhood cool; socket 1 itself cool but
        # neighbours hot.
        topo = state.topology
        state.thermal.chip_c[0] = 30.0
        for site in topo.sites:
            if site.socket_id == 0:
                continue
        state.thermal.chip_c[1] = 20.0  # cooler itself...
        # ...but leave its neighbours at 50.
        neighbors_of_0 = policy._neighbors[0]
        state.thermal.chip_c[neighbors_of_0] = 25.0
        idle = np.array([0, 1])
        pick = policy.select_socket(make_job(), idle, state)
        assert pick == 0

    def test_neighbor_lists_symmetric(self, state):
        policy = reset(CoolestNeighbors(), state)
        for socket_id, neighbors in enumerate(policy._neighbors):
            for n in neighbors:
                assert socket_id in policy._neighbors[n]

    def test_neighbor_counts_reasonable(self, state):
        policy = reset(CoolestNeighbors(), state)
        for neighbors in policy._neighbors:
            assert 1 <= neighbors.size <= 4


class TestBalanced:
    def test_schedules_away_from_hotspot(self, state):
        policy = reset(Balanced(), state)
        state.thermal.chip_c[:] = 40.0
        state.thermal.chip_c[0] = 90.0  # hot spot at front row 0
        idle = state.idle_socket_ids()
        pick = policy.select_socket(make_job(), idle, state)
        site = state.topology.sites[pick]
        hot = state.topology.sites[0]
        assert site.distance_to(hot) > 3.0

    def test_balanced_l_prefers_inlet(self, state):
        policy = reset(BalancedLocations(), state)
        idle = state.idle_socket_ids()
        pick = policy.select_socket(make_job(), idle, state)
        assert state.topology.chain_pos_array[pick] == 0

    def test_balanced_l_tie_break_coolest(self, state):
        policy = reset(BalancedLocations(), state)
        front = np.nonzero(state.topology.chain_pos_array == 0)[0]
        state.thermal.chip_c[:] = 50.0
        state.thermal.chip_c[front[2]] = 20.0
        pick = policy.select_socket(
            make_job(), state.idle_socket_ids(), state
        )
        assert pick == front[2]


class TestPredictive:
    def test_prefers_cold_socket_over_hot(self, state):
        policy = reset(Predictive(), state)
        state.thermal.sink_c[:] = 85.0
        state.thermal.chip_c[:] = 88.0
        cold = 5
        state.thermal.sink_c[cold] = 20.0
        state.thermal.chip_c[cold] = 22.0
        pick = policy.select_socket(
            make_job(), state.idle_socket_ids(), state
        )
        assert pick == cold

    def test_tie_break_prefers_better_sink(self, state):
        """Among equally cold sockets, prefer 30-fin (even zones)."""
        policy = reset(Predictive(), state)
        # Uniform cold state: every socket predicts the top state.
        pick = policy.select_socket(
            make_job(), state.idle_socket_ids(), state
        )
        assert state.topology.zone_array[pick] % 2 == 0


class TestCouplingPredictor:
    def test_row_restriction(self, state):
        policy = reset(CouplingPredictor(), state)
        idle = state.idle_socket_ids()
        pool = policy._candidate_pool(idle, state)
        rows = set(state.topology.row_array[pool])
        assert len(rows) == 1

    def test_global_mode_uses_all(self, state):
        policy = reset(CouplingPredictor(row_restricted=False), state)
        idle = state.idle_socket_ids()
        pool = policy._candidate_pool(idle, state)
        assert pool.size == idle.size

    def test_avoids_upwind_placement_when_downwind_busy(self, state):
        """With hot busy downwind sockets, CP avoids the inlet socket."""
        topo = state.topology
        lane0 = [
            s.socket_id
            for s in topo.sites
            if s.row == 0 and s.lane == 0
        ]
        # Make downwind sockets busy and near their throttle point.
        for socket_id in lane0[1:]:
            state.assign(
                Job(
                    job_id=socket_id,
                    app=PCMARK_APPS[0],
                    arrival_s=0.0,
                    work_ms=1000.0,
                ),
                socket_id,
            )
        state.busy_ema[:] = 1.0
        state.ambient_c[lane0[1:]] = 60.0
        state.thermal.sink_c[lane0[1:]] = 80.0
        state.thermal.chip_c[lane0[1:]] = 85.0
        policy = reset(CouplingPredictor(row_restricted=False), state)
        # Offer the upwind socket of the loaded lane vs an empty lane's
        # upwind socket.
        other_lane_head = [
            s.socket_id
            for s in topo.sites
            if s.row == 1 and s.lane == 0 and s.chain_pos == 0
        ][0]
        idle = np.array([lane0[0], other_lane_head])
        pick = policy.select_socket(make_job(), idle, state)
        assert pick == other_lane_head

    def test_coupling_unaware_ignores_downwind(self, state):
        policy = reset(
            CouplingPredictor(row_restricted=False, coupling_aware=False),
            state,
        )
        idle = state.idle_socket_ids()
        pick = policy.select_socket(make_job(), idle, state)
        assert pick in idle


class TestSchedulerABC:
    def test_cannot_instantiate_abstract(self):
        with pytest.raises(TypeError):
            Scheduler()

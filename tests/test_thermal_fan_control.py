"""Tests for the dynamic fan-control extension."""

import pytest

from repro.config.presets import smoke
from repro.core import get_scheduler
from repro.errors import ThermalModelError
from repro.sim.engine import Simulation
from repro.thermal.fan_control import FanController
from repro.workloads.arrivals import ArrivalProcess
from repro.workloads.benchmark import BenchmarkSet


class TestFanController:
    def test_scale_proportional_to_heat(self):
        controller = FanController()
        low = controller.airflow_scale(500.0)
        high = controller.airflow_scale(3000.0)
        assert high > low

    def test_design_point(self):
        """Heat matching the Table II budget needs scale ~1."""
        controller = FanController(
            design_total_cfm=400.0, outlet_budget_c=20.0
        )
        # 400 CFM removes 400 * 20 / 1.76 ~= 4545 W at 20 degC rise.
        scale = controller.airflow_scale(4545.0)
        assert scale == pytest.approx(1.0, abs=0.01)

    def test_clamped_to_range(self):
        controller = FanController(min_scale=0.4, max_scale=1.25)
        assert controller.airflow_scale(0.0) == 0.4
        assert controller.airflow_scale(1e6) == 1.25

    def test_fan_power_cubic(self):
        controller = FanController()
        half = controller.fan_power_w(0.5)
        full = controller.fan_power_w(1.0)
        assert full == pytest.approx(8 * half, rel=0.01)

    def test_outlet_rise_inverse_in_scale(self):
        controller = FanController()
        tight = controller.outlet_rise_c(2000.0, 1.0)
        loose = controller.outlet_rise_c(2000.0, 0.5)
        assert loose == pytest.approx(2 * tight)

    def test_invalid_configs_rejected(self):
        with pytest.raises(ThermalModelError):
            FanController(design_total_cfm=0.0)
        with pytest.raises(ThermalModelError):
            FanController(min_scale=0.0)
        with pytest.raises(ThermalModelError):
            FanController(min_scale=1.5, max_scale=1.0)
        with pytest.raises(ThermalModelError):
            FanController(outlet_budget_c=0.0)

    def test_negative_heat_rejected(self):
        with pytest.raises(ThermalModelError):
            FanController().airflow_scale(-1.0)


class TestEngineIntegration:
    def _run(self, topology, controller, load=0.6):
        params = smoke()
        arrivals = ArrivalProcess(
            benchmark_set=BenchmarkSet.COMPUTATION,
            load=load,
            n_sockets=topology.n_sockets,
            seed=0,
            duration_scale=params.duration_scale,
        )
        jobs = arrivals.generate(params.sim_time_s)
        sim = Simulation(
            topology,
            params,
            get_scheduler("CF"),
            fan_controller=controller,
        )
        return sim.run(jobs)

    def test_cooling_energy_recorded(self, small_sut):
        result = self._run(small_sut, FanController())
        assert result.cooling_energy_j > 0
        assert result.total_energy_j > result.energy_j

    def test_no_controller_no_cooling_energy(self, small_sut):
        result = self._run(small_sut, None)
        assert result.cooling_energy_j == 0.0
        assert result.mean_airflow_scale == 1.0

    def test_reduced_airflow_runs_hotter(self, small_sut):
        """A small server at scaled-down airflow couples harder."""
        starved = FanController(
            design_total_cfm=2000.0, min_scale=0.4, max_scale=0.4
        )
        nominal = self._run(small_sut, None)
        hot = self._run(small_sut, starved)
        assert hot.max_chip_c.max() > nominal.max_chip_c.max()
        assert hot.mean_airflow_scale == pytest.approx(0.4)

    def test_low_load_saves_fan_power(self, small_sut):
        controller = FanController(
            design_total_cfm=small_sut.total_airflow_cfm()
        )
        light = self._run(small_sut, controller, load=0.1)
        heavy = self._run(small_sut, controller, load=0.9)
        assert light.cooling_energy_j < heavy.cooling_energy_j
        assert light.mean_airflow_scale < heavy.mean_airflow_scale

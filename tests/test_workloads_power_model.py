"""Tests for repro.workloads.power_model."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.workloads.benchmark import BenchmarkSet
from repro.workloads.pcmark import app_by_name
from repro.workloads.power_model import (
    LEAKAGE_REFERENCE_C,
    LEAKAGE_TDP_FRACTION,
    PowerModel,
    leakage_power,
)


class TestLeakage:
    def test_thirty_percent_of_tdp_at_reference(self):
        assert leakage_power(90.0, 22.0) == pytest.approx(0.3 * 22.0)

    def test_increases_with_temperature(self):
        assert leakage_power(95.0, 22.0) > leakage_power(60.0, 22.0)

    def test_floor_at_low_temperature(self):
        cold = leakage_power(-100.0, 22.0)
        assert cold == pytest.approx(0.25 * 0.3 * 22.0)

    def test_vectorised(self):
        temps = np.array([60.0, 90.0, 95.0])
        values = leakage_power(temps, 22.0)
        assert values.shape == (3,)
        assert values[1] == pytest.approx(6.6)

    def test_bad_tdp_rejected(self):
        with pytest.raises(WorkloadError):
            leakage_power(90.0, 0.0)


class TestPowerModel:
    def test_figure7_endpoints(self):
        """Total power at 1900 MHz and 90 C matches Figure 7a."""
        for benchmark_set, expected in (
            (BenchmarkSet.COMPUTATION, 18.0),
            (BenchmarkSet.GENERAL_PURPOSE, 14.0),
            (BenchmarkSet.STORAGE, 10.5),
        ):
            model = PowerModel.for_set(benchmark_set)
            assert model.power_at_reference(1900) == pytest.approx(
                expected
            )

    def test_power_decreases_with_frequency(self):
        model = PowerModel.for_set(BenchmarkSet.COMPUTATION)
        powers = [model.power_at_reference(f) for f in (1100, 1500, 1900)]
        assert powers == sorted(powers)

    def test_computation_drops_more_than_storage(self):
        """Figure 7a: power falls faster for Computation."""
        comp = PowerModel.for_set(BenchmarkSet.COMPUTATION)
        stor = PowerModel.for_set(BenchmarkSet.STORAGE)
        comp_drop = comp.power_at_reference(1900) - comp.power_at_reference(
            1100
        )
        stor_drop = stor.power_at_reference(1900) - stor.power_at_reference(
            1100
        )
        assert comp_drop > stor_drop

    def test_total_power_splits_dynamic_and_leakage(self):
        model = PowerModel.for_set(BenchmarkSet.COMPUTATION)
        total = model.total_power(1900, 90.0)
        assert total == pytest.approx(
            model.dynamic_power(1900) + leakage_power(90.0, 22.0)
        )

    def test_dynamic_power_at_max(self):
        model = PowerModel.for_set(BenchmarkSet.COMPUTATION)
        assert model.dynamic_power_at_max_w == pytest.approx(
            18.0 - 0.3 * 22.0
        )

    def test_for_app_uses_app_power(self):
        app = app_by_name("spreadsheet-calc")
        model = PowerModel.for_app(app)
        assert model.power_at_reference(1900) == pytest.approx(
            app.power_at_max_w
        )

    def test_vectorised_frequencies(self):
        model = PowerModel.for_set(BenchmarkSet.STORAGE)
        freqs = np.array([1100.0, 1900.0])
        out = model.power_at_reference(freqs)
        assert out.shape == (2,)
        assert out[0] < out[1]

    def test_power_below_leakage_rejected(self):
        with pytest.raises(WorkloadError):
            PowerModel(power_at_max_w=5.0, dynamic_exponent=1.5, tdp_w=22.0)

    def test_bad_exponent_rejected(self):
        with pytest.raises(WorkloadError):
            PowerModel(
                power_at_max_w=18.0, dynamic_exponent=0.0, tdp_w=22.0
            )

"""Tests for simulation time-series tracing."""

import numpy as np
import pytest

from repro.config.presets import smoke
from repro.core import get_scheduler
from repro.errors import SimulationError
from repro.sim.engine import Simulation
from repro.sim.tracing import SimulationTrace, TraceConfig
from repro.workloads.arrivals import ArrivalProcess
from repro.workloads.benchmark import BenchmarkSet


def run_traced(topology, trace_config, load=0.6):
    params = smoke()
    jobs = ArrivalProcess(
        benchmark_set=BenchmarkSet.COMPUTATION,
        load=load,
        n_sockets=topology.n_sockets,
        seed=0,
        duration_scale=params.duration_scale,
    ).generate(params.sim_time_s)
    return Simulation(
        topology,
        params,
        get_scheduler("CF"),
        trace_config=trace_config,
    ).run(jobs)


class TestTraceConfig:
    def test_invalid_interval_rejected(self):
        with pytest.raises(SimulationError):
            TraceConfig(interval_s=0.0)


class TestTracedRun:
    def test_no_trace_by_default(self, small_sut):
        result = run_traced(small_sut, None)
        assert result.trace is None

    def test_trace_collected(self, small_sut):
        result = run_traced(small_sut, TraceConfig(interval_s=0.05))
        trace = result.trace
        assert trace is not None
        expected = int(3.0 / 0.05)
        assert abs(len(trace) - expected) <= 2

    def test_series_aligned(self, small_sut):
        trace = run_traced(
            small_sut, TraceConfig(interval_s=0.1)
        ).trace
        n = len(trace)
        assert len(trace.utilization) == n
        assert len(trace.max_chip_c) == n
        assert len(trace.total_power_w) == n
        assert len(trace.zone_chip_c) == n

    def test_times_monotone(self, small_sut):
        trace = run_traced(
            small_sut, TraceConfig(interval_s=0.1)
        ).trace
        assert trace.times_s == sorted(trace.times_s)

    def test_physical_ranges(self, small_sut):
        trace = run_traced(
            small_sut, TraceConfig(interval_s=0.1)
        ).trace
        arrays = trace.as_arrays()
        assert ((arrays["utilization"] >= 0) & (
            arrays["utilization"] <= 1
        )).all()
        assert (arrays["max_chip_c"] >= arrays["mean_chip_c"]).all()
        assert (arrays["total_power_w"] > 0).all()

    def test_zone_series_shape(self, small_sut):
        trace = run_traced(
            small_sut, TraceConfig(interval_s=0.1)
        ).trace
        zones = trace.as_arrays()["zone_chip_c"]
        assert zones.shape[1] == small_sut.n_zones

    def test_per_zone_disabled(self, small_sut):
        trace = run_traced(
            small_sut, TraceConfig(interval_s=0.1, per_zone=False)
        ).trace
        assert trace.zone_chip_c == []
        assert "zone_chip_c" not in trace.as_arrays()

    def test_back_zones_hotter_in_trace(self, small_sut):
        trace = run_traced(
            small_sut, TraceConfig(interval_s=0.1), load=0.8
        ).trace
        zones = trace.as_arrays()["zone_chip_c"]
        late = zones[len(zones) // 2 :]
        assert late[:, -1].mean() > late[:, 0].mean()

"""The buffered JSONL writer: round-trips, truncation safety, reuse."""

import os
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

from repro.config.presets import smoke
from repro.core import get_scheduler
from repro.errors import ObservabilityError
from repro.obs.writer import (
    JsonlWriter,
    encode_event,
    iter_events,
    read_events,
)
from repro.obs.events import make_event
from repro.server.topology import moonshot_sut
from repro.sim.engine import Simulation
from repro.sim.tracing import TraceConfig
from repro.workloads.arrivals import ArrivalProcess
from repro.workloads.benchmark import BenchmarkSet


def _events(n):
    return [
        make_event("placement", step=i, t=i * 0.001, job_id=i, socket=i % 4)
        for i in range(n)
    ]


# -- round-trip -----------------------------------------------------------


def test_round_trip(tmp_path):
    path = tmp_path / "log.jsonl"
    events = _events(100)
    with JsonlWriter(path, buffer_lines=8) as writer:
        for event in events:
            writer.emit(event)
    assert writer.lines_written == len(events)
    assert read_events(path, strict=True, validate=True) == events


def test_bytes_are_canonical(tmp_path):
    """Same stream -> same file bytes (logs can be fingerprinted)."""
    path = tmp_path / "log.jsonl"
    events = _events(20)
    with JsonlWriter(path) as writer:
        for event in events:
            writer.emit(event)
    expected = b"".join(encode_event(e) for e in events)
    assert path.read_bytes() == expected


def test_parent_directories_created(tmp_path):
    path = tmp_path / "a" / "b" / "log.jsonl"
    with JsonlWriter(path) as writer:
        writer.emit(_events(1)[0])
    assert read_events(path, strict=True)


# -- truncation and corruption --------------------------------------------


def test_truncated_tail_tolerated(tmp_path):
    path = tmp_path / "log.jsonl"
    events = _events(5)
    with JsonlWriter(path) as writer:
        for event in events:
            writer.emit(event)
    # Simulate a SIGKILL mid-write: chop the final line in half.
    data = path.read_bytes()
    path.write_bytes(data[: len(data) - 20])
    recovered = read_events(path, validate=True)
    assert recovered == events[:4]
    with pytest.raises(ObservabilityError, match="truncated"):
        read_events(path, strict=True)


def test_interior_corruption_always_raises(tmp_path):
    path = tmp_path / "log.jsonl"
    with JsonlWriter(path) as writer:
        for event in _events(5):
            writer.emit(event)
    lines = path.read_bytes().split(b"\n")
    lines[2] = b"{definitely not json"
    path.write_bytes(b"\n".join(lines))
    with pytest.raises(ObservabilityError, match="line 3 is corrupt"):
        read_events(path)  # even in non-strict mode


def test_missing_file_raises(tmp_path):
    with pytest.raises(ObservabilityError, match="cannot read"):
        read_events(tmp_path / "absent.jsonl")


def test_append_mode_terminates_unterminated_tail(tmp_path):
    """Resume after a crash: an unterminated last line must not fuse
    with the first appended line into one corrupt record."""
    path = tmp_path / "log.jsonl"
    first = _events(3)
    with JsonlWriter(path) as writer:
        for event in first:
            writer.emit(event)
    data = path.read_bytes()
    path.write_bytes(data[:-1])  # crash after the bytes, before the \n
    second = _events(2)
    with JsonlWriter(path, append=True) as writer:
        for event in second:
            writer.emit(event)
    assert read_events(path, strict=True, validate=True) == first + second


# -- writer lifecycle ------------------------------------------------------


def test_close_is_idempotent(tmp_path):
    writer = JsonlWriter(tmp_path / "log.jsonl")
    writer.emit(_events(1)[0])
    writer.close()
    writer.close()


def test_emit_after_close_raises(tmp_path):
    writer = JsonlWriter(tmp_path / "log.jsonl")
    writer.close()
    with pytest.raises(ObservabilityError, match="closed"):
        writer.emit(_events(1)[0])


def test_serialisation_error_latched_and_raised_on_close(tmp_path):
    writer = JsonlWriter(tmp_path / "log.jsonl")
    writer.emit({"v": 1, "type": "sweep_end", "n_points": object()})
    with pytest.raises(ObservabilityError, match="failed"):
        writer.close()


def test_buffer_lines_must_be_positive(tmp_path):
    with pytest.raises(ObservabilityError, match="buffer_lines"):
        JsonlWriter(tmp_path / "log.jsonl", buffer_lines=0)


def test_encode_event_rejects_non_finite():
    with pytest.raises(ObservabilityError, match="not JSON-serialisable"):
        encode_event({"v": 1, "type": "x", "value": float("nan")})


# -- SIGKILL truncation safety (the real thing, not a simulation) ----------


_KILL_SCRIPT = textwrap.dedent(
    """
    import sys
    from repro.obs.events import make_event
    from repro.obs.writer import JsonlWriter

    writer = JsonlWriter(sys.argv[1], buffer_lines=1)
    for i in range(200_000):
        writer.emit(
            make_event(
                "placement", step=i, t=i * 0.001, job_id=i, socket=0
            )
        )
        if i == 500:
            print("WRITING", flush=True)
    """
)


def test_sigkill_leaves_parseable_log(tmp_path):
    """A writer process killed with SIGKILL mid-stream leaves a log
    whose every complete line parses and validates."""
    path = tmp_path / "killed.jsonl"
    env = dict(os.environ)
    root = Path(__file__).resolve().parent.parent
    env["PYTHONPATH"] = str(root / "src")
    proc = subprocess.Popen(
        [sys.executable, "-c", _KILL_SCRIPT, str(path)],
        stdout=subprocess.PIPE,
        env=env,
    )
    try:
        assert proc.stdout.readline().strip() == b"WRITING"
        # Give the drain thread a moment to hand lines to the OS, then
        # kill without any chance to flush or close.
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if path.exists() and path.stat().st_size > 4096:
                break
            time.sleep(0.01)
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        proc.stdout.close()
        if proc.poll() is None:  # pragma: no cover - cleanup path
            proc.kill()
            proc.wait()
    events = read_events(path, validate=True)  # non-strict: tail may be cut
    assert len(events) > 0
    # Steps are contiguous from zero: nothing interior went missing.
    assert [e["step"] for e in events] == list(range(len(events)))


# -- engine reuse ----------------------------------------------------------


def _simulate_twice(tmp_path, trace_config=None):
    topology = moonshot_sut(n_rows=1)
    params = smoke(seed=11)
    arrivals = ArrivalProcess(
        benchmark_set=BenchmarkSet.COMPUTATION,
        load=0.5,
        n_sockets=topology.n_sockets,
        seed=params.seed,
        duration_scale=params.duration_scale,
    )
    jobs = arrivals.generate(params.sim_time_s)
    simulation = Simulation(
        topology,
        params,
        get_scheduler("CF"),
        trace_config=trace_config,
        telemetry=tmp_path,
    )
    return simulation, [simulation.run(jobs), simulation.run(jobs)]


def test_engine_reuse_writes_independent_logs(tmp_path):
    """Two back-to-back runs on one engine produce two independent,
    non-interleaved logs with identical event streams."""
    _, _results = _simulate_twice(tmp_path)
    first = tmp_path / "run-r0.jsonl"
    second = tmp_path / "run-r1.jsonl"
    assert first.exists() and second.exists()
    streams = []
    for path in (first, second):
        events = read_events(path, strict=True, validate=True)
        types = [e["type"] for e in events]
        assert types.count("run_start") == 1
        assert types.count("run_end") == 1
        assert types[0] == "run_start"
        assert types[-1] == "run_end"
        # Normalise the only run-specific field: the log's own name.
        for event in events:
            event.pop("run", None)
        streams.append(events)
    assert streams[0] == streams[1]


def test_tracer_resets_between_runs(tmp_path):
    """The tracer starts fresh every run: no sample concatenation."""
    _, results = _simulate_twice(
        tmp_path, trace_config=TraceConfig(interval_s=0.5)
    )
    first, second = (r.trace for r in results)
    assert first is not None and second is not None
    assert first is not second  # a fresh trace object per run
    assert len(first) > 0
    assert first.times_s == second.times_s  # equal, not concatenated

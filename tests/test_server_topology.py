"""Tests for repro.server.topology."""

import numpy as np
import pytest

from repro.errors import TopologyError
from repro.server.topology import (
    ServerTopology,
    moonshot_sut,
    two_socket_system,
)
from repro.thermal.heatsink import FIN_18, FIN_30


class TestMoonshotSUT:
    def test_full_sut_has_180_sockets(self):
        assert moonshot_sut().n_sockets == 180

    def test_scaled_sut(self, small_sut):
        assert small_sut.n_sockets == 24

    def test_six_zones(self, small_sut):
        assert small_sut.n_zones == 6
        assert set(small_sut.zone_array) == {1, 2, 3, 4, 5, 6}

    def test_zone_sizes_equal(self, small_sut):
        for zone in range(1, 7):
            assert small_sut.sockets_in_zone(zone).size == 4

    def test_odd_zones_18_fin(self, small_sut):
        for site in small_sut.sites:
            expected = FIN_18 if site.zone % 2 == 1 else FIN_30
            assert site.sink is expected

    def test_three_cartridges_along_airflow(self, small_sut):
        cartridges = {s.cartridge for s in small_sut.sites}
        assert cartridges == {0, 1, 2}

    def test_intra_cartridge_spacing(self, small_sut):
        lane = [
            s
            for s in small_sut.sites
            if s.row == 0 and s.lane == 0
        ]
        lane.sort(key=lambda s: s.chain_pos)
        assert lane[1].x_in - lane[0].x_in == pytest.approx(1.6)
        assert lane[2].x_in - lane[1].x_in == pytest.approx(3.0)

    def test_total_airflow(self):
        sut = moonshot_sut()
        # 15 rows x 2 lanes x 6.35 CFM
        assert sut.total_airflow_cfm() == pytest.approx(190.5)

    def test_front_half_mask(self, small_sut):
        mask = small_sut.front_half_mask()
        assert mask.sum() == small_sut.n_sockets / 2
        assert np.all(small_sut.zone_array[mask] <= 3)

    def test_even_zone_mask(self, small_sut):
        mask = small_sut.even_zone_mask()
        assert np.all(small_sut.zone_array[mask] % 2 == 0)

    def test_coupling_chains_one_per_lane(self, small_sut):
        chains = small_sut.coupling_chains()
        assert len(chains) == small_sut.n_rows * small_sut.lanes_per_row
        for chain in chains:
            assert len(chain.socket_ids) == 6

    def test_chains_ordered_upstream_first(self, small_sut):
        for chain in small_sut.coupling_chains():
            positions = [
                small_sut.sites[i].chain_pos for i in chain.socket_ids
            ]
            assert positions == sorted(positions)

    def test_rows_partition_sockets(self, small_sut):
        seen = np.concatenate(
            [small_sut.sockets_in_row(r) for r in range(small_sut.n_rows)]
        )
        assert sorted(seen) == list(range(small_sut.n_sockets))

    def test_site_ids_sequential(self, small_sut):
        for i, site in enumerate(small_sut.sites):
            assert site.socket_id == i

    def test_vector_arrays_consistent_with_sites(self, small_sut):
        for site in small_sut.sites:
            i = site.socket_id
            assert small_sut.zone_array[i] == site.zone
            assert small_sut.r_ext_array[i] == site.sink.r_ext
            assert small_sut.tdp_array[i] == site.spec.tdp_w

    def test_gated_power_is_ten_percent_tdp(self, small_sut):
        np.testing.assert_allclose(
            small_sut.gated_power_array, 0.1 * small_sut.tdp_array
        )


class TestTwoSocketSystems:
    def test_coupled_single_chain(self):
        topo = two_socket_system(coupled=True)
        assert topo.n_sockets == 2
        chains = topo.coupling_chains()
        assert len(chains) == 1
        assert topo.coupling.downwind_of(0).size == 1

    def test_coupled_sink_arrangement(self):
        topo = two_socket_system(coupled=True)
        assert topo.sites[0].sink is FIN_18
        assert topo.sites[1].sink is FIN_30

    def test_uncoupled_no_interaction(self):
        topo = two_socket_system(coupled=False)
        assert topo.n_sockets == 2
        assert topo.coupling.downwind_of(0).size == 0
        assert topo.coupling.downwind_of(1).size == 0

    def test_uncoupled_keeps_both_sink_types(self):
        topo = two_socket_system(coupled=False)
        sinks = {site.sink.name for site in topo.sites}
        assert sinks == {"18-fin", "30-fin"}


class TestValidation:
    def test_zero_rows_rejected(self):
        with pytest.raises(TopologyError):
            ServerTopology(n_rows=0, lanes_per_row=1, chain_length=1)

    def test_bad_airflow_rejected(self):
        with pytest.raises(TopologyError):
            ServerTopology(
                n_rows=1,
                lanes_per_row=1,
                chain_length=2,
                socket_airflow_cfm=0.0,
            )

    def test_row_out_of_range_rejected(self, small_sut):
        with pytest.raises(TopologyError):
            small_sut.sockets_in_row(99)

    def test_zone_out_of_range_rejected(self, small_sut):
        with pytest.raises(TopologyError):
            small_sut.sockets_in_zone(0)
        with pytest.raises(TopologyError):
            small_sut.sockets_in_zone(7)

    def test_uniform_sink_override(self):
        topo = ServerTopology(
            n_rows=1,
            lanes_per_row=1,
            chain_length=4,
            uniform_sink=FIN_30,
        )
        assert all(site.sink is FIN_30 for site in topo.sites)

    def test_site_distance(self, small_sut):
        a, b = small_sut.sites[0], small_sut.sites[1]
        assert a.distance_to(b) == pytest.approx(1.6)
        assert a.distance_to(a) == 0.0

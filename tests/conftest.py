"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.config.presets import smoke
from repro.server.topology import ServerTopology, moonshot_sut


@pytest.fixture
def rng():
    """A deterministic RNG for sampling tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_sut() -> ServerTopology:
    """A 2-row (24-socket) Moonshot-like SUT — cheap but full structure."""
    return moonshot_sut(n_rows=2)


@pytest.fixture
def smoke_params():
    """Minimal simulation parameters for engine tests."""
    return smoke()

"""The backend seam lint: rules, allowlist, and a clean tree.

``scripts/lint_backend_seam.py`` keeps direct ``numpy``/``scipy``
imports out of the seam-managed modules (they must go through
``repro.backend``).  These tests pin the rule set against crafted
sources and assert the real tree is clean — the same check CI runs.
"""

import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SCRIPT = REPO / "scripts" / "lint_backend_seam.py"

sys.path.insert(0, str(REPO / "scripts"))

import lint_backend_seam as lint  # noqa: E402


def test_tree_is_clean():
    proc = subprocess.run(
        [sys.executable, str(SCRIPT)],
        capture_output=True,
        text=True,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "ok" in proc.stdout


def test_direct_numpy_import_flagged():
    violations = lint.check_source(
        "import numpy as np\n", "core/kernels.py"
    )
    assert len(violations) == 1
    assert "direct 'numpy' import" in violations[0]


def test_from_numpy_import_flagged():
    violations = lint.check_source(
        "from numpy import linalg\n", "thermal/dynamics.py"
    )
    assert len(violations) == 1


def test_scipy_import_flagged_even_in_numpy_allowlist():
    violations = lint.check_source(
        "from scipy.linalg import lu_factor\n",
        "workloads/power_model.py",
    )
    assert len(violations) == 1
    assert "scipy" in violations[0]


def test_seam_handle_is_permitted():
    clean = "from ..backend import numpy_xp as np\n"
    assert lint.check_source(clean, "core/kernels.py") == []


def test_allowlisted_scalar_reference_path():
    source = "import numpy as np\n"
    assert lint.check_source(source, "workloads/power_model.py") == []
    assert lint.check_source(source, "sim/power_manager.py") != []


def test_type_checking_imports_exempt():
    source = (
        "from typing import TYPE_CHECKING\n"
        "if TYPE_CHECKING:\n"
        "    import numpy as np\n"
    )
    assert lint.check_source(source, "core/kernels.py") == []


def test_seam_module_list_matches_tree():
    """Every listed seam module exists and uses the seam handle."""
    for rel in lint.SEAM_MODULES:
        path = REPO / "src" / "repro" / rel
        assert path.exists(), rel
        if rel in lint.ALLOW_NUMPY:
            continue
        text = path.read_text()
        assert "from ..backend import numpy_xp as np" in text, rel

"""Batched fleet-tensor sweep evaluator vs the per-point serial path.

``repro.sim.batched`` stacks N decision-free sweep points over one
topology into ``(N, n)`` fleet tensors.  Under the numpy backend the
stacked evaluation must match the per-point serial kernels **bit for
bit** — including the mixed 8-point sweep with per-point inlet
overrides that the PR's acceptance criteria name.  The vmapped code
path (the JAX shape) is driven here through the numpy backend's
loop-and-stack ``vmap`` shim, so its structure is pinned without the
optional dependency installed.
"""

import numpy as np
import pytest

from repro.backend import NumpyBackend
from repro.config.presets import smoke
from repro.errors import SimulationError
from repro.sim.batched import (
    FleetPoint,
    FleetSweepResult,
    _steady_fleet_vmapped,
    evaluate_fleet,
    evaluate_fleet_serial,
)

FIELDS = (
    "power_w",
    "ambient_c",
    "sink_c",
    "chip_c",
    "freq_mhz",
    "window_sink_c",
    "window_chip_c",
)

#: The acceptance sweep: 8 mixed points — utilisation extremes, power
#: extremes, workload exponents, and per-point inlet overrides.
MIXED_POINTS = (
    FleetPoint(0.1, 8.0, 2.0),
    FleetPoint(0.3, 12.0, 1.8),
    FleetPoint(0.5, 15.0, 2.2, inlet_c=22.0),
    FleetPoint(0.7, 18.0, 2.0),
    FleetPoint(0.9, 20.0, 1.9),
    FleetPoint(1.0, 21.0, 2.1, inlet_c=30.0),
    FleetPoint(0.0, 10.0, 2.0),
    FleetPoint(0.65, 16.5, 2.0, inlet_c=18.0),
)


@pytest.fixture(scope="module")
def params():
    return smoke(seed=0)


def _assert_bit_identical(a: FleetSweepResult, b: FleetSweepResult):
    for field in FIELDS:
        left, right = getattr(a, field), getattr(b, field)
        assert left.shape == right.shape
        np.testing.assert_array_equal(left, right, err_msg=field)


def test_mixed_eight_point_sweep_is_bit_identical(small_sut, params):
    serial = evaluate_fleet_serial(
        small_sut, params, MIXED_POINTS, window_steps=2048
    )
    batched = evaluate_fleet(
        small_sut, params, MIXED_POINTS, window_steps=2048
    )
    assert serial.n_points == batched.n_points == 8
    _assert_bit_identical(serial, batched)


def test_pure_twin_backend_is_bit_identical_too(small_sut, params):
    serial = evaluate_fleet_serial(
        small_sut, params, MIXED_POINTS, window_steps=256
    )
    batched = evaluate_fleet(
        small_sut,
        params,
        MIXED_POINTS,
        window_steps=256,
        backend=NumpyBackend(inplace=False),
    )
    _assert_bit_identical(serial, batched)


def test_zero_window_reports_inlet_equilibrium(small_sut, params):
    result = evaluate_fleet(
        small_sut, params, MIXED_POINTS[:3], window_steps=0
    )
    for i, point in enumerate(MIXED_POINTS[:3]):
        inlet = params.inlet_c if point.inlet_c is None else point.inlet_c
        np.testing.assert_array_equal(
            result.window_sink_c[i],
            np.full(small_sut.n_sockets, inlet),
        )
        np.testing.assert_array_equal(
            result.window_chip_c[i],
            np.full(small_sut.n_sockets, inlet),
        )


def test_long_window_converges_to_steady_field(small_sut, params):
    """Enough decayed steps land on the steady sink/chip temperatures."""
    result = evaluate_fleet(
        small_sut, params, MIXED_POINTS, window_steps=10_000_000
    )
    np.testing.assert_allclose(
        result.window_sink_c, result.sink_c, rtol=1e-6, atol=1e-6
    )
    np.testing.assert_allclose(
        result.window_chip_c, result.chip_c, rtol=1e-6, atol=1e-6
    )


def test_field_accessor_matches_serial_solver(small_sut, params):
    result = evaluate_fleet(small_sut, params, MIXED_POINTS)
    field = result.field(2)
    serial = evaluate_fleet_serial(
        small_sut, params, [MIXED_POINTS[2]]
    )
    np.testing.assert_array_equal(field.chip_c, serial.chip_c[0])
    assert field.hottest_socket == int(np.argmax(serial.chip_c[0]))


def test_vmapped_path_matches_serial_via_numpy_shim(small_sut, params):
    """The JAX-shaped vmapped kernel, driven by the numpy vmap shim.

    The shim loops point by point, so even the coupling matvec stays
    dgemv — the vmapped structure is bit-identical under numpy.
    """
    backend = NumpyBackend(inplace=False)
    util = np.array([p.utilization for p in MIXED_POINTS])
    dyn = np.array([p.dyn_max_w for p in MIXED_POINTS])
    inlet = np.array(
        [
            params.inlet_c if p.inlet_c is None else p.inlet_c
            for p in MIXED_POINTS
        ]
    )
    power, ambient, sink, chip = _steady_fleet_vmapped(
        small_sut, params, util, dyn, inlet, backend
    )
    serial = evaluate_fleet_serial(small_sut, params, MIXED_POINTS)
    np.testing.assert_array_equal(power, serial.power_w)
    np.testing.assert_array_equal(ambient, serial.ambient_c)
    np.testing.assert_array_equal(sink, serial.sink_c)
    np.testing.assert_array_equal(chip, serial.chip_c)


def test_point_validation():
    with pytest.raises(SimulationError):
        FleetPoint(1.2, 10.0)
    with pytest.raises(SimulationError):
        FleetPoint(0.5, -1.0)
    with pytest.raises(SimulationError):
        FleetPoint(0.5, 10.0, dyn_exp=0.0)


def test_empty_batch_rejected(small_sut, params):
    with pytest.raises(SimulationError):
        evaluate_fleet(small_sut, params, [])
    with pytest.raises(SimulationError):
        evaluate_fleet_serial(small_sut, params, [])

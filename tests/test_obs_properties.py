"""Property-based tests (hypothesis) for the observability layer."""

import itertools
from types import SimpleNamespace

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.events import EVENT_TYPES, make_event
from repro.obs.profiler import StepProfiler
from repro.obs.writer import JsonlWriter, encode_event, read_events
from repro.sim.engine import Engine

# -- event stream strategies ----------------------------------------------

_VALUE_STRATEGIES = {
    int: st.integers(min_value=-(2**53), max_value=2**53),
    float: st.floats(allow_nan=False, allow_infinity=False, width=64),
    str: st.text(max_size=40),
    bool: st.booleans(),
}


@st.composite
def events(draw):
    """One schema-valid event of an arbitrary type."""
    type_ = draw(st.sampled_from(sorted(EVENT_TYPES)))
    fields = {
        name: draw(_VALUE_STRATEGIES[allowed[0]])
        for name, allowed in EVENT_TYPES[type_].items()
    }
    return make_event(type_, **fields)


class TestEventStreamRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(stream=st.lists(events(), max_size=30))
    def test_written_bytes_are_canonical_and_round_trip(
        self, tmp_path_factory, stream
    ):
        """Any schema-valid stream writes byte-for-byte canonical
        lines and reads back equal, strictly and validated."""
        path = tmp_path_factory.mktemp("obs") / "stream.jsonl"
        with JsonlWriter(path, buffer_lines=3) as writer:
            for event in stream:
                writer.emit(event)
        assert path.read_bytes() == b"".join(
            encode_event(event) for event in stream
        )
        assert read_events(path, strict=True, validate=True) == stream


# -- profiler clock-consistency -------------------------------------------


class _ScriptedClock:
    """Monotonic clock advancing by a scripted cycle of increments."""

    def __init__(self, increments):
        self.now = 0.0
        self._increments = itertools.cycle(increments)

    def __call__(self):
        self.now += next(self._increments)
        return self.now


class _NullComponent:
    def on_run_start(self, ctx):
        pass

    def on_step(self, ctx):
        pass

    def on_run_end(self, ctx):
        pass


class TestProfilerProperties:
    @settings(max_examples=60, deadline=None)
    @given(
        increments=st.lists(
            st.floats(min_value=0.0, max_value=10.0),
            min_size=1,
            max_size=20,
        ),
        n_components=st.integers(min_value=1, max_value=6),
        n_steps=st.integers(min_value=0, max_value=40),
    )
    def test_totals_non_negative_and_bounded_by_elapsed(
        self, increments, n_components, n_steps
    ):
        """For ANY monotonic clock: every component total is
        non-negative, calls are exactly ``n_steps + 2``, and the sum of
        attributed time never exceeds the engine's elapsed time."""
        profiler = StepProfiler(clock=_ScriptedClock(increments))
        ctx = SimpleNamespace(
            n_steps=n_steps,
            dt=0.001,
            warmup_s=0.0,
            state=SimpleNamespace(time_s=0.0),
            result=SimpleNamespace(profile=None),
            step=0,
            time_s=0.0,
            in_window=False,
        )
        components = [_NullComponent() for _ in range(n_components)]
        Engine(components, profiler=profiler).run(ctx)
        profile = ctx.result.profile
        assert profile.n_steps == n_steps
        assert len(profile.components) == n_components
        for entry in profile.components:
            assert entry.calls == n_steps + 2
            assert entry.total_s >= 0.0
        assert profile.engine_elapsed_s >= 0.0
        assert (
            profile.total_component_s <= profile.engine_elapsed_s + 1e-9
        )

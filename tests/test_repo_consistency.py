"""Consistency checks between code, benchmarks, examples and docs."""

import os
import py_compile

import pytest

from repro.experiments.registry import all_experiments

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def repo_path(*parts) -> str:
    return os.path.join(REPO_ROOT, *parts)


class TestBenchmarkCoverage:
    def test_every_registered_artifact_has_a_bench(self):
        bench_dir = repo_path("benchmarks")
        benches = set(os.listdir(bench_dir))
        for experiment in all_experiments():
            expected = [
                name
                for name in benches
                if experiment.name in name.replace("_", "")
                or experiment.name in name
            ]
            assert expected, f"no bench for {experiment.name}"

    def test_bench_files_compile(self):
        bench_dir = repo_path("benchmarks")
        for name in sorted(os.listdir(bench_dir)):
            if name.endswith(".py"):
                py_compile.compile(
                    os.path.join(bench_dir, name), doraise=True
                )

    def test_every_results_json_has_a_txt_twin(self):
        """Committed results come in machine/human pairs.

        Every ``benchmarks/results/*.json`` must sit next to a
        non-empty ``.txt`` twin (and vice versa), and any ``BENCH``
        summary lines the twin carries must round-trip as JSON so
        downstream tooling can parse either file.
        """
        import json

        results_dir = repo_path("benchmarks", "results")
        names = sorted(os.listdir(results_dir))
        stems = {
            name[: -len(".json")]
            for name in names
            if name.endswith(".json")
        }
        txt_stems = {
            name[: -len(".txt")]
            for name in names
            if name.endswith(".txt")
        }
        assert stems == txt_stems, (
            f"unpaired result artifacts: json-only="
            f"{sorted(stems - txt_stems)} "
            f"txt-only={sorted(txt_stems - stems)}"
        )
        for stem in sorted(stems):
            with open(
                os.path.join(results_dir, stem + ".txt")
            ) as handle:
                text = handle.read()
            assert text.strip(), f"{stem}.txt is empty"
            for line in text.splitlines():
                if line.startswith("BENCH "):
                    payload = json.loads(line[len("BENCH "):])
                    assert isinstance(payload, dict), stem


class TestExamples:
    EXPECTED = (
        "quickstart.py",
        "vdi_scheduler_comparison.py",
        "design_space_exploration.py",
        "custom_scheduler.py",
        "trace_capture_replay.py",
        "cooling_tradeoff.py",
        "rack_placement.py",
        "thermal_timeline.py",
    )

    def test_all_examples_present(self):
        examples = set(os.listdir(repo_path("examples")))
        for name in self.EXPECTED:
            assert name in examples

    def test_examples_compile(self):
        for name in self.EXPECTED:
            py_compile.compile(
                repo_path("examples", name), doraise=True
            )

    def test_examples_have_module_docstrings(self):
        import ast

        for name in self.EXPECTED:
            with open(repo_path("examples", name)) as handle:
                tree = ast.parse(handle.read())
            assert ast.get_docstring(tree), name


class TestDocumentation:
    @pytest.mark.parametrize(
        "filename",
        ["README.md", "DESIGN.md", "EXPERIMENTS.md"],
    )
    def test_core_docs_exist_and_substantial(self, filename):
        path = repo_path(filename)
        assert os.path.exists(path)
        with open(path) as handle:
            content = handle.read()
        assert len(content) > 2000

    def test_design_mentions_every_substitution_source(self):
        with open(repo_path("DESIGN.md")) as handle:
            design = handle.read()
        for keyword in ("Icepak", "Xperf", "SPECpower", "HotSpot"):
            assert keyword in design

    def test_experiments_covers_every_artifact(self):
        with open(repo_path("EXPERIMENTS.md")) as handle:
            content = handle.read()
        for artifact in (
            "Table I",
            "Table II",
            "Table III",
            "Figure 1",
            "Figure 2",
            "Figure 3",
            "Figure 5",
            "Figure 6",
            "Figure 7",
            "Figure 9",
            "Figure 10",
            "Figure 11",
            "Figure 13",
            "Figure 14",
            "Figure 15",
        ):
            assert artifact in content, artifact

    def test_readme_examples_table_matches_directory(self):
        with open(repo_path("README.md")) as handle:
            readme = handle.read()
        for name in TestExamples.EXPECTED:
            assert name in readme


class TestPublicDocstrings:
    def test_every_public_module_has_docstring(self):
        import importlib
        import pkgutil

        import repro

        missing = []
        for module_info in pkgutil.walk_packages(
            repro.__path__, prefix="repro."
        ):
            module = importlib.import_module(module_info.name)
            if not module.__doc__:
                missing.append(module_info.name)
        assert not missing, missing

"""Tests for repro.workloads.pcmark and benchmark sets."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.metrics.stats import coefficient_of_variation
from repro.workloads.benchmark import (
    BenchmarkSet,
    SET_PROFILES,
    profile_for,
)
from repro.workloads.pcmark import (
    PCMARK_APPS,
    app_by_name,
    apps_in_set,
)


class TestSuiteComposition:
    def test_nineteen_apps(self):
        assert len(PCMARK_APPS) == 19

    def test_set_sizes(self):
        assert len(apps_in_set(BenchmarkSet.COMPUTATION)) == 6
        assert len(apps_in_set(BenchmarkSet.STORAGE)) == 6
        assert len(apps_in_set(BenchmarkSet.GENERAL_PURPOSE)) == 7

    def test_unique_names(self):
        names = [app.name for app in PCMARK_APPS]
        assert len(set(names)) == len(names)

    def test_app_by_name(self):
        app = app_by_name("video-transcode")
        assert app.benchmark_set == BenchmarkSet.COMPUTATION

    def test_unknown_app_rejected(self):
        with pytest.raises(WorkloadError):
            app_by_name("quake")


class TestFigure6Statistics:
    def test_set_mean_durations_match_profiles(self):
        for benchmark_set in BenchmarkSet:
            apps = apps_in_set(benchmark_set)
            mean = np.mean([a.mean_duration_ms for a in apps])
            assert mean == pytest.approx(
                profile_for(benchmark_set).mean_duration_ms, rel=0.02
            )

    def test_intra_set_cov_in_paper_band(self):
        """Figure 6b: CoV of benchmark means between 0.25 and 0.33."""
        for benchmark_set in BenchmarkSet:
            means = [
                a.mean_duration_ms for a in apps_in_set(benchmark_set)
            ]
            cov = coefficient_of_variation(means)
            assert 0.24 <= cov <= 0.34, f"{benchmark_set}: {cov}"

    def test_sampled_mean_matches_declared(self, rng):
        app = PCMARK_APPS[0]
        samples = app.sample_durations_ms(200000, rng)
        assert samples.mean() == pytest.approx(
            app.mean_duration_ms, rel=0.05
        )

    def test_heavy_tail_two_orders_of_magnitude(self, rng):
        """Figure 6a: maxima ~2 orders of magnitude above the mean."""
        app = PCMARK_APPS[0]
        samples = app.sample_durations_ms(100000, rng)
        assert samples.max() / samples.mean() > 30

    def test_all_durations_positive(self, rng):
        for app in PCMARK_APPS:
            assert (app.sample_durations_ms(1000, rng) > 0).all()

    def test_negative_sample_count_rejected(self, rng):
        with pytest.raises(WorkloadError):
            PCMARK_APPS[0].sample_durations_ms(-1, rng)


class TestFigure7Power:
    def test_set_mean_power_matches_profiles(self):
        for benchmark_set in BenchmarkSet:
            apps = apps_in_set(benchmark_set)
            mean = np.mean([a.power_at_max_w for a in apps])
            assert mean == pytest.approx(
                profile_for(benchmark_set).power_at_max_w, rel=0.01
            )

    def test_computation_most_power(self):
        assert (
            SET_PROFILES[BenchmarkSet.COMPUTATION].power_at_max_w
            > SET_PROFILES[BenchmarkSet.GENERAL_PURPOSE].power_at_max_w
            > SET_PROFILES[BenchmarkSet.STORAGE].power_at_max_w
        )

    def test_computation_most_frequency_sensitive(self):
        assert (
            SET_PROFILES[BenchmarkSet.COMPUTATION].perf_drop_at_min
            > SET_PROFILES[BenchmarkSet.GENERAL_PURPOSE].perf_drop_at_min
            > SET_PROFILES[BenchmarkSet.STORAGE].perf_drop_at_min
        )

    def test_paper_endpoint_values(self):
        assert SET_PROFILES[
            BenchmarkSet.COMPUTATION
        ].power_at_max_w == pytest.approx(18.0)
        assert SET_PROFILES[
            BenchmarkSet.STORAGE
        ].power_at_max_w == pytest.approx(10.5)
        assert SET_PROFILES[
            BenchmarkSet.COMPUTATION
        ].perf_drop_at_min == pytest.approx(0.35)


class TestBlockPowerMap:
    def test_conserves_total_power(self):
        for app in PCMARK_APPS:
            powers = app.block_power_map(12.0)
            assert sum(powers.values()) == pytest.approx(12.0)

    def test_active_cores_carry_core_power(self):
        app = app_by_name("video-transcode")
        powers = app.block_power_map(10.0)
        active = [
            powers[f"core{i}"] for i in range(app.active_cores)
        ]
        inactive = [
            powers[f"core{i}"]
            for i in range(app.active_cores, 4)
        ]
        assert all(p > 0 for p in active)
        assert all(p == 0 for p in inactive)
        assert sum(active) == pytest.approx(
            10.0 * app.core_power_fraction
        )

    def test_storage_concentrates_uncore_io(self):
        app = app_by_name("file-copy")
        powers = app.block_power_map(10.0)
        assert powers["uncore"] + powers["io"] > powers["gpu"]

    def test_negative_power_rejected(self):
        with pytest.raises(WorkloadError):
            PCMARK_APPS[0].block_power_map(-1.0)

    def test_zero_power_all_zero(self):
        powers = PCMARK_APPS[0].block_power_map(0.0)
        assert all(p == 0 for p in powers.values())

"""Backend-parity oracle for the array-backend seam.

The seam (``repro.backend``) lets the hot kernels run under an
injected :class:`~repro.backend.ArrayBackend`.  Its cardinal contract:

- the default numpy backend is **bit-identical** to the pre-seam
  engine (the seam is pure dispatch, adding zero float operations);
- ``NumpyBackend(inplace=False)`` drives the *pure functional twins*
  — the exact code shape JAX traces — and those twins perform the
  same float ops in the same per-element order, so they are **also
  bit-identical**.  This pins the JAX-shaped branches without JAX
  installed;
- an actual JAX backend is epsilon-bounded (fuzz below, skipped
  cleanly when jax is absent).

The run-level check reuses the 19-configuration kernel-identity
oracle: every policy configuration x benchmark set x load combination
must produce the same result fingerprint under the default backend
and under the forced pure-twin backend.
"""

import numpy as np
import pytest
from test_kernel_identity import _make_policy, _oracle_configs

from repro.backend import (
    ENV_BACKEND,
    HAVE_JAX,
    NumpyBackend,
    backend_available,
    default_backend,
    get_backend,
)
from repro.config.presets import smoke
from repro.errors import ConfigurationError
from repro.sim.engine import Simulation
from repro.sim.fingerprint import result_fingerprint
from repro.sim.runner import run_once
from repro.thermal.detailed_model import DetailedChipModel
from repro.workloads.benchmark import BenchmarkSet


def _run(small_sut, policy, kwargs, benchmark_set, load, backend):
    return run_once(
        small_sut,
        smoke(seed=4),
        _make_policy(policy, kwargs, use_kernel=True),
        benchmark_set,
        load,
        backend=backend,
    )


@pytest.mark.parametrize(
    "policy,kwargs,benchmark_set,load",
    _oracle_configs(),
    ids=lambda value: getattr(
        value, "value", str(value).replace(" ", "")
    ),
)
def test_pure_twin_backend_is_bit_identical(
    small_sut, policy, kwargs, benchmark_set, load
):
    """All 19 oracle configs: pure twins == historical in-place path."""
    default = _run(
        small_sut, policy, kwargs, benchmark_set, load, backend=None
    )
    pure = _run(
        small_sut,
        policy,
        kwargs,
        benchmark_set,
        load,
        backend=NumpyBackend(inplace=False),
    )
    assert result_fingerprint(default) == result_fingerprint(pure)


def test_env_backend_forced_numpy_is_identical(small_sut, monkeypatch):
    """REPRO_BACKEND=numpy resolves to the default backend bit-for-bit."""
    policy, kwargs, benchmark_set, load = _oracle_configs()[0]
    baseline = _run(
        small_sut, policy, kwargs, benchmark_set, load, backend=None
    )
    monkeypatch.setenv(ENV_BACKEND, "numpy")
    forced = _run(
        small_sut, policy, kwargs, benchmark_set, load, backend=None
    )
    assert result_fingerprint(baseline) == result_fingerprint(forced)


def test_simulation_rejects_unknown_backend(small_sut):
    with pytest.raises(ConfigurationError):
        Simulation(
            small_sut,
            smoke(seed=0),
            _make_policy("CP", {}, use_kernel=True),
            backend="torch",
        )


def test_env_backend_unknown_name_raises(monkeypatch):
    monkeypatch.setenv(ENV_BACKEND, "accelerator9000")
    with pytest.raises(ConfigurationError):
        get_backend(None)


def test_backend_availability_flags():
    assert backend_available("numpy")
    assert backend_available("jax") == HAVE_JAX
    assert not backend_available("torch")
    assert default_backend().name == "numpy"
    assert default_backend().inplace


@pytest.mark.skipif(HAVE_JAX, reason="jax installed: construction works")
def test_jax_backend_missing_dependency_message():
    from repro.backend import JaxBackend

    with pytest.raises(ConfigurationError, match="jax is not installed"):
        JaxBackend()
    with pytest.raises(ConfigurationError, match="jax is not installed"):
        get_backend("jax")


class _RelabeledBackend(NumpyBackend):
    """A numpy-semantics backend with a distinct cache identity."""

    def __init__(self):
        super().__init__(inplace=False)

    @property
    def cache_token(self) -> str:
        return "numpy-relabeled"


def test_detailed_model_factor_cache_keys_on_backend():
    """Same g_conv under two backends -> two cache entries, same bits.

    The LRU factor cache used to key on ``g_conv`` alone; a cached
    numpy factorization would then satisfy a JAX request (returning
    host arrays mid-trace).  The key now includes
    ``backend.cache_token``.
    """
    from repro.thermal.heatsink import FIN_18

    model = DetailedChipModel(FIN_18)
    power = {"core0": 6.0, "gpu": 4.0}
    base = model.solve(30.0, power)
    assert len(model._factor_cache) == 1
    again = model.solve(30.0, power, backend=_RelabeledBackend())
    assert len(model._factor_cache) == 2
    tokens = {token for token, _ in model._factor_cache}
    assert tokens == {"numpy", "numpy-relabeled"}
    assert base.max_temperature_c == again.max_temperature_c
    # Same backend identity + same g_conv hits the cache, no new entry.
    model.solve(30.0, power, backend=_RelabeledBackend())
    assert len(model._factor_cache) == 2


# ---------------------------------------------------------------------------
# Seeded epsilon-bounded numpy-vs-JAX differential fuzz.  Collected and
# skipped (not errored) on machines without the optional dependency.
# ---------------------------------------------------------------------------

EPS = 5e-9


@pytest.mark.skipif(not HAVE_JAX, reason="jax not installed")
def test_jax_kernels_match_numpy_within_eps():
    from repro.backend import JaxBackend
    from repro.sim.power_manager import select_frequencies_steady
    from repro.thermal.dynamics import TwoNodeThermalState

    jax_backend = JaxBackend()
    rng = np.random.default_rng(1234)
    from repro.server.topology import moonshot_sut

    topology = moonshot_sut(n_rows=2)
    params = smoke(seed=0)
    n = topology.n_sockets
    ladder = topology.processor.ladder
    for _ in range(10):
        ambient = 18.0 + 12.0 * rng.random(n)
        chip = 40.0 + 50.0 * rng.random(n)
        dyn_max = 20.0 * rng.random(n)
        dyn_exp = np.full(n, 2.0)
        common = dict(
            dyn_max_w=dyn_max,
            dyn_exp=dyn_exp,
            tdp_w=topology.tdp_array,
            r_ext=topology.r_ext_array,
            theta_offset=topology.theta_offset_array,
            theta_slope=topology.theta_slope_array,
            ladder=ladder,
            params=params,
        )
        ref = select_frequencies_steady(
            ambient_c=ambient, chip_c=chip, **common
        )
        jax_freq = select_frequencies_steady(
            ambient_c=jax_backend.asarray(ambient),
            chip_c=jax_backend.asarray(chip),
            backend=jax_backend,
            **common,
        )
        # Frequencies are ladder states; an epsilon-crossing near an
        # admission threshold can flip one state, so compare the
        # underlying floats through the thermal step instead.
        assert (
            np.asarray(jax_freq) == np.asarray(ref)
        ).mean() > 0.95

        state_np = TwoNodeThermalState(
            sink_c=ambient.copy(), chip_c=chip.copy()
        )
        state_jax = TwoNodeThermalState(
            sink_c=ambient.copy(), chip_c=chip.copy()
        )
        power = 5.0 + 15.0 * rng.random(n)
        theta = (
            topology.theta_offset_array
            + topology.theta_slope_array * power
        )
        args = (0.99, 0.5, ambient, power, params.r_int,
                topology.r_ext_array, theta)
        state_np.step_decayed(*args)
        state_jax.sink_c = jax_backend.asarray(state_jax.sink_c)
        state_jax.chip_c = jax_backend.asarray(state_jax.chip_c)
        state_jax.step_decayed(*args, backend=jax_backend)
        np.testing.assert_allclose(
            np.asarray(state_jax.sink_c), state_np.sink_c,
            rtol=EPS, atol=EPS,
        )
        np.testing.assert_allclose(
            np.asarray(state_jax.chip_c), state_np.chip_c,
            rtol=EPS, atol=EPS,
        )


@pytest.mark.skipif(not HAVE_JAX, reason="jax not installed")
def test_jax_fleet_sweep_matches_serial_within_eps(small_sut):
    from repro.sim.batched import (
        FleetPoint,
        evaluate_fleet,
        evaluate_fleet_serial,
    )

    params = smoke(seed=0)
    points = [
        FleetPoint(u, p, 2.0)
        for u, p in ((0.1, 8.0), (0.5, 15.0), (0.9, 20.0))
    ]
    serial = evaluate_fleet_serial(
        small_sut, params, points, window_steps=512
    )
    jaxed = evaluate_fleet(
        small_sut, params, points, window_steps=512, backend="jax"
    )
    for field in (
        "power_w", "ambient_c", "sink_c", "chip_c",
        "window_sink_c", "window_chip_c",
    ):
        np.testing.assert_allclose(
            getattr(jaxed, field),
            getattr(serial, field),
            rtol=EPS,
            atol=EPS,
        )


def test_benchmark_set_enum_unchanged():
    """The seam must not leak into workload identity (config hashing)."""
    assert [s.value for s in BenchmarkSet] == [
        "Computation", "Storage", "GP"
    ]

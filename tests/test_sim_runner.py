"""Tests for repro.sim.runner."""

import pytest

from repro.config.presets import smoke
from repro.core import get_scheduler
from repro.sim.runner import run_once, run_sweep
from repro.workloads.benchmark import BenchmarkSet


class TestRunOnce:
    def test_identical_workload_across_schedulers(self, small_sut):
        """Two schedulers see the exact same job stream (same seed)."""
        params = smoke()
        cf = run_once(
            small_sut,
            params,
            get_scheduler("CF"),
            BenchmarkSet.COMPUTATION,
            0.5,
        )
        hf = run_once(
            small_sut,
            params,
            get_scheduler("HF"),
            BenchmarkSet.COMPUTATION,
            0.5,
        )
        assert cf.n_jobs_submitted == hf.n_jobs_submitted

    def test_scheduler_name_recorded(self, small_sut):
        result = run_once(
            small_sut,
            smoke(),
            get_scheduler("MinHR"),
            BenchmarkSet.STORAGE,
            0.4,
        )
        assert result.scheduler_name == "MinHR"

    def test_duration_scale_respected(self, small_sut):
        params = smoke()
        result = run_once(
            small_sut,
            params,
            get_scheduler("CF"),
            BenchmarkSet.COMPUTATION,
            0.4,
        )
        mean_work = sum(
            j.work_ms for j in result.completed_jobs
        ) / len(result.completed_jobs)
        # Computation mean 4 ms scaled by the preset's factor.
        assert mean_work == pytest.approx(
            4.0 * params.duration_scale, rel=0.5
        )


class TestRunSweep:
    def test_full_cross_product(self, small_sut):
        results = run_sweep(
            small_sut,
            smoke(),
            scheduler_names=("CF", "HF"),
            benchmark_sets=(BenchmarkSet.STORAGE,),
            loads=(0.3, 0.6),
        )
        assert set(results) == {
            ("CF", BenchmarkSet.STORAGE, 0.3),
            ("CF", BenchmarkSet.STORAGE, 0.6),
            ("HF", BenchmarkSet.STORAGE, 0.3),
            ("HF", BenchmarkSet.STORAGE, 0.6),
        }
        for result in results.values():
            assert result.n_jobs_completed > 0

    def test_sweep_uses_fresh_scheduler_instances(self, small_sut):
        """A stateful policy (MinHR precomputes) must be rebuilt."""
        results = run_sweep(
            small_sut,
            smoke(),
            scheduler_names=("MinHR",),
            benchmark_sets=(BenchmarkSet.STORAGE,),
            loads=(0.3, 0.5),
        )
        assert len(results) == 2

"""Differential oracle: adaptive stepping vs the fixed-step engine.

The multi-rate driver (:mod:`repro.sim.multirate`) promises two things,
and this suite pins both against the fixed-step engine as the oracle:

1. **Bit-identical decisions.**  Every discrete decision — placements,
   completions, migrations, DVFS selections, thermal trips — is taken
   by a plain fixed step on bit-exactly reproduced inputs, so the
   decision fingerprint (:func:`repro.sim.fingerprint.
   decision_fingerprint`) of an adaptive run equals the fixed run's
   exactly, over the same 19-configuration oracle the fault-identity
   suite uses.

2. **Bounded epsilon elsewhere.**  Mid-window thermal trajectories are
   advanced in closed form under frozen coupling, so the epsilon-set
   fields (``energy_j``, ``cooling_energy_j``, ``max_chip_c``,
   ``mean_airflow_scale``) and sampled temperature traces may drift,
   but only within an explicit bound tied to
   :attr:`~repro.sim.multirate.MultiRateConfig.tolerance_c`.

The fuzz harness then widens the net: seeded random topologies x
schedulers x fault schedules x loads, a reduced matrix by default and
the full matrix under ``REPRO_SLOW_TESTS=1``.  Any configuration whose
decisions diverge or whose epsilon is exceeded is a reproducible
counterexample (its case tuple is the test id).
"""

import os

import numpy as np
import pytest

from repro.config.presets import smoke
from repro.core import all_scheduler_names, get_scheduler
from repro.faults import FaultSchedule
from repro.server.topology import moonshot_sut
from repro.sim.fingerprint import decision_fingerprint
from repro.sim.multirate import MultiRateConfig
from repro.sim.runner import run_once
from repro.workloads.benchmark import BenchmarkSet

#: Bound on the per-sample / end-state temperature drift of an adaptive
#: run, degC.  The driver caps sink movement per closed-form substep at
#: ``tolerance_c`` (default 0.05), which bounds the frozen-coupling
#: error; a handful of multiples absorbs accumulation across substeps.
EPSILON_C = 0.25

#: Bound on the relative drift of integrated energies.
EPSILON_ENERGY_REL = 1e-3

SLOW = os.environ.get("REPRO_SLOW_TESTS", "") not in ("", "0")


def _oracle_configs():
    """The same 19 (scheduler, set, load) points the identity suite pins."""
    configs = [
        (name, BenchmarkSet.COMPUTATION, 0.5)
        for name in all_scheduler_names()
    ]
    for benchmark_set in (
        BenchmarkSet.COMPUTATION,
        BenchmarkSet.GENERAL_PURPOSE,
        BenchmarkSet.STORAGE,
    ):
        for load in (0.3, 0.9):
            configs.append(("CF", benchmark_set, load))
    return configs


def _assert_epsilon_close(fixed, adaptive):
    """Check the epsilon-set result fields stay within their bounds."""
    assert np.all(
        np.abs(adaptive.max_chip_c - fixed.max_chip_c) <= EPSILON_C
    ), "max_chip_c drifted beyond epsilon"
    for field in ("energy_j", "cooling_energy_j"):
        reference = getattr(fixed, field)
        drift = abs(getattr(adaptive, field) - reference)
        allowed = EPSILON_ENERGY_REL * max(abs(reference), 1.0)
        assert drift <= allowed, f"{field} drifted beyond epsilon"
    assert abs(
        adaptive.mean_airflow_scale - fixed.mean_airflow_scale
    ) <= EPSILON_ENERGY_REL


@pytest.mark.parametrize(
    "scheme,benchmark_set,load",
    _oracle_configs(),
    ids=lambda value: getattr(value, "value", value),
)
def test_decisions_bit_identical_on_oracle(
    small_sut, scheme, benchmark_set, load
):
    params = smoke(seed=4)
    fixed = run_once(
        small_sut, params, get_scheduler(scheme), benchmark_set, load
    )
    adaptive = run_once(
        small_sut,
        params,
        get_scheduler(scheme),
        benchmark_set,
        load,
        stepping="adaptive",
    )
    assert decision_fingerprint(fixed) == decision_fingerprint(adaptive)
    _assert_epsilon_close(fixed, adaptive)
    # The stepping summary is attached (and only for adaptive runs) and
    # accounts for every engine step exactly once.
    assert fixed.stepping is None
    summary = adaptive.stepping
    assert summary is not None and summary["mode"] == "adaptive"
    assert (
        summary["executed_steps"] + summary["skipped_steps"]
        == summary["n_steps"]
    )


def test_trace_samples_within_epsilon(small_sut):
    """Sampled temperature traces obey the explicit epsilon bound.

    Trace sample boundaries block quiescent windows, so both modes
    sample at the *identical* steps — the per-sample chip-temperature
    differences are exactly the mid-window epsilon the closed form is
    allowed.
    """
    from repro.sim.engine import Simulation
    from repro.sim.tracing import TraceConfig
    from repro.workloads.arrivals import ArrivalProcess

    params = smoke(seed=4)
    traces = {}
    for stepping in ("fixed", "adaptive"):
        jobs = ArrivalProcess(
            benchmark_set=BenchmarkSet.COMPUTATION,
            load=0.2,
            n_sockets=small_sut.n_sockets,
            seed=params.seed,
            duration_scale=params.duration_scale,
        ).generate(params.sim_time_s)
        result = Simulation(
            small_sut,
            params,
            get_scheduler("CF"),
            trace_config=TraceConfig(interval_s=0.1),
            stepping=stepping,
        ).run(jobs)
        traces[stepping] = result.trace
    fixed, adaptive = traces["fixed"], traces["adaptive"]
    assert fixed.times_s == adaptive.times_s
    for field in ("mean_chip_c", "max_chip_c"):
        drift = np.abs(
            np.asarray(getattr(adaptive, field))
            - np.asarray(getattr(fixed, field))
        )
        assert drift.max() <= EPSILON_C, f"trace {field} beyond epsilon"


def test_tighter_tolerance_shrinks_epsilon(small_sut):
    """tolerance_c is a real knob: tightening it cannot worsen epsilon."""
    params = smoke(seed=4)
    fixed = run_once(
        small_sut,
        params,
        get_scheduler("CF"),
        BenchmarkSet.COMPUTATION,
        0.1,
    )
    drifts = {}
    # 0.05 is the default; tolerances far looser than the default can
    # drift mid-window temperatures enough to perturb *later* decisions
    # and are outside the bit-identity contract.
    for tolerance in (0.05, 0.005):
        adaptive = run_once(
            small_sut,
            params,
            get_scheduler("CF"),
            BenchmarkSet.COMPUTATION,
            0.1,
            stepping="adaptive",
            multirate=MultiRateConfig(tolerance_c=tolerance),
        )
        assert decision_fingerprint(fixed) == decision_fingerprint(
            adaptive
        )
        drifts[tolerance] = float(
            np.abs(adaptive.max_chip_c - fixed.max_chip_c).max()
        )
    assert drifts[0.005] <= drifts[0.05] + 1e-12


# -- seeded fuzz matrix --------------------------------------------------


def _fuzz_cases(n_cases: int):
    """Reproducible random (topology, scheduler, faults, load) cases.

    One seeded generator drives every choice, so the matrix — and any
    counterexample it surfaces — replays bit-identically.
    """
    rng = np.random.default_rng(20260808)
    names = all_scheduler_names()
    sets = (
        BenchmarkSet.COMPUTATION,
        BenchmarkSet.GENERAL_PURPOSE,
        BenchmarkSet.STORAGE,
    )
    cases = []
    for index in range(n_cases):
        n_rows = int(rng.integers(1, 4))
        scheme = names[int(rng.integers(len(names)))]
        benchmark_set = sets[int(rng.integers(len(sets)))]
        load = round(float(rng.uniform(0.05, 0.95)), 3)
        fault_seed = (
            int(rng.integers(10_000)) if rng.random() < 0.5 else None
        )
        seed = int(rng.integers(10_000))
        cases.append(
            (index, n_rows, scheme, benchmark_set, load, fault_seed, seed)
        )
    return cases


@pytest.mark.parametrize(
    "index,n_rows,scheme,benchmark_set,load,fault_seed,seed",
    _fuzz_cases(24 if SLOW else 6),
    ids=lambda value: getattr(value, "value", value),
)
def test_fuzz_fixed_vs_adaptive(
    index, n_rows, scheme, benchmark_set, load, fault_seed, seed
):
    topology = moonshot_sut(n_rows=n_rows)
    params = smoke(seed=seed)
    fault_schedule = None
    if fault_seed is not None:
        fault_schedule = FaultSchedule.random(
            topology,
            seed=fault_seed,
            n_events=3,
            horizon_s=params.sim_time_s,
        )
    fixed = run_once(
        topology,
        params,
        get_scheduler(scheme),
        benchmark_set,
        load,
        fault_schedule=fault_schedule,
    )
    adaptive = run_once(
        topology,
        params,
        get_scheduler(scheme),
        benchmark_set,
        load,
        fault_schedule=fault_schedule,
        stepping="adaptive",
    )
    assert decision_fingerprint(fixed) == decision_fingerprint(adaptive)
    _assert_epsilon_close(fixed, adaptive)

"""Tests for the package-level public API and error hierarchy."""

import pytest

import repro
from repro.errors import (
    ConfigurationError,
    ReproError,
    SchedulingError,
    SimulationError,
    ThermalModelError,
    TopologyError,
    WorkloadError,
)


class TestExports:
    def test_version_string(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_key_entry_points(self):
        assert callable(repro.run_once)
        assert callable(repro.moonshot_sut)
        assert callable(repro.get_scheduler)
        assert callable(repro.scaled)

    def test_table_i_reachable(self):
        assert len(repro.TABLE_I_SYSTEMS) == 11

    def test_heat_sinks_reachable(self):
        assert repro.FIN_18.fin_count == 18
        assert repro.FIN_30.fin_count == 30


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ConfigurationError,
            TopologyError,
            ThermalModelError,
            WorkloadError,
            SchedulingError,
            SimulationError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")

    def test_catch_all_pattern(self):
        """A caller can catch every library error with one except."""
        try:
            repro.get_scheduler("definitely-not-a-policy")
        except ReproError:
            pass
        else:  # pragma: no cover
            pytest.fail("expected a ReproError")

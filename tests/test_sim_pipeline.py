"""Tests for the step-pipeline decomposition of the engine.

Covers the refactor's contracts: the read-only scheduler view, the
pipeline's component order, per-run resets (auditor, tracer, engine
reuse), the ``(arrival_s, job_id)`` admission tie-break, and the
interval cadence of the optional migration and fan-control phases.
"""

import numpy as np
import pytest

from repro.config.presets import smoke
from repro.core import get_scheduler
from repro.core.migration import MigrationPolicy
from repro.sim.engine import Simulation
from repro.sim.invariants import InvariantAuditor
from repro.sim.pipeline import (
    ArrivalAdmitter,
    Auditor,
    FanControl,
    MetricsAccumulator,
    Migrator,
    Placer,
    PowerManager,
    ThermalUpdater,
    Tracer,
    WorkRetirer,
    build_pipeline,
)
from repro.sim.state import SimulationState
from repro.sim.tracing import SimulationTrace, TraceConfig
from repro.sim.view import SchedulerView
from repro.thermal.fan_control import FanController
from repro.workloads.arrivals import ArrivalProcess
from repro.workloads.benchmark import BenchmarkSet
from repro.workloads.job import Job
from repro.workloads.pcmark import PCMARK_APPS


def make_jobs(load=0.6, seed=11, n_sockets=24, sim_time_s=3.0):
    params = smoke(seed=seed)
    arrivals = ArrivalProcess(
        benchmark_set=BenchmarkSet.COMPUTATION,
        load=load,
        n_sockets=n_sockets,
        seed=seed,
        duration_scale=params.duration_scale,
    )
    return arrivals.generate(sim_time_s)


class TestSchedulerView:
    @pytest.fixture
    def view(self, small_sut):
        return SchedulerView(SimulationState(small_sut, smoke()))

    ARRAYS = [
        "busy", "freq_mhz", "remaining_work_ms", "dyn_max_w",
        "dyn_exp", "perf_drop", "power_w", "ambient_c",
        "history_c", "busy_ema", "chip_c", "sink_c",
    ]

    @pytest.mark.parametrize("name", ARRAYS)
    def test_array_writes_raise(self, view, name):
        array = getattr(view, name)
        with pytest.raises(ValueError):
            array[0] = 1.0

    def test_attribute_assignment_raises(self, view):
        with pytest.raises(AttributeError):
            view.chip_c = np.zeros(24)

    def test_views_share_live_state(self, small_sut):
        state = SimulationState(small_sut, smoke())
        view = SchedulerView(state)
        state.thermal.chip_c[3] = 77.0
        assert view.chip_c[3] == 77.0

    def test_scheduler_writing_view_raises_in_run(self, small_sut):
        class VandalScheduler:
            name = "vandal"

            def reset(self, view, rng):
                pass

            def select_socket(self, job, idle_ids, view):
                view.chip_c[int(idle_ids[0])] = 0.0  # must raise
                return int(idle_ids[0])

        sim = Simulation(small_sut, smoke(), VandalScheduler())
        with pytest.raises(ValueError):
            sim.run(make_jobs())


class TestPipelineOrder:
    def test_standard_pipeline(self):
        kinds = [type(c) for c in build_pipeline()]
        assert kinds == [
            ArrivalAdmitter, Placer, PowerManager, WorkRetirer,
            ThermalUpdater, MetricsAccumulator,
        ]

    def test_full_pipeline_contract_order(self):
        kinds = [
            type(c)
            for c in build_pipeline(
                migrator=MigrationPolicy(),
                fan_controller=FanController(),
                trace_config=TraceConfig(),
                auditor=InvariantAuditor(),
            )
        ]
        assert kinds == [
            ArrivalAdmitter, Placer, Migrator, PowerManager,
            WorkRetirer, FanControl, ThermalUpdater,
            MetricsAccumulator, Tracer, Auditor,
        ]
        # The two load-bearing orderings, stated explicitly:
        assert kinds.index(FanControl) < kinds.index(ThermalUpdater)
        assert kinds.index(Migrator) < kinds.index(PowerManager)

    def test_extra_components_appended(self):
        class Probe:
            def on_run_start(self, ctx):
                pass

            def on_step(self, ctx):
                pass

            def on_run_end(self, ctx):
                pass

        probe = Probe()
        assert build_pipeline(extra_components=[probe])[-1] is probe


class TestPerRunResets:
    def test_trace_reset_clears_all_series(self, small_sut):
        trace = SimulationTrace()
        state = SimulationState(small_sut, smoke())
        trace.sample(state, 0, 1800.0)
        trace.sample_zones(state)
        assert len(trace) == 1
        assert len(trace.zone_chip_c) == 1
        trace.reset()
        assert len(trace) == 0
        assert trace.zone_chip_c == []
        assert trace.mean_chip_c == []
        assert trace.total_power_w == []

    def test_auditor_reset_clears_energy_baseline(self, small_sut):
        state = SimulationState(small_sut, smoke())
        auditor = InvariantAuditor()
        auditor.check(state, 10, 100.0)
        assert auditor.n_audits == 1
        auditor.reset()
        assert auditor.n_audits == 0
        # A lower cumulative energy is fine after reset: the baseline
        # belongs to the previous run, not this one.
        auditor.check(state, 10, 1.0)

    def test_engine_reuse_is_independent(self, small_sut):
        auditor = InvariantAuditor(interval_steps=100)
        sim = Simulation(
            small_sut,
            smoke(seed=5),
            get_scheduler("CF"),
            trace_config=TraceConfig(interval_s=0.1),
            auditor=auditor,
        )
        jobs = make_jobs(seed=5)
        first = sim.run(list(jobs))
        audits_per_run = auditor.n_audits
        second = sim.run(list(jobs))
        assert second.energy_j == first.energy_j
        assert second.n_jobs_completed == first.n_jobs_completed
        assert np.array_equal(second.work_done, first.work_done)
        # Fresh trace per run — never concatenated across runs.
        assert len(second.trace) == len(first.trace)
        assert second.trace is not first.trace
        # Auditor re-audited the second run from a clean baseline.
        assert auditor.n_audits == audits_per_run


class TestAdmissionTieBreak:
    def _duplicate_arrival_jobs(self):
        apps = PCMARK_APPS[:4]
        jobs = []
        job_id = 0
        # Three waves of simultaneous arrivals; jobs are long enough
        # to finish inside the post-warm-up measurement window.
        for wave_t in (0.0, 0.4, 0.8):
            for k in range(8):
                jobs.append(
                    Job(
                        job_id=job_id,
                        app=apps[k % len(apps)],
                        arrival_s=wave_t,
                        work_ms=600.0 + 15.0 * k,
                    )
                )
                job_id += 1
        return jobs

    def test_results_independent_of_list_order(self, small_sut):
        jobs = self._duplicate_arrival_jobs()
        shuffled = list(jobs)
        np.random.default_rng(99).shuffle(shuffled)

        first = Simulation(
            small_sut, smoke(), get_scheduler("CF")
        ).run(jobs)
        second = Simulation(
            small_sut, smoke(), get_scheduler("CF")
        ).run(shuffled)

        assert second.energy_j == first.energy_j
        assert second.n_jobs_completed == first.n_jobs_completed
        finishes_first = sorted(
            (job.job_id, job.finish_s) for job in first.completed_jobs
        )
        finishes_second = sorted(
            (job.job_id, job.finish_s) for job in second.completed_jobs
        )
        assert finishes_second == finishes_first

    def test_same_timestamp_admitted_in_id_order(self, small_sut):
        jobs = self._duplicate_arrival_jobs()
        reversed_list = list(reversed(jobs))
        result = Simulation(
            small_sut, smoke(), get_scheduler("CF")
        ).run(reversed_list)
        wave_zero = [
            job for job in result.completed_jobs if job.arrival_s == 0.0
        ]
        # All first-wave jobs fit the 24-socket SUT, so they start at
        # t=0 regardless of order; the tie-break shows in placement:
        # CF walks the coolest-first ranking in job-id order.
        assert wave_zero, "first wave should complete"
        assert all(job.start_s == 0.0 for job in wave_zero)


class RecordingMigration:
    """Minimal migration policy: records consult times, never moves."""

    interval_s = 0.1
    cost_ms = 0.0

    def __init__(self):
        self.times_s = []

    def propose(self, view):
        self.times_s.append(view.time_s)
        return []


class RecordingFan(FanController):
    """Real fan controller that counts its control evaluations."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        object.__setattr__(self, "calls", [])

    def airflow_scale(self, total_heat_w):
        self.calls.append(total_heat_w)
        return super().airflow_scale(total_heat_w)


class TestIntervalCadence:
    def test_migration_fires_exactly_on_boundaries(self, small_sut):
        policy = RecordingMigration()
        params = smoke()
        sim = Simulation(
            small_sut, params, get_scheduler("CF"), migrator=policy
        )
        sim.run(make_jobs())

        dt = params.power_manager_interval_s
        n_steps = int(round(params.sim_time_s / dt))
        interval_steps = max(int(round(policy.interval_s / dt)), 1)
        expected = [
            step * dt
            for step in range(0, n_steps, interval_steps)
            if step != 0  # nothing has run at t=0; step 0 is skipped
        ]
        assert policy.times_s == expected

    def test_fan_control_fires_exactly_on_boundaries(self, small_sut):
        controller = RecordingFan(interval_s=0.05)
        params = smoke()
        sim = Simulation(
            small_sut,
            params,
            get_scheduler("CF"),
            fan_controller=controller,
        )
        sim.run(make_jobs())

        dt = params.power_manager_interval_s
        n_steps = int(round(params.sim_time_s / dt))
        interval_steps = max(int(round(controller.interval_s / dt)), 1)
        expected_calls = len(range(0, n_steps, interval_steps))
        assert len(controller.calls) == expected_calls

    def test_combined_migration_and_fan_passes_auditor(self, small_sut):
        auditor = InvariantAuditor(interval_steps=50)
        sim = Simulation(
            small_sut,
            smoke(seed=2),
            get_scheduler("CF"),
            migrator=MigrationPolicy(),
            fan_controller=FanController(
                design_total_cfm=small_sut.total_airflow_cfm()
            ),
            auditor=auditor,
        )
        result = sim.run(make_jobs(seed=2))
        assert result.n_jobs_completed > 0
        assert auditor.n_audits > 0

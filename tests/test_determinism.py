"""Cross-cutting determinism guarantees.

Every comparison in the paper relies on running different schedulers on
*identical* workloads; these tests pin the reproducibility contract at
each layer.
"""

import numpy as np
import pytest

from repro.config.presets import smoke
from repro.core import all_scheduler_names, get_scheduler
from repro.sim.export import sweep_summaries
from repro.sim.runner import run_once, run_sweep
from repro.workloads.arrivals import ArrivalProcess
from repro.workloads.benchmark import BenchmarkSet
from repro.workloads.load_profile import (
    VaryingLoadProcess,
    ramp_profile,
)


class TestWorkloadDeterminism:
    def test_arrival_stream_bitwise_stable(self):
        def stream():
            return ArrivalProcess(
                benchmark_set=BenchmarkSet.GENERAL_PURPOSE,
                load=0.5,
                n_sockets=24,
                seed=11,
            ).generate(3.0)

        a, b = stream(), stream()
        assert [(j.arrival_s, j.work_ms, j.app.name) for j in a] == [
            (j.arrival_s, j.work_ms, j.app.name) for j in b
        ]

    def test_ramp_stream_bitwise_stable(self):
        phases = ramp_profile(0.2, 0.8, 3, 3.0)

        def stream():
            return VaryingLoadProcess(
                benchmark_set=BenchmarkSet.STORAGE,
                phases=phases,
                n_sockets=12,
                seed=5,
            ).generate()

        a, b = stream(), stream()
        assert [(j.arrival_s, j.work_ms) for j in a] == [
            (j.arrival_s, j.work_ms) for j in b
        ]


class TestSimulationDeterminism:
    @pytest.mark.parametrize("scheme", ["CF", "Random", "CP", "A-Random"])
    def test_full_run_repeatable(self, small_sut, scheme):
        """Even randomized policies repeat exactly (seeded RNG)."""
        params = smoke(seed=4)

        def run():
            return run_once(
                small_sut,
                params,
                get_scheduler(scheme),
                BenchmarkSet.COMPUTATION,
                0.6,
            )

        a, b = run(), run()
        assert a.energy_j == b.energy_j
        assert a.mean_runtime_expansion == b.mean_runtime_expansion
        np.testing.assert_array_equal(a.work_done, b.work_done)
        assert [j.socket_id for j in a.completed_jobs] == [
            j.socket_id for j in b.completed_jobs
        ]

    def test_sweep_summaries_repeatable(self, small_sut):
        params = smoke(seed=2)

        def summaries():
            results = run_sweep(
                small_sut,
                params,
                scheduler_names=("CF", "HF"),
                benchmark_sets=(BenchmarkSet.STORAGE,),
                loads=(0.4,),
            )
            return sweep_summaries(results)

        assert summaries() == summaries()

    def test_schedulers_isolated_across_runs(self, small_sut):
        """Running scheduler A never perturbs a later run of B."""
        params = smoke(seed=3)

        def run_cp():
            return run_once(
                small_sut,
                params,
                get_scheduler("CP"),
                BenchmarkSet.COMPUTATION,
                0.5,
            ).mean_runtime_expansion

        baseline = run_cp()
        for name in all_scheduler_names():
            run_once(
                small_sut,
                params,
                get_scheduler(name),
                BenchmarkSet.COMPUTATION,
                0.5,
            )
        assert run_cp() == baseline

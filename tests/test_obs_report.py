"""The telemetry digest (obs_report) and the artifact checker (check)."""

import json

import pytest

from repro.config.presets import smoke
from repro.errors import ObservabilityError
from repro.metrics.obs_report import ObsReport, main, obs_report, render
from repro.obs.check import check_directory
from repro.obs.check import main as check_main
from repro.obs.events import make_event
from repro.obs.manifest import RunManifest
from repro.obs.profiler import ComponentProfile, RunProfile
from repro.obs.writer import JsonlWriter


def _write_log(path, scheduler="CF", n_placements=3):
    events = [
        make_event(
            "run_start",
            run=path.stem,
            scheduler=scheduler,
            seed=4,
            n_sockets=24,
            n_steps=100,
        )
    ]
    events += [
        make_event(
            "placement", step=i, t=i * 0.5, job_id=i, socket=i % 4
        )
        for i in range(n_placements)
    ]
    events.append(
        make_event(
            "run_end",
            run=path.stem,
            n_completed=n_placements,
            energy_j=12.5,
            max_queue_length=1,
        )
    )
    with JsonlWriter(path) as writer:
        for event in events:
            writer.emit(event)
    return events


def _write_manifest(path, scheduler="CF", profile=None):
    manifest = RunManifest(
        config_key="k" + path.stem,
        scheduler=scheduler,
        benchmark_set="Computation",
        load=0.5,
        seed=4,
        params=dict(smoke(seed=4).__dict__),
        topology={"reconstructible": False, "token_sha256": "0" * 64},
        profile=profile.to_dict() if profile else None,
    )
    manifest.save(path)
    return manifest


def _profile(total_s):
    return RunProfile(
        engine_elapsed_s=total_s * 2,
        n_steps=100,
        components=(
            ComponentProfile(name="Placer", calls=102, total_s=total_s),
        ),
    )


# -- obs_report ------------------------------------------------------------


def test_digest_counts_and_spans(tmp_path):
    _write_log(tmp_path / "run-r0.jsonl", n_placements=4)
    report = obs_report(tmp_path)
    assert isinstance(report, ObsReport)
    assert len(report.runs) == 1
    run = report.runs[0]
    assert run.n_events == 6
    assert run.by_type["placement"] == 4
    assert run.span_s == pytest.approx(1.5)  # t: 0.0 .. 1.5
    assert not run.truncated
    assert report.totals["run_start"] == 1
    assert report.manifests == 0


def test_schedulers_and_profiles_merged_across_manifests(tmp_path):
    _write_log(tmp_path / "a-r0.jsonl", scheduler="CF")
    _write_log(tmp_path / "b-r0.jsonl", scheduler="CP")
    _write_manifest(
        tmp_path / "a.manifest.json", scheduler="CF", profile=_profile(1.0)
    )
    _write_manifest(
        tmp_path / "b.manifest.json", scheduler="CP", profile=_profile(2.0)
    )
    report = obs_report(tmp_path)
    assert report.manifests == 2
    assert report.schedulers == ["CF", "CP"]
    assert report.profile is not None
    assert report.profile.engine_elapsed_s == pytest.approx(6.0)
    assert report.profile.n_steps == 200
    (placer,) = report.profile.components
    assert placer.calls == 204
    assert placer.total_s == pytest.approx(3.0)


def test_truncated_log_flagged_not_fatal(tmp_path):
    path = tmp_path / "run-r0.jsonl"
    _write_log(path)
    data = path.read_bytes()
    path.write_bytes(data[:-10])  # kill mid-final-line
    report = obs_report(tmp_path)
    assert report.runs[0].truncated
    assert "truncated" in render(report)


def test_interior_corruption_is_fatal(tmp_path):
    path = tmp_path / "run-r0.jsonl"
    _write_log(path)
    lines = path.read_bytes().split(b"\n")
    lines[1] = b"{broken"
    path.write_bytes(b"\n".join(lines))
    with pytest.raises(ObservabilityError, match="corrupt"):
        obs_report(tmp_path)


def test_missing_and_empty_directories_raise(tmp_path):
    with pytest.raises(ObservabilityError, match="does not exist"):
        obs_report(tmp_path / "absent")
    with pytest.raises(ObservabilityError, match="no telemetry artifacts"):
        obs_report(tmp_path)


def test_render_mentions_the_essentials(tmp_path):
    _write_log(tmp_path / "run-r0.jsonl")
    _write_manifest(
        tmp_path / "run.manifest.json", profile=_profile(1.0)
    )
    text = render(obs_report(tmp_path))
    assert "1 event log(s)" in text
    assert "schedulers: CF" in text
    assert "placement" in text
    assert "aggregate profile" in text


def test_cli_text_and_json(tmp_path, capsys):
    _write_log(tmp_path / "run-r0.jsonl")
    assert main([str(tmp_path)]) == 0
    assert "event log(s)" in capsys.readouterr().out
    assert main([str(tmp_path), "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["totals"]["placement"] == 3


def test_cli_missing_directory_exits_2(tmp_path, capsys):
    assert main([str(tmp_path / "absent")]) == 2
    assert "error:" in capsys.readouterr().err


# -- the checker -----------------------------------------------------------


def test_check_valid_directory(tmp_path):
    _write_log(tmp_path / "run-r0.jsonl")
    _write_manifest(tmp_path / "run.manifest.json")
    assert check_directory(tmp_path) == []
    assert check_main([str(tmp_path)]) == 0


def test_check_flags_corrupt_log_and_bad_manifest(tmp_path, capsys):
    path = tmp_path / "run-r0.jsonl"
    _write_log(path)
    lines = path.read_bytes().split(b"\n")
    lines[1] = b"{broken"
    path.write_bytes(b"\n".join(lines))
    (tmp_path / "run.manifest.json").write_text("{oops", encoding="utf-8")
    problems = check_directory(tmp_path)
    assert len(problems) == 2
    assert check_main([str(tmp_path)]) == 1
    assert "2 invalid telemetry artifact(s)" in capsys.readouterr().err


def test_check_truncation_strict_by_default(tmp_path):
    path = tmp_path / "run-r0.jsonl"
    _write_log(path)
    data = path.read_bytes()
    path.write_bytes(data[:-10])
    assert check_directory(tmp_path)  # strict: truncation is a problem
    assert check_directory(tmp_path, allow_truncated=True) == []
    assert check_main([str(tmp_path), "--allow-truncated"]) == 0


def test_check_empty_log_is_a_problem(tmp_path):
    (tmp_path / "run-r0.jsonl").write_bytes(b"")
    (problem,) = check_directory(tmp_path)
    assert "no events" in problem


def test_check_missing_directory_exits_2(tmp_path, capsys):
    with pytest.raises(ObservabilityError, match="does not exist"):
        check_directory(tmp_path / "absent")
    assert check_main([str(tmp_path / "absent")]) == 2
    assert "error:" in capsys.readouterr().err


def test_profile_buckets_merged_across_manifests(tmp_path):
    def bucketed(total_s, policy):
        return RunProfile(
            engine_elapsed_s=total_s * 2,
            n_steps=100,
            components=(
                ComponentProfile(
                    name="Placer", calls=102, total_s=total_s
                ),
            ),
            buckets=(
                ComponentProfile(
                    name=f"place:{policy}", calls=10, total_s=total_s / 2
                ),
            ),
        )

    _write_log(tmp_path / "a-r0.jsonl", scheduler="CF")
    _write_log(tmp_path / "b-r0.jsonl", scheduler="CF")
    _write_log(tmp_path / "c-r0.jsonl", scheduler="CP")
    _write_manifest(
        tmp_path / "a.manifest.json", profile=bucketed(1.0, "CF")
    )
    _write_manifest(
        tmp_path / "b.manifest.json", profile=bucketed(2.0, "CF")
    )
    _write_manifest(
        tmp_path / "c.manifest.json",
        scheduler="CP",
        profile=bucketed(4.0, "CP"),
    )
    profile = obs_report(tmp_path).profile
    assert [b.name for b in profile.buckets] == ["place:CF", "place:CP"]
    cf, cp = profile.buckets
    assert cf.calls == 20
    assert cf.total_s == pytest.approx(1.5)
    assert cp.calls == 10
    assert cp.total_s == pytest.approx(2.0)
    assert "place:CF" in render(obs_report(tmp_path))

"""Tests for the reproduction report builder."""

import pytest

from repro.experiments.registry import get_experiment
from repro.experiments.report import build_report, write_report


class TestBuildReport:
    def test_light_report_covers_all_fast_artifacts(self):
        report = build_report(include_heavy=False)
        for name in (
            "fig01",
            "fig02",
            "fig05",
            "fig06",
            "fig07",
            "fig09",
            "fig10",
            "table1",
            "table2",
            "table3",
        ):
            assert f"## {name}" in report

    def test_light_report_excludes_heavy(self):
        report = build_report(include_heavy=False)
        assert "## fig14" not in report

    def test_contains_regenerated_values(self):
        report = build_report(include_heavy=False)
        assert "51.74" in report  # Table II DensityOpt CFM
        assert "95 C" in report  # Table III limit

    def test_explicit_experiment_list(self):
        report = build_report(
            experiments=[get_experiment("table2")]
        )
        assert "## table2" in report
        assert "## table1" not in report

    def test_write_report(self, tmp_path):
        path = str(tmp_path / "report.md")
        out = write_report(path)
        assert out == path
        with open(path) as handle:
            content = handle.read()
        assert content.startswith("# Reproduction report")


class TestCLIReport:
    def test_cli_writes_report(self, tmp_path, capsys):
        from repro.__main__ import main

        path = str(tmp_path / "r.md")
        assert main(["report", "--out", path]) == 0
        assert "wrote" in capsys.readouterr().out
        with open(path) as handle:
            assert "fig01" in handle.read()

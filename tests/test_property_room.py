"""Property-based tests (hypothesis) for the room layer.

Three property families pin the room fixed point:

- **Recirculation-matrix invariants** — constructed matrices are
  non-negative with row sums strictly below 1; malformed matrices are
  rejected loudly; the zero matrix makes the room exactly a set of
  isolated chassis (bit-identical to per-chassis solves).
- **CRAC monotonicity** — warming the supply warms every converged
  inlet by at least the setpoint delta (leakage feedback can only add)
  and warms every chip.
- **Permutation equivariance** — relabelling the chassis permutes the
  solution and nothing else (allclose, not bitwise: dgemv summation
  order legitimately changes under permutation).
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.presets import scaled
from repro.errors import RoomError
from repro.fleet.registry import ChassisSpec
from repro.room import (
    RecirculationMatrix,
    Room,
    downwind_recirculation,
    row_layout_recirculation,
    solve_room,
    uniform_recirculation,
    zero_recirculation,
)
from repro.sim.steady_state import solve_steady_state

#: A cheap uncoupled chassis recipe (4 independent sockets).
TINY = dict(
    n_rows=1,
    lanes_per_row=4,
    chain_length=1,
    sockets_per_cartridge_depth=1,
)

#: A coupled chassis recipe (one 6-deep chain pair, 12 sockets).
COUPLED = dict(
    n_rows=1,
    lanes_per_row=1,
    chain_length=6,
    sockets_per_cartridge_depth=2,
)


def tiny_room(n_chassis: int, recirculation) -> Room:
    return Room(
        chassis=tuple(
            ChassisSpec(chassis_id=f"t{i}", **TINY)
            for i in range(n_chassis)
        ),
        recirculation=recirculation,
    )


def mixed_room(recirculation) -> Room:
    """Heterogeneous 3-chassis room: coupled, tiny, coupled."""
    return Room(
        chassis=(
            ChassisSpec(chassis_id="a", **COUPLED),
            ChassisSpec(chassis_id="b", **TINY),
            ChassisSpec(chassis_id="c", **COUPLED),
        ),
        recirculation=recirculation,
    )


@st.composite
def recirculation_matrices(draw):
    """Valid matrices: non-negative entries, row sums scaled below 1."""
    n = draw(st.integers(min_value=1, max_value=4))
    entries = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=1.0),
            min_size=n * n,
            max_size=n * n,
        )
    )
    matrix = np.array(entries).reshape(n, n)
    scale = draw(st.floats(min_value=0.0, max_value=0.9))
    row_sums = matrix.sum(axis=1, keepdims=True)
    matrix = np.where(
        row_sums > 0, matrix / np.maximum(row_sums, 1e-30) * scale, 0.0
    )
    return RecirculationMatrix(matrix)


class TestMatrixInvariants:
    @given(matrix=recirculation_matrices())
    @settings(max_examples=100, deadline=None)
    def test_constructed_matrices_hold_the_bounds(self, matrix):
        assert (matrix.matrix >= 0.0).all()
        assert (matrix.matrix.sum(axis=1) < 1.0).all()
        assert np.isfinite(matrix.matrix).all()

    @given(matrix=recirculation_matrices())
    @settings(max_examples=50, deadline=None)
    def test_contribution_is_column_sums(self, matrix):
        np.testing.assert_array_equal(
            matrix.hr_contribution(), matrix.matrix.sum(axis=0)
        )

    @given(
        matrix=recirculation_matrices(), data=st.data()
    )
    @settings(max_examples=50, deadline=None)
    def test_permutation_round_trips(self, matrix, data):
        order = data.draw(
            st.permutations(range(matrix.n_chassis))
        )
        inverse = np.argsort(order)
        back = matrix.permuted(order).permuted(inverse)
        np.testing.assert_array_equal(back.matrix, matrix.matrix)

    @given(value=st.floats(min_value=0.01, max_value=10.0))
    def test_negative_entries_rejected(self, value):
        with pytest.raises(RoomError, match="non-negative"):
            RecirculationMatrix(np.array([[0.0, -value], [0.0, 0.0]]))

    @given(excess=st.floats(min_value=0.0, max_value=10.0))
    def test_row_sums_at_or_above_one_rejected(self, excess):
        with pytest.raises(RoomError, match="row sums"):
            RecirculationMatrix(np.array([[1.0 + excess]]))

    def test_non_square_and_non_finite_rejected(self):
        with pytest.raises(RoomError, match="square"):
            RecirculationMatrix(np.zeros((2, 3)))
        with pytest.raises(RoomError, match="finite"):
            RecirculationMatrix(np.array([[np.nan]]))

    def test_builders_are_valid_and_shaped(self):
        for matrix in (
            zero_recirculation(3),
            uniform_recirculation(3, 0.01, self_coefficient=0.002),
            row_layout_recirculation(5),
            downwind_recirculation(4),
        ):
            assert (matrix.matrix >= 0.0).all()
            assert (matrix.matrix.sum(axis=1) < 1.0).all()
        assert zero_recirculation(3).is_zero
        assert not downwind_recirculation(3).is_zero
        # Downwind drift is strictly lower-triangular: the upwind
        # chassis (row 0) receives nothing.
        down = downwind_recirculation(4).matrix
        assert not np.triu(down).any()


class TestZeroMatrixIsolation:
    @given(
        n_chassis=st.integers(min_value=1, max_value=3),
        utilization=st.floats(min_value=0.0, max_value=1.0),
        dyn=st.floats(min_value=0.0, max_value=20.0),
        crac=st.floats(min_value=10.0, max_value=35.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_zero_matrix_equals_isolated_chassis(
        self, n_chassis, utilization, dyn, crac
    ):
        """No recirculation => every chassis solves as if alone, bit
        for bit, in a single fixed-point iteration."""
        room = tiny_room(n_chassis, zero_recirculation(n_chassis))
        solution = solve_room(room, utilization, dyn, crac)
        assert solution.n_iterations == 1
        params = dataclasses.replace(
            scaled(seed=0), inlet_c=float(crac)
        )
        for i, spec in enumerate(room.chassis):
            topology = spec.build_topology()
            n = topology.n_sockets
            alone = solve_steady_state(
                topology,
                params,
                np.full(n, dyn),
                np.full(n, utilization),
            )
            for field in ("power_w", "ambient_c", "sink_c", "chip_c"):
                np.testing.assert_array_equal(
                    getattr(solution.fields[i], field),
                    getattr(alone, field),
                    err_msg=field,
                )


class TestCracMonotonicity:
    @given(
        crac=st.floats(min_value=12.0, max_value=28.0),
        delta=st.floats(min_value=0.5, max_value=8.0),
        utilization=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_warmer_supply_warms_everything(
        self, crac, delta, utilization
    ):
        """Inlets rise at least by the setpoint delta (leakage feedback
        only adds heat) and every chip gets warmer."""
        room = mixed_room(row_layout_recirculation(3))
        cool = solve_room(room, utilization, 12.0, crac)
        warm = solve_room(room, utilization, 12.0, crac + delta)
        assert (warm.inlet_c - cool.inlet_c >= delta - 1e-9).all()
        assert (warm.max_chip_c > cool.max_chip_c).all()
        assert (warm.exhaust_w >= cool.exhaust_w - 1e-12).all()

    @given(utilization=st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=15, deadline=None)
    def test_recirculation_never_cools_the_room(self, utilization):
        """Adding recirculation can only raise inlets above the
        isolated room's CRAC-temperature inlets."""
        isolated = solve_room(
            mixed_room(zero_recirculation(3)), utilization, 12.0, 20.0
        )
        coupled = solve_room(
            mixed_room(downwind_recirculation(3)),
            utilization,
            12.0,
            20.0,
        )
        assert (
            coupled.inlet_c >= isolated.inlet_c - 1e-12
        ).all()
        assert (
            coupled.max_chip_c >= isolated.max_chip_c - 1e-9
        ).all()


class TestPermutationEquivariance:
    @given(
        data=st.data(),
        utilization=st.lists(
            st.floats(min_value=0.0, max_value=1.0),
            min_size=3,
            max_size=3,
        ),
        crac=st.floats(min_value=14.0, max_value=30.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_relabelling_permutes_the_solution(
        self, data, utilization, crac
    ):
        """Solving a permuted room permutes inlets/exhausts/chips and
        changes nothing else (allclose: BLAS summation order differs)."""
        order = data.draw(st.permutations(range(3)))
        room = mixed_room(downwind_recirculation(3))
        base = solve_room(room, np.array(utilization), 12.0, crac)
        permuted = solve_room(
            room.permuted(order),
            np.array(utilization)[list(order)],
            12.0,
            crac,
        )
        np.testing.assert_allclose(
            permuted.inlet_c,
            base.inlet_c[list(order)],
            rtol=1e-9,
            atol=1e-9,
        )
        np.testing.assert_allclose(
            permuted.exhaust_w,
            base.exhaust_w[list(order)],
            rtol=1e-9,
            atol=1e-9,
        )
        np.testing.assert_allclose(
            permuted.max_chip_c,
            base.max_chip_c[list(order)],
            rtol=1e-9,
            atol=1e-9,
        )

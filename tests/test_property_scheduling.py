"""Property-based tests: every policy returns a valid idle socket."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.presets import smoke
from repro.core import all_scheduler_names, get_scheduler
from repro.server.topology import moonshot_sut
from repro.sim.state import SimulationState
from repro.workloads.job import Job
from repro.workloads.pcmark import PCMARK_APPS

TOPOLOGY = moonshot_sut(n_rows=2)
PARAMS = smoke()


def randomized_state(seed: int) -> SimulationState:
    """A state with random temperatures and busy pattern."""
    rng = np.random.default_rng(seed)
    state = SimulationState(TOPOLOGY, PARAMS)
    n = state.n_sockets
    state.thermal.sink_c = rng.uniform(18.0, 95.0, n)
    state.thermal.chip_c = state.thermal.sink_c + rng.uniform(0, 8, n)
    state.ambient_c = rng.uniform(18.0, 70.0, n)
    state.history_c = rng.uniform(18.0, 95.0, n)
    state.busy_ema = rng.uniform(0.0, 1.0, n)
    busy_count = int(rng.integers(0, n - 1))
    for socket_id in rng.choice(n, size=busy_count, replace=False):
        state.assign(
            Job(
                job_id=int(socket_id),
                app=PCMARK_APPS[int(rng.integers(0, len(PCMARK_APPS)))],
                arrival_s=0.0,
                work_ms=float(rng.uniform(1.0, 100.0)),
            ),
            int(socket_id),
        )
    state.freq_mhz = rng.choice(
        [1100.0, 1300.0, 1500.0, 1700.0, 1900.0], size=n
    )
    return state


@pytest.mark.parametrize("name", all_scheduler_names())
class TestPolicyContract:
    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 10_000))
    def test_returns_idle_socket(self, name, seed):
        state = randomized_state(seed)
        idle = state.idle_socket_ids()
        policy = get_scheduler(name)
        policy.reset(state, np.random.default_rng(seed))
        job = Job(
            job_id=99999,
            app=PCMARK_APPS[seed % len(PCMARK_APPS)],
            arrival_s=0.0,
            work_ms=5.0,
        )
        chosen = policy.select_socket(job, idle, state)
        assert chosen in idle

    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(0, 1000))
    def test_deterministic_given_rng_seed(self, name, seed):
        job = Job(
            job_id=0, app=PCMARK_APPS[0], arrival_s=0.0, work_ms=5.0
        )

        def pick():
            state = randomized_state(seed)
            policy = get_scheduler(name)
            policy.reset(state, np.random.default_rng(7))
            return policy.select_socket(
                job, state.idle_socket_ids(), state
            )

        assert pick() == pick()

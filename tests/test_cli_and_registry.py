"""Tests for the experiment registry and the CLI."""

import pytest

from repro.__main__ import build_parser, main
from repro._version import __version__
from repro.errors import ConfigurationError
from repro.experiments.registry import (
    EXPERIMENTS,
    all_experiments,
    get_experiment,
)


class TestRegistry:
    def test_seventeen_artifacts(self):
        assert len(EXPERIMENTS) == 17
        assert "room" in EXPERIMENTS

    def test_every_experiment_has_run_and_main(self):
        for experiment in all_experiments():
            assert callable(experiment.run)
            assert callable(experiment.main)

    def test_light_filter(self):
        light = all_experiments(include_heavy=False)
        assert all(not e.heavy for e in light)
        assert {"table1", "table2", "table3", "fig01"} <= {
            e.name for e in light
        }

    def test_heavy_experiments_are_the_simulations(self):
        heavy = {e.name for e in all_experiments() if e.heavy}
        assert heavy == {
            "fig03",
            "fig11",
            "fig13",
            "fig14",
            "fig15",
            "faults",
        }

    def test_get_experiment(self):
        assert get_experiment("fig14").heavy

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            get_experiment("fig99")


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig14" in out
        assert "table2" in out

    def test_schedulers(self, capsys):
        assert main(["schedulers"]) == 0
        out = capsys.readouterr().out
        assert "CP" in out.splitlines()

    def test_run_single_artifact(self, capsys):
        assert main(["run", "table2"]) == 0
        out = capsys.readouterr().out
        assert "51.74" in out

    def test_run_light(self, capsys):
        assert main(["run", "--light"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "Figure 10" in out

    def test_run_without_names_errors(self, capsys):
        assert main(["run"]) == 2

    def test_run_unknown_artifact_raises(self):
        with pytest.raises(ConfigurationError):
            main(["run", "fig99"])

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out.strip()
        assert out == f"repro {__version__}"

    def test_version_matches_package(self):
        import repro

        assert repro.__version__ == __version__

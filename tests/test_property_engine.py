"""Property-based tests (hypothesis) for engine-level invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.parameters import SimulationParameters
from repro.config.presets import smoke
from repro.core import get_scheduler
from repro.server.processors import X2150_LADDER
from repro.server.topology import moonshot_sut
from repro.sim.power_manager import select_frequencies
from repro.sim.runner import run_once
from repro.workloads.benchmark import BenchmarkSet

PARAMS = SimulationParameters()


class TestFrequencySelectionProperties:
    @settings(max_examples=60)
    @given(
        sink=st.floats(10.0, 120.0),
        chip=st.floats(10.0, 120.0),
        dyn_max=st.floats(1.0, 16.0),
        exp=st.floats(1.0, 2.5),
    )
    def test_selected_frequency_is_a_ladder_state(
        self, sink, chip, dyn_max, exp
    ):
        freq = select_frequencies(
            sink_c=np.array([sink]),
            chip_c=np.array([chip]),
            dyn_max_w=np.array([dyn_max]),
            dyn_exp=np.array([exp]),
            tdp_w=np.array([22.0]),
            theta_offset=np.array([4.41]),
            theta_slope=np.array([-0.0896]),
            ladder=X2150_LADDER,
            params=PARAMS,
        )
        assert freq[0] in X2150_LADDER.states_mhz

    @settings(max_examples=40)
    @given(
        sink=st.floats(10.0, 120.0),
        dyn_max=st.floats(1.0, 16.0),
    )
    def test_hotter_sink_never_faster(self, sink, dyn_max):
        def pick(s):
            return select_frequencies(
                sink_c=np.array([s]),
                chip_c=np.array([s + 3.0]),
                dyn_max_w=np.array([dyn_max]),
                dyn_exp=np.array([1.7]),
                tdp_w=np.array([22.0]),
                theta_offset=np.array([4.41]),
                theta_slope=np.array([-0.0896]),
                ladder=X2150_LADDER,
                params=PARAMS,
            )[0]

        assert pick(sink + 10.0) <= pick(sink)


class TestEngineInvariantsOverSeeds:
    @settings(max_examples=6, deadline=None)
    @given(
        seed=st.integers(0, 50),
        load=st.sampled_from([0.2, 0.5, 0.8]),
        scheme=st.sampled_from(["CF", "HF", "CP", "Random"]),
    )
    def test_invariants_hold(self, seed, load, scheme):
        topology = moonshot_sut(n_rows=2)
        params = smoke(seed=seed)
        result = run_once(
            topology,
            params,
            get_scheduler(scheme),
            BenchmarkSet.GENERAL_PURPOSE,
            load,
        )
        # Every completed job expanded by at least 1 and at most the
        # worst-case ladder expansion.
        worst = 1.0 / 0.75  # GP at 1100 MHz
        for job in result.completed_jobs:
            assert 1.0 - 1e-9 <= job.runtime_expansion <= worst + 0.02
        # Busy time per socket bounded by the window.
        assert (
            result.busy_time_s <= result.measured_span_s + 1e-9
        ).all()
        # Energy consistent with power bounds.
        n = topology.n_sockets
        min_power = (0.1 * 22.0) * n * 0.9
        max_power = 22.0 * n
        assert (
            min_power
            <= result.average_power_w
            <= max_power
        )
        # Utilisation in [0, 1].
        assert 0.0 <= result.utilization <= 1.0

"""Property-based tests for the closed-form window advance.

The multi-rate driver's physics kernel is
:meth:`~repro.thermal.dynamics.TwoNodeThermalState.advance_window`: the
exact mode decomposition of ``n`` iterated
:meth:`~repro.thermal.dynamics.TwoNodeThermalState.step_decayed` calls
under frozen inputs.  Hypothesis explores the input space for the three
algebraic properties everything downstream leans on:

- **agreement** — the closed form matches the iterated recurrence to
  float round-off, in both the generic and the resonant branch;
- **semigroup** — advancing ``k1 + k2`` steps equals advancing ``k1``
  then ``k2`` (window splitting is free, which is what lets the trip
  guard truncate windows at substep boundaries);
- **monotone decay** — at zero power with ordered initial state the
  chip cools monotonically toward ambient and never undershoots it.

Plus the exact-EMA weight :func:`~repro.thermal.dynamics.
ema_window_sum` against its unrolled definition, and a steady-state
cross-check against the general RC solver
(:class:`~repro.thermal.rc_network.FactorizedSystem` machinery).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.thermal.dynamics import (
    TwoNodeThermalState,
    ema_window_sum,
)

#: Agreement tolerance between the closed form and the iterated
#: recurrence.  Both are exact in real arithmetic; float round-off
#: accumulates slightly differently (power vs repeated multiply).
ATOL = 1e-7

decays = st.floats(
    min_value=1e-6, max_value=1.0 - 1e-6, allow_nan=False
)
temps = st.floats(min_value=-40.0, max_value=150.0, allow_nan=False)
powers = st.floats(min_value=0.0, max_value=400.0, allow_nan=False)
resistances = st.floats(
    min_value=0.001, max_value=2.0, allow_nan=False
)
step_counts = st.integers(min_value=0, max_value=2000)


def _state(sink0, chip0):
    return TwoNodeThermalState(
        sink_c=np.array([sink0]), chip_c=np.array([chip0])
    )


def _inputs(ambient, power, r_int, r_ext, theta):
    return dict(
        ambient_c=np.array([ambient]),
        power_w=np.array([power]),
        r_int=np.array([r_int]),
        r_ext=np.array([r_ext]),
        theta=np.array([theta]),
    )


@settings(max_examples=200, deadline=None)
@given(
    sink_decay=decays,
    chip_decay=decays,
    n_steps=st.integers(min_value=0, max_value=200),
    sink0=temps,
    chip0=temps,
    ambient=temps,
    power=powers,
    r_int=resistances,
    r_ext=resistances,
    theta=st.floats(min_value=-5.0, max_value=20.0, allow_nan=False),
)
def test_advance_window_matches_iterated_steps(
    sink_decay,
    chip_decay,
    n_steps,
    sink0,
    chip0,
    ambient,
    power,
    r_int,
    r_ext,
    theta,
):
    inputs = _inputs(ambient, power, r_int, r_ext, theta)
    closed = _state(sink0, chip0)
    closed.advance_window(sink_decay, chip_decay, n_steps, **inputs)
    iterated = _state(sink0, chip0)
    for _ in range(n_steps):
        iterated.step_decayed(sink_decay, chip_decay, **inputs)
    scale = max(abs(sink0), abs(chip0), abs(ambient), 1.0)
    assert abs(closed.sink_c[0] - iterated.sink_c[0]) <= ATOL * scale
    assert abs(closed.chip_c[0] - iterated.chip_c[0]) <= ATOL * scale


@settings(max_examples=100, deadline=None)
@given(
    decay=decays,
    n_steps=st.integers(min_value=0, max_value=200),
    sink0=temps,
    chip0=temps,
    ambient=temps,
    power=powers,
)
def test_resonant_branch_matches_iterated_steps(
    decay, n_steps, sink0, chip0, ambient, power
):
    """Equal decay factors exercise the confluent (k * r**k) form."""
    inputs = _inputs(ambient, power, 0.3, 0.5, 1.0)
    closed = _state(sink0, chip0)
    modes = closed.advance_window(decay, decay, n_steps, **inputs)
    assert modes.resonant
    iterated = _state(sink0, chip0)
    for _ in range(n_steps):
        iterated.step_decayed(decay, decay, **inputs)
    scale = max(abs(sink0), abs(chip0), abs(ambient), 1.0)
    assert abs(closed.sink_c[0] - iterated.sink_c[0]) <= ATOL * scale
    assert abs(closed.chip_c[0] - iterated.chip_c[0]) <= ATOL * scale


@settings(max_examples=200, deadline=None)
@given(
    sink_decay=decays,
    chip_decay=decays,
    k1=st.integers(min_value=0, max_value=500),
    k2=st.integers(min_value=0, max_value=500),
    sink0=temps,
    chip0=temps,
    ambient=temps,
    power=powers,
)
def test_advance_window_semigroup(
    sink_decay, chip_decay, k1, k2, sink0, chip0, ambient, power
):
    """advance(k1 + k2) == advance(k1) then advance(k2).

    This is what makes window splitting free: the substep controller
    and the trip guard may cut any window anywhere without changing
    where the trajectory ends up.
    """
    inputs = _inputs(ambient, power, 0.2, 0.8, 2.0)
    whole = _state(sink0, chip0)
    whole.advance_window(sink_decay, chip_decay, k1 + k2, **inputs)
    split = _state(sink0, chip0)
    split.advance_window(sink_decay, chip_decay, k1, **inputs)
    split.advance_window(sink_decay, chip_decay, k2, **inputs)
    scale = max(abs(sink0), abs(chip0), abs(ambient), 1.0)
    assert abs(whole.sink_c[0] - split.sink_c[0]) <= ATOL * scale
    assert abs(whole.chip_c[0] - split.chip_c[0]) <= ATOL * scale


@settings(max_examples=100, deadline=None)
@given(
    sink_decay=st.floats(min_value=0.9, max_value=1.0 - 1e-9),
    chip_decay=st.floats(min_value=0.01, max_value=0.89),
    ambient=st.floats(min_value=0.0, max_value=45.0),
    sink_rise=st.floats(min_value=0.0, max_value=40.0),
    chip_rise=st.floats(min_value=0.0, max_value=40.0),
    n_steps=st.integers(min_value=1, max_value=300),
)
def test_zero_power_decay_is_monotone(
    sink_decay, chip_decay, ambient, sink_rise, chip_rise, n_steps
):
    """An idle, ordered-hot socket cools monotonically to ambient.

    With zero power and zero theta the only fixed point is ambient;
    starting from ``chip >= sink >= ambient`` the closed-form chip
    trajectory must be non-increasing in the window length and never
    undershoot ambient.
    """
    sink0 = ambient + sink_rise
    chip0 = sink0 + chip_rise
    inputs = _inputs(ambient, 0.0, 0.4, 0.6, 0.0)
    previous = chip0
    for k in range(1, n_steps + 1):
        state = _state(sink0, chip0)
        state.advance_window(sink_decay, chip_decay, k, **inputs)
        chip_k = state.chip_c[0]
        assert chip_k <= previous + 1e-9
        assert chip_k >= ambient - 1e-9
        previous = chip_k


@settings(max_examples=200, deadline=None)
@given(
    decay=decays,
    beta=decays,
    n_steps=st.integers(min_value=0, max_value=400),
)
def test_ema_window_sum_matches_unrolled_definition(
    decay, beta, n_steps
):
    expected = sum(
        beta ** (n_steps - j) * decay**j for j in range(1, n_steps + 1)
    )
    actual = ema_window_sum(decay, beta, n_steps)
    assert abs(actual - expected) <= 1e-9 * max(abs(expected), 1.0)


def test_ema_window_sum_confluent_limit():
    """The r == beta branch agrees with the limit of nearby rates."""
    exact = ema_window_sum(0.5, 0.5, 30)
    nearby = ema_window_sum(0.5 + 1e-10, 0.5, 30)
    assert abs(exact - nearby) <= 1e-6
    assert abs(exact - 30 * 0.5**30) <= 1e-12


def test_window_fixed_point_matches_rc_solver():
    """The closed form's equilibrium equals the general RC solution.

    A two-node ladder (ambient -- r_ext -- sink -- r_int -- chip,
    power injected at the chip) solved by the generic factorized RC
    machinery must agree with ``advance_window``'s constants
    (``sink_const``, ``chip_const`` with theta = 0) — the window
    advance converges to the physically correct steady state.
    """
    from repro.thermal.rc_network import FactorizedSystem

    ambient, power, r_int, r_ext = 25.0, 120.0, 0.05, 0.3
    # Unknowns [sink, chip]; conductance form G @ T = injection.
    g_ext, g_int = 1.0 / r_ext, 1.0 / r_int
    matrix = np.array(
        [[g_ext + g_int, -g_int], [-g_int, g_int]]
    )
    rhs = np.array([g_ext * ambient, power])
    solved = FactorizedSystem(matrix).solve(rhs)
    state = _state(90.0, 110.0)
    modes = state.advance_window(
        0.99,
        0.5,
        0,
        **_inputs(ambient, power, r_int, r_ext, 0.0),
    )
    assert abs(modes.sink_const[0] - solved[0]) <= 1e-9
    assert abs(modes.chip_const[0] - solved[1]) <= 1e-9
    # And a long window actually lands there.
    state.advance_window(
        0.9, 0.2, 5000, **_inputs(ambient, power, r_int, r_ext, 0.0)
    )
    assert abs(state.sink_c[0] - solved[0]) <= 1e-6
    assert abs(state.chip_c[0] - solved[1]) <= 1e-6

"""Bit-identity oracle: the fault machinery is inert when unused.

The fault subsystem threads hooks through the hottest paths of the
engine (placement, DVFS selection, power accounting, thermal update,
the scheduler view).  Its cardinal contract is that a run with an
*empty* :class:`~repro.faults.schedule.FaultSchedule` — the machinery
fully installed but with nothing to inject — reproduces the exact
float trajectory of a run with no fault machinery at all.

This suite pins that contract over a 19-configuration oracle spanning
every registered scheduler, every benchmark set and the load extremes,
comparing full content fingerprints (every metric array, scalar and
completion record; see :mod:`repro.sim.fingerprint`).
"""

import pytest

from repro.config.presets import smoke
from repro.core import all_scheduler_names, get_scheduler
from repro.faults import FaultSchedule
from repro.sim.fingerprint import result_fingerprint
from repro.sim.runner import run_once
from repro.workloads.benchmark import BenchmarkSet


def _oracle_configs():
    """The 19 (scheduler, benchmark set, load) oracle configurations.

    Every registered scheduler at the midpoint load, plus CF across
    every benchmark set at both load extremes — coverage of all policy
    code paths and all workload mixes.
    """
    configs = [
        (name, BenchmarkSet.COMPUTATION, 0.5)
        for name in all_scheduler_names()
    ]
    for benchmark_set in (
        BenchmarkSet.COMPUTATION,
        BenchmarkSet.GENERAL_PURPOSE,
        BenchmarkSet.STORAGE,
    ):
        for load in (0.3, 0.9):
            configs.append(("CF", benchmark_set, load))
    return configs


def test_oracle_covers_nineteen_configs():
    assert len(_oracle_configs()) == 19


@pytest.mark.parametrize(
    "scheme,benchmark_set,load",
    _oracle_configs(),
    ids=lambda value: getattr(value, "value", value),
)
def test_empty_schedule_is_bit_identical(
    small_sut, scheme, benchmark_set, load
):
    params = smoke(seed=4)
    bare = run_once(
        small_sut,
        params,
        get_scheduler(scheme),
        benchmark_set,
        load,
    )
    inert = run_once(
        small_sut,
        params,
        get_scheduler(scheme),
        benchmark_set,
        load,
        fault_schedule=FaultSchedule(),
    )
    # The machinery ran (it attaches its inert summary)...
    assert bare.fault_summary is None
    assert inert.fault_summary is not None
    assert inert.fault_summary["n_events"] == 0
    assert inert.fault_summary["n_trips"] == 0
    # ...but the trajectory is untouched, to the last bit.
    assert result_fingerprint(
        bare, include_fault_summary=False
    ) == result_fingerprint(inert, include_fault_summary=False)

"""Tests for the thermal-aware migration extension."""

import numpy as np
import pytest

from repro.config.presets import smoke
from repro.core import get_scheduler
from repro.core.migration import MigrationPolicy
from repro.errors import SchedulingError, SimulationError
from repro.sim.engine import Simulation
from repro.sim.state import SimulationState
from repro.workloads.arrivals import ArrivalProcess
from repro.workloads.benchmark import BenchmarkSet
from repro.workloads.job import Job
from repro.workloads.pcmark import PCMARK_APPS


@pytest.fixture
def state(small_sut, smoke_params):
    return SimulationState(small_sut, smoke_params)


def long_job(job_id=0):
    return Job(
        job_id=job_id,
        app=PCMARK_APPS[0],
        arrival_s=0.0,
        work_ms=500.0,
    )


class TestStateMigrate:
    def test_moves_job_and_parameters(self, state):
        job = long_job()
        state.assign(job, 0)
        state.remaining_work_ms[0] = 200.0
        state.migrate(0, 5, cost_ms=3.0)
        assert not state.busy[0]
        assert state.busy[5]
        assert state.running_jobs[5] is job
        assert job.socket_id == 5
        assert state.remaining_work_ms[5] == pytest.approx(203.0)
        assert state.dyn_max_w[0] == 0.0
        assert state.dyn_max_w[5] > 0.0

    def test_start_time_preserved(self, state):
        state.time_s = 1.0
        job = long_job()
        state.assign(job, 0)
        state.time_s = 2.0
        state.migrate(0, 3)
        assert job.start_s == 1.0

    def test_idle_source_rejected(self, state):
        with pytest.raises(SimulationError):
            state.migrate(0, 1)

    def test_busy_destination_rejected(self, state):
        state.assign(long_job(0), 0)
        state.assign(long_job(1), 1)
        with pytest.raises(SimulationError):
            state.migrate(0, 1)

    def test_negative_cost_rejected(self, state):
        state.assign(long_job(), 0)
        with pytest.raises(SimulationError):
            state.migrate(0, 1, cost_ms=-1.0)


class TestMigrationPolicy:
    def test_proposes_move_off_throttled_socket(self, state):
        policy = MigrationPolicy(min_gain_mhz=100.0)
        job = long_job()
        state.assign(job, 0)
        state.freq_mhz[0] = 1100.0
        state.thermal.sink_c[0] = 90.0
        state.thermal.chip_c[0] = 92.0
        moves = policy.propose(state)
        assert len(moves) == 1
        source, destination = moves[0]
        assert source == 0
        assert not state.busy[destination]

    def test_no_move_without_gain(self, state):
        policy = MigrationPolicy()
        job = long_job()
        state.assign(job, 0)
        state.freq_mhz[0] = 1900.0  # already at the top
        assert policy.propose(state) == []

    def test_short_jobs_not_migrated(self, state):
        policy = MigrationPolicy(min_remaining_ms=100.0)
        job = Job(
            job_id=0, app=PCMARK_APPS[0], arrival_s=0.0, work_ms=10.0
        )
        state.assign(job, 0)
        state.freq_mhz[0] = 1100.0
        assert policy.propose(state) == []

    def test_destinations_unique_per_round(self, state):
        policy = MigrationPolicy(min_gain_mhz=100.0)
        for socket_id in (0, 1, 2):
            state.assign(long_job(socket_id), socket_id)
            state.freq_mhz[socket_id] = 1100.0
            state.thermal.sink_c[socket_id] = 90.0
            state.thermal.chip_c[socket_id] = 92.0
        moves = policy.propose(state)
        destinations = [d for _, d in moves]
        assert len(destinations) == len(set(destinations))

    def test_max_moves_cap(self, state):
        policy = MigrationPolicy(min_gain_mhz=100.0, max_moves_per_round=1)
        for socket_id in (0, 1, 2):
            state.assign(long_job(socket_id), socket_id)
            state.freq_mhz[socket_id] = 1100.0
            state.thermal.sink_c[socket_id] = 90.0
            state.thermal.chip_c[socket_id] = 92.0
        assert len(policy.propose(state)) == 1

    def test_invalid_policy_rejected(self):
        with pytest.raises(SchedulingError):
            MigrationPolicy(interval_s=0.0)
        with pytest.raises(SchedulingError):
            MigrationPolicy(min_gain_mhz=0.0)
        with pytest.raises(SchedulingError):
            MigrationPolicy(max_moves_per_round=0)


class TestEngineIntegration:
    def _run(self, topology, migrator):
        params = smoke().with_overrides(duration_scale=100.0)
        arrivals = ArrivalProcess(
            benchmark_set=BenchmarkSet.COMPUTATION,
            load=0.7,
            n_sockets=topology.n_sockets,
            seed=0,
            duration_scale=params.duration_scale,
        )
        jobs = arrivals.generate(params.sim_time_s)
        sim = Simulation(
            topology, params, get_scheduler("CF"), migrator=migrator
        )
        return sim.run(jobs)

    def test_migrations_happen_for_long_jobs(self, small_sut):
        result = self._run(
            small_sut,
            MigrationPolicy(
                interval_s=0.05,
                min_remaining_ms=50.0,
                min_gain_mhz=150.0,
            ),
        )
        assert result.n_migrations > 0

    def test_no_migrator_means_no_migrations(self, small_sut):
        result = self._run(small_sut, None)
        assert result.n_migrations == 0

    def test_migrated_run_completes_jobs(self, small_sut):
        result = self._run(
            small_sut, MigrationPolicy(interval_s=0.05)
        )
        assert result.n_jobs_completed > 0
        for job in result.completed_jobs:
            assert job.finish_s > job.start_s

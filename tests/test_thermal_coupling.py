"""Tests for repro.thermal.coupling."""

import numpy as np
import pytest

from repro.errors import ThermalModelError
from repro.thermal.coupling import (
    CARTRIDGE_MIXING_FACTOR,
    CouplingChain,
    CouplingMatrix,
)


def chain(n=4, cfm=6.35, mix=1.0, decays=()):
    return CouplingChain(
        socket_ids=list(range(n)),
        airflow_cfm=cfm,
        mixing_factor=mix,
        gap_decays=decays,
    )


class TestCouplingChain:
    def test_degree_of_coupling(self):
        assert chain(6).degree_of_coupling == 5

    def test_weights_lower_triangular(self):
        w = chain(5).weights()
        assert np.allclose(w, np.tril(w, k=-1))

    def test_single_socket_has_no_coupling(self):
        w = chain(1).weights()
        assert w.shape == (1, 1)
        assert w[0, 0] == 0.0

    def test_weight_magnitude_first_law(self):
        w = chain(2, cfm=6.35, mix=1.0).weights()
        assert w[1, 0] == pytest.approx(1.76 / 6.35)

    def test_cartridge_calibration_reproduces_cfd_anecdote(self):
        """15 W upstream socket heats downstream air by ~8 degC."""
        w = chain(2, cfm=6.35, mix=CARTRIDGE_MIXING_FACTOR).weights()
        assert w[1, 0] * 15.0 == pytest.approx(8.0, abs=0.15)

    def test_gap_decays_attenuate_far_coupling(self):
        decayed = chain(3, decays=(1.0, 0.5, 0.5)).weights()
        flat = chain(3).weights()
        # Immediate neighbour attenuated once, two-away twice.
        assert decayed[1, 0] == pytest.approx(0.5 * flat[1, 0])
        assert decayed[2, 0] == pytest.approx(0.25 * flat[2, 0])

    def test_empty_chain_rejected(self):
        with pytest.raises(ThermalModelError):
            CouplingChain(socket_ids=[], airflow_cfm=6.0)

    def test_bad_airflow_rejected(self):
        with pytest.raises(ThermalModelError):
            chain(cfm=0.0)

    def test_wrong_decay_length_rejected(self):
        with pytest.raises(ThermalModelError):
            chain(3, decays=(1.0, 0.9))

    def test_first_decay_must_be_one(self):
        with pytest.raises(ThermalModelError):
            chain(3, decays=(0.9, 0.9, 0.9))

    def test_decay_out_of_range_rejected(self):
        with pytest.raises(ThermalModelError):
            chain(3, decays=(1.0, 1.2, 0.9))


class TestCouplingMatrix:
    def test_entry_temperatures_uni_directional(self):
        matrix = CouplingMatrix(3, [chain(3, mix=1.0)])
        heat = np.array([10.0, 0.0, 0.0])
        temps = matrix.entry_temperatures(18.0, heat)
        rise = 1.76 * 10.0 / 6.35
        assert temps[0] == pytest.approx(18.0)
        assert temps[1] == pytest.approx(18.0 + rise)
        assert temps[2] == pytest.approx(18.0 + rise)

    def test_downstream_heat_does_not_affect_upstream(self):
        matrix = CouplingMatrix(3, [chain(3)])
        temps = matrix.entry_temperatures(
            18.0, np.array([0.0, 0.0, 50.0])
        )
        assert temps[0] == pytest.approx(18.0)
        assert temps[1] == pytest.approx(18.0)

    def test_superposition(self):
        matrix = CouplingMatrix(4, [chain(4)])
        a = matrix.entry_temperatures(0.0, np.array([5.0, 0, 0, 0]))
        b = matrix.entry_temperatures(0.0, np.array([0, 7.0, 0, 0]))
        both = matrix.entry_temperatures(
            0.0, np.array([5.0, 7.0, 0, 0])
        )
        np.testing.assert_allclose(both, a + b)

    def test_independent_lanes_do_not_couple(self):
        lanes = [
            CouplingChain(socket_ids=[0, 1], airflow_cfm=6.0),
            CouplingChain(socket_ids=[2, 3], airflow_cfm=6.0),
        ]
        matrix = CouplingMatrix(4, lanes)
        temps = matrix.entry_temperatures(
            18.0, np.array([100.0, 0.0, 0.0, 0.0])
        )
        assert temps[2] == pytest.approx(18.0)
        assert temps[3] == pytest.approx(18.0)

    def test_downwind_of(self):
        matrix = CouplingMatrix(3, [chain(3)])
        np.testing.assert_array_equal(matrix.downwind_of(0), [1, 2])
        np.testing.assert_array_equal(matrix.downwind_of(2), [])

    def test_total_influence_decreases_downstream(self):
        matrix = CouplingMatrix(4, [chain(4)])
        influence = [matrix.total_influence(i) for i in range(4)]
        assert influence == sorted(influence, reverse=True)
        assert influence[-1] == 0.0

    def test_duplicate_socket_rejected(self):
        with pytest.raises(ThermalModelError):
            CouplingMatrix(
                3,
                [
                    CouplingChain(socket_ids=[0, 1], airflow_cfm=6.0),
                    CouplingChain(socket_ids=[1, 2], airflow_cfm=6.0),
                ],
            )

    def test_out_of_range_socket_rejected(self):
        with pytest.raises(ThermalModelError):
            CouplingMatrix(
                2, [CouplingChain(socket_ids=[0, 5], airflow_cfm=6.0)]
            )

    def test_wrong_heat_shape_rejected(self):
        matrix = CouplingMatrix(3, [chain(3)])
        with pytest.raises(ThermalModelError):
            matrix.entry_temperatures(18.0, np.zeros(4))

    def test_matrix_view_read_only(self):
        matrix = CouplingMatrix(3, [chain(3)])
        with pytest.raises(ValueError):
            matrix.matrix[0, 0] = 1.0

"""Tests for time-varying load profiles."""

import pytest

from repro.errors import WorkloadError
from repro.workloads.benchmark import BenchmarkSet
from repro.workloads.load_profile import (
    LoadPhase,
    VaryingLoadProcess,
    ramp_profile,
)


def process(phases, **overrides):
    kwargs = dict(
        benchmark_set=BenchmarkSet.GENERAL_PURPOSE,
        phases=phases,
        n_sockets=24,
        seed=3,
    )
    kwargs.update(overrides)
    return VaryingLoadProcess(**kwargs)


class TestLoadPhase:
    def test_invalid_duration_rejected(self):
        with pytest.raises(WorkloadError):
            LoadPhase(duration_s=0.0, load=0.5)

    def test_invalid_load_rejected(self):
        with pytest.raises(WorkloadError):
            LoadPhase(duration_s=1.0, load=0.0)
        with pytest.raises(WorkloadError):
            LoadPhase(duration_s=1.0, load=1.5)


class TestVaryingLoadProcess:
    PHASES = [
        LoadPhase(duration_s=5.0, load=0.2),
        LoadPhase(duration_s=5.0, load=0.8),
    ]

    def test_total_duration(self):
        assert process(self.PHASES).total_duration_s == pytest.approx(
            10.0
        )

    def test_boundaries(self):
        bounds = process(self.PHASES).phase_boundaries_s()
        assert bounds == [(0.0, 5.0, 0.2), (5.0, 10.0, 0.8)]

    def test_arrivals_sorted_with_unique_ids(self):
        jobs = process(self.PHASES).generate()
        times = [j.arrival_s for j in jobs]
        assert times == sorted(times)
        ids = [j.job_id for j in jobs]
        assert ids == list(range(len(jobs)))

    def test_rate_changes_between_phases(self):
        jobs = process(self.PHASES).generate()
        first = sum(1 for j in jobs if j.arrival_s < 5.0)
        second = len(jobs) - first
        assert second > 2.5 * first

    def test_deterministic(self):
        a = process(self.PHASES).generate()
        b = process(self.PHASES).generate()
        assert [j.arrival_s for j in a] == [j.arrival_s for j in b]

    def test_empty_profile_rejected(self):
        with pytest.raises(WorkloadError):
            process([])

    def test_bad_socket_count_rejected(self):
        with pytest.raises(WorkloadError):
            process(self.PHASES, n_sockets=0)


class TestRampProfile:
    def test_staircase_endpoints(self):
        phases = ramp_profile(0.2, 0.8, steps=4, total_duration_s=8.0)
        assert len(phases) == 4
        assert phases[0].load == pytest.approx(0.2)
        assert phases[-1].load == pytest.approx(0.8)

    def test_durations_split_evenly(self):
        phases = ramp_profile(0.2, 0.8, steps=4, total_duration_s=8.0)
        for phase in phases:
            assert phase.duration_s == pytest.approx(2.0)

    def test_monotone_loads(self):
        phases = ramp_profile(0.1, 0.9, steps=5, total_duration_s=5.0)
        loads = [p.load for p in phases]
        assert loads == sorted(loads)

    def test_descending_ramp(self):
        phases = ramp_profile(0.9, 0.1, steps=3, total_duration_s=3.0)
        loads = [p.load for p in phases]
        assert loads == sorted(loads, reverse=True)

    def test_invalid_inputs_rejected(self):
        with pytest.raises(WorkloadError):
            ramp_profile(0.2, 0.8, steps=1, total_duration_s=5.0)
        with pytest.raises(WorkloadError):
            ramp_profile(0.0, 0.8, steps=3, total_duration_s=5.0)
        with pytest.raises(WorkloadError):
            ramp_profile(0.2, 0.8, steps=3, total_duration_s=0.0)


class TestEngineIntegration:
    def test_ramp_simulates(self, small_sut, smoke_params):
        from repro.core import get_scheduler
        from repro.sim.engine import Simulation

        phases = ramp_profile(
            0.2, 0.9, steps=3, total_duration_s=smoke_params.sim_time_s
        )
        stream = VaryingLoadProcess(
            benchmark_set=BenchmarkSet.COMPUTATION,
            phases=phases,
            n_sockets=small_sut.n_sockets,
            seed=0,
            duration_scale=smoke_params.duration_scale,
        )
        result = Simulation(
            small_sut, smoke_params, get_scheduler("CP")
        ).run(stream.generate())
        assert result.n_jobs_completed > 0

"""Tests for repro.thermal.heatsink."""

import pytest

from repro.errors import ThermalModelError
from repro.thermal.heatsink import FIN_18, FIN_30, HeatSink, sink_for_zone


class TestTableIIIValues:
    def test_18_fin_external_resistance(self):
        assert FIN_18.r_ext == pytest.approx(1.578)

    def test_30_fin_external_resistance(self):
        assert FIN_30.r_ext == pytest.approx(1.056)

    def test_30_fin_is_better(self):
        assert FIN_30.r_ext < FIN_18.r_ext

    def test_theta_18_fin_at_10_watts(self):
        # 4.41 - 0.0896 * 10
        assert FIN_18.theta(10.0) == pytest.approx(3.514)

    def test_theta_30_fin_at_10_watts(self):
        # 4.45 - 0.0916 * 10
        assert FIN_30.theta(10.0) == pytest.approx(3.534)

    def test_theta_decreases_with_power(self):
        for sink in (FIN_18, FIN_30):
            assert sink.theta(20.0) < sink.theta(5.0)


class TestValidation:
    def test_negative_power_rejected(self):
        with pytest.raises(ThermalModelError):
            FIN_18.theta(-1.0)

    def test_zero_fin_count_rejected(self):
        with pytest.raises(ThermalModelError):
            HeatSink("bad", 0, 1.0, 0.0, 0.0)

    def test_non_positive_resistance_rejected(self):
        with pytest.raises(ThermalModelError):
            HeatSink("bad", 10, 0.0, 0.0, 0.0)

    def test_frozen(self):
        with pytest.raises(Exception):
            FIN_18.r_ext = 2.0


class TestSinkForZone:
    def test_odd_zones_get_18_fin(self):
        assert sink_for_zone(1) is FIN_18
        assert sink_for_zone(3) is FIN_18
        assert sink_for_zone(5) is FIN_18

    def test_even_zones_get_30_fin(self):
        assert sink_for_zone(2) is FIN_30
        assert sink_for_zone(4) is FIN_30
        assert sink_for_zone(6) is FIN_30

    def test_zone_zero_rejected(self):
        with pytest.raises(ThermalModelError):
            sink_for_zone(0)

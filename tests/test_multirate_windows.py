"""Edge cases of quiescent-window detection in the multi-rate driver.

Windows are only correct if they end *before* anything discrete can
happen.  These tests pin the boundary arithmetic at its sharpest
corners: an arrival landing exactly on a step boundary, a fault
transition one step inside a would-be window, a latched thermal trip
truncating a window from within, and the degenerate configurations
where windows never open and the adaptive driver must reproduce the
fixed engine bit-for-bit — including its telemetry stream, modulo the
``window_skip`` events only the adaptive driver emits.
"""

import json

import numpy as np
import pytest

from repro.config.presets import smoke
from repro.core import get_scheduler
from repro.faults.events import FanLaneFault
from repro.faults.schedule import FaultResponse, FaultSchedule
from repro.sim.engine import Simulation
from repro.sim.fingerprint import (
    decision_fingerprint,
    result_fingerprint,
)
from repro.sim.multirate import (
    MultiRateConfig,
    WindowPlan,
    boundary_step,
)
from repro.sim.pipeline import StepComponent
from repro.sim.runner import run_once
from repro.workloads.arrivals import ArrivalProcess
from repro.workloads.benchmark import BenchmarkSet


class RecordingProbe(StepComponent):
    """Passive observer capturing every window plan and executed step.

    Quiescent-transparent by construction: it never vetoes a window,
    never constrains one, and records the plan *after* the thermal
    updater has fixed ``steps_advanced`` (extras run last in pipeline
    order).
    """

    def __init__(self) -> None:
        self.plans = []
        self.steps = []

    def on_step(self, ctx) -> None:
        self.steps.append(ctx.step)

    def next_event_step(self, ctx):
        return None

    def is_quiescent(self, ctx) -> bool:
        return True

    def on_window(self, ctx, plan) -> None:
        self.plans.append(
            (plan.start, plan.end, plan.steps_advanced, plan.n_substeps)
        )


def _covered(plan) -> range:
    start, _end, advanced, _sub = plan
    return range(start, start + advanced)


def _run_with_probe(topology, params, load, **kwargs):
    jobs = ArrivalProcess(
        benchmark_set=BenchmarkSet.COMPUTATION,
        load=load,
        n_sockets=topology.n_sockets,
        seed=params.seed,
        duration_scale=params.duration_scale,
    ).generate(params.sim_time_s)
    probe = RecordingProbe()
    result = Simulation(
        topology,
        params,
        get_scheduler("CF"),
        extra_components=(probe,),
        stepping="adaptive",
        **kwargs,
    ).run(jobs)
    return result, probe


def test_boundary_step_is_predicate_exact():
    """boundary_step returns the first step whose clock reaches t.

    Checked against the engine's own predicate (``step * dt >= t``)
    over deliberately awkward float combinations, including times that
    are bit-exact step multiples and times eps away on either side.
    """
    for dt in (0.001, 0.002, 1.0 / 3.0, 0.0007):
        for base in (0, 1, 3, 250, 999, 12345):
            exact = base * dt
            for time_s in (
                exact,
                np.nextafter(exact, np.inf),
                np.nextafter(exact, -np.inf),
                exact + 0.4 * dt,
            ):
                if time_s < 0:
                    continue
                step = boundary_step(float(time_s), dt)
                assert step * dt >= time_s
                if step > 0:
                    assert (step - 1) * dt < time_s


def test_arrival_exactly_on_window_boundary(small_sut):
    """A window must end exactly at an arrival's admission step.

    The job's arrival time is a bit-exact step multiple — the hardest
    case for the boundary arithmetic, where ``ceil`` alone could land
    one step early or late on either side of the admission predicate.
    """
    params = smoke(seed=4)
    dt = params.power_manager_interval_s
    arrival_step = 700
    jobs = ArrivalProcess(
        benchmark_set=BenchmarkSet.COMPUTATION,
        load=0.2,
        n_sockets=small_sut.n_sockets,
        seed=params.seed,
        duration_scale=params.duration_scale,
    ).generate(params.sim_time_s)[:2]
    jobs[0].arrival_s = 5 * dt
    jobs[1].arrival_s = arrival_step * dt  # bit-exact boundary
    probe = RecordingProbe()
    adaptive = Simulation(
        small_sut,
        params,
        get_scheduler("CF"),
        extra_components=(probe,),
        stepping="adaptive",
    ).run(jobs)
    fixed = Simulation(small_sut, params, get_scheduler("CF")).run(jobs)
    assert decision_fingerprint(fixed) == decision_fingerprint(adaptive)
    # The admission step was executed as a plain fixed step, never
    # covered by any window...
    assert arrival_step in probe.steps
    assert all(
        arrival_step not in _covered(plan) for plan in probe.plans
    )
    # ...and the window leading up to it ended exactly on the boundary.
    assert any(
        start + advanced == arrival_step
        for start, _end, advanced, _sub in probe.plans
    )


def test_fault_transition_one_step_inside_would_be_window(small_sut):
    """No window may cover a fault activation, even one step deep.

    The fan fault activates one step after a long idle stretch begins —
    exactly the off-by-one a naive ``>`` vs ``>=`` horizon comparison
    would cover in a window.
    """
    params = smoke(seed=4)
    dt = params.power_manager_interval_s
    activation_step = 451  # one step past the 0.9 s boundary
    deactivation_s = 1.2
    schedule = FaultSchedule(
        events=(
            FanLaneFault(
                start_s=activation_step * dt,
                end_s=deactivation_s,
                row=0,
                lane=0,
                scale=0.5,
            ),
        )
    )
    # One early job (completes long before the fault) and one inside
    # the measurement window, leaving a long idle stretch around the
    # fault's activation for windows to open in.
    jobs = ArrivalProcess(
        benchmark_set=BenchmarkSet.COMPUTATION,
        load=0.2,
        n_sockets=small_sut.n_sockets,
        seed=params.seed,
        duration_scale=params.duration_scale,
    ).generate(params.sim_time_s)[:2]
    jobs[0].arrival_s = 5 * dt
    jobs[1].arrival_s = 700 * dt
    probe = RecordingProbe()
    adaptive = Simulation(
        small_sut,
        params,
        get_scheduler("CF"),
        fault_schedule=schedule,
        extra_components=(probe,),
        stepping="adaptive",
    ).run(jobs)
    fixed = Simulation(
        small_sut,
        params,
        get_scheduler("CF"),
        fault_schedule=schedule,
    ).run(jobs)
    assert decision_fingerprint(fixed) == decision_fingerprint(adaptive)
    assert probe.plans, "expected idle stretches to open windows"
    deactivation_step = boundary_step(deactivation_s, dt)
    for transition in (activation_step, deactivation_step):
        assert transition in probe.steps
        assert all(
            transition not in _covered(plan) for plan in probe.plans
        )
    assert any(
        start + advanced == activation_step
        for start, _end, advanced, _sub in probe.plans
    )


def test_latched_trip_blocks_windows(small_sut):
    """While a thermal trip is latched no window may open.

    A deeply negative trip margin forces trips at ordinary operating
    temperatures; the power manager's veto must hold the engine in
    fixed stepping for the whole latched stretch, and decisions (the
    trips themselves included) must match the fixed engine exactly.
    """
    params = smoke(seed=4)
    schedule = FaultSchedule(
        response=FaultResponse(trip_margin_c=-45.0)
    )
    fixed = run_once(
        small_sut,
        params,
        get_scheduler("CF"),
        BenchmarkSet.COMPUTATION,
        0.6,
        fault_schedule=schedule,
    )
    assert fixed.fault_summary["n_trips"] > 0, (
        "scenario must actually trip for this test to bite"
    )
    adaptive = run_once(
        small_sut,
        params,
        get_scheduler("CF"),
        BenchmarkSet.COMPUTATION,
        0.6,
        fault_schedule=schedule,
        stepping="adaptive",
    )
    assert decision_fingerprint(fixed) == decision_fingerprint(adaptive)
    assert (
        adaptive.fault_summary["n_trips"]
        == fixed.fault_summary["n_trips"]
    )


def test_trip_guard_truncates_window_mid_flight(small_sut):
    """The thermal updater cuts a window short when chips run hot.

    Drives ``on_window`` directly with a synthetic hot state above the
    (lowered) trip limit and a tolerance small enough to force short
    substeps: the advance must stop at the first substep boundary and
    report fewer steps than the plan allowed, so the engine resumes
    fixed stepping before a trip could latch unobserved.
    """
    from repro.faults.injector import FaultInjector
    from repro.sim.pipeline import (
        EngineContext,
        ThermalUpdater,
        build_pipeline,
    )

    params = smoke(seed=0)
    injector = FaultInjector(
        FaultSchedule(response=FaultResponse(trip_margin_c=-100.0))
    )
    components = build_pipeline(fault_injector=injector)
    ctx = EngineContext.create(
        small_sut, params, get_scheduler("CF"), [], n_jobs_submitted=0
    )
    for component in components:
        component.on_run_start(ctx)
    ctx.multirate = MultiRateConfig(tolerance_c=1e-4)
    state = ctx.state
    state.thermal.sink_c = state.thermal.sink_c + 60.0
    state.thermal.chip_c = state.thermal.chip_c + 80.0
    plan = WindowPlan(
        start=0, end=500, chip_max=np.full(small_sut.n_sockets, -np.inf)
    )
    # Window hooks in pipeline order up to the thermal updater, exactly
    # as the driver would (the power manager seeds the frozen idle
    # power the closed form consumes).
    for component in components:
        hook = getattr(component, "on_window", None)
        if hook is not None:
            hook(ctx, plan)
        if isinstance(component, ThermalUpdater):
            break
    assert 0 < plan.steps_advanced < plan.n_steps
    assert plan.n_substeps >= 1
    # The high-water mark saw the hot excursion the truncation caught.
    assert float(plan.chip_max.max()) >= ctx.fault_state.trip_c - 1.0


def test_degenerate_config_is_fully_bit_identical(small_sut):
    """min_window_steps beyond the horizon: adaptive == fixed, fully.

    With windows structurally impossible the adaptive driver executes
    the identical fixed steps in the identical order — the *complete*
    result fingerprint (epsilon fields included) must match, and the
    stepping summary must report zero windows.
    """
    params = smoke(seed=4)
    fixed = run_once(
        small_sut,
        params,
        get_scheduler("CF"),
        BenchmarkSet.COMPUTATION,
        0.3,
    )
    adaptive = run_once(
        small_sut,
        params,
        get_scheduler("CF"),
        BenchmarkSet.COMPUTATION,
        0.3,
        stepping="adaptive",
        multirate=MultiRateConfig(min_window_steps=10**9),
    )
    assert result_fingerprint(fixed) == result_fingerprint(adaptive)
    summary = adaptive.stepping
    assert summary["n_windows"] == 0
    assert summary["skipped_steps"] == 0
    assert summary["executed_steps"] == summary["n_steps"]


def test_no_double_telemetry_and_identical_streams(small_sut, tmp_path):
    """Telemetry streams match byte-for-byte modulo ``window_skip``.

    Degenerate (too-short) gaps fall back to fixed stepping without
    emitting anything, so the adaptive stream is exactly the fixed
    stream plus one well-formed ``window_skip`` line per real window —
    no duplicated placements, trips or run summaries.
    """
    streams = {}
    results = {}
    for stepping in ("fixed", "adaptive"):
        directory = tmp_path / stepping
        result = run_once(
            small_sut,
            smoke(seed=4),
            get_scheduler("CF"),
            BenchmarkSet.COMPUTATION,
            0.3,
            telemetry=str(directory),
            stepping=stepping,
            multirate=(
                MultiRateConfig(min_window_steps=1)
                if stepping == "adaptive"
                else None
            ),
        )
        lines = (
            (directory / "run-r0.jsonl").read_text().splitlines()
        )
        streams[stepping] = lines
        results[stepping] = result
    adaptive_events = [json.loads(line) for line in streams["adaptive"]]
    fixed_events = [json.loads(line) for line in streams["fixed"]]
    skips = [e for e in adaptive_events if e["type"] == "window_skip"]
    without_skips = [
        e for e in adaptive_events if e["type"] != "window_skip"
    ]
    # The run summary carries integrated energy — an epsilon field —
    # so it is compared with the epsilon bound; every other event must
    # be identical (no duplicated placements, trips or summaries).
    assert len(without_skips) == len(fixed_events)
    for adaptive_event, fixed_event in zip(without_skips, fixed_events):
        if adaptive_event["type"] == "run_end":
            energy_a = adaptive_event.pop("energy_j")
            energy_f = fixed_event.pop("energy_j")
            assert abs(energy_a - energy_f) <= 1e-3 * abs(energy_f)
        assert adaptive_event == fixed_event
    summary = results["adaptive"].stepping
    assert len(skips) == summary["n_windows"]
    assert (
        sum(event["n_steps"] for event in skips)
        == summary["skipped_steps"]
    )
    assert all(event["n_steps"] >= 1 for event in skips)
    assert all(
        event["n_substeps"] >= 1 for event in skips
    )


def test_boundary_step_fixes_ceil_rounding_up(small_sut):
    """Times a bit above a bit-exact multiple exercise the up-fixup.

    ``ceil(time_s / dt)`` rounds the quotient *down* across the
    boundary for these inputs, so the first fix-up loop must bump the
    step until ``step * dt`` actually reaches ``time_s``.
    """
    dt = 0.001
    for base in (11, 15, 22, 30, 44):
        time_s = float(np.nextafter(base * dt, np.inf))
        assert int(np.ceil(time_s / dt)) * dt < time_s  # ceil alone fails
        step = boundary_step(time_s, dt)
        assert step * dt >= time_s
        assert (step - 1) * dt < time_s


def test_config_validation_rejects_bad_knobs():
    from repro.errors import ConfigurationError

    with pytest.raises(ConfigurationError):
        MultiRateConfig(tolerance_c=0.0)
    with pytest.raises(ConfigurationError):
        MultiRateConfig(trip_guard_c=-0.1)
    with pytest.raises(ConfigurationError):
        MultiRateConfig(min_window_steps=0)


def test_engine_requires_components():
    from repro.errors import SimulationError
    from repro.sim.multirate import MultiRateEngine

    with pytest.raises(SimulationError):
        MultiRateEngine([])


def test_driver_rejects_resonant_state_directly(small_sut):
    """The driver itself guards resonance, not only the engine seam."""
    from repro.errors import ConfigurationError
    from repro.sim.multirate import MultiRateEngine
    from repro.sim.pipeline import EngineContext, build_pipeline

    params = smoke(seed=0)
    resonant = type(params)(
        **{
            **{
                f.name: getattr(params, f.name)
                for f in params.__dataclass_fields__.values()
            },
            "chip_tau_s": 1.0,
            "socket_tau_s": 1.0,
        }
    )
    ctx = EngineContext.create(
        small_sut, resonant, get_scheduler("CF"), [], n_jobs_submitted=0
    )
    with pytest.raises(ConfigurationError):
        MultiRateEngine(build_pipeline()).run(ctx)


def test_profiled_adaptive_run_accounts_windows(small_sut):
    """Profiling an adaptive run yields a window:advance bucket.

    The instrumented driver must keep decisions bit-identical to the
    unprofiled adaptive run, account every executed fixed step, and
    bucket the closed-form advances under ``window:advance`` with one
    call per opened window.
    """
    params = smoke(seed=4)
    plain = run_once(
        small_sut,
        params,
        get_scheduler("CF"),
        BenchmarkSet.COMPUTATION,
        0.3,
        stepping="adaptive",
    )
    profiled = run_once(
        small_sut,
        params,
        get_scheduler("CF"),
        BenchmarkSet.COMPUTATION,
        0.3,
        stepping="adaptive",
        profile=True,
    )
    assert decision_fingerprint(plain) == decision_fingerprint(profiled)
    assert profiled.stepping == plain.stepping
    profile = profiled.profile
    assert profile is not None
    assert profile.n_steps == profiled.stepping["executed_steps"]
    buckets = {entry.name: entry for entry in profile.buckets}
    window_bucket = buckets["window:advance"]
    assert window_bucket.calls >= profiled.stepping["n_windows"]
    assert window_bucket.total_s >= 0.0


def test_resonant_time_constants_are_rejected(small_sut):
    """Equal chip/socket taus cannot run adaptive (resonant closed form)."""
    from repro.errors import ConfigurationError

    params = smoke(seed=0)
    resonant = type(params)(
        **{
            **{
                f.name: getattr(params, f.name)
                for f in params.__dataclass_fields__.values()
            },
            "chip_tau_s": 1.0,
            "socket_tau_s": 1.0,
        }
    )
    with pytest.raises(ConfigurationError):
        Simulation(
            small_sut,
            resonant,
            get_scheduler("CF"),
            stepping="adaptive",
        )
    with pytest.raises(ConfigurationError):
        Simulation(
            small_sut, params, get_scheduler("CF"), stepping="bogus"
        )

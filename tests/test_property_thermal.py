"""Property-based tests (hypothesis) for the thermal substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.thermal.analytical import (
    entry_temperature_profile,
    entry_temperature_statistics,
)
from repro.thermal.chip_model import SimplifiedChipModel, peak_temperature
from repro.thermal.coupling import CouplingChain, CouplingMatrix
from repro.thermal.dynamics import exponential_step
from repro.thermal.heatsink import FIN_18, FIN_30
from repro.units import air_temperature_rise, airflow_for_power

powers = st.floats(min_value=0.0, max_value=200.0)
positive_powers = st.floats(min_value=0.1, max_value=200.0)
ambients = st.floats(min_value=-20.0, max_value=80.0)
airflows = st.floats(min_value=0.5, max_value=100.0)
degrees = st.integers(min_value=0, max_value=15)


class TestFirstLawProperties:
    @given(power=positive_powers, delta=st.floats(1.0, 40.0))
    def test_airflow_rise_roundtrip(self, power, delta):
        cfm = airflow_for_power(power, delta)
        assert air_temperature_rise(power, cfm) == pytest.approx(delta)

    @given(power=powers, cfm=airflows)
    def test_rise_non_negative(self, power, cfm):
        assert air_temperature_rise(power, cfm) >= 0.0

    @given(p1=powers, p2=powers, cfm=airflows)
    def test_rise_additive_in_power(self, p1, p2, cfm):
        combined = air_temperature_rise(p1 + p2, cfm)
        separate = air_temperature_rise(p1, cfm) + air_temperature_rise(
            p2, cfm
        )
        assert combined == pytest.approx(separate, rel=1e-9)


class TestEquationOneProperties:
    @given(ambient=ambients, power=powers)
    def test_peak_above_ambient(self, ambient, power):
        assert peak_temperature(ambient, power, FIN_18) >= ambient

    @given(ambient=ambients, power=powers, extra=st.floats(0.1, 50.0))
    def test_monotone_in_power(self, ambient, power, extra):
        assert peak_temperature(
            ambient, power + extra, FIN_18
        ) > peak_temperature(ambient, power, FIN_18)

    @given(ambient=ambients, power=powers, shift=st.floats(0.1, 50.0))
    def test_ambient_shift_is_additive(self, ambient, power, shift):
        base = peak_temperature(ambient, power, FIN_30)
        shifted = peak_temperature(ambient + shift, power, FIN_30)
        assert shifted - base == pytest.approx(shift)

    @given(ambient=ambients, power=positive_powers)
    def test_30_fin_never_hotter(self, ambient, power):
        assert peak_temperature(ambient, power, FIN_30) < peak_temperature(
            ambient, power, FIN_18
        )

    @given(ambient=ambients, limit=st.floats(60.0, 120.0))
    def test_max_power_inversion(self, ambient, limit):
        model = SimplifiedChipModel(FIN_18)
        power = model.max_power_for_limit(ambient, limit)
        if power > 0:
            assert model.peak_temperature(ambient, power) == pytest.approx(
                limit, abs=1e-6
            )


class TestExponentialStepProperties:
    @given(
        start=st.floats(-50.0, 150.0),
        target=st.floats(-50.0, 150.0),
        dt=st.floats(0.0, 100.0),
        tau=st.floats(0.001, 100.0),
    )
    def test_stays_between_start_and_target(self, start, target, dt, tau):
        out = float(
            exponential_step(
                np.array([start]), np.array([target]), dt, tau
            )[0]
        )
        low, high = min(start, target), max(start, target)
        assert low - 1e-9 <= out <= high + 1e-9

    @given(
        start=st.floats(-50.0, 150.0),
        target=st.floats(-50.0, 150.0),
        dt1=st.floats(0.001, 10.0),
        dt2=st.floats(0.001, 10.0),
        tau=st.floats(0.01, 100.0),
    )
    def test_semigroup_property(self, start, target, dt1, dt2, tau):
        """step(dt1) then step(dt2) equals step(dt1 + dt2)."""
        t = np.array([target])
        a = exponential_step(np.array([start]), t, dt1 + dt2, tau)
        b = exponential_step(
            exponential_step(np.array([start]), t, dt1, tau), t, dt2, tau
        )
        np.testing.assert_allclose(a, b, rtol=1e-10, atol=1e-10)


class TestCouplingProperties:
    @settings(max_examples=50)
    @given(
        n=st.integers(2, 8),
        heat=st.lists(
            st.floats(0.0, 50.0), min_size=8, max_size=8
        ),
        inlet=st.floats(0.0, 40.0),
    )
    def test_entry_temps_never_below_inlet(self, n, heat, inlet):
        chain = CouplingChain(
            socket_ids=list(range(n)), airflow_cfm=6.35
        )
        matrix = CouplingMatrix(n, [chain])
        temps = matrix.entry_temperatures(
            inlet, np.asarray(heat[:n])
        )
        assert (temps >= inlet - 1e-9).all()

    @settings(max_examples=50)
    @given(
        n=st.integers(2, 8),
        heat=st.lists(st.floats(0.0, 50.0), min_size=8, max_size=8),
    )
    def test_monotone_along_chain_under_uniform_heat(self, n, heat):
        chain = CouplingChain(
            socket_ids=list(range(n)), airflow_cfm=6.35
        )
        matrix = CouplingMatrix(n, [chain])
        uniform = np.full(n, 10.0)
        temps = matrix.entry_temperatures(18.0, uniform)
        assert (np.diff(temps) >= -1e-9).all()

    @settings(max_examples=50)
    @given(
        n=st.integers(2, 6),
        scale=st.floats(0.1, 5.0),
    )
    def test_linearity_in_heat(self, n, scale):
        chain = CouplingChain(
            socket_ids=list(range(n)), airflow_cfm=6.35
        )
        matrix = CouplingMatrix(n, [chain])
        heat = np.linspace(1.0, 10.0, n)
        base = matrix.entry_temperatures(0.0, heat)
        scaled = matrix.entry_temperatures(0.0, heat * scale)
        np.testing.assert_allclose(scaled, base * scale, rtol=1e-9)


class TestAnalyticalModelProperties:
    @given(degree=degrees, power=powers, cfm=airflows)
    def test_profile_monotone(self, degree, power, cfm):
        profile = entry_temperature_profile(degree, power, cfm)
        assert (np.diff(profile) >= -1e-12).all()

    @given(degree=degrees, power=positive_powers, cfm=airflows)
    def test_mean_between_first_and_last(self, degree, power, cfm):
        stats = entry_temperature_statistics(degree, power, cfm)
        profile = entry_temperature_profile(degree, power, cfm)
        assert profile[0] - 1e-9 <= stats.mean_c <= profile[-1] + 1e-9

    @given(
        degree=st.integers(1, 15), power=positive_powers, cfm=airflows
    )
    def test_degree_increase_never_cools(self, degree, power, cfm):
        lower = entry_temperature_statistics(degree, power, cfm)
        higher = entry_temperature_statistics(degree + 1, power, cfm)
        assert higher.mean_c >= lower.mean_c

"""Tests for repro.sim.parallel: equivalence, caching, fallback."""

import numpy as np
import pytest

from repro.config.presets import smoke
from repro.errors import ConfigurationError, SchedulingError
from repro.sim import parallel
from repro.sim.parallel import (
    SweepCache,
    config_key,
    execute_sweep,
    topology_token,
)
from repro.sim.runner import run_sweep
from repro.workloads.benchmark import BenchmarkSet

GRID = dict(
    scheduler_names=("CF", "HF", "CP"),
    benchmark_sets=(BenchmarkSet.COMPUTATION,),
    loads=(0.3, 0.7),
)


def assert_results_identical(a, b):
    """Bit-identical comparison of two sweep result mappings."""
    assert set(a) == set(b)
    for key in a:
        ra, rb = a[key], b[key]
        assert ra.scheduler_name == rb.scheduler_name
        assert ra.n_jobs_submitted == rb.n_jobs_submitted
        assert ra.n_jobs_completed == rb.n_jobs_completed
        assert ra.energy_j == rb.energy_j
        assert ra.max_queue_length == rb.max_queue_length
        assert np.array_equal(ra.work_done, rb.work_done)
        assert np.array_equal(ra.busy_time_s, rb.busy_time_s)
        assert np.array_equal(ra.freq_time_product, rb.freq_time_product)
        assert np.array_equal(ra.max_chip_c, rb.max_chip_c)
        assert [
            (j.job_id, j.socket_id, j.start_s, j.finish_s)
            for j in ra.completed_jobs
        ] == [
            (j.job_id, j.socket_id, j.start_s, j.finish_s)
            for j in rb.completed_jobs
        ]


class TestParallelSerialEquivalence:
    def test_workers4_bit_identical_to_serial(self, small_sut):
        params = smoke(seed=2)
        serial = run_sweep(small_sut, params, **GRID, max_workers=1)
        parallel_results = run_sweep(
            small_sut, params, **GRID, max_workers=4
        )
        assert_results_identical(serial, parallel_results)

    def test_serial_runs_repeat_identically(self, small_sut):
        params = smoke(seed=2)
        first = run_sweep(small_sut, params, **GRID)
        second = run_sweep(small_sut, params, **GRID)
        assert_results_identical(first, second)

    def test_audited_run_matches_unaudited(self, small_sut):
        """Auditing is read-only: it changes no metric bit."""
        params = smoke(seed=5)
        plain = run_sweep(small_sut, params, **GRID)
        audited = run_sweep(
            small_sut, params, **GRID, audit=True, audit_interval=20
        )
        assert_results_identical(plain, audited)

    def test_scheduler_error_propagates_from_worker(self, small_sut):
        with pytest.raises(SchedulingError):
            run_sweep(
                small_sut,
                smoke(),
                scheduler_names=("no-such-policy",),
                benchmark_sets=(BenchmarkSet.STORAGE,),
                loads=(0.5,),
                max_workers=4,
            )


class TestSweepCache:
    def test_repeat_sweep_hits_cache(self, small_sut):
        cache = SweepCache()
        params = smoke(seed=9)
        first = run_sweep(small_sut, params, **GRID, cache=cache)
        n_points = len(first)
        assert cache.misses == n_points
        assert cache.hits == 0
        second = run_sweep(small_sut, params, **GRID, cache=cache)
        assert cache.hits == n_points
        assert all(first[key] is second[key] for key in first)

    def test_cache_discriminates_seed(self, small_sut):
        cache = SweepCache()
        run_sweep(small_sut, smoke(seed=1), **GRID, cache=cache)
        run_sweep(small_sut, smoke(seed=2), **GRID, cache=cache)
        assert cache.hits == 0
        assert len(cache) == 2 * len(
            GRID["scheduler_names"]
        ) * len(GRID["loads"])

    def test_shared_cache_opt_in(self, small_sut):
        parallel.clear_shared_cache()
        try:
            params = smoke(seed=3)
            run_sweep(small_sut, params, **GRID, use_cache=True)
            before = parallel.shared_cache.hits
            run_sweep(small_sut, params, **GRID, use_cache=True)
            assert parallel.shared_cache.hits - before == len(
                GRID["scheduler_names"]
            ) * len(GRID["loads"])
        finally:
            parallel.clear_shared_cache()

    def test_default_sweep_does_not_populate_shared_cache(
        self, small_sut
    ):
        parallel.clear_shared_cache()
        run_sweep(
            small_sut,
            smoke(seed=8),
            scheduler_names=("CF",),
            benchmark_sets=(BenchmarkSet.STORAGE,),
            loads=(0.5,),
        )
        assert len(parallel.shared_cache) == 0

    def test_clear_resets_counters(self):
        cache = SweepCache()
        cache.put("k", object())
        cache.get("k")
        cache.get("missing")
        cache.clear()
        assert (len(cache), cache.hits, cache.misses) == (0, 0, 0)

    def test_sentinel_reads_env_bound(self, monkeypatch):
        monkeypatch.setenv(parallel.ENV_CACHE_MAX, "3")
        assert SweepCache(max_entries=-1).max_entries == 3
        monkeypatch.setenv(parallel.ENV_CACHE_MAX, "0")
        assert SweepCache(max_entries=-1).max_entries is None

    def test_explicit_bounds_bypass_env(self, monkeypatch):
        monkeypatch.setenv(parallel.ENV_CACHE_MAX, "3")
        assert SweepCache(max_entries=7).max_entries == 7
        assert SweepCache(max_entries=None).max_entries is None

    def test_negative_bound_rejected_naming_sentinel(self):
        with pytest.raises(ConfigurationError, match="-1 sentinel"):
            SweepCache(max_entries=-5)

    def test_zero_bound_rejected(self):
        with pytest.raises(
            ConfigurationError, match="would cache nothing"
        ):
            SweepCache(max_entries=0)

    def test_non_int_bound_rejected(self):
        with pytest.raises(ConfigurationError, match="float"):
            SweepCache(max_entries=2.5)
        with pytest.raises(ConfigurationError, match="str"):
            SweepCache(max_entries="8")


class TestConfigKey:
    def test_equal_configs_equal_keys(self, small_sut):
        a = config_key(
            small_sut, smoke(seed=4), "CF", BenchmarkSet.STORAGE, 0.5
        )
        b = config_key(
            small_sut, smoke(seed=4), "CF", BenchmarkSet.STORAGE, 0.5
        )
        assert a == b

    @pytest.mark.parametrize(
        "name,benchmark_set,load,seed",
        [
            ("HF", BenchmarkSet.STORAGE, 0.5, 4),
            ("CF", BenchmarkSet.COMPUTATION, 0.5, 4),
            ("CF", BenchmarkSet.STORAGE, 0.7, 4),
            ("CF", BenchmarkSet.STORAGE, 0.5, 5),
        ],
    )
    def test_any_field_change_changes_key(
        self, small_sut, name, benchmark_set, load, seed
    ):
        base = config_key(
            small_sut, smoke(seed=4), "CF", BenchmarkSet.STORAGE, 0.5
        )
        other = config_key(
            small_sut, smoke(seed=seed), name, benchmark_set, load
        )
        assert base != other

    def test_topology_token_sensitive_to_geometry(self, small_sut):
        from repro.server.topology import moonshot_sut

        assert topology_token(small_sut) != topology_token(
            moonshot_sut(n_rows=3)
        )
        assert topology_token(small_sut) == topology_token(
            moonshot_sut(n_rows=2)
        )


class TestSerialFallback:
    def test_single_point_runs_inline(self, small_sut, monkeypatch):
        """One pending point never pays for a pool."""

        def boom(*args, **kwargs):  # pragma: no cover - guard
            raise AssertionError("pool must not be created")

        monkeypatch.setattr(parallel, "_run_pool", boom)
        results = execute_sweep(
            small_sut,
            smoke(),
            [("CF", BenchmarkSet.STORAGE, 0.5)],
            max_workers=8,
        )
        assert results[0].n_jobs_completed > 0

    def test_no_fork_falls_back_to_serial(self, small_sut, monkeypatch):
        monkeypatch.setattr(parallel, "_fork_available", lambda: False)
        monkeypatch.setattr(
            parallel,
            "_run_pool",
            lambda *a, **k: pytest.fail("pool used without fork"),
        )
        results = execute_sweep(
            small_sut,
            smoke(),
            [
                ("CF", BenchmarkSet.STORAGE, 0.4),
                ("HF", BenchmarkSet.STORAGE, 0.4),
            ],
            max_workers=4,
        )
        assert len(results) == 2
        assert all(r.n_jobs_completed > 0 for r in results)

    def test_results_keep_submission_order(self, small_sut):
        points = [
            ("HF", BenchmarkSet.STORAGE, 0.6),
            ("CF", BenchmarkSet.STORAGE, 0.3),
            ("CP", BenchmarkSet.COMPUTATION, 0.5),
        ]
        results = execute_sweep(
            small_sut, smoke(), points, max_workers=4
        )
        assert [r.scheduler_name for r in results] == [
            "HF",
            "CF",
            "CP",
        ]


class TestRetryEdgeCases:
    """Crash-type pool failures must always reach the serial fallback."""

    class _BrokenAtSubmitPool:
        """A pool whose submit raises, like a pre-broken process pool."""

        instances = 0

        def __init__(self, *args, **kwargs):
            type(self).instances += 1

        def submit(self, *args, **kwargs):
            from concurrent.futures.process import BrokenProcessPool

            raise BrokenProcessPool("forked child died immediately")

        def shutdown(self, *args, **kwargs):
            pass

    class _BrokenAtResultPool:
        """A pool whose futures all fail with BrokenProcessPool."""

        def __init__(self, *args, **kwargs):
            pass

        def submit(self, *args, **kwargs):
            from concurrent.futures.process import BrokenProcessPool

            class _Future:
                def result(self, timeout=None):
                    raise BrokenProcessPool("worker crashed mid-run")

            return _Future()

        def shutdown(self, *args, **kwargs):
            pass

    def _run(self, small_sut, monkeypatch, pool_cls, max_retries):
        monkeypatch.setattr(parallel, "ProcessPoolExecutor", pool_cls)
        sleeps = []
        monkeypatch.setattr(
            parallel.time, "sleep", lambda s: sleeps.append(s)
        )
        params = smoke(seed=2)
        results = run_sweep(
            small_sut,
            params,
            **GRID,
            max_workers=4,
            max_retries=max_retries,
        )
        return results, sleeps, params

    def test_submit_time_broken_pool_falls_back_to_serial(
        self, small_sut, monkeypatch
    ):
        """A pool broken before accepting work must not escape the
        retry machinery (regression: submit-phase exceptions used to
        propagate straight out of execute_sweep)."""
        self._BrokenAtSubmitPool.instances = 0
        results, sleeps, params = self._run(
            small_sut, monkeypatch, self._BrokenAtSubmitPool, 2
        )
        reference = run_sweep(small_sut, params, **GRID, max_workers=1)
        assert_results_identical(results, reference)
        # Every round burned one pool, then serial completed the sweep.
        assert self._BrokenAtSubmitPool.instances == 3

    def test_budget_exhausted_on_final_round_completes_serially(
        self, small_sut, monkeypatch
    ):
        """Crashes through the last retry round leave every point to
        the serial leg, with the documented exponential backoff."""
        results, sleeps, params = self._run(
            small_sut, monkeypatch, self._BrokenAtResultPool, 2
        )
        reference = run_sweep(small_sut, params, **GRID, max_workers=1)
        assert_results_identical(results, reference)
        # Two retry rounds after the first: backoff doubles each time.
        backoff = 0.25  # execute_sweep's retry_backoff_s default
        assert sleeps == [backoff, backoff * 2]

    def test_zero_retry_budget_goes_straight_to_serial(
        self, small_sut, monkeypatch
    ):
        results, sleeps, params = self._run(
            small_sut, monkeypatch, self._BrokenAtResultPool, 0
        )
        reference = run_sweep(small_sut, params, **GRID, max_workers=1)
        assert_results_identical(results, reference)
        assert sleeps == []  # no retry rounds, no backoff

    def test_retry_rounds_are_telemetered(
        self, small_sut, monkeypatch, tmp_path
    ):
        from repro.obs.session import TelemetryConfig
        from repro.obs.writer import read_events

        monkeypatch.setattr(
            parallel, "ProcessPoolExecutor", self._BrokenAtSubmitPool
        )
        monkeypatch.setattr(parallel.time, "sleep", lambda s: None)
        run_sweep(
            small_sut,
            smoke(seed=2),
            **GRID,
            max_workers=4,
            max_retries=2,
            telemetry=TelemetryConfig(directory=tmp_path),
        )
        retries = [
            e
            for log in sorted(tmp_path.glob("*.jsonl"))
            for e in read_events(log)
            if e["type"] == "pool_retry"
        ]
        assert [e["round"] for e in retries] == [1, 2]
        assert all(
            e["remaining"] == len(GRID["loads"]) * 3 for e in retries
        )

"""Unit tests for repro.sim.results."""

import numpy as np
import pytest

from repro.config.presets import smoke
from repro.errors import SimulationError
from repro.server.topology import moonshot_sut
from repro.sim.results import SimulationResult
from repro.workloads.job import Job
from repro.workloads.pcmark import PCMARK_APPS


@pytest.fixture
def result():
    topology = moonshot_sut(n_rows=1)
    return SimulationResult(
        scheduler_name="test",
        params=smoke(),
        topology=topology,
        measured_span_s=10.0,
    )


def completed_job(job_id, work_ms, expansion):
    job = Job(
        job_id=job_id,
        app=PCMARK_APPS[0],
        arrival_s=0.0,
        work_ms=work_ms,
    )
    job.start_s = 1.0
    job.finish_s = 1.0 + (work_ms / 1000.0) * expansion
    return job


class TestDerivedMetrics:
    def test_mean_runtime_expansion(self, result):
        result.completed_jobs = [
            completed_job(0, 10.0, 1.0),
            completed_job(1, 10.0, 1.5),
        ]
        assert result.mean_runtime_expansion == pytest.approx(1.25)

    def test_performance_is_inverse(self, result):
        result.completed_jobs = [completed_job(0, 10.0, 1.25)]
        assert result.performance == pytest.approx(1 / 1.25)

    def test_mean_response_time(self, result):
        result.completed_jobs = [completed_job(0, 10.0, 2.0)]
        assert result.mean_response_time_s == pytest.approx(1.020)

    def test_average_power(self, result):
        result.energy_j = 500.0
        assert result.average_power_w == pytest.approx(50.0)

    def test_utilization(self, result):
        result.busy_time_s = np.full(result.topology.n_sockets, 5.0)
        assert result.utilization == pytest.approx(0.5)

    def test_ed2(self, result):
        result.completed_jobs = [completed_job(0, 10.0, 2.0)]
        result.energy_j = 100.0
        assert result.ed2_j_s2 == pytest.approx(400.0)

    def test_counts(self, result):
        result.completed_jobs = [completed_job(0, 10.0, 1.0)]
        result.n_jobs_submitted = 5
        assert result.n_jobs_completed == 1
        assert result.n_jobs_submitted == 5


class TestMaskedMetrics:
    def test_average_relative_frequency(self, result):
        n = result.topology.n_sockets
        result.busy_time_s = np.full(n, 2.0)
        result.freq_time_product = np.full(n, 1.6)  # 0.8 relative
        assert result.average_relative_frequency() == pytest.approx(0.8)

    def test_masked_frequency(self, result):
        n = result.topology.n_sockets
        result.busy_time_s = np.full(n, 1.0)
        result.freq_time_product = np.linspace(0.5, 1.0, n)
        mask = np.zeros(n, dtype=bool)
        mask[0] = True
        assert result.average_relative_frequency(mask) == pytest.approx(
            0.5
        )

    def test_never_busy_mask_gives_nan(self, result):
        mask = np.ones(result.topology.n_sockets, dtype=bool)
        assert np.isnan(result.average_relative_frequency(mask))

    def test_work_fraction(self, result):
        n = result.topology.n_sockets
        result.work_done = np.ones(n)
        mask = np.zeros(n, dtype=bool)
        mask[: n // 2] = True
        assert result.work_fraction(mask) == pytest.approx(0.5)


class TestGuards:
    def test_empty_jobs_raise(self, result):
        with pytest.raises(SimulationError):
            _ = result.mean_runtime_expansion
        with pytest.raises(SimulationError):
            _ = result.mean_response_time_s

    def test_zero_span_raises(self):
        topology = moonshot_sut(n_rows=1)
        bare = SimulationResult(
            scheduler_name="x", params=smoke(), topology=topology
        )
        with pytest.raises(SimulationError):
            _ = bare.average_power_w
        with pytest.raises(SimulationError):
            _ = bare.utilization

    def test_arrays_default_allocated(self, result):
        n = result.topology.n_sockets
        assert result.work_done.shape == (n,)
        assert result.busy_time_s.shape == (n,)
        assert result.boost_time_s.shape == (n,)
        assert np.isneginf(result.max_chip_c).all()

"""Unit tests for the runtime invariant auditor."""

import pickle

import numpy as np
import pytest

from repro.config.presets import smoke
from repro.core import get_scheduler
from repro.errors import SimulationError
from repro.sim.invariants import InvariantAuditor, InvariantViolation
from repro.sim.runner import run_once
from repro.sim.state import SimulationState
from repro.workloads.benchmark import BenchmarkSet


@pytest.fixture
def state(small_sut):
    return SimulationState(small_sut, smoke())


def audit(state, step=120, energy_j=0.0, **kwargs):
    InvariantAuditor(**kwargs).check(state, step, energy_j)


class TestCleanState:
    def test_fresh_state_passes(self, state):
        audit(state)

    def test_audit_counter_increments(self, state):
        auditor = InvariantAuditor()
        auditor.check(state, 0, 0.0)
        auditor.check(state, 50, 1.0)
        assert auditor.n_audits == 2

    def test_full_run_zero_violations(self, small_sut):
        auditor = InvariantAuditor(interval_steps=10)
        run_once(
            small_sut,
            smoke(seed=1),
            get_scheduler("CP"),
            BenchmarkSet.COMPUTATION,
            0.7,
            auditor=auditor,
        )
        assert auditor.n_audits > 100


class TestViolations:
    def test_nan_chip_temperature(self, state):
        state.thermal.chip_c[3] = float("nan")
        with pytest.raises(SimulationError) as excinfo:
            audit(state, step=120)
        violation = excinfo.value
        assert isinstance(violation, InvariantViolation)
        assert violation.step == 120
        assert violation.socket_id == 3
        assert "chip temperature" in violation.invariant
        assert "step 120" in str(violation)
        assert "socket 3" in str(violation)

    def test_infinite_sink_temperature(self, state):
        state.thermal.sink_c[0] = float("inf")
        with pytest.raises(InvariantViolation) as excinfo:
            audit(state)
        assert excinfo.value.socket_id == 0
        assert "sink" in excinfo.value.invariant

    def test_negative_remaining_work(self, state):
        state.busy[5] = True
        state.remaining_work_ms[5] = -0.25
        with pytest.raises(InvariantViolation) as excinfo:
            audit(state, step=77)
        violation = excinfo.value
        assert violation.step == 77
        assert violation.socket_id == 5
        assert violation.invariant == "remaining work >= 0"
        assert violation.value == pytest.approx(-0.25)
        assert "socket 5" in str(violation)

    def test_idle_socket_with_leftover_work(self, state):
        state.remaining_work_ms[2] = 4.0  # busy[2] stays False
        with pytest.raises(InvariantViolation) as excinfo:
            audit(state)
        assert excinfo.value.socket_id == 2
        assert "idle" in excinfo.value.invariant

    def test_ambient_below_inlet(self, state):
        state.ambient_c[1] = state.params.inlet_c - 3.0
        with pytest.raises(InvariantViolation) as excinfo:
            audit(state)
        assert excinfo.value.socket_id == 1

    def test_chip_far_below_sink(self, state):
        state.thermal.chip_c[4] = state.thermal.sink_c[4] - 50.0
        with pytest.raises(InvariantViolation) as excinfo:
            audit(state)
        assert excinfo.value.socket_id == 4

    def test_lag_tolerance_absorbs_small_inversion(self, state):
        state.thermal.chip_c[4] = state.thermal.sink_c[4] - 1.0
        audit(state, lag_tolerance_c=5.0)

    def test_sink_lag_bound_scales_with_airflow(self, state):
        # A slowed fan (scale << 1) amplifies entry-air rises by
        # 1/scale; the sink-lag check compares against the
        # design-airflow rise, so the same state passes at low scale.
        state.ambient_c = state.ambient_c + 30.0
        auditor = InvariantAuditor()
        with pytest.raises(InvariantViolation) as excinfo:
            auditor.check(state, 10, 0.0)
        assert excinfo.value.invariant == "sink >= ambient - lag"
        auditor.reset()
        auditor.check(state, 10, 0.0, airflow_scale=0.1)

    def test_power_above_envelope(self, state):
        state.power_w[7] = 10_000.0
        with pytest.raises(InvariantViolation) as excinfo:
            audit(state)
        assert excinfo.value.socket_id == 7
        assert "tdp" in excinfo.value.invariant

    def test_power_below_gated_floor(self, state):
        state.power_w[0] = 0.0
        with pytest.raises(InvariantViolation) as excinfo:
            audit(state)
        assert excinfo.value.invariant == "power >= gated"

    def test_energy_regression(self, state):
        auditor = InvariantAuditor()
        auditor.check(state, 10, 100.0)
        with pytest.raises(InvariantViolation) as excinfo:
            auditor.check(state, 20, 99.0)
        violation = excinfo.value
        assert violation.invariant == "energy monotone"
        assert violation.socket_id is None
        assert "global" in str(violation)


class TestConstruction:
    def test_rejects_zero_interval(self):
        with pytest.raises(SimulationError):
            InvariantAuditor(interval_steps=0)

    def test_rejects_negative_tolerance(self):
        with pytest.raises(SimulationError):
            InvariantAuditor(lag_tolerance_c=-1.0)

    def test_violation_survives_pickling(self):
        original = InvariantViolation(
            "finite chip temperature", 120, 3, float("nan"), "chip is nan"
        )
        clone = pickle.loads(pickle.dumps(original))
        assert clone.invariant == original.invariant
        assert clone.step == 120
        assert clone.socket_id == 3
        assert str(clone) == str(original)


class TestEngineIntegration:
    def test_engine_raises_on_violation(self, small_sut, monkeypatch):
        """A violation mid-run surfaces through Simulation.run."""
        from repro.thermal.dynamics import TwoNodeThermalState

        original = TwoNodeThermalState.step_decayed

        def poisoned(self, *args, **kwargs):
            original(self, *args, **kwargs)
            self.chip_c[2] = float("nan")

        monkeypatch.setattr(
            TwoNodeThermalState, "step_decayed", poisoned
        )
        with pytest.raises(InvariantViolation) as excinfo:
            run_once(
                small_sut,
                smoke(),
                get_scheduler("CF"),
                BenchmarkSet.STORAGE,
                0.5,
                auditor=InvariantAuditor(interval_steps=5),
            )
        assert excinfo.value.socket_id == 2

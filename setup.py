"""Setuptools shim.

All metadata lives in pyproject.toml; this file exists so that
``python setup.py develop`` (and legacy editable installs) work in
offline environments where pip cannot build PEP 660 editable wheels
(no ``wheel`` package available).
"""

from setuptools import setup

setup()

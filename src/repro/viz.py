"""Terminal-friendly visualisation helpers (pure text, no plotting deps).

The experiment harness runs in environments without matplotlib, so
these helpers render the paper's series as unicode sparklines, bar
charts and multi-series line charts — enough to eyeball every figure's
shape straight from a terminal.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from .errors import ReproError

#: Eight-level block characters for sparklines.
_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """A one-line unicode sparkline of a series.

    Raises:
        ReproError: for empty input or non-finite values.
    """
    data = [float(v) for v in values]
    if not data:
        raise ReproError("cannot sparkline an empty series")
    if any(not math.isfinite(v) for v in data):
        raise ReproError("sparkline values must be finite")
    low, high = min(data), max(data)
    if high == low:
        return _SPARK_LEVELS[0] * len(data)
    span = high - low
    out = []
    for value in data:
        index = int((value - low) / span * (len(_SPARK_LEVELS) - 1))
        out.append(_SPARK_LEVELS[index])
    return "".join(out)


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    unit: str = "",
) -> str:
    """A horizontal bar chart, one row per label.

    Raises:
        ReproError: for mismatched inputs, empty data or negative
            values.
    """
    if len(labels) != len(values):
        raise ReproError("labels and values must have equal length")
    if not labels:
        raise ReproError("cannot chart an empty series")
    data = [float(v) for v in values]
    if any(v < 0 for v in data):
        raise ReproError("bar chart values must be non-negative")
    peak = max(data) or 1.0
    label_width = max(len(str(l)) for l in labels)
    lines = []
    for label, value in zip(labels, data):
        bar = "█" * max(int(value / peak * width), 0)
        lines.append(
            f"{str(label).ljust(label_width)}  {bar} {value:g}{unit}"
        )
    return "\n".join(lines)


def line_chart(
    series: Dict[str, Sequence[float]],
    height: int = 10,
    width: Optional[int] = None,
    y_label: str = "",
) -> str:
    """A multi-series character line chart.

    Each series is resampled to the chart width and drawn with its own
    marker (first letter of its name).  Overlapping points show the
    later series' marker.

    Raises:
        ReproError: for empty input or series of unequal meaning
            (no values).
    """
    if not series:
        raise ReproError("cannot chart zero series")
    for name, values in series.items():
        if len(values) == 0:
            raise ReproError(f"series {name!r} is empty")
    if width is None:
        width = min(max(len(v) for v in series.values()), 72)
    all_values = [
        float(v) for values in series.values() for v in values
    ]
    low, high = min(all_values), max(all_values)
    if high == low:
        high = low + 1.0
    grid: List[List[str]] = [
        [" "] * width for _ in range(height)
    ]
    for name, values in series.items():
        marker = name[0]
        n = len(values)
        for col in range(width):
            source = min(int(col * n / width), n - 1)
            value = float(values[source])
            row = int(
                (value - low) / (high - low) * (height - 1)
            )
            grid[height - 1 - row][col] = marker
    lines = []
    lines.append(f"{high:10.2f} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{low:10.2f} ┤" + "".join(grid[-1]))
    legend = "  ".join(f"{name[0]}={name}" for name in series)
    if y_label:
        legend = f"{y_label} | {legend}"
    lines.append(" " * 12 + legend)
    return "\n".join(lines)

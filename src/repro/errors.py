"""Exception hierarchy for the :mod:`repro` package.

All errors raised by this library derive from :class:`ReproError`, so
callers can catch a single base class.  Specific subclasses signal the
subsystem that rejected the input.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(ReproError):
    """A simulation or model parameter is invalid or inconsistent."""


class TopologyError(ReproError):
    """A server topology was constructed with impossible geometry."""


class ThermalModelError(ReproError):
    """A thermal model received physically meaningless input."""


class WorkloadError(ReproError):
    """A workload or job description is invalid."""


class SchedulingError(ReproError):
    """A scheduler was asked to make an impossible decision."""


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent state."""


class CheckpointCorruptionError(SimulationError):
    """An on-disk checkpoint exists but cannot be trusted.

    Raised by the strict checkpoint-recovery path instead of letting a
    bare unpickle traceback escape, so supervisors can distinguish
    "state is poisoned, restart cold" from genuine engine failures.

    Attributes:
        path: The offending checkpoint (or sidecar) file.
        reason: Why the file was rejected.
    """

    def __init__(self, path, reason: str):
        self.path = str(path)
        self.reason = reason
        super().__init__(f"corrupt checkpoint {self.path}: {reason}")


class ObservabilityError(ReproError):
    """A telemetry event, log or manifest is malformed or unusable."""


class RoomError(ReproError):
    """A room-scale model (recirculation, CRAC, placement) is invalid."""


class RoomConvergenceError(RoomError):
    """The room fixed-point solver failed to reach equilibrium.

    Raised instead of returning a silently wrong thermal field when the
    inlet fixed point diverges (residuals grow or go non-finite) or the
    iteration budget runs out above tolerance.

    Attributes:
        residuals_c: Per-iteration max inlet residuals, degC.
        tolerance_c: The convergence tolerance that was not met.
        reason: Why the solve was abandoned.
    """

    def __init__(self, residuals_c, tolerance_c: float, reason: str):
        self.residuals_c = tuple(float(r) for r in residuals_c)
        self.tolerance_c = float(tolerance_c)
        self.reason = reason
        last = self.residuals_c[-1] if self.residuals_c else float("nan")
        super().__init__(
            f"room solve did not converge ({reason}): last residual "
            f"{last:.6g} degC after {len(self.residuals_c)} iterations "
            f"(tolerance {self.tolerance_c:.6g} degC)"
        )


class FleetError(ReproError):
    """The fleet coordinator was misused or reached an illegal state."""

"""Exception hierarchy for the :mod:`repro` package.

All errors raised by this library derive from :class:`ReproError`, so
callers can catch a single base class.  Specific subclasses signal the
subsystem that rejected the input.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(ReproError):
    """A simulation or model parameter is invalid or inconsistent."""


class TopologyError(ReproError):
    """A server topology was constructed with impossible geometry."""


class ThermalModelError(ReproError):
    """A thermal model received physically meaningless input."""


class WorkloadError(ReproError):
    """A workload or job description is invalid."""


class SchedulingError(ReproError):
    """A scheduler was asked to make an impossible decision."""


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent state."""


class ObservabilityError(ReproError):
    """A telemetry event, log or manifest is malformed or unusable."""

"""Telemetry artifact checker: ``python -m repro.obs.check DIR``.

Validates every artifact a telemetry directory can contain:

- each ``*.jsonl`` log is parsed line-by-line and every event is
  checked against the schema (:mod:`repro.obs.events`);
- each ``*.manifest.json`` must load as a well-formed
  :class:`~repro.obs.manifest.RunManifest`;
- any log containing ``fleet_*`` events is additionally audited
  against the fleet coordinator's liveness/safety invariants
  (:mod:`repro.fleet.invariants`) — exactly one terminal answer per
  request, bounded queue, bounded staleness, legal supervision
  transitions.

By default the check is *strict about interiors and tails*: a log that
ends in a truncated line fails (pass ``--allow-truncated`` when
checking artifacts of a deliberately killed run).  Exit status is 0
when everything validates, 1 on any violation, 2 on usage errors — CI
gates on it directly.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from ..errors import ObservabilityError
from .manifest import MANIFEST_SUFFIX, RunManifest
from .writer import read_events


def check_directory(
    directory, allow_truncated: bool = False
) -> List[str]:
    """Validate all telemetry artifacts under ``directory``.

    Returns:
        Human-readable problem descriptions (empty means all good).

    Raises:
        ObservabilityError: if ``directory`` does not exist or holds no
            telemetry artifacts at all (an empty check passing silently
            would defeat a CI gate).
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise ObservabilityError(
            f"telemetry directory {directory} does not exist"
        )
    logs = sorted(directory.rglob("*.jsonl"))
    manifests = sorted(directory.rglob(f"*{MANIFEST_SUFFIX}"))
    if not logs and not manifests:
        raise ObservabilityError(
            f"no telemetry artifacts under {directory} — nothing to "
            "check (wrong directory?)"
        )
    problems: List[str] = []
    for path in logs:
        try:
            events = read_events(
                path, strict=not allow_truncated, validate=True
            )
        except ObservabilityError as exc:
            problems.append(str(exc))
            continue
        if not events:
            problems.append(f"telemetry log {path} holds no events")
            continue
        # Fleet logs carry coordinator guarantees beyond the schema;
        # audit them too.  Imported lazily to avoid a package cycle
        # (repro.fleet itself emits through repro.obs).
        from ..fleet.invariants import check_fleet_events, has_fleet_events

        complete = any(e.get("type") == "fleet_end" for e in events)
        if has_fleet_events(events) and complete:
            # Only completed runs are audited: a killed run's log is
            # legitimately missing terminals for in-flight requests.
            problems.extend(
                f"{path}: {problem}"
                for problem in check_fleet_events(events)
            )
    for path in manifests:
        try:
            RunManifest.read(path)
        except ObservabilityError as exc:
            problems.append(str(exc))
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.check",
        description=(
            "Validate every telemetry log and manifest in a directory."
        ),
    )
    parser.add_argument(
        "directory", help="telemetry directory to validate"
    )
    parser.add_argument(
        "--allow-truncated",
        action="store_true",
        help="tolerate a truncated final line per log (killed runs)",
    )
    args = parser.parse_args(argv)
    try:
        problems = check_directory(
            args.directory, allow_truncated=args.allow_truncated
        )
    except ObservabilityError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    if problems:
        print(
            f"{len(problems)} invalid telemetry artifact(s)",
            file=sys.stderr,
        )
        return 1
    print(f"telemetry artifacts under {args.directory} are valid")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())

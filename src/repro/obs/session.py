"""Telemetry configuration, per-run sessions and the pipeline recorder.

Three layers:

- :class:`TelemetryConfig` is the *declaration* — a frozen, picklable
  value (directory, profiling flag, buffer depth) that travels across
  process boundaries into sweep workers and is parsed from the
  ``REPRO_TELEMETRY`` / ``REPRO_PROFILE`` environment variables.
- :class:`TelemetrySession` is one run's *open event stream*: a
  :class:`~repro.obs.writer.JsonlWriter` plus the schema-checked
  ``emit`` used by engine components via ``ctx.telemetry``.
- :class:`TelemetryRecorder` is the :class:`~repro.sim.pipeline.
  StepComponent` that owns session lifecycle: each ``on_run_start``
  opens a fresh ``<base>-r<k>.jsonl`` (the ``-r<k>`` suffix counts runs
  on the reused engine, so back-to-back runs can never interleave or
  concatenate their logs) and binds it to the context; ``on_run_end``
  emits the run summary and closes the stream.

Determinism: events carry only simulation-clock fields, and every
emission site in the engine is gated on ``ctx.telemetry is not None``
— a telemetry-off run is bit-identical to a telemetry-on run, and two
telemetry-on runs of one configuration write identical bytes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from ..errors import ObservabilityError
from .events import make_event
from .writer import DEFAULT_BUFFER_LINES, JsonlWriter

#: Environment variable naming the telemetry output directory.
ENV_TELEMETRY = "REPRO_TELEMETRY"

#: Environment variable enabling per-component profiling (any
#: non-empty value other than "0").
ENV_PROFILE = "REPRO_PROFILE"


@dataclass(frozen=True)
class TelemetryConfig:
    """Where and how to record telemetry for a run or sweep.

    Picklable by construction — sweep workers receive it by value.

    Attributes:
        directory: Directory receiving ``*.jsonl`` event logs and
            ``*.manifest.json`` provenance files (created on demand).
        profile: Also run the per-component :class:`~repro.obs.
            profiler.StepProfiler` on every simulation.
        buffer_lines: Event lines buffered between flushes to the OS
            (the truncation-safety granularity).
    """

    directory: str
    profile: bool = False
    buffer_lines: int = DEFAULT_BUFFER_LINES

    def __post_init__(self) -> None:
        if not str(self.directory):
            raise ObservabilityError(
                "telemetry directory must be non-empty"
            )
        if self.buffer_lines < 1:
            raise ObservabilityError("buffer_lines must be >= 1")

    @classmethod
    def coerce(cls, value, profile: bool = False):
        """Normalise a config, directory path, or ``None``.

        Accepts an existing :class:`TelemetryConfig` (returned as-is,
        with ``profile`` OR-ed in), a directory path, or ``None``.
        """
        if value is None:
            return None
        if isinstance(value, cls):
            if profile and not value.profile:
                return cls(
                    directory=value.directory,
                    profile=True,
                    buffer_lines=value.buffer_lines,
                )
            return value
        return cls(directory=os.fspath(value), profile=profile)

    @classmethod
    def from_env(cls) -> Optional["TelemetryConfig"]:
        """The configuration declared by the environment, if any.

        ``REPRO_TELEMETRY`` names the output directory (unset or empty
        disables telemetry); ``REPRO_PROFILE`` enables profiling.
        """
        directory = os.environ.get(ENV_TELEMETRY)
        if not directory:
            return None
        return cls(directory=directory, profile=profile_from_env())


def profile_from_env() -> bool:
    """Whether ``REPRO_PROFILE`` asks for per-component profiling."""
    raw = os.environ.get(ENV_PROFILE)
    return raw is not None and raw not in ("", "0")


class TelemetrySession:
    """One run's (or one sweep's) open, schema-checked event stream."""

    def __init__(
        self,
        path,
        buffer_lines: int = DEFAULT_BUFFER_LINES,
        append: bool = False,
    ) -> None:
        self.path = Path(path)
        # Sweep streams survive resume: append mode re-opens after
        # whatever an interrupted attempt managed to flush.
        self._writer = JsonlWriter(
            self.path, buffer_lines, append=append
        )

    def emit(self, type_: str, **fields) -> None:
        """Validate and enqueue one event."""
        self._writer.emit(make_event(type_, **fields))

    @property
    def closed(self) -> bool:
        return self._writer._closed

    def close(self) -> None:
        """Flush and close the underlying writer (idempotent)."""
        self._writer.close()

    def __enter__(self) -> "TelemetrySession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class TelemetryRecorder:
    """Pipeline component owning per-run telemetry session lifecycle.

    Appended at the end of the standard pipeline (it is a pure
    observer; other components emit through ``ctx.telemetry`` during
    their own phases).  The recorder honours engine reuse the same way
    the tracer does: every run start opens a *fresh* log file with an
    incremented ``-r<k>`` suffix and closes it at run end, so two
    back-to-back runs on one engine produce two independent,
    non-interleaved logs.
    """

    def __init__(
        self, config: TelemetryConfig, base_name: str = "run"
    ) -> None:
        self.config = config
        self.base_name = base_name
        self.run_index = 0
        self.last_path: Optional[Path] = None
        self._session: Optional[TelemetrySession] = None

    # -- StepComponent protocol -----------------------------------------

    def on_run_start(self, ctx) -> None:
        self.reset()
        name = f"{self.base_name}-r{self.run_index}"
        self.run_index += 1
        path = Path(self.config.directory) / f"{name}.jsonl"
        self.last_path = path
        self._session = TelemetrySession(
            path, buffer_lines=self.config.buffer_lines
        )
        ctx.telemetry = self._session
        self._session.emit(
            "run_start",
            run=name,
            scheduler=getattr(ctx.scheduler, "name", "unknown"),
            seed=int(ctx.params.seed),
            n_sockets=int(ctx.topology.n_sockets),
            n_steps=int(ctx.n_steps),
        )

    def on_step(self, ctx) -> None:
        """Nothing per step — emission happens at the source phases."""

    def next_event_step(self, ctx):
        """No scheduled events — recording never constrains windows."""
        return None

    def is_quiescent(self, ctx) -> bool:
        """Recording is passive; it never vetoes a quiescent window."""
        return True

    def on_window(self, ctx, plan) -> None:
        """Nothing per window — the driver emits ``window_skip``."""

    def on_run_end(self, ctx) -> None:
        session = self._session
        if session is None:  # pragma: no cover - engine misuse
            return
        session.emit(
            "run_end",
            run=f"{self.base_name}-r{self.run_index - 1}",
            n_completed=len(ctx.result.completed_jobs),
            energy_j=float(ctx.result.energy_j),
            max_queue_length=int(ctx.result.max_queue_length),
        )
        ctx.telemetry = None
        self._session = None
        session.close()

    # -- engine-reuse contract ------------------------------------------

    def reset(self) -> None:
        """Close any straggling session from an aborted previous run."""
        if self._session is not None:
            self._session.close()
            self._session = None

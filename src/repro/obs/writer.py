"""Buffered, non-blocking JSONL event log writer and its reader.

The writer's contract, in order of importance:

1. **Never perturb the simulation.**  ``emit`` only enqueues; all
   serialisation and file I/O happen on one background thread, so the
   engine hot path pays a queue put and nothing else.  Telemetry reads
   state, it never touches it — a telemetry-enabled run is bit-identical
   to a telemetry-off run (pinned by the fingerprint oracle tests).
2. **Truncation safety.**  Lines are canonical one-line JSON documents
   flushed to the OS every ``buffer_lines`` events, so a run killed with
   SIGKILL leaves a log whose every complete line parses; at most the
   final line is partial, and :func:`iter_events` tolerates exactly
   that (a corrupt *interior* line is real corruption and always
   raises).
3. **Deterministic bytes.**  Events are serialised with sorted keys and
   fixed separators, so the same event stream always produces the same
   file bytes — logs can be diffed and fingerprinted.

``NaN``/``Infinity`` are rejected (``allow_nan=False``): a non-finite
value would serialise to non-portable JSON and break every downstream
parser.  Serialisation failures on the background thread are latched
and re-raised from :meth:`JsonlWriter.close`, so they cannot pass
silently.
"""

from __future__ import annotations

import json
import os
import queue
import threading
from pathlib import Path
from typing import Iterator, List, Optional

from ..errors import ObservabilityError
from .events import validate_event

#: Sentinel shutting down the writer thread.
_STOP = object()

#: Default number of buffered lines between flushes to the OS.
DEFAULT_BUFFER_LINES = 64


def encode_event(event: dict) -> bytes:
    """The canonical one-line serialisation of one event.

    Raises:
        ObservabilityError: if the event contains non-finite floats or
            values JSON cannot represent.
    """
    try:
        text = json.dumps(
            event, sort_keys=True, separators=(",", ":"), allow_nan=False
        )
    except (TypeError, ValueError) as exc:
        raise ObservabilityError(
            f"event is not JSON-serialisable: {exc}"
        ) from exc
    return text.encode("utf-8") + b"\n"


class JsonlWriter:
    """Append-only JSONL writer with a background drain thread.

    Attributes:
        path: The log file (parent directories are created).
        lines_written: Lines fully handed to the OS so far (stable only
            after :meth:`close`).
    """

    def __init__(
        self,
        path,
        buffer_lines: int = DEFAULT_BUFFER_LINES,
        append: bool = False,
    ) -> None:
        if buffer_lines < 1:
            raise ObservabilityError("buffer_lines must be >= 1")
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.lines_written = 0
        self._buffer_lines = buffer_lines
        self._queue: "queue.SimpleQueue" = queue.SimpleQueue()
        self._error: Optional[BaseException] = None
        self._closed = False
        self._file = open(self.path, "ab" if append else "wb")
        if append and self.path.stat().st_size > 0:
            # Terminate a truncated tail from an interrupted previous
            # writer so old and new lines cannot fuse into one corrupt
            # record.
            with open(self.path, "rb") as handle:
                handle.seek(-1, os.SEEK_END)
                if handle.read(1) != b"\n":
                    self._file.write(b"\n")
        self._thread = threading.Thread(
            target=self._drain,
            name=f"repro-telemetry-{self.path.name}",
            daemon=True,
        )
        self._thread.start()

    # -- producer side --------------------------------------------------

    def emit(self, event: dict) -> None:
        """Enqueue one event for the background writer (non-blocking).

        The caller must not mutate ``event`` afterwards — serialisation
        happens asynchronously.

        Raises:
            ObservabilityError: if the writer is already closed.
        """
        if self._closed:
            raise ObservabilityError(
                f"telemetry writer for {self.path} is closed"
            )
        self._queue.put(event)

    def close(self) -> None:
        """Drain the queue, flush, and close the file (idempotent).

        Raises:
            ObservabilityError: if any enqueued event failed to
                serialise (the first such error, latched by the drain
                thread).
        """
        if self._closed:
            return
        self._closed = True
        self._queue.put(_STOP)
        self._thread.join()
        try:
            self._file.flush()
        finally:
            self._file.close()
        if self._error is not None:
            raise ObservabilityError(
                f"telemetry writer for {self.path} failed: {self._error}"
            ) from self._error

    def __enter__(self) -> "JsonlWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- background thread ----------------------------------------------

    def _drain(self) -> None:
        since_flush = 0
        while True:
            item = self._queue.get()
            if item is _STOP:
                return
            try:
                line = encode_event(item)
                self._file.write(line)
            except BaseException as exc:  # latched, raised by close()
                if self._error is None:
                    self._error = exc
                continue
            self.lines_written += 1
            since_flush += 1
            if since_flush >= self._buffer_lines:
                self._file.flush()
                since_flush = 0


def iter_events(
    path, strict: bool = False, validate: bool = False
) -> Iterator[dict]:
    """Yield every event of one JSONL log, tolerating a truncated tail.

    A log written by :class:`JsonlWriter` can end in a partial line if
    the writing process was killed mid-write; that final fragment is
    silently dropped unless ``strict`` is set.  A malformed line
    anywhere *before* the end is corruption, not truncation, and always
    raises.

    Args:
        path: The ``.jsonl`` file to read.
        strict: Also raise on a truncated final line.
        validate: Check every event against the schema
            (:func:`repro.obs.events.validate_event`).

    Raises:
        ObservabilityError: on interior corruption, strict-mode
            truncation, or (with ``validate``) a schema violation.
    """
    path = Path(path)
    try:
        data = path.read_bytes()
    except OSError as exc:
        raise ObservabilityError(
            f"cannot read telemetry log {path}: {exc}"
        ) from exc
    lines = data.split(b"\n")
    # A well-formed log ends with a newline, leaving one empty tail
    # element; anything else in the tail slot is a truncated fragment.
    tail = lines.pop()
    if tail and strict:
        raise ObservabilityError(
            f"telemetry log {path} ends in a truncated line "
            f"({len(tail)} bytes)"
        )
    for number, raw in enumerate(lines, start=1):
        if not raw:
            continue
        try:
            event = json.loads(raw)
        except ValueError as exc:
            raise ObservabilityError(
                f"telemetry log {path} line {number} is corrupt: {exc}"
            ) from exc
        if validate:
            try:
                validate_event(event)
            except ObservabilityError as exc:
                raise ObservabilityError(
                    f"telemetry log {path} line {number}: {exc}"
                ) from exc
        yield event


def read_events(
    path, strict: bool = False, validate: bool = False
) -> List[dict]:
    """Materialised :func:`iter_events`."""
    return list(iter_events(path, strict=strict, validate=validate))

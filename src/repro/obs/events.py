"""The structured telemetry event schema.

Every line of a telemetry JSONL stream is one *event*: a flat JSON
object carrying the schema version (``"v"``), the event type
(``"type"``) and the type's required payload fields.  The schema is
deliberately small and stable — downstream tooling (the
:mod:`repro.metrics.obs_report` summariser, the CI checker in
:mod:`repro.obs.check`, external trace consumers) validates against
:data:`EVENT_TYPES` and must keep working across engine refactors.

Schema evolution contract:

- adding a new event *type* or a new *optional* field is
  backward-compatible and does not bump :data:`SCHEMA_VERSION`;
- removing/renaming a type or required field, or changing a field's
  meaning, bumps :data:`SCHEMA_VERSION`;
- consumers must ignore unknown optional fields (validation here only
  checks the required ones), so writers may attach extra context.

Events carry *simulation* timestamps (``step``, ``t``) — never
wall-clock readings — so a telemetry-enabled run stays bit-for-bit
reproducible and two runs of the same configuration produce identical
event streams.
"""

from __future__ import annotations

import math
from collections.abc import Mapping as _MappingABC
from typing import Dict, Mapping, Tuple

from ..errors import ObservabilityError

#: Version stamped into every event line (see module docstring for the
#: compatibility contract).
SCHEMA_VERSION = 1

#: Required payload fields per event type: ``name -> allowed types``.
#: ``float`` fields also accept ints (JSON does not distinguish 1.0
#: from 1 after a round-trip through integral values).
EVENT_TYPES: Dict[str, Dict[str, Tuple[type, ...]]] = {
    # -- engine-run lifecycle ------------------------------------------
    "run_start": {
        "run": (str,),
        "scheduler": (str,),
        "seed": (int,),
        "n_sockets": (int,),
        "n_steps": (int,),
    },
    "run_end": {
        "run": (str,),
        "n_completed": (int,),
        "energy_j": (float, int),
        "max_queue_length": (int,),
    },
    # -- per-step engine events ----------------------------------------
    "placement": {
        "step": (int,),
        "t": (float, int),
        "job_id": (int,),
        "socket": (int,),
    },
    "migration": {
        "step": (int,),
        "t": (float, int),
        "source": (int,),
        "destination": (int,),
    },
    "dvfs_throttle": {
        "step": (int,),
        "t": (float, int),
        "n_throttled": (int,),
    },
    "thermal_trip": {
        "step": (int,),
        "t": (float, int),
        "socket": (int,),
    },
    "fault_activation": {
        "step": (int,),
        "t": (float, int),
        "fault": (str,),
        "activating": (bool,),
    },
    "eviction": {
        "step": (int,),
        "t": (float, int),
        "socket": (int,),
        "job_id": (int,),
    },
    # Emitted by the multi-rate driver (repro.sim.multirate) for each
    # quiescent window it advanced in closed form: ``n_steps`` fixed
    # steps were skipped using ``n_substeps`` closed-form substeps.
    "window_skip": {
        "step": (int,),
        "t": (float, int),
        "n_steps": (int,),
        "n_substeps": (int,),
    },
    # -- sweep-harness events ------------------------------------------
    "sweep_start": {
        "n_points": (int,),
        "n_resolved": (int,),
    },
    "sweep_end": {
        "n_points": (int,),
    },
    "point_done": {
        "index": (int,),
        "scheduler": (str,),
        "benchmark_set": (str,),
        "load": (float, int),
    },
    "cache_hit": {
        "index": (int,),
        "key": (str,),
    },
    "checkpoint_write": {
        "index": (int,),
        "key": (str,),
    },
    "pool_retry": {
        "round": (int,),
        "remaining": (int,),
    },
    "pool_timeout": {
        "index": (int,),
        "attempt": (int,),
    },
    # -- fleet-coordinator events --------------------------------------
    # Emitted by repro.fleet: one stream per coordinator, covering the
    # request lifecycle (submit -> answer | shed), worker supervision
    # (heartbeats, state transitions, restarts) and degraded serving.
    # All times are coordinator-clock seconds (virtual under chaos), so
    # a seeded chaos run reproduces the stream bit-for-bit.
    "fleet_start": {
        "n_workers": (int,),
        "n_chassis": (int,),
        "seed": (int,),
        "max_queue": (int,),
    },
    "fleet_end": {
        "t": (float, int),
        "n_answered": (int,),
        "n_shed": (int,),
    },
    "fleet_submit": {
        "t": (float, int),
        "request_id": (int,),
        "kind": (str,),
        "request_class": (str,),
        "chassis": (str,),
        "queue_len": (int,),
    },
    "fleet_answer": {
        "t": (float, int),
        "request_id": (int,),
        "status": (str,),
        "attempts": (int,),
    },
    "fleet_shed": {
        "t": (float, int),
        "request_id": (int,),
        "request_class": (str,),
        "reason": (str,),
    },
    "fleet_heartbeat": {
        "t": (float, int),
        "worker": (str,),
        "seq": (int,),
    },
    "fleet_worker_state": {
        "t": (float, int),
        "worker": (str,),
        "old": (str,),
        "new": (str,),
    },
    "fleet_restart": {
        "t": (float, int),
        "worker": (str,),
        "attempt": (int,),
        "backoff_s": (float, int),
        "cold": (bool,),
    },
    "fleet_degraded": {
        "t": (float, int),
        "request_id": (int,),
        "chassis": (str,),
        "staleness_s": (float, int),
    },
    "fleet_drop": {
        "t": (float, int),
        "request_id": (int,),
        "reason": (str,),
    },
    # One event per micro-batch dispatched to a worker (the batching
    # window path; see repro.fleet.coordinator FleetConfig
    # batch_window_s/max_batch).  ``size`` is the member count,
    # ``window_wait_s`` how long the oldest member waited inside the
    # coalescing window, ``queue_len`` the queue depth right after the
    # batch left it, and the warm counters are the warm-field cache
    # hits/misses the batch consumed on the worker.
    "fleet_batch": {
        "t": (float, int),
        "worker": (str,),
        "chassis": (str,),
        "size": (int,),
        "window_wait_s": (float, int),
        "queue_len": (int,),
        "warm_hits": (int,),
        "warm_misses": (int,),
    },
    # -- room-layer events ---------------------------------------------
    # Emitted by the room fixed-point solver (repro.room.model): one
    # solve_start per solve, one iteration event per fixed-point pass,
    # and exactly one terminal converged/diverged event.  Iterations
    # are 1-based; ``recirculation`` is the recirculation matrix's
    # content fingerprint, tying the stream to an exact room.
    "room_solve_start": {
        "n_chassis": (int,),
        "crac_supply_c": (float, int),
        "recirculation": (str,),
    },
    "room_iteration": {
        "iteration": (int,),
        "residual_c": (float, int),
        "max_chip_c": (float, int),
    },
    "room_converged": {
        "n_iterations": (int,),
        "residual_c": (float, int),
        "max_chip_c": (float, int),
    },
    "room_diverged": {
        "n_iterations": (int,),
        "residual_c": (float, int),
        "reason": (str,),
    },
}


def make_event(type_: str, **fields) -> dict:
    """Build a validated event dict for one schema type.

    Raises:
        ObservabilityError: for an unknown type or a payload missing a
            required field (extra fields are allowed — see the schema
            evolution contract).
    """
    event = {"v": SCHEMA_VERSION, "type": type_}
    event.update(fields)
    validate_event(event)
    return event


def validate_event(event: Mapping) -> None:
    """Check one event against the schema.

    Raises:
        ObservabilityError: describing the first violation found —
            wrong container type, missing/mismatched version, unknown
            event type, missing required field, field of the wrong JSON
            type, or a non-finite float (NaN/Infinity are not portable
            JSON and would poison downstream parsers).
    """
    # The abc check (not typing.Mapping, whose __instancecheck__ costs
    # tens of microseconds) keeps validation off the serving hot path;
    # plain dicts — every event the engine itself builds — short-circuit.
    if not isinstance(event, (dict, _MappingABC)):
        raise ObservabilityError(
            f"event must be an object, got {type(event).__name__}"
        )
    version = event.get("v")
    if version != SCHEMA_VERSION:
        raise ObservabilityError(
            f"event schema version {version!r} is not the supported "
            f"version {SCHEMA_VERSION}"
        )
    type_ = event.get("type")
    spec = EVENT_TYPES.get(type_)
    if spec is None:
        known = ", ".join(sorted(EVENT_TYPES))
        raise ObservabilityError(
            f"unknown event type {type_!r} (known: {known})"
        )
    for name, allowed in spec.items():
        if name not in event:
            raise ObservabilityError(
                f"{type_} event is missing required field {name!r}"
            )
        value = event[name]
        # bool is an int subclass; only accept it where bool is listed.
        if isinstance(value, bool) and bool not in allowed:
            raise ObservabilityError(
                f"{type_} field {name!r} must be "
                f"{'/'.join(t.__name__ for t in allowed)}, got bool"
            )
        if not isinstance(value, allowed):
            raise ObservabilityError(
                f"{type_} field {name!r} must be "
                f"{'/'.join(t.__name__ for t in allowed)}, "
                f"got {type(value).__name__}"
            )
    for name, value in event.items():
        if isinstance(value, float) and not math.isfinite(value):
            raise ObservabilityError(
                f"{type_} field {name!r} is non-finite ({value!r})"
            )

"""Per-run provenance manifests: any artifact can name its exact run.

A :class:`RunManifest` is the machine-readable recipe that produced
one simulation result: the full simulation parameters, the topology
construction recipe, the scheduler/benchmark-set/load point, the fault
schedule (content plus fingerprint), the package version and — when
available — ``git describe``.  Manifests ride along with sweep
checkpoints (``<key>.manifest.json`` beside ``<key>.ckpt.pkl``) and
telemetry directories, so a figure traced back to its artifact can be
re-run *from the manifest alone* and reproduce the identical result
fingerprint (:func:`rerun_from_manifest`, pinned by tests).

Reconstruction scope: the standard experiment stack — any
:class:`~repro.server.topology.ServerTopology` built from scalar
geometry with the alternating-sink rule (which includes every
``moonshot_sut`` variant) and any registered processor/scheduler.
Exotic topologies (uniform-sink ablations, per-site sink callables)
still get a manifest, but with ``topology.reconstructible = false``
and only the content token recorded; re-running those raises a clean
:class:`~repro.errors.ObservabilityError`.  Reconstruction is *proven*
at manifest-build time by rebuilding the topology and comparing
content tokens — a manifest never claims a recipe it cannot replay.
"""

from __future__ import annotations

import dataclasses
import enum
import functools
import json
import os
import subprocess
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from .._version import __version__
from ..errors import ObservabilityError
from .events import SCHEMA_VERSION

#: Version of the manifest file format itself.
MANIFEST_VERSION = 1

#: Suffix of manifest files beside checkpoints and telemetry logs.
MANIFEST_SUFFIX = ".manifest.json"


@functools.lru_cache(maxsize=1)
def git_describe() -> Optional[str]:
    """``git describe --always --dirty`` of the source tree, if any.

    Cached per process — a sweep writing hundreds of manifests must
    not fork a ``git`` subprocess per point.
    """
    try:
        completed = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=5.0,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if completed.returncode != 0:
        return None
    description = completed.stdout.strip()
    return description or None


@dataclass(frozen=True)
class RunManifest:
    """Everything needed to reproduce (and verify) one run.

    Attributes:
        config_key: The sweep cache/checkpoint key of the point (see
            :func:`repro.sim.parallel.config_key`).
        scheduler: Registered scheduler name.
        benchmark_set: Benchmark set value (e.g. ``"Computation"``).
        load: Offered load in (0, 1].
        seed: Workload seed (duplicated from ``params`` for grep-ability).
        params: Full :class:`~repro.config.parameters.
            SimulationParameters` field dict.
        topology: Topology recipe: ``{"reconstructible": bool,
            "token_sha256": str, ...scalar geometry...}``.
        fault: Fault schedule content (``fingerprint``, ``response``,
            ``events``), or ``None`` for fault-free runs.
        stepping: Engine stepping mode of the run (``"fixed"`` or
            ``"adaptive"``).  Defaults to ``"fixed"``, so manifests
            written before the mode existed still parse.  Adaptive
            replays use the *default*
            :class:`~repro.sim.multirate.MultiRateConfig` — a run
            under a custom tuning is reproducible from code but not
            from its manifest alone.
        result_fingerprint: Content fingerprint of the produced result
            (see :func:`repro.sim.fingerprint.result_fingerprint`), or
            ``None`` if the manifest was built before the run.
        profile: The run's :class:`~repro.obs.profiler.RunProfile`
            digest, when profiling was enabled.
        manifest_version: Format version of this file.
        schema_version: Telemetry event schema version in force.
        package_version: ``repro`` package version that produced the
            artifact.
        git: ``git describe`` of the producing tree, if available.
    """

    config_key: str
    scheduler: str
    benchmark_set: str
    load: float
    seed: int
    params: dict
    topology: dict
    fault: Optional[dict] = None
    stepping: str = "fixed"
    result_fingerprint: Optional[str] = None
    profile: Optional[dict] = None
    manifest_version: int = MANIFEST_VERSION
    schema_version: int = SCHEMA_VERSION
    package_version: str = __version__
    git: Optional[str] = field(default_factory=git_describe)

    # -- (de)serialisation ----------------------------------------------

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "RunManifest":
        if not isinstance(data, dict):
            raise ObservabilityError(
                f"manifest must be an object, got {type(data).__name__}"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ObservabilityError(
                f"manifest carries unknown fields {sorted(unknown)}"
            )
        try:
            return cls(**data)
        except TypeError as exc:
            raise ObservabilityError(
                f"malformed manifest: {exc}"
            ) from exc

    @property
    def version_compatible(self) -> bool:
        """Whether this build can faithfully replay the manifest."""
        return (
            self.manifest_version == MANIFEST_VERSION
            and self.package_version == __version__
        )

    def save(self, path) -> Path:
        """Write the manifest atomically (temp file + rename)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = json.dumps(
            self.to_dict(), indent=2, sort_keys=True
        ) + "\n"
        fd, tmp_name = tempfile.mkstemp(
            prefix=".tmp-", suffix=MANIFEST_SUFFIX, dir=path.parent
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    # Named ``read`` (not ``load``) because ``load`` is a data field —
    # the point's offered load — and dataclasses forbid the collision.
    @classmethod
    def read(cls, path) -> "RunManifest":
        """Read a manifest file.

        Raises:
            ObservabilityError: if the file is unreadable, not JSON, or
                not a well-formed manifest.
        """
        path = Path(path)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise ObservabilityError(
                f"cannot read manifest {path}: {exc}"
            ) from exc
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise ObservabilityError(
                f"manifest {path} is not valid JSON: {exc}"
            ) from exc
        return cls.from_dict(data)


# -- building -----------------------------------------------------------


def _processor_registry() -> dict:
    """Registered processors by marketing name."""
    from ..server import processors as processors_module
    from ..server.processors import ProcessorSpec

    registry = {}
    for value in vars(processors_module).values():
        if isinstance(value, ProcessorSpec):
            registry[value.name] = value
    return registry


def _topology_token_digest(topology) -> str:
    import hashlib

    from ..sim.parallel import topology_token

    return hashlib.sha256(topology_token(topology)).hexdigest()


def _topology_payload(topology) -> dict:
    """The topology recipe, proven reconstructible (or marked not)."""
    from ..sim.parallel import topology_token

    payload = {
        "token_sha256": _topology_token_digest(topology),
        "n_sockets": int(topology.n_sockets),
        "kind": type(topology).__name__,
        "processor": topology.processor.name,
        "n_rows": int(topology.n_rows),
        "lanes_per_row": int(topology.lanes_per_row),
        "chain_length": int(topology.chain_length),
        "sockets_per_cartridge_depth": int(
            topology.sockets_per_cartridge_depth
        ),
        "socket_airflow_cfm": float(topology.socket_airflow_cfm),
        "mixing_factor": float(topology.mixing_factor),
        "intra_cartridge_decay": float(topology.intra_cartridge_decay),
        "inter_cartridge_decay": float(topology.inter_cartridge_decay),
    }
    # Prove the recipe: rebuild from the scalars and compare content
    # tokens.  Uniform-sink / per-site-sink topologies fail this and
    # are marked non-reconstructible instead of silently lying.
    try:
        candidate = _topology_from_payload(
            dict(payload, reconstructible=True)
        )
        reconstructible = topology_token(candidate) == topology_token(
            topology
        )
    except Exception:
        reconstructible = False
    payload["reconstructible"] = reconstructible
    return payload


def _topology_from_payload(payload: dict):
    from ..server.topology import ServerTopology

    if not payload.get("reconstructible"):
        raise ObservabilityError(
            "manifest topology is not reconstructible (non-standard "
            "sink arrangement); only its content token was recorded"
        )
    processors = _processor_registry()
    name = payload["processor"]
    if name not in processors:
        raise ObservabilityError(
            f"manifest names unknown processor {name!r}"
        )
    return ServerTopology(
        n_rows=int(payload["n_rows"]),
        lanes_per_row=int(payload["lanes_per_row"]),
        chain_length=int(payload["chain_length"]),
        processor=processors[name],
        sockets_per_cartridge_depth=int(
            payload["sockets_per_cartridge_depth"]
        ),
        socket_airflow_cfm=float(payload["socket_airflow_cfm"]),
        mixing_factor=float(payload["mixing_factor"]),
        intra_cartridge_decay=float(payload["intra_cartridge_decay"]),
        inter_cartridge_decay=float(payload["inter_cartridge_decay"]),
    )


def _fault_payload(fault_schedule) -> Optional[dict]:
    if fault_schedule is None:
        return None
    events = []
    for event in fault_schedule.events:
        entry = {"kind": type(event).__name__}
        for key, value in dataclasses.asdict(event).items():
            entry[key] = value.value if isinstance(value, enum.Enum) else value
        events.append(entry)
    return {
        "fingerprint": fault_schedule.fingerprint(),
        "response": dataclasses.asdict(fault_schedule.response),
        "events": events,
    }


def _fault_from_payload(payload: Optional[dict]):
    if payload is None:
        return None
    from ..faults import events as fault_events
    from ..faults.events import SensorFaultMode
    from ..faults.schedule import FaultResponse, FaultSchedule

    kinds = {
        name: getattr(fault_events, name)
        for name in (
            "FanLaneFault",
            "SensorFault",
            "DVFSStuckFault",
            "SocketKillFault",
            "PowerCapFault",
        )
    }
    events = []
    for entry in payload.get("events", ()):
        entry = dict(entry)
        kind = entry.pop("kind", None)
        if kind not in kinds:
            raise ObservabilityError(
                f"manifest names unknown fault kind {kind!r}"
            )
        if "mode" in entry:
            entry["mode"] = SensorFaultMode(entry["mode"])
        try:
            events.append(kinds[kind](**entry))
        except TypeError as exc:
            raise ObservabilityError(
                f"malformed manifest fault event ({kind}): {exc}"
            ) from exc
    try:
        response = FaultResponse(**payload.get("response", {}))
    except TypeError as exc:
        raise ObservabilityError(
            f"malformed manifest fault response: {exc}"
        ) from exc
    schedule = FaultSchedule(events=tuple(events), response=response)
    recorded = payload.get("fingerprint")
    if recorded is not None and schedule.fingerprint() != recorded:
        raise ObservabilityError(
            "rebuilt fault schedule does not match the manifest's "
            "recorded fingerprint — the manifest was edited or is from "
            "an incompatible version"
        )
    return schedule


def _params_from_payload(payload: dict):
    from ..config.parameters import SimulationParameters

    known = {
        f.name for f in dataclasses.fields(SimulationParameters)
    }
    unknown = set(payload) - known
    if unknown:
        raise ObservabilityError(
            f"manifest parameters carry unknown fields "
            f"{sorted(unknown)} — written by an incompatible version"
        )
    try:
        return SimulationParameters(**payload)
    except TypeError as exc:
        raise ObservabilityError(
            f"malformed manifest parameters: {exc}"
        ) from exc


def manifest_for_point(
    topology,
    params,
    scheduler_name: str,
    benchmark_set,
    load: float,
    fault_schedule=None,
    result=None,
    profile=None,
    stepping: str = "fixed",
) -> RunManifest:
    """Build the manifest of one fully specified sweep point.

    Args:
        result: Optional finished :class:`~repro.sim.results.
            SimulationResult`; its content fingerprint is recorded so
            the manifest can later *verify* a reproduction, not just
            perform one.
        profile: Optional :class:`~repro.obs.profiler.RunProfile` to
            embed.
        stepping: Engine stepping mode of the run; joins the recorded
            ``config_key`` when not ``"fixed"``.
    """
    from ..sim.parallel import config_key

    benchmark_value = getattr(benchmark_set, "value", str(benchmark_set))
    fingerprint = None
    if result is not None:
        from ..sim.fingerprint import result_fingerprint

        fingerprint = result_fingerprint(result)
    return RunManifest(
        config_key=config_key(
            topology,
            params,
            scheduler_name,
            benchmark_set,
            load,
            fault_schedule=fault_schedule,
            stepping=stepping,
        ),
        scheduler=scheduler_name,
        benchmark_set=benchmark_value,
        load=float(load),
        seed=int(params.seed),
        params=dataclasses.asdict(params),
        topology=_topology_payload(topology),
        fault=_fault_payload(fault_schedule),
        stepping=stepping,
        result_fingerprint=fingerprint,
        profile=profile.to_dict() if profile is not None else None,
    )


# -- replaying ----------------------------------------------------------


def rerun_from_manifest(manifest: RunManifest, audit: bool = False):
    """Re-run the exact simulation a manifest describes.

    Returns:
        The fresh :class:`~repro.sim.results.SimulationResult`.  When
        the manifest recorded a ``result_fingerprint``, the caller can
        compare it against :func:`repro.sim.fingerprint.
        result_fingerprint` of the returned result — they must match
        bit-for-bit on a compatible build.

    Raises:
        ObservabilityError: if the topology recipe is marked
            non-reconstructible or any manifest content is malformed.
    """
    from ..core import get_scheduler
    from ..sim.runner import run_once
    from ..workloads.benchmark import BenchmarkSet

    topology = _topology_from_payload(manifest.topology)
    params = _params_from_payload(manifest.params)
    fault_schedule = _fault_from_payload(manifest.fault)
    auditor = None
    if audit:
        from ..sim.invariants import InvariantAuditor

        auditor = InvariantAuditor()
    return run_once(
        topology,
        params,
        get_scheduler(manifest.scheduler),
        BenchmarkSet(manifest.benchmark_set),
        manifest.load,
        auditor=auditor,
        fault_schedule=fault_schedule,
        stepping=manifest.stepping,
    )


def verify_manifest(manifest: RunManifest) -> bool:
    """Re-run a manifest and check the recorded result fingerprint.

    Raises:
        ObservabilityError: if the manifest recorded no fingerprint
            (nothing to verify against) or cannot be replayed.
    """
    if manifest.result_fingerprint is None:
        raise ObservabilityError(
            "manifest records no result fingerprint to verify against"
        )
    from ..sim.fingerprint import result_fingerprint

    result = rerun_from_manifest(manifest)
    return result_fingerprint(result) == manifest.result_fingerprint

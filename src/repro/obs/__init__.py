"""Run-wide observability: telemetry events, profiling, manifests.

Three orthogonal capabilities, all strictly observational (a run with
any of them enabled is bit-identical to a run with none — pinned by
the fingerprint oracle tests):

- **Structured telemetry** (:mod:`~repro.obs.events`,
  :mod:`~repro.obs.writer`, :mod:`~repro.obs.session`): schema-stable
  JSONL event streams of scheduling decisions, DVFS throttles, thermal
  trips, fault activations and sweep-harness actions, written by a
  buffered non-blocking writer that leaves parseable logs even when
  the process is SIGKILLed.
- **Per-step profiling** (:mod:`~repro.obs.profiler`): per-component
  wall-clock accounting of the step pipeline at <2% overhead.
- **Run manifests** (:mod:`~repro.obs.manifest`): per-run provenance
  records (parameters, topology recipe, fault schedule, versions,
  result fingerprint) from which any run can be replayed and verified.

Enable from the CLI with ``--telemetry DIR`` / ``--profile``, or from
the environment with ``REPRO_TELEMETRY`` / ``REPRO_PROFILE``.  Check
artifacts with ``python -m repro.obs.check DIR``; summarise with
``python -m repro.metrics.obs_report DIR``.
"""

from .events import EVENT_TYPES, SCHEMA_VERSION, make_event, validate_event
from .manifest import (
    MANIFEST_SUFFIX,
    MANIFEST_VERSION,
    RunManifest,
    manifest_for_point,
    rerun_from_manifest,
    verify_manifest,
)
from .profiler import ComponentProfile, RunProfile, StepProfiler
from .session import (
    ENV_PROFILE,
    ENV_TELEMETRY,
    TelemetryConfig,
    TelemetryRecorder,
    TelemetrySession,
    profile_from_env,
)
from .writer import (
    DEFAULT_BUFFER_LINES,
    JsonlWriter,
    encode_event,
    iter_events,
    read_events,
)

__all__ = [
    "SCHEMA_VERSION",
    "EVENT_TYPES",
    "make_event",
    "validate_event",
    "DEFAULT_BUFFER_LINES",
    "JsonlWriter",
    "encode_event",
    "iter_events",
    "read_events",
    "ComponentProfile",
    "RunProfile",
    "StepProfiler",
    "ENV_TELEMETRY",
    "ENV_PROFILE",
    "TelemetryConfig",
    "TelemetrySession",
    "TelemetryRecorder",
    "profile_from_env",
    "MANIFEST_VERSION",
    "MANIFEST_SUFFIX",
    "RunManifest",
    "manifest_for_point",
    "rerun_from_manifest",
    "verify_manifest",
]

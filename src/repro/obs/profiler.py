"""Per-component wall-clock profiling of the step pipeline.

A :class:`StepProfiler` rides along with one engine run and accounts
every pipeline phase's monotonic wall-clock time and call count.  The
engine integrates it with *chained* timestamps — one clock reading
between consecutive hooks instead of a start/stop pair around each —
so the instrumented loop costs a single ``perf_counter`` call per
component per step.  That keeps the measured overhead on the
180-socket SUT under 2% (pinned by
``benchmarks/bench_step_pipeline.py``).

Profiling is an observer: it never touches simulation state, so a
profiled run is bit-identical to an unprofiled one (pinned by the
fingerprint oracle tests).  The result of a run carries the finished
:class:`RunProfile` in ``result.profile``.

Clock contract: ``clock`` must be monotonic (the default is
:func:`time.perf_counter`).  Totals are therefore non-negative and
their sum can never exceed the engine's elapsed time — both invariants
are property-tested with a deterministic fake clock.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Sequence, Tuple

from ..errors import ObservabilityError


@dataclass(frozen=True)
class ComponentProfile:
    """Accounting for one pipeline component over one run.

    Attributes:
        name: Component class name (e.g. ``"PowerManager"``).
        calls: Hook invocations over the run (``n_steps`` step hooks
            plus the run-start and run-end hooks).
        total_s: Monotonic wall-clock seconds spent inside the
            component's hooks.
    """

    name: str
    calls: int
    total_s: float

    @property
    def mean_us(self) -> float:
        """Mean microseconds per hook invocation."""
        if self.calls == 0:
            return 0.0
        return self.total_s / self.calls * 1e6


@dataclass(frozen=True)
class RunProfile:
    """The finished profile table of one engine run.

    Plain data: pickles with results, serialises into manifests.

    Attributes:
        engine_elapsed_s: Wall-clock seconds of the whole engine run
            (component hooks plus the engine's own loop overhead).
        n_steps: Engine steps driven.
        components: Per-component accounting, in pipeline order.
        buckets: Named sub-component accounting (e.g. ``place:CP`` for
            the Placer's per-policy scoring time).  Bucket time is a
            *subset* of its owning component's total, so it is reported
            separately and never added to ``total_component_s``.
    """

    engine_elapsed_s: float
    n_steps: int
    components: Tuple[ComponentProfile, ...]
    buckets: Tuple[ComponentProfile, ...] = field(default=())

    @property
    def total_component_s(self) -> float:
        """Seconds attributed to components (the rest is loop overhead)."""
        return sum(entry.total_s for entry in self.components)

    def share(self, entry: ComponentProfile) -> float:
        """Fraction of the engine's elapsed time spent in ``entry``."""
        if self.engine_elapsed_s <= 0:
            return 0.0
        return entry.total_s / self.engine_elapsed_s

    def to_dict(self) -> dict:
        """JSON-ready digest (used by manifests and reports)."""
        return {
            "engine_elapsed_s": self.engine_elapsed_s,
            "n_steps": self.n_steps,
            "components": [
                {
                    "name": entry.name,
                    "calls": entry.calls,
                    "total_s": entry.total_s,
                }
                for entry in self.components
            ],
            "buckets": [
                {
                    "name": entry.name,
                    "calls": entry.calls,
                    "total_s": entry.total_s,
                }
                for entry in self.buckets
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "RunProfile":
        """Rebuild a profile from :meth:`to_dict` output.

        Accepts pre-bucket digests (no ``"buckets"`` key) for manifest
        back-compatibility.
        """
        try:
            return cls(
                engine_elapsed_s=float(data["engine_elapsed_s"]),
                n_steps=int(data["n_steps"]),
                components=tuple(
                    ComponentProfile(
                        name=str(entry["name"]),
                        calls=int(entry["calls"]),
                        total_s=float(entry["total_s"]),
                    )
                    for entry in data["components"]
                ),
                buckets=tuple(
                    ComponentProfile(
                        name=str(entry["name"]),
                        calls=int(entry["calls"]),
                        total_s=float(entry["total_s"]),
                    )
                    for entry in data.get("buckets", ())
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ObservabilityError(
                f"malformed profile dict: {exc!r}"
            ) from exc

    def render(self) -> str:
        """A human-readable profile table."""
        rows = [("component", "calls", "total ms", "mean us", "share")]
        for entry in self.components:
            rows.append(
                (
                    entry.name,
                    str(entry.calls),
                    f"{entry.total_s * 1e3:.3f}",
                    f"{entry.mean_us:.2f}",
                    f"{self.share(entry) * 100:.1f}%",
                )
            )
        overhead = self.engine_elapsed_s - self.total_component_s
        rows.append(
            (
                "(engine loop)",
                str(self.n_steps),
                f"{max(overhead, 0.0) * 1e3:.3f}",
                "-",
                f"{max(overhead, 0.0) / self.engine_elapsed_s * 100:.1f}%"
                if self.engine_elapsed_s > 0
                else "-",
            )
        )
        for entry in self.buckets:
            rows.append(
                (
                    f"  {entry.name}",
                    str(entry.calls),
                    f"{entry.total_s * 1e3:.3f}",
                    f"{entry.mean_us:.2f}",
                    f"{self.share(entry) * 100:.1f}%",
                )
            )
        widths = [
            max(len(row[col]) for row in rows) for col in range(len(rows[0]))
        ]
        lines = []
        for i, row in enumerate(rows):
            lines.append(
                "  ".join(cell.ljust(w) for cell, w in zip(row, widths))
            )
            if i == 0:
                lines.append("  ".join("-" * w for w in widths))
        return "\n".join(lines)


class StepProfiler:
    """Mutable per-run accounting the engine drives directly.

    One profiler instance can be reused across runs: the engine calls
    :meth:`bind` at every run start, which zeroes all accounting — two
    back-to-back runs therefore produce independent profiles.

    Attributes:
        clock: The monotonic clock in use (injectable for tests).
        component_names: Pipeline component class names, in order.
        totals_s: Per-component accumulated seconds (engine-written).
        calls: Per-component hook invocation counts.
        engine_elapsed_s: Elapsed seconds of the last finished run.
        n_steps: Steps of the last finished run.
    """

    def __init__(
        self, clock: Callable[[], float] = time.perf_counter
    ) -> None:
        self.clock = clock
        self.component_names: List[str] = []
        self.totals_s: List[float] = []
        self.calls: List[int] = []
        #: Named sub-component accumulators: name -> [calls, total_s].
        #: Components opt in (e.g. the Placer's per-policy ``place:*``
        #: scoring bucket) through ``EngineContext.profile_buckets``.
        self.buckets: Dict[str, List[float]] = {}
        self.engine_elapsed_s = 0.0
        self.n_steps = 0
        self._bound = False

    def bind(self, components: Sequence[object]) -> None:
        """Register the pipeline and zero all accounting (run start)."""
        self.component_names = [
            type(component).__name__ for component in components
        ]
        self.totals_s = [0.0] * len(components)
        self.calls = [0] * len(components)
        self.buckets = {}
        self.engine_elapsed_s = 0.0
        self.n_steps = 0
        self._bound = True

    def reset(self) -> None:
        """Forget everything (alias for an unbound zeroing)."""
        self.bind([])
        self._bound = False

    def profile(self) -> RunProfile:
        """Snapshot the accounting as an immutable :class:`RunProfile`.

        Raises:
            ObservabilityError: if the profiler was never bound to a
                pipeline (there is nothing to report).
        """
        if not self._bound:
            raise ObservabilityError(
                "profiler was never attached to an engine run"
            )
        return RunProfile(
            engine_elapsed_s=self.engine_elapsed_s,
            n_steps=self.n_steps,
            components=tuple(
                ComponentProfile(name=name, calls=calls, total_s=total)
                for name, calls, total in zip(
                    self.component_names, self.calls, self.totals_s
                )
            ),
            buckets=tuple(
                ComponentProfile(
                    name=name, calls=int(acc[0]), total_s=acc[1]
                )
                for name, acc in self.buckets.items()
            ),
        )

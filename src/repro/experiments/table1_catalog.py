"""Table I: recent density optimized systems."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..server.catalog import TABLE_I_SYSTEMS, DensityOptimizedSystem
from .common import format_table


@dataclass(frozen=True)
class Table1Result:
    """The Table I catalog plus derived density columns.

    Attributes:
        systems: The catalogued systems, in the paper's order.
    """

    systems: Tuple[DensityOptimizedSystem, ...]

    def rows(self) -> List[List[object]]:
        """Rows mirroring the paper's columns."""
        return [
            [
                s.organization,
                s.details,
                f"{s.height_u}U",
                s.total_sockets,
                round(s.sockets_per_u, 2),
                s.socket_tdp_w,
                s.cpu,
                s.degree_of_coupling,
            ]
            for s in self.systems
        ]

    @property
    def max_density(self) -> float:
        """Highest socket density in the catalog, sockets/U."""
        return max(s.sockets_per_u for s in self.systems)

    @property
    def max_degree(self) -> int:
        """Highest degree of thermal coupling in the catalog."""
        return max(s.degree_of_coupling for s in self.systems)


def run() -> Table1Result:
    """Return the Table I reproduction."""
    return Table1Result(systems=TABLE_I_SYSTEMS)


def main() -> None:
    """Print Table I."""
    result = run()
    print("Table I: density optimized systems")
    print(
        format_table(
            [
                "Organization",
                "Details",
                "Size",
                "Sockets",
                "Sockets/U",
                "TDP (W)",
                "CPU",
                "Coupling",
            ],
            result.rows(),
        )
    )


if __name__ == "__main__":
    main()

"""Figure 1: power per 1U and sockets per 1U across server classes.

Expected shape: power density rises 1U < 2U reversed — specifically
Other < 2U < 1U < Blade < DensityOpt for both metrics, with density
optimized servers near 588 W/U and ~25 sockets/U (a ~50% power and ~6x
socket density step over blades).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..analysis.survey import (
    ClassStatistics,
    ServerClass,
    class_statistics,
    generate_population,
)
from .common import format_table


@dataclass(frozen=True)
class Figure1Result:
    """Per-class density statistics (the two bar charts of Figure 1).

    Attributes:
        stats: Class statistics keyed by server class.
    """

    stats: Dict[ServerClass, ClassStatistics]

    def rows(self) -> List[List[object]]:
        """Table rows: class, count, W/U, sockets/U."""
        return [
            [
                s.server_class.value,
                s.count,
                round(s.mean_power_per_u_w, 1),
                round(s.mean_sockets_per_u, 2),
            ]
            for s in self.stats.values()
        ]


def run(seed: int = 0) -> Figure1Result:
    """Generate the survey population and compute Figure 1."""
    population = generate_population(seed)
    return Figure1Result(stats=class_statistics(population))


def main() -> None:
    """Print Figure 1 as a table."""
    result = run()
    print("Figure 1: server density survey (410 designs)")
    print(
        format_table(
            ["Class", "Count", "Power/U (W)", "Sockets/U"], result.rows()
        )
    )


if __name__ == "__main__":
    main()

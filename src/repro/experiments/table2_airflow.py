"""Table II: airflow requirements per server class.

Expected values at a 20 degC outlet budget: 18.30 CFM (1U), 12.94 (2U),
10.03 (Other), 37.05 (Blade) and 51.74 (DensityOpt) per 1U.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..thermal.airflow import DEFAULT_DELTA_T_C, airflow_table
from .common import format_table


@dataclass(frozen=True)
class Table2Result:
    """Airflow table rows.

    Attributes:
        delta_t_c: Outlet-inlet temperature budget, degC.
        rows_data: (server class, power/U, CFM/U) rows.
    """

    delta_t_c: float
    rows_data: Tuple[Tuple[str, float, float], ...]

    def rows(self) -> List[List[object]]:
        """Formatted rows for printing."""
        return [
            [name, round(power, 1), round(cfm, 2)]
            for name, power, cfm in self.rows_data
        ]


def run(delta_t_c: float = DEFAULT_DELTA_T_C) -> Table2Result:
    """Compute Table II for the given outlet budget."""
    return Table2Result(
        delta_t_c=delta_t_c, rows_data=tuple(airflow_table(delta_t_c))
    )


def main() -> None:
    """Print Table II."""
    result = run()
    print(
        "Table II: airflow per 1U for a "
        f"{result.delta_t_c:g} degC outlet budget"
    )
    print(
        format_table(
            ["Server size", "Power per 1U (W)", "Airflow (CFM)"],
            result.rows(),
        )
    )


if __name__ == "__main__":
    main()

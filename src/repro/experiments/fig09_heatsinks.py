"""Figure 9: on-die temperature spreads and max temperature vs power.

Expected shape (from the detailed reference model over the 19 apps):

- hot-spot / cold-spot spreads of only ~4-7 degC on the small
  (~100 mm^2) die, justifying a lateral-resistance-free simplified
  model;
- peak temperature well correlated with total power;
- the 30-fin heat sink running cooler than the 18-fin sink by ~6-7 degC
  at high power and ~3-4 degC at low power.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..thermal.detailed_model import DetailedChipModel
from ..thermal.heatsink import FIN_18, FIN_30
from ..workloads.benchmark import profile_for
from ..workloads.pcmark import PCMARK_APPS, Application
from ..workloads.power_model import LEAKAGE_TDP_FRACTION, leakage_power
from .common import format_table

#: Operating point used to derive each app's Figure 9 power: sustained
#: frequency, with leakage evaluated at a typical 70 degC chip.
OPERATING_FREQ_MHZ = 1500
OPERATING_CHIP_C = 70.0
DEFAULT_AMBIENT_C = 25.0
DEFAULT_TDP_W = 22.0


def app_operating_power_w(app: Application) -> float:
    """The app's socket power at the Figure 9 operating point, W."""
    profile = profile_for(app.benchmark_set)
    dyn_max = app.power_at_max_w - LEAKAGE_TDP_FRACTION * DEFAULT_TDP_W
    dyn = dyn_max * (OPERATING_FREQ_MHZ / 1900.0) ** profile.dynamic_exponent
    return dyn + float(leakage_power(OPERATING_CHIP_C, DEFAULT_TDP_W))


@dataclass(frozen=True)
class AppThermalPoint:
    """Detailed-model solution for one app on one heat sink.

    Attributes:
        app_name: Application name.
        sink_name: Heat sink name.
        power_w: Total power at the operating point, W.
        max_temperature_c: Hottest block temperature, degC.
        spread_c: Hot-cold spot temperature difference, degC.
    """

    app_name: str
    sink_name: str
    power_w: float
    max_temperature_c: float
    spread_c: float


@dataclass(frozen=True)
class Figure9Result:
    """All (app, sink) thermal points.

    Attributes:
        points: One entry per app per sink.
        ambient_c: Entry air temperature used.
    """

    points: Tuple[AppThermalPoint, ...]
    ambient_c: float

    def for_sink(self, sink_name: str) -> List[AppThermalPoint]:
        """Points for one heat sink, sorted by power."""
        return sorted(
            (p for p in self.points if p.sink_name == sink_name),
            key=lambda p: p.power_w,
        )

    def spread_range(self) -> Tuple[float, float]:
        """(min, max) hot-cold spread across all points, degC."""
        spreads = [p.spread_c for p in self.points]
        return min(spreads), max(spreads)

    def sink_advantage(self) -> Dict[str, float]:
        """30-fin peak-temperature advantage at the power extremes.

        Returns:
            ``{"low_power": ..., "high_power": ...}`` — how much cooler
            the 30-fin sink runs than the 18-fin sink, degC.
        """
        fin18 = self.for_sink(FIN_18.name)
        fin30 = {p.app_name: p for p in self.for_sink(FIN_30.name)}
        deltas = [
            (p.power_w, p.max_temperature_c - fin30[p.app_name].max_temperature_c)
            for p in fin18
        ]
        deltas.sort()
        return {
            "low_power": deltas[0][1],
            "high_power": deltas[-1][1],
        }


def run(ambient_c: float = DEFAULT_AMBIENT_C) -> Figure9Result:
    """Solve the detailed model for every app on both heat sinks."""
    points: List[AppThermalPoint] = []
    for sink in (FIN_18, FIN_30):
        model = DetailedChipModel(sink)
        for app in PCMARK_APPS:
            power = app_operating_power_w(app)
            solution = model.solve(ambient_c, app.block_power_map(power))
            points.append(
                AppThermalPoint(
                    app_name=app.name,
                    sink_name=sink.name,
                    power_w=power,
                    max_temperature_c=solution.max_temperature_c,
                    spread_c=solution.spread_c,
                )
            )
    return Figure9Result(points=tuple(points), ambient_c=ambient_c)


def main() -> None:
    """Print Figure 9 summaries."""
    result = run()
    rows = [
        [p.app_name, p.sink_name, round(p.power_w, 1),
         round(p.max_temperature_c, 1), round(p.spread_c, 1)]
        for p in result.points
    ]
    print("Figure 9: detailed-model thermals for the 19 apps")
    print(
        format_table(
            ["App", "Sink", "Power (W)", "Max T (C)", "Spread (C)"],
            rows,
        )
    )
    low, high = result.spread_range()
    print(f"Spread range: {low:.1f} - {high:.1f} C (paper: 4-7 C)")
    advantage = result.sink_advantage()
    print(
        "30-fin advantage: "
        f"{advantage['low_power']:.1f} C at low power, "
        f"{advantage['high_power']:.1f} C at high power "
        "(paper: 3-4 C and 6-7 C)"
    )


if __name__ == "__main__":
    main()

"""Figure 13: frequency and work split by server region per scheme.

Expected shape: at 30% load, front-loading schemes (CF, Balanced-L,
Predictive, CP) perform most of their work in the front half at high
frequency; HF, MinHR and Random do not.  Predictive concentrates work on
even zones (the better 30-fin heat sinks), especially zone 2.  At 70%
load the back half carries more work for every scheme and its frequency
suffers, most under front-loading schemes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..core import get_scheduler
from ..metrics.zones import ZoneReport, zone_report
from ..sim.runner import run_once
from ..workloads.benchmark import BenchmarkSet
from .common import ExperimentConfig, format_table

DEFAULT_SCHEMES: Tuple[str, ...] = (
    "CF",
    "HF",
    "Random",
    "MinHR",
    "CN",
    "Balanced-L",
    "A-Random",
    "Predictive",
    "CP",
)

DEFAULT_LOADS: Tuple[float, ...] = (0.3, 0.7)


@dataclass(frozen=True)
class Figure13Result:
    """Zone reports per (scheme, load).

    Attributes:
        reports: ``{(scheme, load): ZoneReport}``.
        loads: Load levels evaluated.
        schemes: Scheme names evaluated.
    """

    reports: Dict[Tuple[str, float], ZoneReport]
    loads: Tuple[float, ...]
    schemes: Tuple[str, ...]

    def rows(self, load: float) -> List[List[object]]:
        """Formatted rows for one load level."""
        rows = []
        for scheme in self.schemes:
            report = self.reports[(scheme, load)]
            rows.append(
                [
                    scheme,
                    round(report.front_freq, 3),
                    round(report.back_freq, 3),
                    round(report.even_freq, 3),
                    round(report.front_work, 3),
                    round(report.back_work, 3),
                    round(report.even_work, 3),
                ]
            )
        return rows


def run(
    config: ExperimentConfig = None,
    loads: Sequence[float] = DEFAULT_LOADS,
    schemes: Sequence[str] = DEFAULT_SCHEMES,
) -> Figure13Result:
    """Simulate the schemes and compute zone reports."""
    config = config or ExperimentConfig()
    topology = config.topology()
    params = config.parameters()
    reports: Dict[Tuple[str, float], ZoneReport] = {}
    for load in loads:
        for scheme in schemes:
            result = run_once(
                topology,
                params,
                get_scheduler(scheme),
                BenchmarkSet.COMPUTATION,
                load,
            )
            reports[(scheme, load)] = zone_report(result)
    return Figure13Result(
        reports=reports, loads=tuple(loads), schemes=tuple(schemes)
    )


def main() -> None:
    """Print Figure 13 for each load."""
    result = run()
    headers = [
        "Scheme",
        "F-freq",
        "B-freq",
        "E-freq",
        "F-work",
        "B-work",
        "E-work",
    ]
    for load in result.loads:
        print(f"Figure 13 at {load:.0%} load (front/back/even zones)")
        print(format_table(headers, result.rows(load)))
        print()


if __name__ == "__main__":
    main()

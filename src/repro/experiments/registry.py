"""Registry mapping artifact names to experiment modules.

Lets tooling (the CLI, the benchmark harness, docs) enumerate every
reproducible table and figure without importing each module by hand.
"""

from __future__ import annotations

from dataclasses import dataclass
from types import ModuleType
from typing import Callable, Dict, List

from ..errors import ConfigurationError
from . import (
    fault_scenarios,
    fig01_survey,
    fig02_cartridge_thermals,
    fig03_motivation,
    fig05_entry_temperature,
    fig06_job_durations,
    fig07_power_performance,
    fig09_heatsinks,
    fig10_model_validation,
    fig11_existing_schemes,
    fig13_zone_behavior,
    fig14_performance,
    fig15_ed2,
    room_scenarios,
    table1_catalog,
    table2_airflow,
    table3_parameters,
)


@dataclass(frozen=True)
class Experiment:
    """One reproducible paper artifact.

    Attributes:
        name: Short identifier (e.g. ``"fig14"``).
        title: What the artifact shows.
        module: The implementing module (exposes ``run`` and ``main``).
        heavy: Whether the experiment runs full simulations (minutes)
            rather than analytical models (milliseconds).
    """

    name: str
    title: str
    module: ModuleType
    heavy: bool

    @property
    def run(self) -> Callable:
        """The module's ``run`` entry point."""
        return self.module.run

    @property
    def main(self) -> Callable[[], None]:
        """The module's printing entry point."""
        return self.module.main


_EXPERIMENTS: List[Experiment] = [
    Experiment(
        "fig01",
        "Power and socket density per server class",
        fig01_survey,
        heavy=False,
    ),
    Experiment(
        "fig02",
        "Cartridge air / chip temperature profile",
        fig02_cartridge_thermals,
        heavy=False,
    ),
    Experiment(
        "fig03",
        "CF vs HF on coupled / uncoupled 2-socket systems",
        fig03_motivation,
        heavy=True,
    ),
    Experiment(
        "fig05",
        "Entry temperature vs degree of coupling",
        fig05_entry_temperature,
        heavy=False,
    ),
    Experiment(
        "fig06",
        "Job duration statistics per benchmark set",
        fig06_job_durations,
        heavy=False,
    ),
    Experiment(
        "fig07",
        "Power and performance vs frequency",
        fig07_power_performance,
        heavy=False,
    ),
    Experiment(
        "fig09",
        "Heat-sink thermals and on-die spreads",
        fig09_heatsinks,
        heavy=False,
    ),
    Experiment(
        "fig10",
        "Simplified chip model validation",
        fig10_model_validation,
        heavy=False,
    ),
    Experiment(
        "fig11",
        "Existing schemes at 30% / 70% load",
        fig11_existing_schemes,
        heavy=True,
    ),
    Experiment(
        "fig13",
        "Zone frequency and work-done split",
        fig13_zone_behavior,
        heavy=True,
    ),
    Experiment(
        "fig14",
        "Performance vs CF: schemes x loads x workloads",
        fig14_performance,
        heavy=True,
    ),
    Experiment(
        "fig15",
        "ED^2 vs CF across loads and workloads",
        fig15_ed2,
        heavy=True,
    ),
    Experiment(
        "faults",
        "Fan degradation: per-scheme fault regret and downwind loss",
        fault_scenarios,
        heavy=True,
    ),
    Experiment(
        "room",
        "Room scale: CRAC setpoints, recirculation and placement",
        room_scenarios,
        heavy=False,
    ),
    Experiment(
        "table1",
        "Density optimized system catalog",
        table1_catalog,
        heavy=False,
    ),
    Experiment(
        "table2",
        "Airflow requirements per server class",
        table2_airflow,
        heavy=False,
    ),
    Experiment(
        "table3",
        "Simulation model parameters",
        table3_parameters,
        heavy=False,
    ),
]

EXPERIMENTS: Dict[str, Experiment] = {e.name: e for e in _EXPERIMENTS}


def get_experiment(name: str) -> Experiment:
    """Look up an experiment by name.

    Raises:
        ConfigurationError: for unknown names.
    """
    try:
        return EXPERIMENTS[name]
    except KeyError as exc:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ConfigurationError(
            f"unknown experiment {name!r}; known: {known}"
        ) from exc


def all_experiments(include_heavy: bool = True) -> List[Experiment]:
    """Every registered experiment, in paper order."""
    return [
        e for e in _EXPERIMENTS if include_heavy or not e.heavy
    ]

"""Experiment harness: one module per paper table and figure.

Every experiment module exposes a ``run(...)`` function returning a
structured result (rows/series mirroring what the paper reports) and a
``main()`` that prints it.  Heavy simulation experiments accept a
:class:`repro.experiments.common.ExperimentConfig` controlling scale;
the default is a scaled-down configuration that preserves the paper's
regime (see DESIGN.md section 3).

Index:

========  =============================================  ==========================
Artifact  What it shows                                  Module
========  =============================================  ==========================
Fig. 1    Power and socket density per server class      fig01_survey
Fig. 2    Cartridge air / chip temperature profile       fig02_cartridge_thermals
Fig. 3    CF vs HF on coupled / uncoupled 2-socket       fig03_motivation
Fig. 5    Entry temperature vs degree of coupling        fig05_entry_temperature
Fig. 6    Job duration statistics per benchmark set      fig06_job_durations
Fig. 7    Power and performance vs frequency             fig07_power_performance
Fig. 9    Heat-sink thermals / hot-cold spreads          fig09_heatsinks
Fig. 10   Simplified model validation (within 2 degC)    fig10_model_validation
Fig. 11   Existing schemes at 30% / 70% load             fig11_existing_schemes
Fig. 13   Zone frequency / work-done split               fig13_zone_behavior
Fig. 14   Performance vs CF, all schemes x loads x sets  fig14_performance
Fig. 15   ED^2 vs CF                                     fig15_ed2
Table I   Density optimized system catalog               table1_catalog
Table II  Airflow requirements per server class          table2_airflow
Table III Simulation parameters                          table3_parameters
========  =============================================  ==========================
"""

from .common import ExperimentConfig

__all__ = ["ExperimentConfig"]

"""Shared configuration for simulation-backed experiments."""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Sequence, Tuple

from ..config.parameters import SimulationParameters
from ..config.presets import scaled
from ..errors import ConfigurationError
from ..server.topology import ServerTopology, moonshot_sut
from ..workloads.benchmark import BenchmarkSet

#: Environment variable overriding the number of SUT rows.
ENV_ROWS = "REPRO_ROWS"

#: Environment variable overriding the simulated horizon (seconds).
ENV_SIM_TIME = "REPRO_SIM_TIME"


@dataclass
class ExperimentConfig:
    """Scale knobs for the simulation experiments.

    The defaults give a scaled-down SUT (3 of 15 rows, 36 sockets) and a
    16-second scaled horizon — enough to reproduce every qualitative
    result in minutes on a laptop.  Set the ``REPRO_ROWS`` /
    ``REPRO_SIM_TIME`` environment variables (or pass explicit values)
    to approach the paper's full 180-socket, 30-minute configuration.

    Attributes:
        n_rows: SUT rows (the paper uses 15).
        sim_time_s: Simulated horizon, seconds.
        warmup_s: Warm-up excluded from metrics, seconds.
        seed: Workload seed.
        loads: Load levels for sweep experiments.
        benchmark_sets: Benchmark sets for sweep experiments.
    """

    n_rows: int = 3
    sim_time_s: float = 16.0
    warmup_s: float = 6.0
    seed: int = 0
    loads: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9)
    benchmark_sets: Sequence[BenchmarkSet] = (
        BenchmarkSet.COMPUTATION,
        BenchmarkSet.GENERAL_PURPOSE,
        BenchmarkSet.STORAGE,
    )

    def __post_init__(self) -> None:
        env_rows = os.environ.get(ENV_ROWS)
        if env_rows:
            self.n_rows = int(env_rows)
        env_time = os.environ.get(ENV_SIM_TIME)
        if env_time:
            self.sim_time_s = float(env_time)
            self.warmup_s = min(self.warmup_s, self.sim_time_s / 3.0)
        if self.n_rows < 1:
            raise ConfigurationError("n_rows must be >= 1")
        if not 0 < self.warmup_s < self.sim_time_s:
            raise ConfigurationError(
                "warmup must be positive and below the horizon"
            )

    def topology(self, **kwargs) -> ServerTopology:
        """The (possibly scaled-down) Moonshot SUT."""
        return moonshot_sut(n_rows=self.n_rows, **kwargs)

    def parameters(self) -> SimulationParameters:
        """Scaled simulation parameters for this configuration."""
        return scaled(
            sim_time_s=self.sim_time_s,
            warmup_s=self.warmup_s,
            seed=self.seed,
        )


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render an ASCII table for experiment ``main()`` output."""
    columns = [
        [str(h)] + [str(row[i]) for row in rows]
        for i, h in enumerate(headers)
    ]
    widths = [max(len(cell) for cell in col) for col in columns]
    lines = []
    header_line = "  ".join(
        h.ljust(w) for h, w in zip([str(h) for h in headers], widths)
    )
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(str(c).ljust(w) for c, w in zip(row, widths))
        )
    return "\n".join(lines)

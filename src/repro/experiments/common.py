"""Shared configuration for simulation-backed experiments."""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

from ..backend import ENV_BACKEND
from ..config.parameters import SimulationParameters
from ..config.presets import scaled
from ..errors import ConfigurationError
from ..server.topology import ServerTopology, moonshot_sut
from ..sim.results import SimulationResult
from ..workloads.benchmark import BenchmarkSet

#: Environment variable overriding the number of SUT rows.
ENV_ROWS = "REPRO_ROWS"

#: Environment variable overriding the simulated horizon (seconds).
ENV_SIM_TIME = "REPRO_SIM_TIME"

#: Environment variable overriding the sweep worker-process count.
ENV_WORKERS = "REPRO_WORKERS"

#: Environment variable enabling runtime invariant auditing (any
#: non-empty value other than "0").
ENV_AUDIT = "REPRO_AUDIT"

#: Environment variable selecting the engine stepping mode
#: ("fixed" or "adaptive").
ENV_STEPPING = "REPRO_STEPPING"

#: ``ENV_BACKEND`` ("REPRO_BACKEND") selects the array backend; it is
#: imported from :mod:`repro.backend` above and honoured here so
#: experiment entry points pick it up like the other scale knobs.


@dataclass
class ExperimentConfig:
    """Scale knobs for the simulation experiments.

    The defaults give a scaled-down SUT (3 of 15 rows, 36 sockets) and a
    16-second scaled horizon — enough to reproduce every qualitative
    result in minutes on a laptop.  Set the ``REPRO_ROWS`` /
    ``REPRO_SIM_TIME`` environment variables (or pass explicit values)
    to approach the paper's full 180-socket, 30-minute configuration.

    Attributes:
        n_rows: SUT rows (the paper uses 15).
        sim_time_s: Simulated horizon, seconds.
        warmup_s: Warm-up excluded from metrics, seconds.
        seed: Workload seed.
        loads: Load levels for sweep experiments.
        benchmark_sets: Benchmark sets for sweep experiments.
        max_workers: Worker processes for sweep execution (1 = serial;
            results are bit-identical either way).
        audit: Run every simulation under an invariant auditor.
        telemetry_dir: Record structured JSONL telemetry and
            provenance manifests into this directory (``None``
            disables; also settable via ``REPRO_TELEMETRY``).
        profile: Attach per-component wall-clock profiles to results
            (also settable via ``REPRO_PROFILE``).
        stepping: Engine stepping mode for every simulation:
            ``"fixed"`` (default) or ``"adaptive"`` multi-rate
            stepping (also settable via ``REPRO_STEPPING``; see
            :class:`~repro.sim.multirate.MultiRateEngine`).
        backend: Array backend name for the seam-managed kernels:
            ``"numpy"`` (default, bit-identical to the pre-seam
            engine) or ``"jax"`` (also settable via
            ``REPRO_BACKEND``; see ``docs/architecture.md`` §11).
    """

    n_rows: int = 3
    sim_time_s: float = 16.0
    warmup_s: float = 6.0
    seed: int = 0
    loads: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9)
    benchmark_sets: Sequence[BenchmarkSet] = (
        BenchmarkSet.COMPUTATION,
        BenchmarkSet.GENERAL_PURPOSE,
        BenchmarkSet.STORAGE,
    )
    max_workers: int = 1
    audit: bool = False
    telemetry_dir: "str | None" = None
    profile: bool = False
    stepping: str = "fixed"
    backend: str = "numpy"

    def __post_init__(self) -> None:
        from ..obs.session import ENV_TELEMETRY, profile_from_env

        env_rows = os.environ.get(ENV_ROWS)
        if env_rows:
            self.n_rows = int(env_rows)
        env_time = os.environ.get(ENV_SIM_TIME)
        if env_time:
            self.sim_time_s = float(env_time)
            self.warmup_s = min(self.warmup_s, self.sim_time_s / 3.0)
        env_workers = os.environ.get(ENV_WORKERS)
        if env_workers:
            self.max_workers = int(env_workers)
        env_audit = os.environ.get(ENV_AUDIT)
        if env_audit is not None and env_audit not in ("", "0"):
            self.audit = True
        env_telemetry = os.environ.get(ENV_TELEMETRY)
        if self.telemetry_dir is None and env_telemetry:
            self.telemetry_dir = env_telemetry
        if profile_from_env():
            self.profile = True
        env_stepping = os.environ.get(ENV_STEPPING)
        if env_stepping:
            self.stepping = env_stepping
        from ..sim.multirate import STEPPING_MODES

        if self.stepping not in STEPPING_MODES:
            raise ConfigurationError(
                f"stepping must be one of {STEPPING_MODES}, got "
                f"{self.stepping!r}"
            )
        env_backend = os.environ.get(ENV_BACKEND)
        if env_backend and self.backend == "numpy":
            self.backend = env_backend
        from ..backend import get_backend

        # Resolve eagerly so a bad name (or a missing optional
        # dependency) fails at configuration time, not mid-sweep.
        self.backend = get_backend(self.backend).name
        if self.n_rows < 1:
            raise ConfigurationError("n_rows must be >= 1")
        if self.max_workers < 1:
            raise ConfigurationError("max_workers must be >= 1")
        if not 0 < self.warmup_s < self.sim_time_s:
            raise ConfigurationError(
                "warmup must be positive and below the horizon"
            )

    def topology(self, **kwargs) -> ServerTopology:
        """The (possibly scaled-down) Moonshot SUT."""
        return moonshot_sut(n_rows=self.n_rows, **kwargs)

    def parameters(self) -> SimulationParameters:
        """Scaled simulation parameters for this configuration."""
        return scaled(
            sim_time_s=self.sim_time_s,
            warmup_s=self.warmup_s,
            seed=self.seed,
        )

    def sweep(
        self,
        scheduler_names: Sequence[str],
        benchmark_sets: "Sequence[BenchmarkSet] | None" = None,
        loads: "Sequence[float] | None" = None,
    ) -> Dict[Tuple[str, BenchmarkSet, float], SimulationResult]:
        """Run a sweep under this configuration's scale knobs.

        Points fan out over ``max_workers`` processes, run under the
        invariant auditor when ``audit`` is set, and memoise into the
        process-wide sweep cache — figures sharing grid points (e.g.
        Figures 14 and 15) recompute nothing.
        """
        from ..sim.runner import run_sweep

        return run_sweep(
            self.topology(),
            self.parameters(),
            scheduler_names,
            self.benchmark_sets if benchmark_sets is None else benchmark_sets,
            self.loads if loads is None else loads,
            max_workers=self.max_workers,
            audit=self.audit,
            use_cache=True,
            telemetry=self.telemetry_dir,
            profile=self.profile,
            stepping=self.stepping,
            backend=self.backend,
        )


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Render an ASCII table for experiment ``main()`` output."""
    columns = [
        [str(h)] + [str(row[i]) for row in rows]
        for i, h in enumerate(headers)
    ]
    widths = [max(len(cell) for cell in col) for col in columns]
    lines = []
    header_line = "  ".join(
        h.ljust(w) for h, w in zip([str(h) for h in headers], widths)
    )
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(str(c).ljust(w) for c, w in zip(row, widths))
        )
    return "\n".join(lines)

"""Figure 14: performance vs CF for all schemes, loads and workloads.

Expected shape: CP outperforms or matches every other scheme across
essentially the whole load range, for all three workloads; Predictive is
the best existing scheme at low load but loses its advantage past ~50%;
HF and MinHR are poor at low load and best at high load; Storage shows
muted differences throughout; the largest CP-vs-CF margins appear for
Computation at high load.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..metrics.performance import relative_performance
from ..sim.results import SimulationResult
from ..workloads.benchmark import BenchmarkSet
from .common import ExperimentConfig, format_table

#: All schemes of Figure 14 (CF is the normalisation baseline).
ALL_SCHEMES: Tuple[str, ...] = (
    "CF",
    "HF",
    "Random",
    "MinHR",
    "CN",
    "Balanced",
    "Balanced-L",
    "A-Random",
    "Predictive",
    "CP",
)


@dataclass(frozen=True)
class Figure14Result:
    """Relative performance per (scheme, set, load).

    Attributes:
        performance_vs_cf: ``{(scheme, set, load): ratio}`` — above 1.0
            beats CF.
        loads: Load levels evaluated.
        schemes: Schemes evaluated.
        benchmark_sets: Workload sets evaluated.
    """

    performance_vs_cf: Dict[Tuple[str, BenchmarkSet, float], float]
    loads: Tuple[float, ...]
    schemes: Tuple[str, ...]
    benchmark_sets: Tuple[BenchmarkSet, ...]

    def rows(self, benchmark_set: BenchmarkSet) -> List[List[object]]:
        """Formatted rows for one workload set."""
        rows = []
        for scheme in self.schemes:
            rows.append(
                [scheme]
                + [
                    round(
                        self.performance_vs_cf[
                            (scheme, benchmark_set, load)
                        ],
                        3,
                    )
                    for load in self.loads
                ]
            )
        return rows

    def average_gain(
        self, scheme: str, benchmark_set: BenchmarkSet
    ) -> float:
        """Mean performance vs CF across loads for one scheme/set."""
        values = [
            self.performance_vs_cf[(scheme, benchmark_set, load)]
            for load in self.loads
        ]
        return sum(values) / len(values)

    def peak_gain(self, scheme: str, benchmark_set: BenchmarkSet) -> float:
        """Best single-load performance vs CF for one scheme/set."""
        return max(
            self.performance_vs_cf[(scheme, benchmark_set, load)]
            for load in self.loads
        )


def run(
    config: ExperimentConfig = None,
    schemes: Sequence[str] = ALL_SCHEMES,
) -> Figure14Result:
    """Run the full scheduler x load x workload sweep.

    The grid executes through the parallel sweep executor
    (``config.max_workers`` processes, optional invariant auditing,
    memoised results), then every point is normalised to the CF run at
    the same (set, load).
    """
    config = config or ExperimentConfig()
    names = tuple(dict.fromkeys(("CF",) + tuple(schemes)))
    results = config.sweep(names)
    performance: Dict[Tuple[str, BenchmarkSet, float], float] = {}
    for benchmark_set in config.benchmark_sets:
        for load in config.loads:
            baseline: SimulationResult = results[
                ("CF", benchmark_set, load)
            ]
            for scheme in schemes:
                if scheme == "CF":
                    performance[(scheme, benchmark_set, load)] = 1.0
                    continue
                performance[(scheme, benchmark_set, load)] = (
                    relative_performance(
                        results[(scheme, benchmark_set, load)],
                        baseline,
                    )
                )
    return Figure14Result(
        performance_vs_cf=performance,
        loads=tuple(config.loads),
        schemes=tuple(schemes),
        benchmark_sets=tuple(config.benchmark_sets),
    )


def main() -> None:
    """Print Figure 14 per workload set."""
    result = run()
    for benchmark_set in result.benchmark_sets:
        print(
            f"Figure 14 ({benchmark_set.value}): performance vs CF "
            "(higher is better)"
        )
        headers = ["Scheme"] + [f"{l:.0%}" for l in result.loads]
        print(format_table(headers, result.rows(benchmark_set)))
        print(
            f"CP average gain vs CF: "
            f"{(result.average_gain('CP', benchmark_set) - 1) * 100:.1f}%"
            f" | peak: "
            f"{(result.peak_gain('CP', benchmark_set) - 1) * 100:.1f}%"
        )
        print()


if __name__ == "__main__":
    main()

"""Figure 7: workload power (at 90 degC) and performance vs frequency.

Expected shape: at 1900 MHz, Computation draws ~18 W, GP ~14 W and
Storage ~10.5 W; power falls with frequency, fastest for Computation.
Performance relative to 1900 MHz drops ~35% for Computation at
1100 MHz, ~25% for GP and ~10% for Storage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..server.processors import X2150_LADDER
from ..workloads.benchmark import BenchmarkSet
from ..workloads.perf_model import PerfModel
from ..workloads.power_model import PowerModel
from .common import format_table


@dataclass(frozen=True)
class Figure7Result:
    """Power and performance curves per benchmark set.

    Attributes:
        power_w: ``power_w[set][f_mhz]`` — total power at 90 degC, W.
        performance: ``performance[set][f_mhz]`` — relative to
            1900 MHz.
        frequencies_mhz: The DVFS states evaluated.
    """

    power_w: Dict[BenchmarkSet, Dict[int, float]]
    performance: Dict[BenchmarkSet, Dict[int, float]]
    frequencies_mhz: Tuple[int, ...]

    def rows(self) -> List[List[object]]:
        """Rows: set, then power and perf at each frequency."""
        rows = []
        for benchmark_set in self.power_w:
            for freq in self.frequencies_mhz:
                rows.append(
                    [
                        benchmark_set.value,
                        freq,
                        round(self.power_w[benchmark_set][freq], 2),
                        round(self.performance[benchmark_set][freq], 3),
                    ]
                )
        return rows


def run() -> Figure7Result:
    """Evaluate the power / performance models over the ladder."""
    frequencies = X2150_LADDER.states_mhz
    power: Dict[BenchmarkSet, Dict[int, float]] = {}
    perf: Dict[BenchmarkSet, Dict[int, float]] = {}
    for benchmark_set in BenchmarkSet:
        power_model = PowerModel.for_set(benchmark_set)
        perf_model = PerfModel.for_set(benchmark_set)
        power[benchmark_set] = {
            f: float(power_model.power_at_reference(f)) for f in frequencies
        }
        perf[benchmark_set] = {
            f: float(perf_model.relative_performance(f))
            for f in frequencies
        }
    return Figure7Result(
        power_w=power, performance=perf, frequencies_mhz=frequencies
    )


def main() -> None:
    """Print Figure 7."""
    result = run()
    print("Figure 7: power (90 C) and relative performance vs frequency")
    print(
        format_table(
            ["Set", "MHz", "Power (W)", "Rel. perf"], result.rows()
        )
    )


if __name__ == "__main__":
    main()

"""Room scenarios: sustainable load under CRAC + heat recirculation.

The paper's sustainable-load story ends at the chassis inlet: Figure 5
and the capacity planner assume whatever temperature the rack delivers.
This experiment family puts the paper's chassis *inside a room* —
recirculated exhaust raising inlets (``inlet = T_crac + D @
P_exhaust``), the CRAC supply temperature as the operator's knob — and
measures what the room does to the paper's conclusions, using the
cross-interference formulation of Sun et al. (arXiv 1410.3104) and the
joint placement/cooling view of Van Damme et al. (arXiv 1611.00522).

Three scenario axes, each over heterogeneous Table-I chassis mixes:

- **Sustainable-load curves** — the largest room utilisation with
  every steady chip under the DVFS limit, as a function of the CRAC
  setpoint.  Strongly coupled mixes derate much faster than uncoupled
  ones: in-chassis coupling *multiplies* the room-level inlet rise.
- **Placement comparison** — the paper's room-blind uniform placement
  vs coolest-inlet vs MinHR at one reference setpoint.  Room-aware
  placement buys back sustainable load, or equivalently lets the CRAC
  run warmer at equal load.
- **Diurnal trace** — a 24 h free-cooling supply-temperature profile
  (CRAC supply tracking outdoor temperature) turned into an hourly
  sustainable-load envelope for one mix: the room-level capacity
  planning curve an operator would actually schedule against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..fleet.registry import ChassisSpec, spec_from_catalog
from ..room import (
    Room,
    RoomDeratingPoint,
    RoomInvariantAuditor,
    downwind_recirculation,
)
from ..room.capacity import max_sustainable_room_load, room_derating_curve
from ..server.catalog import TABLE_I_SYSTEMS, DensityOptimizedSystem
from ..workloads.benchmark import BenchmarkSet
from .common import ExperimentConfig, format_table

#: CRAC supply setpoints swept for the sustainable-load curves, degC.
DEFAULT_CRAC_SETPOINTS_C: Tuple[float, ...] = (
    14.0,
    18.0,
    22.0,
    26.0,
    30.0,
)

#: Reference setpoint for the placement comparison, degC.
REFERENCE_CRAC_C = 22.0

#: Placement policies compared at the reference setpoint.
DEFAULT_PLACEMENTS: Tuple[str, ...] = ("paper", "coolest", "minhr")

#: Chassis-mix names in presentation order.
DEFAULT_MIXES: Tuple[str, ...] = ("coupled", "uncoupled", "mixed")

#: Diurnal profile: mean supply, swing amplitude, hour of peak heat.
DIURNAL_MEAN_C = 22.0
DIURNAL_SWING_C = 6.0
DIURNAL_PEAK_HOUR = 15


def _catalog_by_degree() -> Dict[int, DensityOptimizedSystem]:
    """First catalog system of each coupling degree, catalog order."""
    by_degree: Dict[int, DensityOptimizedSystem] = {}
    for system in TABLE_I_SYSTEMS:
        by_degree.setdefault(system.degree_of_coupling, system)
    return by_degree


def build_mix(name: str, n_chassis: int = 3) -> Room:
    """A named heterogeneous (or deliberately uniform) chassis mix.

    - ``"coupled"``: every chassis a strongly coupled Table-I system
      (degree >= 4 — the M700 cartridge class).
    - ``"uncoupled"``: every chassis an uncoupled (degree-1) system.
    - ``"mixed"``: chassis cycle through distinct coupling degrees,
      highest first (the :func:`~repro.fleet.registry.demo_fleet`
      recipe).

    All mixes share the same downwind-drift recirculation layout
    (exhaust migrating towards the end of the aisle), so the curves
    differ only through the chassis' internal coupling.
    """
    by_degree = _catalog_by_degree()
    degrees = sorted(by_degree, reverse=True)
    if name == "coupled":
        strong = [d for d in degrees if d >= 4]
        cycle = [by_degree[strong[0]]] if strong else []
    elif name == "uncoupled":
        cycle = [by_degree[1]] if 1 in by_degree else []
    elif name == "mixed":
        cycle = [by_degree[d] for d in degrees]
    else:
        known = ", ".join(DEFAULT_MIXES)
        raise ConfigurationError(
            f"unknown chassis mix {name!r}; known: {known}"
        )
    if not cycle:
        raise ConfigurationError(
            f"the Table-I catalog has no system for mix {name!r}"
        )
    chassis: List[ChassisSpec] = [
        spec_from_catalog(cycle[i % len(cycle)], f"{name}-{i}")
        for i in range(n_chassis)
    ]
    return Room(
        chassis=tuple(chassis),
        recirculation=downwind_recirculation(n_chassis),
    )


def diurnal_supply_c(hour: int) -> float:
    """CRAC supply temperature at one hour of the free-cooling day.

    A cosine profile peaking at :data:`DIURNAL_PEAK_HOUR` — the shape
    of an economizer whose supply air tracks outdoor temperature.
    """
    phase = 2.0 * math.pi * (hour - DIURNAL_PEAK_HOUR) / 24.0
    return DIURNAL_MEAN_C + DIURNAL_SWING_C * math.cos(phase)


@dataclass(frozen=True)
class DiurnalPoint:
    """Sustainable room load at one hour of the diurnal trace.

    Attributes:
        hour: Hour of day, 0-23.
        crac_supply_c: Free-cooling supply temperature at that hour.
        max_utilization: Sustainable room utilisation at that supply.
    """

    hour: int
    crac_supply_c: float
    max_utilization: float


@dataclass(frozen=True)
class RoomScenarioResult:
    """Everything the room experiment family reports.

    Attributes:
        curves: Sustainable-load curve per mix (CRAC-setpoint axis).
        placement_loads: ``{(mix, policy): sustainable load}`` at the
            reference setpoint.
        diurnal: Hourly sustainable-load envelope for ``diurnal_mix``.
        mixes: Mix names, presentation order.
        crac_setpoints_c: The swept setpoints.
        placements: Compared placement policies.
        reference_crac_c: Setpoint of the placement comparison.
        diurnal_mix: Mix the diurnal envelope was computed for.
        benchmark_set: Workload whose sustained power was applied.
    """

    curves: Dict[str, Tuple[RoomDeratingPoint, ...]]
    placement_loads: Dict[Tuple[str, str], float]
    diurnal: Tuple[DiurnalPoint, ...]
    mixes: Tuple[str, ...]
    crac_setpoints_c: Tuple[float, ...]
    placements: Tuple[str, ...]
    reference_crac_c: float
    diurnal_mix: str
    benchmark_set: BenchmarkSet

    def curve_rows(self) -> List[List[object]]:
        """One row per CRAC setpoint, one column per mix."""
        rows = []
        for i, setpoint in enumerate(self.crac_setpoints_c):
            row: List[object] = [f"{setpoint:.0f}"]
            for mix in self.mixes:
                row.append(f"{self.curves[mix][i].max_utilization:.3f}")
            rows.append(row)
        return rows

    def placement_rows(self) -> List[List[object]]:
        """One row per mix, one column per placement policy."""
        rows = []
        for mix in self.mixes:
            row: List[object] = [mix]
            for policy in self.placements:
                row.append(f"{self.placement_loads[(mix, policy)]:.3f}")
            rows.append(row)
        return rows

    def diurnal_rows(self) -> List[List[object]]:
        return [
            [p.hour, f"{p.crac_supply_c:.1f}", f"{p.max_utilization:.3f}"]
            for p in self.diurnal
        ]

    def to_json_dict(self) -> dict:
        """A JSON-serialisable view (the CI sustainable-load artifact)."""
        return {
            "benchmark_set": self.benchmark_set.value,
            "crac_setpoints_c": list(self.crac_setpoints_c),
            "curves": {
                mix: [
                    {
                        "crac_supply_c": p.crac_supply_c,
                        "max_utilization": p.max_utilization,
                    }
                    for p in points
                ]
                for mix, points in self.curves.items()
            },
            "placement_loads": {
                f"{mix}/{policy}": load
                for (mix, policy), load in sorted(
                    self.placement_loads.items()
                )
            },
            "reference_crac_c": self.reference_crac_c,
            "diurnal_mix": self.diurnal_mix,
            "diurnal": [
                {
                    "hour": p.hour,
                    "crac_supply_c": p.crac_supply_c,
                    "max_utilization": p.max_utilization,
                }
                for p in self.diurnal
            ],
        }


def run(
    config: Optional[ExperimentConfig] = None,
    mixes: Sequence[str] = DEFAULT_MIXES,
    crac_setpoints_c: Sequence[float] = DEFAULT_CRAC_SETPOINTS_C,
    placements: Sequence[str] = DEFAULT_PLACEMENTS,
    benchmark_set: BenchmarkSet = BenchmarkSet.COMPUTATION,
    n_chassis: int = 3,
    diurnal_mix: str = "mixed",
    diurnal_step_h: int = 2,
    mode: str = "batched",
) -> RoomScenarioResult:
    """Run the full room scenario family.

    Args:
        config: Scale knobs — ``seed``, ``backend`` and ``audit`` are
            honoured (room solves are steady-state, so the horizon
            knobs do not apply); ``telemetry_dir`` mirrors every room
            solve into ``room.jsonl``.
        mixes: Chassis-mix names (see :func:`build_mix`).
        crac_setpoints_c: CRAC supply sweep for the curves.
        placements: Policies compared at the reference setpoint.
        benchmark_set: Workload whose sustained power is applied.
        n_chassis: Chassis per mix.
        diurnal_mix: Mix for the diurnal envelope.
        diurnal_step_h: Hour stride of the diurnal trace (2 keeps the
            default run light; 1 gives the full 24-point envelope).
        mode: Chassis evaluation mode (``"batched"`` / ``"serial"``).
    """
    config = config or ExperimentConfig()
    writer = None
    emit = None
    if config.telemetry_dir:
        from pathlib import Path

        from ..obs.writer import JsonlWriter

        writer = JsonlWriter(Path(config.telemetry_dir) / "room.jsonl")
        emit = writer.emit
    auditor = RoomInvariantAuditor() if config.audit else None

    def sustainable(room: Room, crac: float, placement: str) -> float:
        load = max_sustainable_room_load(
            room,
            crac,
            placement=placement,
            benchmark_set=benchmark_set,
            seed=config.seed,
            mode=mode,
            backend=config.backend,
            emit=emit,
        )
        if auditor is not None:
            from ..room.capacity import solve_room_cached
            from ..room.placement import place_room_load
            from ..analysis.capacity import sustained_dynamic_power_w

            dynamic = sustained_dynamic_power_w(benchmark_set)
            util = place_room_load(
                room,
                placement,
                load,
                crac_supply_c=crac,
                dyn_max_w=dynamic,
                seed=config.seed,
                mode=mode,
                backend=config.backend,
            )
            auditor.check(
                room,
                solve_room_cached(
                    room,
                    util,
                    dynamic,
                    crac,
                    seed=config.seed,
                    mode=mode,
                    backend=config.backend,
                ),
            )
        return load

    try:
        rooms = {name: build_mix(name, n_chassis) for name in mixes}
        curves: Dict[str, Tuple[RoomDeratingPoint, ...]] = {}
        for name, room in rooms.items():
            curves[name] = tuple(
                room_derating_curve(
                    room,
                    crac_setpoints_c,
                    benchmark_set=benchmark_set,
                    seed=config.seed,
                    mode=mode,
                    backend=config.backend,
                    emit=emit,
                )
            )
            if auditor is not None:
                # Re-audit the converged operating point of each
                # curve's reference entry via the sustainable() path.
                sustainable(room, float(crac_setpoints_c[0]), "paper")
        placement_loads: Dict[Tuple[str, str], float] = {}
        for name, room in rooms.items():
            for policy in placements:
                placement_loads[(name, policy)] = sustainable(
                    room, REFERENCE_CRAC_C, policy
                )
        hours = range(0, 24, diurnal_step_h)
        diurnal_room = rooms[diurnal_mix]
        diurnal = tuple(
            DiurnalPoint(
                hour=hour,
                crac_supply_c=diurnal_supply_c(hour),
                max_utilization=sustainable(
                    diurnal_room, diurnal_supply_c(hour), "paper"
                ),
            )
            for hour in hours
        )
    finally:
        if writer is not None:
            writer.close()
    return RoomScenarioResult(
        curves=curves,
        placement_loads=placement_loads,
        diurnal=diurnal,
        mixes=tuple(mixes),
        crac_setpoints_c=tuple(float(c) for c in crac_setpoints_c),
        placements=tuple(placements),
        reference_crac_c=REFERENCE_CRAC_C,
        diurnal_mix=diurnal_mix,
        benchmark_set=benchmark_set,
    )


def main() -> None:
    """Print the room scenario tables."""
    result = run()
    print("Sustainable room load vs CRAC supply temperature")
    print(
        format_table(
            ["CRAC degC"] + [f"{m}" for m in result.mixes],
            result.curve_rows(),
        )
    )
    print()
    print(
        f"Placement comparison at {result.reference_crac_c:.0f} degC "
        f"supply (sustainable room load)"
    )
    print(
        format_table(
            ["mix"] + list(result.placements), result.placement_rows()
        )
    )
    print()
    print(
        f"Diurnal free-cooling envelope ({result.diurnal_mix} mix)"
    )
    print(
        format_table(
            ["hour", "supply degC", "max load"], result.diurnal_rows()
        )
    )

"""Figure 6: job duration statistics per benchmark set.

Expected shape: average job durations of a few milliseconds per set,
maxima roughly two orders of magnitude above the mean, and intra-set
coefficient of variation of benchmark means between 0.25 and 0.33.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import numpy as np

from ..metrics.stats import coefficient_of_variation
from ..workloads.benchmark import BenchmarkSet
from ..workloads.pcmark import apps_in_set
from .common import format_table


@dataclass(frozen=True)
class SetDurationStats:
    """Duration statistics of one benchmark set.

    Attributes:
        benchmark_set: The set summarised.
        mean_ms: Mean of the member benchmarks' mean durations.
        cov: Coefficient of variation of the member means (Fig. 6b).
        max_over_mean: Ratio of the largest sampled duration to the
            mean (Fig. 6a's two-orders-of-magnitude observation).
    """

    benchmark_set: BenchmarkSet
    mean_ms: float
    cov: float
    max_over_mean: float


@dataclass(frozen=True)
class Figure6Result:
    """Per-set duration statistics.

    Attributes:
        stats: Statistics keyed by benchmark set.
    """

    stats: Dict[BenchmarkSet, SetDurationStats]

    def rows(self) -> List[List[object]]:
        """Formatted rows for printing."""
        return [
            [
                s.benchmark_set.value,
                round(s.mean_ms, 2),
                round(s.cov, 3),
                round(s.max_over_mean, 1),
            ]
            for s in self.stats.values()
        ]


def run(samples_per_app: int = 20000, seed: int = 0) -> Figure6Result:
    """Sample job durations and compute the Figure 6 statistics."""
    rng = np.random.default_rng(seed)
    stats: Dict[BenchmarkSet, SetDurationStats] = {}
    for benchmark_set in BenchmarkSet:
        apps = apps_in_set(benchmark_set)
        means = [app.mean_duration_ms for app in apps]
        all_samples = np.concatenate(
            [app.sample_durations_ms(samples_per_app, rng) for app in apps]
        )
        stats[benchmark_set] = SetDurationStats(
            benchmark_set=benchmark_set,
            mean_ms=float(np.mean(means)),
            cov=coefficient_of_variation(means),
            max_over_mean=float(all_samples.max() / all_samples.mean()),
        )
    return Figure6Result(stats=stats)


def main() -> None:
    """Print Figure 6."""
    result = run()
    print("Figure 6: job duration statistics per benchmark set")
    print(
        format_table(
            ["Set", "Avg duration (ms)", "CoV", "Max/mean"],
            result.rows(),
        )
    )


if __name__ == "__main__":
    main()

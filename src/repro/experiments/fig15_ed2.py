"""Figure 15: energy-delay-squared product relative to CF.

Expected shape: CP's ED^2 tracks the best existing scheme at each load —
Predictive at low load and MinHR/HF at high load — dropping well below
1.0 for Computation at high load (the paper reports ~0.7x at 80% load),
with smaller reductions for GP (~0.8x) and Storage (~0.85x).  CP buys
its performance without an energy penalty.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..metrics.energy import relative_ed2
from ..workloads.benchmark import BenchmarkSet
from .common import ExperimentConfig, format_table

DEFAULT_SCHEMES: Tuple[str, ...] = (
    "CF",
    "HF",
    "MinHR",
    "Predictive",
    "CP",
)


@dataclass(frozen=True)
class Figure15Result:
    """Normalised ED^2 per (scheme, set, load).

    Attributes:
        ed2_vs_cf: ``{(scheme, set, load): ratio}`` — below 1.0 beats
            CF.
        loads: Load levels evaluated.
        schemes: Schemes evaluated.
        benchmark_sets: Workload sets evaluated.
    """

    ed2_vs_cf: Dict[Tuple[str, BenchmarkSet, float], float]
    loads: Tuple[float, ...]
    schemes: Tuple[str, ...]
    benchmark_sets: Tuple[BenchmarkSet, ...]

    def rows(self, benchmark_set: BenchmarkSet) -> List[List[object]]:
        """Formatted rows for one workload set."""
        rows = []
        for scheme in self.schemes:
            rows.append(
                [scheme]
                + [
                    round(
                        self.ed2_vs_cf[(scheme, benchmark_set, load)], 3
                    )
                    for load in self.loads
                ]
            )
        return rows

    def best_ed2(self, benchmark_set: BenchmarkSet) -> float:
        """CP's lowest normalised ED^2 across loads for one set."""
        return min(
            self.ed2_vs_cf[("CP", benchmark_set, load)]
            for load in self.loads
        )


def run(
    config: ExperimentConfig = None,
    schemes: Sequence[str] = DEFAULT_SCHEMES,
) -> Figure15Result:
    """Run the ED^2 sweep.

    Runs through the parallel sweep executor; its grid is a subset of
    Figure 14's, so with the shared sweep cache warm (e.g. after a
    ``run --all``) every point is memoised and nothing re-simulates.
    """
    config = config or ExperimentConfig()
    names = tuple(dict.fromkeys(("CF",) + tuple(schemes)))
    results = config.sweep(names)
    ed2: Dict[Tuple[str, BenchmarkSet, float], float] = {}
    for benchmark_set in config.benchmark_sets:
        for load in config.loads:
            baseline = results[("CF", benchmark_set, load)]
            for scheme in schemes:
                if scheme == "CF":
                    ed2[(scheme, benchmark_set, load)] = 1.0
                    continue
                ed2[(scheme, benchmark_set, load)] = relative_ed2(
                    results[(scheme, benchmark_set, load)], baseline
                )
    return Figure15Result(
        ed2_vs_cf=ed2,
        loads=tuple(config.loads),
        schemes=tuple(schemes),
        benchmark_sets=tuple(config.benchmark_sets),
    )


def main() -> None:
    """Print Figure 15 per workload set."""
    result = run()
    for benchmark_set in result.benchmark_sets:
        print(
            f"Figure 15 ({benchmark_set.value}): ED^2 vs CF "
            "(lower is better)"
        )
        headers = ["Scheme"] + [f"{l:.0%}" for l in result.loads]
        print(format_table(headers, result.rows(benchmark_set)))
        print(
            f"CP best ED^2 vs CF: {result.best_ed2(benchmark_set):.3f}"
        )
        print()


if __name__ == "__main__":
    main()

"""Table III: overall simulation model parameters."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..config.parameters import SimulationParameters, table_iii_rows
from .common import format_table


@dataclass(frozen=True)
class Table3Result:
    """Rendered Table III.

    Attributes:
        rows_data: (parameter, value) pairs.
    """

    rows_data: Tuple[Tuple[str, str], ...]

    def rows(self) -> List[List[object]]:
        """Formatted rows for printing."""
        return [list(row) for row in self.rows_data]


def run(
    params: SimulationParameters = SimulationParameters(),
) -> Table3Result:
    """Render Table III for a parameter set (paper defaults)."""
    return Table3Result(rows_data=tuple(table_iii_rows(params)))


def main() -> None:
    """Print Table III."""
    result = run()
    print("Table III: overall simulation model parameters")
    print(format_table(["Parameter", "Value"], result.rows()))


if __name__ == "__main__":
    main()

"""Figure 2: air temperature profile through a dense cartridge.

The paper's Figure 2 is an Icepak CFD contour of the M700-like
cartridge showing cool air reaching the upstream sockets and visibly
heated air arriving at the downstream sockets, with a measured ~8 degC
average entry-temperature difference at 15 W per socket.  Our
substitution reproduces the quantitative observable: the per-socket
entry air temperatures and chip temperatures along the cartridge chain
with all sockets active at 15 W.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..config.parameters import SimulationParameters
from ..server.topology import ServerTopology
from ..sim.steady_state import solve_steady_state
from ..thermal.coupling import CARTRIDGE_MIXING_FACTOR
from .common import format_table

#: Per-socket power of the Figure 2 CFD scenario, W.
CARTRIDGE_SOCKET_POWER_W = 15.0


@dataclass(frozen=True)
class Figure2Result:
    """Thermal profile along one cartridge chain.

    Attributes:
        positions: Chain positions (0 = upstream).
        entry_c: Entry air temperature at each position, degC.
        chip_c: Steady chip temperature at each position, degC.
        sink_names: Heat sink installed at each position.
    """

    positions: Tuple[int, ...]
    entry_c: Tuple[float, ...]
    chip_c: Tuple[float, ...]
    sink_names: Tuple[str, ...]

    @property
    def entry_delta_c(self) -> float:
        """Entry-temperature rise from first to second socket, degC.

        The paper's CFD measured ~8 degC for this quantity at 15 W.
        """
        return self.entry_c[1] - self.entry_c[0]

    def rows(self) -> List[List[object]]:
        """Formatted rows for printing."""
        return [
            [pos, sink, round(entry, 1), round(chip, 1)]
            for pos, sink, entry, chip in zip(
                self.positions,
                self.sink_names,
                self.entry_c,
                self.chip_c,
            )
        ]


def run(
    power_w: float = CARTRIDGE_SOCKET_POWER_W,
    chain_length: int = 2,
) -> Figure2Result:
    """Solve the steady cartridge profile with every socket active.

    Uses the cartridge-level mixing calibration (kappa = 1.92, the
    value pinned by the paper's single-cartridge CFD measurement)
    rather than the in-chassis SUT calibration.
    """
    topology = ServerTopology(
        n_rows=1,
        lanes_per_row=1,
        chain_length=chain_length,
        sockets_per_cartridge_depth=2,
        mixing_factor=CARTRIDGE_MIXING_FACTOR,
    )
    params = SimulationParameters()
    field = solve_steady_state(
        topology,
        params,
        dynamic_power_w=np.full(
            topology.n_sockets, power_w * 0.7
        ),  # ~30% of the budget is leakage at temperature
        utilization=np.ones(topology.n_sockets),
    )
    return Figure2Result(
        positions=tuple(int(p) for p in topology.chain_pos_array),
        entry_c=tuple(float(t) for t in field.ambient_c),
        chip_c=tuple(float(t) for t in field.chip_c),
        sink_names=tuple(s.sink.name for s in topology.sites),
    )


def main() -> None:
    """Print the Figure 2 profile."""
    result = run()
    print(
        "Figure 2: cartridge thermal profile, all sockets at "
        f"{CARTRIDGE_SOCKET_POWER_W:g} W"
    )
    print(
        format_table(
            ["Position", "Sink", "Entry air (C)", "Chip (C)"],
            result.rows(),
        )
    )
    print(
        f"Downstream entry-air rise: {result.entry_delta_c:.1f} C "
        "(paper CFD: ~8 C)"
    )


if __name__ == "__main__":
    main()

"""Extension experiment: scheduler robustness under a load ramp.

The paper argues CP's value is its *load-agnostic* behaviour — real
servers do not sit at one operating point.  This experiment drives the
SUT with a staircase load ramp (an office-day 15% -> 70% by default)
and compares schedulers end to end: point-optimised schemes are strong
on one side of the ramp and weak on the other, while CP stays near the
per-phase best throughout.  (Note the end-to-end mean is job-weighted,
so ramps that dwell at very high load favour HF/MinHR just as Figure 14
does at 90-100%.)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from ..core import get_scheduler
from ..sim.engine import Simulation
from ..workloads.benchmark import BenchmarkSet
from ..workloads.load_profile import VaryingLoadProcess, ramp_profile
from .common import ExperimentConfig, format_table

DEFAULT_SCHEMES: Tuple[str, ...] = (
    "CF",
    "HF",
    "MinHR",
    "Predictive",
    "CP",
)


@dataclass(frozen=True)
class LoadTransientResult:
    """Mean runtime expansion per scheme over the whole ramp.

    Attributes:
        expansion: Mean runtime expansion keyed by scheme.
        ramp: (low, high) loads of the staircase.
    """

    expansion: Dict[str, float]
    ramp: Tuple[float, float]

    def relative_to(self, baseline: str) -> Dict[str, float]:
        """Expansion ratios versus a baseline scheme."""
        base = self.expansion[baseline]
        return {
            scheme: value / base
            for scheme, value in self.expansion.items()
        }

    @property
    def best(self) -> str:
        """Scheme with the lowest whole-ramp expansion."""
        return min(self.expansion, key=self.expansion.get)


def run(
    config: ExperimentConfig = None,
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    low: float = 0.15,
    high: float = 0.7,
    steps: int = 4,
) -> LoadTransientResult:
    """Simulate the ramp for every scheme on the identical stream."""
    config = config or ExperimentConfig()
    topology = config.topology()
    params = config.parameters()
    phases = ramp_profile(
        low, high, steps=steps, total_duration_s=params.sim_time_s
    )
    expansion: Dict[str, float] = {}
    for scheme in schemes:
        stream = VaryingLoadProcess(
            benchmark_set=BenchmarkSet.COMPUTATION,
            phases=phases,
            n_sockets=topology.n_sockets,
            seed=params.seed,
            duration_scale=params.duration_scale,
        )
        result = Simulation(
            topology, params, get_scheduler(scheme)
        ).run(stream.generate())
        expansion[scheme] = result.mean_runtime_expansion
    return LoadTransientResult(expansion=expansion, ramp=(low, high))


def main() -> None:
    """Print the load-transient comparison."""
    result = run()
    low, high = result.ramp
    print(
        f"Load transient {low:.0%} -> {high:.0%} (Computation): mean "
        "runtime expansion"
    )
    relative = result.relative_to("CF")
    rows = [
        [scheme, round(result.expansion[scheme], 4), round(ratio, 3)]
        for scheme, ratio in relative.items()
    ]
    print(format_table(["Scheme", "Expansion", "vs CF"], rows))
    print(f"Best over the whole ramp: {result.best}")


if __name__ == "__main__":
    main()

"""Fault scenarios: fan degradation and scheduler resilience.

The paper's thermal-coupling argument cuts both ways: the same air
chain that lets an upwind job tax its downwind neighbours also
amplifies *component failures*.  When the fan lane serving one
cartridge row weakens, every entry-temperature rise in that row is
divided by the residual airflow — the downwind half of the chain,
already the hottest real estate in the chassis, loses the most DVFS
headroom.  This experiment measures how much each scheduling scheme's
performance depends on that fragile region.

Method: for every scheme, run the *identical* workload twice — once
healthy, once with a deterministic
:class:`~repro.faults.events.FanLaneFault` degrading one row's airflow
from the start of the measurement window — and difference the runs
(:func:`~repro.metrics.robustness.fault_impact_report`).  Schemes that
concentrate work in the faulted row's downwind half (the front-loading
policies, when the faulted row is busy) pay the largest fault regret;
schemes that spread or adapt shrug the fault off.  The downwind
frequency-loss column isolates the thermal mechanism: how much average
relative frequency the downwind sockets lost to the weakened fan.

Expected shape: every scheme loses downwind frequency (physics does
not negotiate), but the *performance* cost is scheme-dependent —
adaptive schemes (CP, Predictive) re-route work away from the degraded
row and show the smallest regret at moderate load, while thermally
blind schemes (Random, HF) keep placing jobs behind the weak fan.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core import get_scheduler
from ..errors import ConfigurationError
from ..faults import FanLaneFault, FaultSchedule
from ..metrics.robustness import (
    FaultImpactReport,
    fault_impact_report,
    most_resilient,
)
from ..sim.runner import run_once
from ..workloads.benchmark import BenchmarkSet
from .common import ExperimentConfig, format_table

DEFAULT_SCHEMES: Tuple[str, ...] = (
    "CF",
    "HF",
    "Random",
    "Balanced-L",
    "Predictive",
    "CP",
)

DEFAULT_LOAD = 0.9

#: Residual airflow of the degraded lane.  The default models a failed
#: (windmilling) fan: harsh enough that the downwind chain hits the
#: thermal limit and measurably throttles even on the scaled-down SUT;
#: milder degradation only shows up near the paper's full scale.
DEFAULT_FAN_SCALE = 0.15


@dataclass(frozen=True)
class FaultScenarioResult:
    """Per-scheme impact of one fan-degradation scenario.

    Attributes:
        reports: ``{scheme: FaultImpactReport}``.
        schemes: Scheme names evaluated, in order.
        load: Offered load of the runs.
        faulted_row: Row whose fan lane was degraded.
        fan_scale: Residual airflow fraction of the degraded lane.
        schedule_fingerprint: Content fingerprint of the injected
            schedule (ties the table to an exact fault definition).
    """

    reports: Dict[str, FaultImpactReport]
    schemes: Tuple[str, ...]
    load: float
    faulted_row: int
    fan_scale: float
    schedule_fingerprint: str

    def rows(self) -> List[List[object]]:
        """Formatted table rows, one per scheme."""
        rows = []
        for scheme in self.schemes:
            report = self.reports[scheme]
            rows.append(
                [
                    scheme,
                    round(report.healthy_performance, 4),
                    round(report.faulted_performance, 4),
                    round(report.fault_regret, 4),
                    round(report.downwind_freq_loss, 4),
                ]
            )
        return rows

    @property
    def most_resilient(self) -> str:
        """Scheme losing the least performance to the fault."""
        return most_resilient(self.reports)


def downwind_mask(topology, row: int) -> np.ndarray:
    """Sockets in ``row`` on the downwind half of the airflow chain.

    These sit behind the most heated air when the row's fan degrades —
    the region where the fault's frequency cost concentrates.
    """
    if not 0 <= row < topology.n_rows:
        raise ConfigurationError(
            f"row {row} out of range 0..{topology.n_rows - 1}"
        )
    in_row = topology.row_array == row
    back_half = topology.chain_pos_array >= topology.chain_length / 2.0
    return in_row & back_half


def run(
    config: Optional[ExperimentConfig] = None,
    schemes: Sequence[str] = DEFAULT_SCHEMES,
    load: float = DEFAULT_LOAD,
    benchmark_set: BenchmarkSet = BenchmarkSet.COMPUTATION,
    faulted_row: int = 0,
    fan_scale: float = DEFAULT_FAN_SCALE,
    fault_start_s: Optional[float] = None,
) -> FaultScenarioResult:
    """Run the healthy/faulted pair for every scheme.

    Args:
        config: Scale knobs (rows, horizon, audit) shared by all runs.
        schemes: Registered scheduler names to evaluate.
        load: Offered load in (0, 1].
        benchmark_set: Workload set to draw jobs from.
        faulted_row: Row whose fan lane degrades.
        fan_scale: Residual airflow fraction in (0, 1] while degraded.
        fault_start_s: Fault activation time; defaults to the end of
            the warm-up, so the whole measurement window runs degraded.
    """
    config = config or ExperimentConfig()
    topology = config.topology()
    params = config.parameters()
    if fault_start_s is None:
        fault_start_s = params.warmup_s
    schedule = FaultSchedule(
        events=(
            FanLaneFault(
                row=faulted_row, scale=fan_scale, start_s=fault_start_s
            ),
        )
    )
    schedule.validate(topology)
    mask = downwind_mask(topology, faulted_row)

    def auditor():
        if not config.audit:
            return None
        from ..sim.invariants import InvariantAuditor

        return InvariantAuditor()

    reports: Dict[str, FaultImpactReport] = {}
    for scheme in schemes:
        healthy = run_once(
            topology,
            params,
            get_scheduler(scheme),
            benchmark_set,
            load,
            auditor=auditor(),
            telemetry=config.telemetry_dir,
            profile=config.profile,
            run_name=f"{scheme}-healthy",
        )
        faulted = run_once(
            topology,
            params,
            get_scheduler(scheme),
            benchmark_set,
            load,
            auditor=auditor(),
            fault_schedule=schedule,
            telemetry=config.telemetry_dir,
            profile=config.profile,
            run_name=f"{scheme}-faulted",
        )
        reports[scheme] = fault_impact_report(
            scheme, healthy, faulted, downwind_mask=mask
        )
    return FaultScenarioResult(
        reports=reports,
        schemes=tuple(schemes),
        load=load,
        faulted_row=faulted_row,
        fan_scale=fan_scale,
        schedule_fingerprint=schedule.fingerprint(),
    )


def main() -> None:
    """Print the fault-scenario table."""
    result = run()
    print(
        f"Fan lane of row {result.faulted_row} degraded to "
        f"{result.fan_scale:.0%} airflow at {result.load:.0%} load"
    )
    headers = [
        "Scheme",
        "Healthy",
        "Faulted",
        "Regret",
        "Downwind dF",
    ]
    print(format_table(headers, result.rows()))
    print(f"Most resilient: {result.most_resilient}")
    print(f"Fault schedule: {result.schedule_fingerprint[:16]}")


if __name__ == "__main__":
    main()

"""One-shot reproduction report.

``python -m repro report`` regenerates every artifact (optionally only
the fast analytical ones) and writes a single markdown report with the
printed tables — the quickest way to audit the reproduction end to end.
"""

from __future__ import annotations

import io
import time
from contextlib import redirect_stdout
from typing import List, Optional

from .._version import __version__
from .registry import Experiment, all_experiments


def build_report(
    include_heavy: bool = False,
    experiments: Optional[List[Experiment]] = None,
) -> str:
    """Render the markdown reproduction report.

    Args:
        include_heavy: Also run the simulation-backed artifacts
            (minutes instead of seconds).
        experiments: Explicit experiment list (overrides
            ``include_heavy``).

    Returns:
        The report as a markdown string.
    """
    chosen = (
        experiments
        if experiments is not None
        else all_experiments(include_heavy=include_heavy)
    )
    sections = [
        "# Reproduction report",
        "",
        f"Library version {__version__}.  Each section below is the "
        "regenerated artifact exactly as the experiment module prints "
        "it; see EXPERIMENTS.md for paper-vs-measured commentary.",
        "",
    ]
    for experiment in chosen:
        buffer = io.StringIO()
        started = time.perf_counter()
        with redirect_stdout(buffer):
            experiment.main()
        elapsed = time.perf_counter() - started
        sections.append(f"## {experiment.name} — {experiment.title}")
        sections.append("")
        sections.append("```text")
        sections.append(buffer.getvalue().rstrip())
        sections.append("```")
        sections.append(f"*regenerated in {elapsed:.1f}s*")
        sections.append("")
    return "\n".join(sections)


def write_report(
    path: str,
    include_heavy: bool = False,
) -> str:
    """Build the report and write it to ``path``; returns the path."""
    report = build_report(include_heavy=include_heavy)
    with open(path, "w") as handle:
        handle.write(report)
    return path

"""Figure 11: existing thermal-aware schemes at 30% and 70% load.

Expected shape (Computation workload, runtime expansion relative to CF,
lower is better): at 30% load HF and MinHR are clearly worse than CF
while Predictive is the only scheme meaningfully better; at 70% load the
ordering flips — HF and MinHR become the best existing schemes and
Predictive loses its advantage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..metrics.performance import relative_runtime_expansion
from ..workloads.benchmark import BenchmarkSet
from .common import ExperimentConfig, format_table

#: The existing schemes Figure 11 compares (CF is the baseline).
EXISTING_SCHEMES: Tuple[str, ...] = (
    "CF",
    "HF",
    "Random",
    "MinHR",
    "CN",
    "Balanced",
    "Balanced-L",
    "A-Random",
    "Predictive",
)

DEFAULT_LOADS: Tuple[float, ...] = (0.3, 0.7)


@dataclass(frozen=True)
class Figure11Result:
    """Runtime expansion relative to CF per (scheme, load).

    Attributes:
        expansion_vs_cf: ``{(scheme, load): ratio}`` — 1.0 is CF parity,
            above 1.0 is worse than CF.
        loads: Load levels evaluated.
        schemes: Scheme names evaluated.
    """

    expansion_vs_cf: Dict[Tuple[str, float], float]
    loads: Tuple[float, ...]
    schemes: Tuple[str, ...]

    def rows(self) -> List[List[object]]:
        """Formatted rows: scheme, then one column per load."""
        rows = []
        for scheme in self.schemes:
            rows.append(
                [scheme]
                + [
                    round(self.expansion_vs_cf[(scheme, load)], 3)
                    for load in self.loads
                ]
            )
        return rows

    def best_at(self, load: float) -> str:
        """Scheme with the lowest expansion at a load."""
        return min(
            self.schemes, key=lambda s: self.expansion_vs_cf[(s, load)]
        )


def run(
    config: ExperimentConfig = None,
    loads: Sequence[float] = DEFAULT_LOADS,
    schemes: Sequence[str] = EXISTING_SCHEMES,
) -> Figure11Result:
    """Simulate every existing scheme at the requested loads.

    The (scheme x load) grid executes through the parallel sweep
    executor — ``config.max_workers`` processes, optional invariant
    auditing, memoised results — and CF is normalised per load.
    """
    config = config or ExperimentConfig()
    names = tuple(dict.fromkeys(("CF",) + tuple(schemes)))
    results = config.sweep(
        names, benchmark_sets=(BenchmarkSet.COMPUTATION,), loads=loads
    )
    expansion: Dict[Tuple[str, float], float] = {}
    for load in loads:
        baseline = results[("CF", BenchmarkSet.COMPUTATION, load)]
        for scheme in schemes:
            if scheme == "CF":
                expansion[(scheme, load)] = 1.0
                continue
            expansion[(scheme, load)] = relative_runtime_expansion(
                results[(scheme, BenchmarkSet.COMPUTATION, load)],
                baseline,
            )
    return Figure11Result(
        expansion_vs_cf=expansion,
        loads=tuple(loads),
        schemes=tuple(schemes),
    )


def main() -> None:
    """Print Figure 11."""
    result = run()
    print(
        "Figure 11: runtime expansion vs CF, Computation "
        "(lower is better)"
    )
    headers = ["Scheme"] + [f"{load:.0%} load" for load in result.loads]
    print(format_table(headers, result.rows()))
    for load in result.loads:
        print(f"Best at {load:.0%}: {result.best_at(load)}")


if __name__ == "__main__":
    main()

"""Figure 5: mean socket entry temperature and its CoV vs coupling degree.

Expected shape: both the mean entry temperature and the coefficient of
variation rise monotonically with the degree of coupling; higher socket
power and lower airflow shift the curves up.  The paper's example: a
15 W part at 6 CFM shows roughly a 10 degC mean entry temperature
difference between degree 5 and degree 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..thermal.analytical import DEFAULT_INLET_C, EntryTemperatureModel
from .common import format_table

#: Degrees of coupling spanned by Table I systems.
DEFAULT_DEGREES: Tuple[int, ...] = (1, 2, 3, 5, 7, 9, 11)

#: Socket power levels, W (Table I spans 5 W to 140 W).
DEFAULT_POWERS: Tuple[float, ...] = (5.0, 15.0, 45.0, 140.0)

#: Per-socket airflow levels, CFM.
DEFAULT_AIRFLOWS: Tuple[float, ...] = (6.0, 12.0, 24.0)


@dataclass(frozen=True)
class Figure5Result:
    """Analytical design-space sweep.

    Attributes:
        points: One dict per (degree, power, airflow) design point with
            ``mean_entry_c``, ``cov`` and ``max_entry_c``.
        inlet_c: Inlet temperature used.
    """

    points: Tuple[dict, ...]
    inlet_c: float

    def series(
        self, power_w: float, airflow_cfm: float
    ) -> List[Tuple[int, float, float]]:
        """(degree, mean entry, cov) curve for one power/airflow pair."""
        return [
            (p["degree"], p["mean_entry_c"], p["cov"])
            for p in self.points
            if p["power_w"] == power_w and p["airflow_cfm"] == airflow_cfm
        ]

    def mean_entry_delta(
        self, power_w: float, airflow_cfm: float, low: int, high: int
    ) -> float:
        """Mean entry temperature difference between two degrees."""
        curve = {d: m for d, m, _ in self.series(power_w, airflow_cfm)}
        return curve[high] - curve[low]


def run(
    degrees: Sequence[int] = DEFAULT_DEGREES,
    powers_w: Sequence[float] = DEFAULT_POWERS,
    airflows_cfm: Sequence[float] = DEFAULT_AIRFLOWS,
    inlet_c: float = DEFAULT_INLET_C,
) -> Figure5Result:
    """Sweep the analytical entry-temperature model."""
    model = EntryTemperatureModel(inlet_c=inlet_c)
    points = model.sweep(degrees, powers_w, airflows_cfm)
    return Figure5Result(points=tuple(points), inlet_c=inlet_c)


def main() -> None:
    """Print the 15 W / 6 CFM Figure 5 curve and the paper's example."""
    result = run()
    rows = [
        [d, round(m, 1), round(c, 3)]
        for d, m, c in result.series(15.0, 6.0)
    ]
    print("Figure 5 (15 W sockets, 6 CFM): entry temperature vs degree")
    print(format_table(["Degree", "Mean entry (C)", "CoV"], rows))
    delta = result.mean_entry_delta(15.0, 6.0, 1, 5)
    print(
        f"Mean entry temperature difference, degree 5 vs 1: "
        f"{delta:.1f} C (paper: ~10 C)"
    )


if __name__ == "__main__":
    main()

"""Figure 3: CF vs HF on coupled and uncoupled 2-socket systems.

Expected shape at ~50% utilisation with the Computation workload: on an
*uncoupled* system (two independent lanes) CF outperforms HF — rotating
to the coolest socket preserves boost headroom.  On a *coupled* system
(two sockets in one air stream) HF outperforms CF, because it keeps
work off the upstream socket, leaving the downstream socket's intake
cool.  The paper reports ~8% and ~5% respectively.

The cartridge is modelled mid-chassis breathing slightly preheated air
(26 degC rather than the 18 degC server inlet) — the regime in which the
paper's CFD cartridge of Figure 2 operates; at a cold inlet a 22 W part
never builds enough sink heat for scheduling order to matter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..config.presets import scaled
from ..server.topology import two_socket_system
from ..sim.runner import run_once
from ..core import get_scheduler
from ..workloads.benchmark import BenchmarkSet
from .common import format_table

DEFAULT_LOAD = 0.5

#: Entry air temperature of the mid-chassis cartridge, degC.
DEFAULT_CARTRIDGE_INLET_C = 26.0


@dataclass(frozen=True)
class Figure3Result:
    """Relative performance of CF and HF per organisation.

    Attributes:
        performance: ``performance[(organisation, scheme)]`` — inverse
            mean runtime expansion, normalised per organisation to CF.
        load: Offered load used.
    """

    performance: Dict[str, float]
    load: float

    @property
    def cf_advantage_uncoupled(self) -> float:
        """CF performance relative to HF on the uncoupled system."""
        return (
            self.performance["uncoupled/CF"]
            / self.performance["uncoupled/HF"]
        )

    @property
    def hf_advantage_coupled(self) -> float:
        """HF performance relative to CF on the coupled system."""
        return (
            self.performance["coupled/HF"] / self.performance["coupled/CF"]
        )


def run(
    load: float = DEFAULT_LOAD,
    sim_time_s: float = 30.0,
    warmup_s: float = 10.0,
    seed: int = 0,
    inlet_c: float = DEFAULT_CARTRIDGE_INLET_C,
) -> Figure3Result:
    """Simulate CF and HF on both 2-socket organisations."""
    params = scaled(
        sim_time_s=sim_time_s, warmup_s=warmup_s, seed=seed
    ).with_overrides(warm_start=False, inlet_c=inlet_c)
    performance: Dict[str, float] = {}
    for coupled, label in ((False, "uncoupled"), (True, "coupled")):
        topology = two_socket_system(coupled)
        for scheme in ("CF", "HF"):
            result = run_once(
                topology,
                params,
                get_scheduler(scheme),
                BenchmarkSet.COMPUTATION,
                load,
            )
            performance[f"{label}/{scheme}"] = result.performance
    return Figure3Result(performance=performance, load=load)


def main() -> None:
    """Print Figure 3."""
    result = run()
    rows = [
        [key, round(value, 4)] for key, value in result.performance.items()
    ]
    print(f"Figure 3: CF vs HF at {result.load:.0%} utilisation")
    print(format_table(["Config/Scheme", "Performance"], rows))
    print(
        f"Uncoupled: CF/HF = {result.cf_advantage_uncoupled:.3f} "
        "(paper: ~1.08)"
    )
    print(
        f"Coupled:   HF/CF = {result.hf_advantage_coupled:.3f} "
        "(paper: ~1.05)"
    )


if __name__ == "__main__":
    main()

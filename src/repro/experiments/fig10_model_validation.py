"""Figure 10: validation of the simplified Equation 1 model.

Expected shape: across the 19 applications and both heat sinks, the
simplified peak-temperature model agrees with the detailed reference
model to within ~2 degC, irrespective of heat sink.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..thermal.chip_model import peak_temperature
from ..thermal.detailed_model import DetailedChipModel
from ..thermal.heatsink import FIN_18, FIN_30
from ..workloads.pcmark import PCMARK_APPS
from .common import format_table
from .fig09_heatsinks import DEFAULT_AMBIENT_C, app_operating_power_w


@dataclass(frozen=True)
class ValidationPoint:
    """Model disagreement for one (app, sink) pair.

    Attributes:
        app_name: Application name.
        sink_name: Heat sink name.
        power_w: Operating power, W.
        detailed_c: Detailed-model peak temperature, degC.
        simplified_c: Equation 1 peak temperature, degC.
    """

    app_name: str
    sink_name: str
    power_w: float
    detailed_c: float
    simplified_c: float

    @property
    def error_c(self) -> float:
        """Simplified minus detailed peak temperature, degC."""
        return self.simplified_c - self.detailed_c


@dataclass(frozen=True)
class Figure10Result:
    """All validation points.

    Attributes:
        points: One entry per (app, sink).
    """

    points: Tuple[ValidationPoint, ...]

    @property
    def max_abs_error_c(self) -> float:
        """Worst-case disagreement magnitude, degC."""
        return max(abs(p.error_c) for p in self.points)

    def rows(self) -> List[List[object]]:
        """Formatted rows for printing."""
        return [
            [
                p.app_name,
                p.sink_name,
                round(p.power_w, 1),
                round(p.detailed_c, 1),
                round(p.simplified_c, 1),
                round(p.error_c, 2),
            ]
            for p in self.points
        ]


def run(ambient_c: float = DEFAULT_AMBIENT_C) -> Figure10Result:
    """Compare Equation 1 against the detailed model for all apps."""
    points: List[ValidationPoint] = []
    for sink in (FIN_18, FIN_30):
        model = DetailedChipModel(sink)
        for app in PCMARK_APPS:
            power = app_operating_power_w(app)
            detailed = model.solve(ambient_c, app.block_power_map(power))
            simplified = peak_temperature(ambient_c, power, sink)
            points.append(
                ValidationPoint(
                    app_name=app.name,
                    sink_name=sink.name,
                    power_w=power,
                    detailed_c=detailed.max_temperature_c,
                    simplified_c=simplified,
                )
            )
    return Figure10Result(points=tuple(points))


def main() -> None:
    """Print Figure 10."""
    result = run()
    print("Figure 10: simplified-vs-detailed model validation")
    print(
        format_table(
            ["App", "Sink", "Power (W)", "Detailed", "Eq. 1", "Error"],
            result.rows(),
        )
    )
    print(
        f"Max |error|: {result.max_abs_error_c:.2f} C (paper: within 2 C)"
    )


if __name__ == "__main__":
    main()

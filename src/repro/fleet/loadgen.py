"""Seeded fleet workloads and the virtual-time drive loop.

Shared by the throughput benchmark
(``benchmarks/bench_fleet_throughput.py``) and the batching test suite
(``tests/test_fleet_batching.py``): :func:`generate_workload` samples
a reproducible mixed interactive/batch query stream,
:func:`drive_fleet` pushes it through a
:class:`~repro.fleet.coordinator.FleetCoordinator` over virtual-time
:class:`~repro.fleet.chaos.SimWorkerHandle` workers (the chaos
harness's drive loop, minus the chaos), and :func:`latency_stats`
digests the resulting event stream into queries/sec and
admission-to-answer latency percentiles.

Everything here is deterministic under its seed: the same seed,
registry and configuration produce the same workload, the same event
stream and the same answers — which is what lets the benchmark's
differential oracle pin batched-vs-serial payloads bit-identical.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import FleetError
from .chaos import SimWorkerHandle
from .compute import ChassisCompute
from .coordinator import FleetConfig, FleetCoordinator
from .messages import PlacementQuery, RequestClass, WhatIfQuery
from .registry import FleetRegistry
from .supervision import SupervisionPolicy


def generate_workload(
    registry: FleetRegistry,
    seed: int,
    n_requests: int,
    horizon_s: float,
    n_states: int = 3,
    what_if_fraction: float = 0.25,
) -> List[Tuple[float, object]]:
    """A seeded ``(submit_t, query)`` stream over the registry's fleet.

    Placement queries draw their utilization vector from a small pool
    of ``n_states`` per-chassis load profiles (plus the implicit
    ``None`` base state), so concurrent queries genuinely share
    chassis states — the regime micro-batching and the warm-field
    cache are built for.  What-if queries carry 1–3 scenarios and
    default to the BATCH shedding class, mirroring the chaos
    workload's mix.
    """
    if n_requests < 1:
        raise FleetError("workload needs at least one request")
    if not 0.0 <= what_if_fraction <= 1.0:
        raise FleetError("what_if_fraction must lie in [0, 1]")
    rng = np.random.default_rng(seed)
    chassis_ids = sorted(registry.chassis)
    pools: Dict[str, List[Optional[Tuple[float, ...]]]] = {}
    for chassis_id in chassis_ids:
        spec = registry.chassis[chassis_id]
        n = spec.build_topology().n_sockets
        pool: List[Optional[Tuple[float, ...]]] = [None]
        for _ in range(max(0, n_states - 1)):
            pool.append(
                tuple(
                    float(u)
                    for u in rng.uniform(0.2, 0.9, n).round(3)
                )
            )
        pools[chassis_id] = pool
    times = np.sort(rng.uniform(0.0, horizon_s, n_requests))
    workload: List[Tuple[float, object]] = []
    for t in times:
        chassis = chassis_ids[int(rng.integers(len(chassis_ids)))]
        if rng.random() < what_if_fraction:
            n_scenarios = int(rng.integers(1, 4))
            query: object = WhatIfQuery(
                chassis=chassis,
                scenarios=tuple(
                    (
                        float(rng.uniform(0.2, 0.9)),
                        float(rng.uniform(6.0, 18.0)),
                    )
                    for _ in range(n_scenarios)
                ),
                request_class=RequestClass.BATCH,
            )
        else:
            pool = pools[chassis]
            query = PlacementQuery(
                chassis=chassis,
                job_power_w=float(rng.uniform(5.0, 20.0)),
                utilization=pool[int(rng.integers(len(pool)))],
                request_class=(
                    RequestClass.INTERACTIVE
                    if rng.random() < 0.7
                    else RequestClass.BATCH
                ),
            )
        workload.append((float(t), query))
    return workload


def drive_fleet(
    registry: FleetRegistry,
    workload: Sequence[Tuple[float, object]],
    config: FleetConfig,
    tick_s: float = 0.02,
    heartbeat_interval_s: float = 0.5,
    warm_capacity: int = 0,
    backend: Optional[str] = None,
    session=None,
    drain_s: float = 60.0,
) -> FleetCoordinator:
    """Run one workload to completion over simulated workers.

    The drive loop is the chaos harness's, minus the chaos: virtual
    time advances in ``tick_s`` steps, due requests are submitted,
    and after the last submission the loop keeps ticking until every
    request is terminal (bounded by ``drain_s``).  ``warm_capacity``
    is handed to every chassis'
    :class:`~repro.fleet.compute.ChassisCompute` — 0 is the cold
    per-message baseline, a positive bound enables the warm-field
    cache.

    Returns the finished coordinator (answers, events, state).
    """
    if tick_s <= 0:
        raise FleetError("tick_s must be positive")
    computes = {
        chassis_id: ChassisCompute(
            spec, backend=backend, warm_capacity=warm_capacity
        )
        for chassis_id, spec in registry.chassis.items()
    }
    handles = {
        w.worker_id: SimWorkerHandle(
            worker_id=w.worker_id,
            compute=computes[w.chassis_id],
            heartbeat_interval_s=heartbeat_interval_s,
        )
        for w in registry.workers
    }
    policy = SupervisionPolicy(
        heartbeat_interval_s=heartbeat_interval_s,
        missed_heartbeats=3,
    )
    coordinator = FleetCoordinator(
        registry=registry,
        handles=handles,
        policy=policy,
        config=config,
        session=session,
    )
    pending = sorted(workload, key=lambda pair: pair[0])
    last_t = pending[-1][0] if pending else 0.0
    deadline = last_t + drain_s
    coordinator.start(0.0)
    next_request = 0
    k = 0
    now = 0.0
    while True:
        k += 1
        now = k * tick_s
        while (
            next_request < len(pending)
            and pending[next_request][0] <= now
        ):
            coordinator.submit(pending[next_request][1], now)
            next_request += 1
        coordinator.tick(now)
        if next_request >= len(pending) and coordinator.pending == 0:
            break
        if now > deadline:
            break
    coordinator.finish(now + tick_s)
    return coordinator


def latency_stats(events: Sequence[dict]) -> dict:
    """Queries/sec and admission-to-answer latency from fleet events.

    Latency is virtual coordinator-clock seconds from each request's
    ``fleet_submit`` to its terminal ``fleet_answer``; sheds are
    excluded (they never ran).  ``virtual_qps`` is terminal answers
    per virtual second of the submit-to-last-answer span.
    """
    submits: Dict[int, float] = {}
    latencies: List[float] = []
    statuses: Dict[str, int] = {}
    last_answer_t = 0.0
    for event in events:
        type_ = event.get("type")
        if type_ == "fleet_submit":
            submits[int(event["request_id"])] = float(event["t"])
        elif type_ == "fleet_answer":
            rid = int(event["request_id"])
            status = str(event["status"])
            statuses[status] = statuses.get(status, 0) + 1
            if rid in submits:
                latencies.append(float(event["t"]) - submits[rid])
                last_answer_t = max(last_answer_t, float(event["t"]))
    if not latencies:
        return {
            "n_answered": 0,
            "statuses": statuses,
            "virtual_qps": 0.0,
            "p50_s": math.nan,
            "p99_s": math.nan,
        }
    arr = np.asarray(latencies)
    first_submit = min(submits.values())
    span = max(last_answer_t - first_submit, 1e-9)
    return {
        "n_answered": len(latencies),
        "statuses": statuses,
        "virtual_qps": float(len(latencies) / span),
        "p50_s": float(np.percentile(arr, 50)),
        "p99_s": float(np.percentile(arr, 99)),
    }

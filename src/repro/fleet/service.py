"""The asyncio fleet service: real clock, real workers, TCP front.

:class:`FleetService` owns a
:class:`~repro.fleet.coordinator.FleetCoordinator` over real
:class:`~repro.fleet.worker.ProcessWorkerHandle` workers and drives it
with wall-clock ticks on the event loop.  All determinism-sensitive
logic lives in the coordinator; this module only supplies time, process
transport and an optional JSON-lines TCP front end (``repro fleet
serve`` / ``repro fleet query``).

Wire protocol (one JSON object per line, newline-terminated)::

    -> {"kind": "placement", "chassis": "c0", "job_power_w": 12.0}
    <- {"request_id": 0, "status": "ok", "payload": {...}, ...}

    -> {"kind": "what_if", "chassis": "c1",
        "scenarios": [[0.5, 10.0], [0.9, 14.0]]}
    <- {"request_id": 1, "status": "ok", "payload": {...}, ...}

Backpressure is visible on the wire: a shed request answers with
``"status": "shed"`` (the 503 of this protocol) instead of hanging.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Dict, Optional

from ..errors import FleetError
from .coordinator import FleetConfig, FleetCoordinator
from .messages import (
    FleetAnswer,
    PlacementQuery,
    RequestClass,
    WhatIfQuery,
)
from .registry import FleetRegistry
from .supervision import SupervisionPolicy
from .worker import ProcessWorkerHandle


def _request_class(obj: dict, default: RequestClass) -> RequestClass:
    """Parse ``request_class`` strictly — unknown strings are rejected.

    Rejection is explicit and typed (not a silent fallback to a
    default class, which would let a typo like ``"bulk"`` quietly jump
    the shedding queue or get shed first).
    """
    raw = obj.get("request_class", default.value)
    try:
        return RequestClass(str(raw))
    except ValueError as exc:
        valid = "/".join(repr(c.value) for c in RequestClass)
        raise FleetError(
            f"unknown request_class {raw!r} (want {valid})"
        ) from exc


def query_from_json(obj: dict):
    """Build a fleet query from its wire representation.

    Raises:
        FleetError: for an unknown kind, an unknown request class or a
            malformed payload.
    """
    if not isinstance(obj, dict):
        raise FleetError("query must be a JSON object")
    kind = obj.get("kind")
    if kind == "placement":
        cls = _request_class(obj, RequestClass.INTERACTIVE)
    elif kind == "what_if":
        cls = _request_class(obj, RequestClass.BATCH)
    try:
        if kind == "placement":
            utilization = obj.get("utilization")
            return PlacementQuery(
                chassis=str(obj["chassis"]),
                job_power_w=float(obj["job_power_w"]),
                utilization=(
                    tuple(float(u) for u in utilization)
                    if utilization is not None
                    else None
                ),
                request_class=cls,
            )
        if kind == "what_if":
            return WhatIfQuery(
                chassis=str(obj["chassis"]),
                scenarios=tuple(
                    (float(u), float(p))
                    for u, p in obj["scenarios"]
                ),
                window_steps=int(obj.get("window_steps", 0)),
                request_class=cls,
            )
    except (KeyError, TypeError, ValueError) as exc:
        raise FleetError(f"malformed {kind!r} query: {exc}") from exc
    raise FleetError(
        f"unknown query kind {kind!r} (want 'placement' or 'what_if')"
    )


class FleetService:
    """Drive a fleet of process workers on the asyncio event loop.

    Attributes:
        registry: The fleet layout to serve.
        coordinator: The deterministic core (constructed on start).
    """

    def __init__(
        self,
        registry: FleetRegistry,
        policy: Optional[SupervisionPolicy] = None,
        config: Optional[FleetConfig] = None,
        checkpoint_dir: Optional[str] = None,
        session=None,
        tick_interval_s: float = 0.05,
        backend: Optional[str] = None,
    ) -> None:
        if tick_interval_s <= 0:
            raise FleetError("tick interval must be positive")
        self.registry = registry
        self.policy = policy or SupervisionPolicy()
        # Long-running service: heartbeat events would dominate the
        # log, so they default off here (chaos runs keep them on).
        self.config = config or FleetConfig(log_heartbeats=False)
        self.checkpoint_dir = checkpoint_dir
        self.backend = backend
        self.session = session
        self.tick_interval_s = tick_interval_s
        self.coordinator: Optional[FleetCoordinator] = None
        self._epoch: Optional[float] = None
        self._tick_task: Optional[asyncio.Task] = None
        self._waiters: Dict[int, asyncio.Future] = {}

    def _now(self) -> float:
        if self._epoch is None:
            raise FleetError("service not started")
        return time.monotonic() - self._epoch

    async def start(self) -> None:
        """Start workers and the background tick loop."""
        if self.coordinator is not None:
            raise FleetError("service already started")
        self._epoch = time.monotonic()
        handles = {
            w.worker_id: ProcessWorkerHandle(
                spec=self.registry.spec_for_worker(w.worker_id),
                worker_id=w.worker_id,
                heartbeat_interval_s=self.policy.heartbeat_interval_s,
                checkpoint_dir=self.checkpoint_dir,
                backend=self.backend,
            )
            for w in self.registry.workers
        }
        self.coordinator = FleetCoordinator(
            registry=self.registry,
            handles=handles,
            policy=self.policy,
            config=self.config,
            session=self.session,
        )
        self.coordinator.start(self._now())
        self._tick_task = asyncio.ensure_future(self._tick_loop())

    async def _tick_loop(self) -> None:
        while True:
            await asyncio.sleep(self.tick_interval_s)
            self.coordinator.tick(self._now())

    async def submit(self, query) -> FleetAnswer:
        """Admit one query and await its terminal answer."""
        if self.coordinator is None:
            raise FleetError("service not started")
        loop = asyncio.get_event_loop()
        future: asyncio.Future = loop.create_future()

        def resolve(answer: FleetAnswer) -> None:
            if not future.done():
                future.set_result(answer)

        self.coordinator.submit(query, self._now(), callback=resolve)
        return await future

    async def stop(self) -> None:
        """Resolve stragglers, stop workers, close the log."""
        if self._tick_task is not None:
            self._tick_task.cancel()
            try:
                await self._tick_task
            except asyncio.CancelledError:
                pass
            self._tick_task = None
        if self.coordinator is not None:
            self.coordinator.finish(self._now())
        if self.session is not None:
            self.session.close()

    async def handle_connection(self, reader, writer) -> None:
        """Serve one JSON-lines client connection."""
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    query = query_from_json(json.loads(line))
                except (json.JSONDecodeError, FleetError) as exc:
                    writer.write(
                        json.dumps(
                            {"status": "error", "reason": str(exc)}
                        ).encode()
                        + b"\n"
                    )
                    await writer.drain()
                    continue
                answer = await self.submit(query)
                writer.write(
                    json.dumps(answer.to_dict(), sort_keys=True).encode()
                    + b"\n"
                )
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()

    async def serve(self, host: str = "127.0.0.1", port: int = 7781):
        """Open the TCP front; returns the asyncio server."""
        if self.coordinator is None:
            await self.start()
        return await asyncio.start_server(
            self.handle_connection, host=host, port=port
        )


async def query_fleet(
    obj: dict, host: str = "127.0.0.1", port: int = 7781
) -> dict:
    """Send one wire-format query to a running service."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(json.dumps(obj).encode() + b"\n")
        await writer.drain()
        line = await reader.readline()
        if not line:
            raise FleetError("fleet service closed the connection")
        return json.loads(line)
    finally:
        writer.close()

"""Liveness and safety invariants over fleet supervision logs.

:func:`check_fleet_events` audits a sequence of ``fleet_*`` events —
straight off a :class:`~repro.fleet.coordinator.FleetCoordinator` or
re-read from a ``fleet.jsonl`` log — and returns human-readable
problem strings (empty list = clean).  The chaos tests and the CI
``fleet-chaos-smoke`` job both assert on it, and
:mod:`repro.obs.check` runs it over any telemetry log that contains
fleet events, so a regression in the coordinator's guarantees fails
the same gate as a schema violation.

Invariants checked:

- **Exactly one terminal per request** (liveness *and* safety): every
  ``fleet_submit`` is matched by precisely one ``fleet_answer`` or
  ``fleet_shed``; no terminal references an unknown request.
- **Bounded queue**: no ``fleet_submit.queue_len`` ever exceeds the
  ``max_queue`` declared in ``fleet_start``.
- **Bounded staleness**: every ``fleet_degraded.staleness_s`` is
  non-negative and (when ``fleet_start`` declares the bound) within
  ``max_staleness_s``.
- **Legal supervision transitions**: every ``fleet_worker_state``
  event is a
  :data:`~repro.fleet.supervision.LEGAL_TRANSITIONS` member, applied
  to the state the worker was actually in.
- **Monotonic heartbeats**: per worker, heartbeat sequence numbers
  strictly increase within an incarnation and only reset after a
  ``fleet_restart``.
- **Sane batches**: every ``fleet_batch`` has a positive member count
  within the coordinator's batching bound (when declared), a
  non-negative window wait, non-negative warm-cache counters, and a
  queue depth within ``max_queue`` — and batching never weakens the
  one-terminal-per-request guarantee above (members answer
  individually).
- **Ordering**: events appear in non-decreasing time order and nothing
  follows ``fleet_end``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional

from .supervision import LEGAL_TRANSITIONS, WorkerState

#: Event types this module knows how to audit.
FLEET_EVENT_PREFIX = "fleet_"

#: Terminal event types — each request must see exactly one of these.
TERMINAL_TYPES = ("fleet_answer", "fleet_shed")


def check_fleet_events(events: Iterable[Mapping]) -> List[str]:
    """Audit fleet events; returns problem descriptions (empty = ok).

    Non-fleet events in the stream are ignored, so the checker can run
    directly over a mixed telemetry log.
    """
    problems: List[str] = []
    max_queue: Optional[int] = None
    max_staleness: Optional[float] = None
    terminals: Dict[int, List[str]] = {}
    submitted: Dict[int, int] = {}  # request id -> submit line no.
    worker_state: Dict[str, WorkerState] = {}
    last_seq: Dict[str, int] = {}
    last_t: Optional[float] = None
    ended_at: Optional[int] = None

    for lineno, event in enumerate(events, start=1):
        type_ = str(event.get("type", ""))
        if not type_.startswith(FLEET_EVENT_PREFIX):
            continue
        if ended_at is not None:
            problems.append(
                f"event {lineno}: {type_} after fleet_end "
                f"(event {ended_at})"
            )
        t = event.get("t")
        if t is not None:
            if last_t is not None and float(t) < last_t:
                problems.append(
                    f"event {lineno}: time went backwards "
                    f"({t} < {last_t})"
                )
            last_t = float(t)

        if type_ == "fleet_start":
            max_queue = int(event["max_queue"])
            if "max_staleness_s" in event:
                max_staleness = float(event["max_staleness_s"])
        elif type_ == "fleet_end":
            ended_at = lineno
        elif type_ == "fleet_submit":
            rid = int(event["request_id"])
            if rid in submitted:
                problems.append(
                    f"event {lineno}: request {rid} submitted twice"
                )
            submitted[rid] = lineno
            queue_len = int(event["queue_len"])
            if max_queue is not None and queue_len > max_queue:
                problems.append(
                    f"event {lineno}: queue_len {queue_len} exceeds "
                    f"max_queue {max_queue}"
                )
        elif type_ in TERMINAL_TYPES:
            rid = int(event["request_id"])
            terminals.setdefault(rid, []).append(type_)
        elif type_ == "fleet_degraded":
            staleness = float(event["staleness_s"])
            if staleness < 0:
                problems.append(
                    f"event {lineno}: negative staleness {staleness}"
                )
            if max_staleness is not None and staleness > max_staleness:
                problems.append(
                    f"event {lineno}: staleness {staleness:.3f}s "
                    f"exceeds bound {max_staleness:.3f}s"
                )
        elif type_ == "fleet_batch":
            size = int(event["size"])
            if size < 1:
                problems.append(
                    f"event {lineno}: batch of size {size}"
                )
            window_wait = float(event["window_wait_s"])
            if window_wait < 0:
                problems.append(
                    f"event {lineno}: negative batch window wait "
                    f"{window_wait}"
                )
            if (
                int(event["warm_hits"]) < 0
                or int(event["warm_misses"]) < 0
            ):
                problems.append(
                    f"event {lineno}: negative warm-cache counters"
                )
            queue_len = int(event["queue_len"])
            if queue_len < 0 or (
                max_queue is not None and queue_len > max_queue
            ):
                problems.append(
                    f"event {lineno}: batch queue_len {queue_len} "
                    f"outside [0, {max_queue}]"
                )
        elif type_ == "fleet_heartbeat":
            worker = str(event["worker"])
            seq = int(event["seq"])
            if worker in last_seq and seq <= last_seq[worker]:
                problems.append(
                    f"event {lineno}: worker {worker} heartbeat seq "
                    f"{seq} does not increase past {last_seq[worker]}"
                )
            last_seq[worker] = seq
        elif type_ == "fleet_restart":
            worker = str(event["worker"])
            last_seq.pop(worker, None)  # new incarnation restarts at 0
        elif type_ == "fleet_worker_state":
            worker = str(event["worker"])
            try:
                old = WorkerState(str(event["old"]))
                new = WorkerState(str(event["new"]))
            except ValueError:
                problems.append(
                    f"event {lineno}: unknown worker state in "
                    f"{event['old']!r} -> {event['new']!r}"
                )
                continue
            current = worker_state.get(worker, WorkerState.STARTING)
            if old is not current:
                problems.append(
                    f"event {lineno}: worker {worker} transition "
                    f"claims old state {old.value!r} but the worker "
                    f"was {current.value!r}"
                )
            if (old, new) not in LEGAL_TRANSITIONS:
                problems.append(
                    f"event {lineno}: illegal transition "
                    f"{old.value} -> {new.value} for worker {worker}"
                )
            worker_state[worker] = new

    for rid, kinds in sorted(terminals.items()):
        if rid not in submitted:
            problems.append(
                f"request {rid}: terminal {kinds[0]} without a "
                f"fleet_submit"
            )
        if len(kinds) > 1:
            problems.append(
                f"request {rid}: {len(kinds)} terminal events "
                f"({', '.join(kinds)}); exactly one is allowed"
            )
    for rid, lineno in sorted(submitted.items()):
        if rid not in terminals:
            problems.append(
                f"request {rid} (submitted at event {lineno}) never "
                f"reached a terminal answer"
            )
    return problems


def check_fleet_log(path) -> List[str]:
    """Run :func:`check_fleet_events` over a JSONL telemetry log."""
    path = Path(path)
    events = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return check_fleet_events(events)


def has_fleet_events(events: Iterable[Mapping]) -> bool:
    """Whether any event in the stream is a fleet event."""
    return any(
        str(event.get("type", "")).startswith(FLEET_EVENT_PREFIX)
        for event in events
    )

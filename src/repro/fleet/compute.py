"""Per-chassis query evaluation — the worker's compute core.

One :class:`ChassisCompute` lives inside each worker process (and
inside the simulated workers of the chaos harness) and answers the two
query kinds deterministically from chassis state:

- **Placement** queries score *every* candidate socket in one
  vectorised pass: the steady-state field is solved once, then the
  linear coupling response ``M[:, i] * p`` of adding the job's power
  ``p`` on candidate ``i`` is applied for all candidates at once — the
  same batched full-candidate scoring shape as
  :class:`repro.core.kernels.PlacementKernel`, over the equilibrium
  field instead of the engine view.
- **What-if** queries go through the batched fleet-tensor sweep
  (:func:`repro.sim.batched.evaluate_fleet`): every scenario is one
  :class:`~repro.sim.batched.FleetPoint` and the whole batch is
  answered with stacked kernel calls, memoised in a
  :class:`~repro.sim.parallel.SweepCache`.

:meth:`ChassisCompute.answer_batch` is the cross-*query* analogue,
feeding the coordinator's micro-batching dispatch path: the
steady-state field is solved once per **distinct chassis state** in
the batch (state fingerprint = utilization vector over this chassis'
topology/parameters), all placement candidates of all queries sharing
a state are scored in one stacked pass, and the what-if scenarios of
every member stack into a single :func:`~repro.sim.batched.
evaluate_fleet` fleet-tensor call (so under ``--backend jax`` the
jit+vmap axis runs across *users*, not just sweep points).  On numpy
the batched answers are bit-identical to the per-query path — every
stacked operation is elementwise over the member axis.

Solved equilibrium fields are additionally memoised in a **warm-field
cache** (:class:`WarmFieldCache`): a bounded, state-fingerprint-keyed
LRU reused across batches while the chassis state is unchanged, with
hit/miss counters surfaced through batch stats and ``fleet_batch``
telemetry.  A snapshot update that changes the chassis state
invalidates the cache (see :meth:`ChassisCompute.snapshot`).

All paths are pure reads of chassis state — answering a query twice
(e.g. a retried request) has no side effect, which is what makes the
coordinator's retry-on-replica policy safe.

The module also owns *degraded* answering: given only a
:class:`ChassisSnapshot` (the last state a now-dead worker reported),
produce a bounded-staleness approximation instead of failing closed.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..config.parameters import SimulationParameters
from ..errors import FleetError
from ..server.topology import ServerTopology
from ..sim.batched import FleetPoint, evaluate_fleet
from ..sim.parallel import SweepCache
from ..sim.steady_state import SteadyStateField, solve_steady_state
from .messages import PlacementQuery, WhatIfQuery
from .registry import ChassisSpec

#: Busy dynamic power assumed per socket, as a fraction of TDP, when a
#: query describes load only through utilization.
DEFAULT_DYN_FRACTION = 0.6

#: Default bound on the warm-field cache (distinct chassis states whose
#: solved equilibrium fields are retained).
WARM_FIELD_CACHE_MAX = 16

#: Member-axis chunk for the stacked placement scorer.  Each chunk
#: materialises a ``chunk x sockets x sockets`` prediction tensor; a
#: small chunk keeps that working set cache-resident (measurably faster
#: than one full-batch broadcast at large socket counts) without
#: changing a single output bit — see
#: :meth:`ChassisCompute._place_group`.
PLACE_CHUNK_MEMBERS = 4


class WarmFieldCache:
    """Bounded LRU of solved equilibrium fields, keyed by state.

    The key is a *state fingerprint* (see
    :meth:`ChassisCompute.state_fingerprint`): a content hash of the
    chassis recipe, simulation parameters and utilization vector — the
    complete input of :func:`~repro.sim.steady_state.
    solve_steady_state` on the worker's hot path.  Because the solve
    is a pure function of that state, a hit returns bit-identical
    fields; the bound only trades recompute for memory.

    ``capacity=0`` disables retention (every lookup is a miss), which
    is how the per-message baseline is benchmarked.

    Attributes:
        capacity: Maximum retained entries (0 disables).
        hits: Cumulative lookup hits.
        misses: Cumulative lookup misses.
    """

    def __init__(self, capacity: int = WARM_FIELD_CACHE_MAX) -> None:
        if capacity < 0:
            raise FleetError(
                f"warm-field cache capacity must be >= 0, got {capacity}"
            )
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._entries: "OrderedDict[str, SteadyStateField]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._entries

    def get(self, fingerprint: str) -> Optional[SteadyStateField]:
        """The cached field for one state, counting the hit/miss."""
        field = self._entries.get(fingerprint)
        if field is None:
            self.misses += 1
            return None
        self.hits += 1
        self._entries.move_to_end(fingerprint)
        return field

    def put(self, fingerprint: str, field: SteadyStateField) -> None:
        """Retain one solved field, evicting the LRU entry at bound."""
        if self.capacity == 0:
            return
        self._entries[fingerprint] = field
        self._entries.move_to_end(fingerprint)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def invalidate(self) -> None:
        """Drop every entry (counters survive — they are telemetry)."""
        self._entries.clear()

    def stats(self) -> dict:
        """JSON-safe counter snapshot."""
        return {
            "warm_hits": int(self.hits),
            "warm_misses": int(self.misses),
            "warm_entries": len(self._entries),
        }


@dataclass(frozen=True)
class ChassisSnapshot:
    """The last known thermal state of one chassis.

    Produced by workers (at startup and after every answer), persisted
    to the worker's recovery checkpoint, and cached by the coordinator
    as the source for degraded answers.  Tuples, not arrays: the
    snapshot must pickle compactly and serialise to JSON.

    Attributes:
        chassis_id: Which chassis this state describes.
        t: Coordinator-clock time the state was produced, seconds.
        utilization: Per-socket busy fractions behind the field.
        chip_c: Per-socket steady chip temperatures, degC.
        power_w: Per-socket steady total power, W.
    """

    chassis_id: str
    t: float
    utilization: Tuple[float, ...]
    chip_c: Tuple[float, ...]
    power_w: Tuple[float, ...]

    @property
    def peak_chip_c(self) -> float:
        return max(self.chip_c)

    @property
    def hottest_socket(self) -> int:
        return int(np.argmax(self.chip_c))

    def summary(self) -> dict:
        """JSON-safe digest carried in heartbeats and answers."""
        return {
            "chassis": self.chassis_id,
            "peak_chip_c": float(self.peak_chip_c),
            "hottest_socket": self.hottest_socket,
            "total_power_w": float(sum(self.power_w)),
        }


class ChassisCompute:
    """Deterministic query evaluation for one chassis.

    Attributes:
        spec: The chassis recipe.
        topology: Built geometry (constructed from the spec unless
            injected).
        params: Simulation parameters (likewise).
        cache: What-if memo cache (a bounded
            :class:`~repro.sim.parallel.SweepCache`).
        backend: Array-backend selection for the fleet-tensor what-if
            path — a name from :data:`repro.backend.BACKEND_NAMES` or
            ``None`` (``REPRO_BACKEND``/numpy), exactly as accepted by
            :func:`~repro.sim.batched.evaluate_fleet`.
        warm: The warm-field cache (``warm_capacity=0`` disables it).
    """

    def __init__(
        self,
        spec: ChassisSpec,
        topology: Optional[ServerTopology] = None,
        params: Optional[SimulationParameters] = None,
        cache: Optional[SweepCache] = None,
        backend: Optional[str] = None,
        warm_capacity: int = WARM_FIELD_CACHE_MAX,
    ) -> None:
        self.spec = spec
        self.topology = topology or spec.build_topology()
        self.params = params or spec.build_params()
        self.cache = cache if cache is not None else SweepCache()
        self.backend = backend
        self.warm = WarmFieldCache(warm_capacity)
        self._state_prefix = self._fingerprint_prefix()
        self._last_state_fp: Optional[str] = None

    # -- state ----------------------------------------------------------

    def _utilization(self, utilization=None) -> np.ndarray:
        n = self.topology.n_sockets
        if utilization is None:
            return np.full(n, self.spec.base_utilization)
        util = np.asarray(utilization, dtype=float)
        if util.shape != (n,):
            raise FleetError(
                f"chassis {self.spec.chassis_id!r} has {n} sockets, "
                f"got utilization of shape {util.shape}"
            )
        return util

    def _fingerprint_prefix(self) -> "hashlib._Hash":
        digest = hashlib.sha256()
        digest.update(repr(self.spec).encode())
        digest.update(repr(self.params).encode())
        return digest

    def state_fingerprint(self, utilization=None) -> str:
        """Content hash of the chassis state behind one field solve.

        Folds the chassis recipe, the simulation parameters and the
        (validated) utilization vector — the exact inputs of the
        steady-state solve — so equal fingerprints guarantee
        bit-identical fields.  This is the warm-field cache key and
        the fingerprint a :class:`ChassisSnapshot` describes.
        """
        util = self._utilization(utilization)
        digest = self._state_prefix.copy()
        digest.update(util.tobytes())
        return digest.hexdigest()

    def _solve_field(self, util: np.ndarray) -> SteadyStateField:
        """The equilibrium field for one state, through the warm cache."""
        fp = self.state_fingerprint(util)
        field = self.warm.get(fp)
        if field is None:
            field = solve_steady_state(
                self.topology,
                self.params,
                DEFAULT_DYN_FRACTION * self.topology.tdp_array,
                util,
            )
            self.warm.put(fp, field)
        return field

    def snapshot(self, utilization=None, t: float = 0.0) -> ChassisSnapshot:
        """Solve and package the chassis' current steady state.

        A snapshot *update* — a call whose state fingerprint differs
        from the previous snapshot's — marks a chassis state change
        and therefore invalidates the warm-field cache (the freshly
        solved field is re-retained, so the current state stays warm).
        """
        util = self._utilization(utilization)
        fp = self.state_fingerprint(util)
        field = self._solve_field(util)
        if self._last_state_fp is not None and fp != self._last_state_fp:
            self.warm.invalidate()
            self.warm.put(fp, field)
        self._last_state_fp = fp
        return ChassisSnapshot(
            chassis_id=self.spec.chassis_id,
            t=float(t),
            utilization=tuple(float(u) for u in util),
            chip_c=tuple(float(c) for c in field.chip_c),
            power_w=tuple(float(p) for p in field.power_w),
        )

    # -- live answering -------------------------------------------------

    def place(self, query: PlacementQuery) -> dict:
        """Score every candidate socket; return the coolest landing.

        The score of candidate ``i`` is the predicted fleet-wide peak
        chip temperature after adding ``job_power_w`` on ``i``: the
        solved base field, shifted by the linear coupling response of
        the extra heat (downwind entry air rises by ``M[:, i] * p``)
        plus the candidate's own conduction rise.  First-order in the
        leakage feedback, exact in the coupling — and evaluated for
        all candidates in one batched pass.
        """
        util = self._utilization(query.utilization)
        base = self._solve_field(util)
        p = float(query.job_power_w)
        matrix = self.topology.coupling.matrix
        # predicted[i, j]: chip temperature of socket j if the job
        # lands on socket i.  Row i gets the coupling column of i.
        predicted = base.chip_c[None, :] + p * matrix.T
        own = p * (
            self.topology.r_ext_array + self.params.r_int
        ) + self.topology.theta_slope_array * p
        np.fill_diagonal(predicted, np.diagonal(predicted) + own)
        peaks = predicted.max(axis=1)
        socket = int(np.argmin(peaks))
        return {
            "chassis": self.spec.chassis_id,
            "socket": socket,
            "predicted_peak_c": float(peaks[socket]),
            "base_peak_c": float(base.chip_c.max()),
        }

    def what_if(self, query: WhatIfQuery) -> dict:
        """Evaluate a scenario batch via the fleet-tensor sweep."""
        key = self._what_if_key(query)
        cached = self.cache.get(key)
        if cached is not None:
            return cached
        points = [
            FleetPoint(
                utilization=u,
                dyn_max_w=p,
            )
            for u, p in query.scenarios
        ]
        result = evaluate_fleet(
            self.topology,
            self.params,
            points,
            window_steps=query.window_steps,
            backend=self.backend,
        )
        payload = self._what_if_payload(result, 0, len(points))
        self.cache.put(key, payload)
        return payload

    def _what_if_payload(self, result, start: int, count: int) -> dict:
        """Package ``count`` rows of a fleet-sweep result from ``start``."""
        stop = start + count
        return {
            "chassis": self.spec.chassis_id,
            "peak_chip_c": [
                float(c) for c in result.chip_c[start:stop].max(axis=1)
            ],
            "min_freq_mhz": [
                float(f) for f in result.freq_mhz[start:stop].min(axis=1)
            ],
            "total_power_w": [
                float(p) for p in result.power_w[start:stop].sum(axis=1)
            ],
        }

    def _what_if_key(self, query: WhatIfQuery) -> str:
        digest = hashlib.sha256()
        digest.update(repr(self.spec).encode())
        digest.update(repr(self.params).encode())
        digest.update(
            repr((query.scenarios, query.window_steps)).encode()
        )
        return digest.hexdigest()

    def answer(self, query) -> dict:
        """Dispatch on query kind (the worker-side entry point)."""
        if isinstance(query, PlacementQuery):
            return self.place(query)
        if isinstance(query, WhatIfQuery):
            return self.what_if(query)
        raise FleetError(
            f"unknown query type {type(query).__name__}"
        )

    # -- batched answering ----------------------------------------------

    def answer_batch(
        self, queries: Sequence
    ) -> Tuple[List[dict], dict]:
        """Answer several queries in stacked passes.

        Placement members are grouped by state fingerprint: the
        equilibrium field is solved **once per distinct chassis
        state** (through the warm-field cache), and every candidate
        socket of every member sharing that state is scored in one
        stacked broadcast over the member axis.  What-if members'
        uncached scenarios stack into one
        :func:`~repro.sim.batched.evaluate_fleet` call per distinct
        ``window_steps`` (honouring :attr:`backend`, so the jit+vmap
        path batches across users, not just sweep points).

        On numpy every payload is bit-identical to the corresponding
        :meth:`answer` call — all stacked operations are elementwise
        over the member axis, and the fleet-tensor evaluator is
        per-point bit-identical by construction.

        Returns:
            ``(payloads, stats)`` — payloads aligned with ``queries``,
            and the JSON-safe batch stats (warm-cache hits/misses
            consumed by this batch, field solves and stacked
            evaluations performed).
        """
        payloads: List[Optional[dict]] = [None] * len(queries)
        placements: Dict[str, List[int]] = {}
        what_ifs: List[int] = []
        for index, query in enumerate(queries):
            if isinstance(query, PlacementQuery):
                fp = self.state_fingerprint(query.utilization)
                placements.setdefault(fp, []).append(index)
            elif isinstance(query, WhatIfQuery):
                what_ifs.append(index)
            else:
                raise FleetError(
                    f"unknown query type {type(query).__name__}"
                )
        hits0, misses0 = self.warm.hits, self.warm.misses
        n_solves = 0
        for indices in placements.values():
            n_solves += 1
            self._place_group(queries, indices, payloads)
        n_evaluations = self._what_if_groups(queries, what_ifs, payloads)
        stats = {
            "warm_hits": int(self.warm.hits - hits0),
            "warm_misses": int(self.warm.misses - misses0),
            "n_states": int(n_solves),
            "n_evaluations": int(n_evaluations),
        }
        return [p for p in payloads], stats

    def _place_group(
        self,
        queries: Sequence,
        indices: List[int],
        payloads: List[Optional[dict]],
    ) -> None:
        """Score all placement members sharing one chassis state.

        The broadcast adds a leading member axis to the exact
        per-query math of :meth:`place`: every element of
        ``predicted[q]`` is produced by the same scalar operations in
        the same order as the single-query pass, so the stacked
        scoring is bit-identical on numpy.  The member axis is
        processed in chunks of :data:`PLACE_CHUNK_MEMBERS` to keep the
        ``members x sockets x sockets`` working set cache-resident —
        chunk boundaries cannot change any element (all member-axis
        operations are elementwise, and the peak reduction runs within
        one member's row).
        """
        util = self._utilization(
            queries[indices[0]].utilization
        )
        base = self._solve_field(util)
        matrix_t = self.topology.coupling.matrix.T
        r_own = self.topology.r_ext_array + self.params.r_int
        slope = self.topology.theta_slope_array
        ps = np.array(
            [float(queries[i].job_power_w) for i in indices]
        )
        n = self.topology.n_sockets
        diag = np.arange(n)
        n_members = len(indices)
        peaks = np.empty((n_members, n))
        sockets = np.empty(n_members, dtype=int)
        for start in range(0, n_members, PLACE_CHUNK_MEMBERS):
            stop = min(start + PLACE_CHUNK_MEMBERS, n_members)
            chunk = ps[start:stop]
            # predicted[q, i, j]: chip temperature of socket j if
            # member q's job lands on socket i.
            predicted = base.chip_c[None, None, :] + (
                chunk[:, None, None] * matrix_t[None, :, :]
            )
            own = (
                chunk[:, None] * r_own[None, :]
                + slope[None, :] * chunk[:, None]
            )
            predicted[:, diag, diag] += own
            chunk_peaks = predicted.max(axis=2)
            peaks[start:stop] = chunk_peaks
            sockets[start:stop] = np.argmin(chunk_peaks, axis=1)
        base_peak = float(base.chip_c.max())
        for row, index in enumerate(indices):
            socket = int(sockets[row])
            payloads[index] = {
                "chassis": self.spec.chassis_id,
                "socket": socket,
                "predicted_peak_c": float(peaks[row, socket]),
                "base_peak_c": base_peak,
            }

    def _what_if_groups(
        self,
        queries: Sequence,
        indices: List[int],
        payloads: List[Optional[dict]],
    ) -> int:
        """Answer what-if members with stacked fleet-tensor calls.

        Members whose memo key is already cached are served from the
        :class:`~repro.sim.parallel.SweepCache`; the misses are
        grouped by ``window_steps`` (the only per-query evaluator
        argument) and each group's scenarios concatenate into one
        :func:`~repro.sim.batched.evaluate_fleet` call.  Returns the
        number of stacked evaluator calls made.
        """
        groups: Dict[int, List[int]] = {}
        for index in indices:
            query = queries[index]
            cached = self.cache.get(self._what_if_key(query))
            if cached is not None:
                payloads[index] = cached
            else:
                groups.setdefault(query.window_steps, []).append(index)
        n_evaluations = 0
        for window_steps, members in sorted(groups.items()):
            n_evaluations += 1
            points: List[FleetPoint] = []
            counts: List[int] = []
            for index in members:
                scenarios = queries[index].scenarios
                counts.append(len(scenarios))
                points.extend(
                    FleetPoint(utilization=u, dyn_max_w=p)
                    for u, p in scenarios
                )
            result = evaluate_fleet(
                self.topology,
                self.params,
                points,
                window_steps=window_steps,
                backend=self.backend,
            )
            start = 0
            for index, count in zip(members, counts):
                payload = self._what_if_payload(result, start, count)
                start += count
                self.cache.put(
                    self._what_if_key(queries[index]), payload
                )
                payloads[index] = payload
        return n_evaluations


def degraded_payload(snapshot: ChassisSnapshot, query) -> dict:
    """A bounded-staleness answer from the last known snapshot only.

    Placement falls back to the coolest socket of the stale field
    (ignoring the job's own coupling response — the topology is the
    dead worker's business); what-ifs return the stale field digest as
    the best available approximation.  Callers tag the answer
    ``DEGRADED`` with the snapshot's age.
    """
    if isinstance(query, PlacementQuery):
        socket = int(np.argmin(snapshot.chip_c))
        return {
            "chassis": snapshot.chassis_id,
            "socket": socket,
            "predicted_peak_c": float(snapshot.peak_chip_c),
            "from_snapshot": True,
        }
    payload = snapshot.summary()
    payload["from_snapshot"] = True
    return payload

"""Per-chassis query evaluation — the worker's compute core.

One :class:`ChassisCompute` lives inside each worker process (and
inside the simulated workers of the chaos harness) and answers the two
query kinds deterministically from chassis state:

- **Placement** queries score *every* candidate socket in one
  vectorised pass: the steady-state field is solved once, then the
  linear coupling response ``M[:, i] * p`` of adding the job's power
  ``p`` on candidate ``i`` is applied for all candidates at once — the
  same batched full-candidate scoring shape as
  :class:`repro.core.kernels.PlacementKernel`, over the equilibrium
  field instead of the engine view.
- **What-if** queries go through the batched fleet-tensor sweep
  (:func:`repro.sim.batched.evaluate_fleet`): every scenario is one
  :class:`~repro.sim.batched.FleetPoint` and the whole batch is
  answered with stacked kernel calls, memoised in a
  :class:`~repro.sim.parallel.SweepCache`.

Both paths are pure reads of chassis state — answering a query twice
(e.g. a retried request) has no side effect, which is what makes the
coordinator's retry-on-replica policy safe.

The module also owns *degraded* answering: given only a
:class:`ChassisSnapshot` (the last state a now-dead worker reported),
produce a bounded-staleness approximation instead of failing closed.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..config.parameters import SimulationParameters
from ..errors import FleetError
from ..server.topology import ServerTopology
from ..sim.batched import FleetPoint, evaluate_fleet
from ..sim.parallel import SweepCache
from ..sim.steady_state import solve_steady_state
from .messages import PlacementQuery, WhatIfQuery
from .registry import ChassisSpec

#: Busy dynamic power assumed per socket, as a fraction of TDP, when a
#: query describes load only through utilization.
DEFAULT_DYN_FRACTION = 0.6


@dataclass(frozen=True)
class ChassisSnapshot:
    """The last known thermal state of one chassis.

    Produced by workers (at startup and after every answer), persisted
    to the worker's recovery checkpoint, and cached by the coordinator
    as the source for degraded answers.  Tuples, not arrays: the
    snapshot must pickle compactly and serialise to JSON.

    Attributes:
        chassis_id: Which chassis this state describes.
        t: Coordinator-clock time the state was produced, seconds.
        utilization: Per-socket busy fractions behind the field.
        chip_c: Per-socket steady chip temperatures, degC.
        power_w: Per-socket steady total power, W.
    """

    chassis_id: str
    t: float
    utilization: Tuple[float, ...]
    chip_c: Tuple[float, ...]
    power_w: Tuple[float, ...]

    @property
    def peak_chip_c(self) -> float:
        return max(self.chip_c)

    @property
    def hottest_socket(self) -> int:
        return int(np.argmax(self.chip_c))

    def summary(self) -> dict:
        """JSON-safe digest carried in heartbeats and answers."""
        return {
            "chassis": self.chassis_id,
            "peak_chip_c": float(self.peak_chip_c),
            "hottest_socket": self.hottest_socket,
            "total_power_w": float(sum(self.power_w)),
        }


class ChassisCompute:
    """Deterministic query evaluation for one chassis.

    Attributes:
        spec: The chassis recipe.
        topology: Built geometry (constructed from the spec unless
            injected).
        params: Simulation parameters (likewise).
        cache: What-if memo cache (a bounded
            :class:`~repro.sim.parallel.SweepCache`).
    """

    def __init__(
        self,
        spec: ChassisSpec,
        topology: Optional[ServerTopology] = None,
        params: Optional[SimulationParameters] = None,
        cache: Optional[SweepCache] = None,
    ) -> None:
        self.spec = spec
        self.topology = topology or spec.build_topology()
        self.params = params or spec.build_params()
        self.cache = cache if cache is not None else SweepCache()

    # -- state ----------------------------------------------------------

    def _utilization(self, utilization=None) -> np.ndarray:
        n = self.topology.n_sockets
        if utilization is None:
            return np.full(n, self.spec.base_utilization)
        util = np.asarray(utilization, dtype=float)
        if util.shape != (n,):
            raise FleetError(
                f"chassis {self.spec.chassis_id!r} has {n} sockets, "
                f"got utilization of shape {util.shape}"
            )
        return util

    def snapshot(self, utilization=None, t: float = 0.0) -> ChassisSnapshot:
        """Solve and package the chassis' current steady state."""
        util = self._utilization(utilization)
        field = solve_steady_state(
            self.topology,
            self.params,
            DEFAULT_DYN_FRACTION * self.topology.tdp_array,
            util,
        )
        return ChassisSnapshot(
            chassis_id=self.spec.chassis_id,
            t=float(t),
            utilization=tuple(float(u) for u in util),
            chip_c=tuple(float(c) for c in field.chip_c),
            power_w=tuple(float(p) for p in field.power_w),
        )

    # -- live answering -------------------------------------------------

    def place(self, query: PlacementQuery) -> dict:
        """Score every candidate socket; return the coolest landing.

        The score of candidate ``i`` is the predicted fleet-wide peak
        chip temperature after adding ``job_power_w`` on ``i``: the
        solved base field, shifted by the linear coupling response of
        the extra heat (downwind entry air rises by ``M[:, i] * p``)
        plus the candidate's own conduction rise.  First-order in the
        leakage feedback, exact in the coupling — and evaluated for
        all candidates in one batched pass.
        """
        util = self._utilization(query.utilization)
        base = solve_steady_state(
            self.topology,
            self.params,
            DEFAULT_DYN_FRACTION * self.topology.tdp_array,
            util,
        )
        p = float(query.job_power_w)
        matrix = self.topology.coupling.matrix
        # predicted[i, j]: chip temperature of socket j if the job
        # lands on socket i.  Row i gets the coupling column of i.
        predicted = base.chip_c[None, :] + p * matrix.T
        own = p * (
            self.topology.r_ext_array + self.params.r_int
        ) + self.topology.theta_slope_array * p
        np.fill_diagonal(predicted, np.diagonal(predicted) + own)
        peaks = predicted.max(axis=1)
        socket = int(np.argmin(peaks))
        return {
            "chassis": self.spec.chassis_id,
            "socket": socket,
            "predicted_peak_c": float(peaks[socket]),
            "base_peak_c": float(base.chip_c.max()),
        }

    def what_if(self, query: WhatIfQuery) -> dict:
        """Evaluate a scenario batch via the fleet-tensor sweep."""
        key = self._what_if_key(query)
        cached = self.cache.get(key)
        if cached is not None:
            return cached
        points = [
            FleetPoint(
                utilization=u,
                dyn_max_w=p,
            )
            for u, p in query.scenarios
        ]
        result = evaluate_fleet(
            self.topology,
            self.params,
            points,
            window_steps=query.window_steps,
        )
        payload = {
            "chassis": self.spec.chassis_id,
            "peak_chip_c": [
                float(c) for c in result.chip_c.max(axis=1)
            ],
            "min_freq_mhz": [
                float(f) for f in result.freq_mhz.min(axis=1)
            ],
            "total_power_w": [
                float(p) for p in result.power_w.sum(axis=1)
            ],
        }
        self.cache.put(key, payload)
        return payload

    def _what_if_key(self, query: WhatIfQuery) -> str:
        digest = hashlib.sha256()
        digest.update(repr(self.spec).encode())
        digest.update(repr(self.params).encode())
        digest.update(
            repr((query.scenarios, query.window_steps)).encode()
        )
        return digest.hexdigest()

    def answer(self, query) -> dict:
        """Dispatch on query kind (the worker-side entry point)."""
        if isinstance(query, PlacementQuery):
            return self.place(query)
        if isinstance(query, WhatIfQuery):
            return self.what_if(query)
        raise FleetError(
            f"unknown query type {type(query).__name__}"
        )


def degraded_payload(snapshot: ChassisSnapshot, query) -> dict:
    """A bounded-staleness answer from the last known snapshot only.

    Placement falls back to the coolest socket of the stale field
    (ignoring the job's own coupling response — the topology is the
    dead worker's business); what-ifs return the stale field digest as
    the best available approximation.  Callers tag the answer
    ``DEGRADED`` with the snapshot's age.
    """
    if isinstance(query, PlacementQuery):
        socket = int(np.argmin(snapshot.chip_c))
        return {
            "chassis": snapshot.chassis_id,
            "socket": socket,
            "predicted_peak_c": float(snapshot.peak_chip_c),
            "from_snapshot": True,
        }
    payload = snapshot.summary()
    payload["from_snapshot"] = True
    return payload

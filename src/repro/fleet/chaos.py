"""Deterministic chaos: seeded worker failures under virtual time.

The chaos harness proves the resilience claims of the coordinator the
same way :class:`~repro.faults.schedule.FaultSchedule` proves engine
degradation: failures are *data* (a :class:`ChaosSchedule` of typed,
content-fingerprinted events, optionally sampled once from a seeded
generator), time is virtual (a fixed tick cadence; nothing reads
wall-clock), and workers are :class:`SimWorkerHandle` objects whose
compute is the real :class:`~repro.fleet.compute.ChassisCompute` but
whose failures — kills, hangs, answer delays, checkpoint corruption —
replay exactly on schedule.  Two runs with the same seed therefore
produce byte-identical ``fleet.jsonl`` supervision logs, which is what
lets tests pin the full event sequence.

Checkpoint corruption is real, not simulated: when the harness runs
with an output directory, workers persist snapshots through
:class:`~repro.sim.checkpoint.SweepCheckpoint` and the corruption
event overwrites the pickle with garbage bytes on disk, so recovery
exercises the typed
:class:`~repro.errors.CheckpointCorruptionError` path end to end.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import CheckpointCorruptionError, FleetError
from ..sim.checkpoint import SweepCheckpoint
from .compute import ChassisCompute, ChassisSnapshot
from .coordinator import FleetConfig, FleetCoordinator
from .messages import PlacementQuery, RequestClass, WhatIfQuery
from .registry import FleetRegistry, demo_fleet
from .supervision import SupervisionPolicy
from .worker import snapshot_key

# -- chaos events -------------------------------------------------------


@dataclass(frozen=True)
class WorkerKill:
    """SIGKILL the worker at ``t`` (in-flight compute is lost)."""

    t: float
    worker: str

    kind = "kill"


@dataclass(frozen=True)
class WorkerHang:
    """Freeze the worker for ``duration_s`` (no beats, no answers)."""

    t: float
    worker: str
    duration_s: float

    kind = "hang"


@dataclass(frozen=True)
class AnswerDelay:
    """Slow the worker: requests taken in the window run longer."""

    t: float
    worker: str
    extra_s: float
    duration_s: float

    kind = "delay"


@dataclass(frozen=True)
class CheckpointCorruption:
    """Overwrite the worker's recovery checkpoint with garbage."""

    t: float
    worker: str

    kind = "corrupt"


ChaosEvent = (WorkerKill, WorkerHang, AnswerDelay, CheckpointCorruption)


@dataclass(frozen=True)
class ChaosSchedule:
    """An immutable, fingerprinted set of chaos events.

    Events are replayed in ``(t, declaration order)`` — part of the
    determinism contract, exactly like
    :class:`~repro.faults.schedule.FaultSchedule`.
    """

    events: Tuple = ()

    def __post_init__(self) -> None:
        events = tuple(self.events)
        for event in events:
            if not isinstance(event, ChaosEvent):
                raise FleetError(
                    f"chaos schedule entries must be chaos events, "
                    f"got {type(event).__name__}"
                )
            if event.t < 0:
                raise FleetError("chaos event times must be >= 0")
        object.__setattr__(
            self,
            "events",
            tuple(
                sorted(
                    events,
                    key=lambda e: (e.t, events.index(e)),
                )
            ),
        )

    def __len__(self) -> int:
        return len(self.events)

    def fingerprint(self) -> str:
        """Content hash identifying the exact chaos scenario."""
        digest = hashlib.sha256()
        for event in self.events:
            digest.update(repr(event).encode())
        return digest.hexdigest()

    @classmethod
    def random(
        cls,
        seed: int,
        horizon_s: float,
        workers: Sequence[str],
        n_events: int = 6,
    ) -> "ChaosSchedule":
        """Sample a reproducible schedule from a seeded generator."""
        if n_events < 0:
            raise FleetError("n_events must be >= 0")
        if not workers:
            raise FleetError("chaos needs at least one worker")
        rng = np.random.default_rng(seed)
        events: List = []
        for _ in range(n_events):
            t = float(rng.uniform(0.0, horizon_s * 0.7))
            worker = str(workers[int(rng.integers(len(workers)))])
            roll = float(rng.random())
            if roll < 0.4:
                events.append(WorkerKill(t=t, worker=worker))
            elif roll < 0.65:
                events.append(
                    WorkerHang(
                        t=t,
                        worker=worker,
                        duration_s=float(rng.uniform(0.5, 2.5)),
                    )
                )
            elif roll < 0.85:
                events.append(
                    AnswerDelay(
                        t=t,
                        worker=worker,
                        extra_s=float(rng.uniform(0.5, 1.5)),
                        duration_s=float(rng.uniform(1.0, 3.0)),
                    )
                )
            else:
                events.append(
                    CheckpointCorruption(t=t, worker=worker)
                )
        return cls(events=tuple(events))


# -- simulated workers --------------------------------------------------

#: Virtual compute time per query kind, seconds.
SERVICE_TIME_S = {"placement": 0.08, "what_if": 0.35}


class SimWorkerHandle:
    """A virtual-time worker: real compute, scheduled failures.

    Satisfies the :class:`~repro.fleet.coordinator.WorkerHandle`
    protocol.  ``start`` performs genuine checkpoint recovery (when a
    checkpoint directory is configured) and returns the cold flag
    synchronously.
    """

    def __init__(
        self,
        worker_id: str,
        compute: ChassisCompute,
        heartbeat_interval_s: float,
        checkpoint_dir: Optional[str] = None,
    ) -> None:
        self.worker_id = worker_id
        self.compute = compute
        self.heartbeat_interval_s = heartbeat_interval_s
        self.checkpoint = (
            SweepCheckpoint(checkpoint_dir, expected_type=ChassisSnapshot)
            if checkpoint_dir
            else None
        )
        self._corrupt_flag = False  # checkpoint-less corruption model
        self.alive = False
        self.started_t = 0.0
        self._next_beat_t = 0.0
        self._seq = 0
        self._hangs: List[Tuple[float, float]] = []
        self._delays: List[Tuple[float, float, float]] = []
        self._pending: List[Tuple[float, int, tuple, object]] = []
        self._wire: List[Tuple[float, int, tuple]] = []
        self._counter = 0
        self._exit_pending = False
        self.kills = 0

    # -- chaos inputs ---------------------------------------------------

    def chaos_kill(self, now: float) -> None:
        if not self.alive:
            return
        self._flush_sent(now)
        self.alive = False
        self.kills += 1
        self._pending.clear()
        self._exit_pending = True

    def chaos_hang(self, now: float, duration_s: float) -> None:
        if not self.alive:
            return
        until = now + duration_s
        self._hangs.append((now, until))
        # A frozen process finishes in-flight work only after thawing.
        self._pending = [
            (
                ready + (until - now) if ready >= now else ready,
                idx,
                msg,
                snap,
            )
            for ready, idx, msg, snap in self._pending
        ]

    def chaos_delay(
        self, now: float, extra_s: float, duration_s: float
    ) -> None:
        self._delays.append((now, now + duration_s, extra_s))

    def chaos_corrupt(self, now: float) -> None:
        if self.checkpoint is not None:
            path = self.checkpoint._path(snapshot_key(self.worker_id))
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_bytes(b"\x00not a pickle\xff")
        else:
            self._corrupt_flag = True

    # -- WorkerHandle protocol ------------------------------------------

    def start(self, now: float) -> Optional[bool]:
        self.alive = True
        self.started_t = now
        self._next_beat_t = now
        self._seq = 0
        self._pending = []
        self._wire = []
        self._exit_pending = False
        cold = False
        snapshot = None
        if self.checkpoint is not None:
            try:
                snapshot = self.checkpoint.load_strict(
                    snapshot_key(self.worker_id)
                )
            except CheckpointCorruptionError:
                cold = True
        elif self._corrupt_flag:
            cold = True
            self._corrupt_flag = False
        if snapshot is None:
            snapshot = self.compute.snapshot(t=now)
            if self.checkpoint is not None:
                self.checkpoint.save(
                    snapshot_key(self.worker_id), snapshot
                )
        self._enqueue_wire(now, ("snapshot", snapshot))
        return cold

    def stop(self, now: float) -> None:
        self.alive = False
        self._pending.clear()
        self._exit_pending = False

    def send(self, request_id: int, query, now: float) -> None:
        if not self.alive:
            return  # writing into a dead pipe
        taken = max(now, self._hang_end(now))
        extra = sum(
            e for (start, end, e) in self._delays if start <= now <= end
        )
        ready = taken + SERVICE_TIME_S[query.kind] + extra
        payload = self.compute.answer(query)
        snapshot = self.compute.snapshot(
            getattr(query, "utilization", None), t=ready
        )
        self._counter += 1
        self._pending.append(
            (ready, self._counter, ("answer", request_id, payload), snapshot)
        )

    def send_batch(self, batch, now: float) -> None:
        """One batch costs its slowest member plus a small per-member
        marshalling overhead — not the sum of service times; that gap
        is exactly what the throughput benchmark measures."""
        if not self.alive:
            return  # writing into a dead pipe
        taken = max(now, self._hang_end(now))
        extra = sum(
            e for (start, end, e) in self._delays if start <= now <= end
        )
        service = max(
            SERVICE_TIME_S[q.kind] for q in batch.queries
        ) + 0.01 * (len(batch) - 1)
        ready = taken + service + extra
        payloads, stats = self.compute.answer_batch(batch.queries)
        snapshot = self.compute.snapshot(
            getattr(batch.queries[-1], "utilization", None), t=ready
        )
        self._counter += 1
        self._pending.append(
            (
                ready,
                self._counter,
                (
                    "answer_batch",
                    batch.batch_id,
                    list(zip(batch.request_ids, payloads)),
                    stats,
                ),
                snapshot,
            )
        )

    def poll(self, now: float) -> List[tuple]:
        if self.alive:
            self._flush_sent(now)
        messages = [
            msg for (_, _, msg) in sorted(self._wire, key=lambda m: m[:2])
        ]
        self._wire = []
        if self._exit_pending:
            messages.append(("exit",))
            self._exit_pending = False
        return messages

    # -- internals ------------------------------------------------------

    def _hang_end(self, t: float) -> float:
        """When the hang covering instant ``t`` ends (or ``t``)."""
        for start, end in self._hangs:
            if start <= t < end:
                return end
        return t

    def _enqueue_wire(self, t: float, msg: tuple) -> None:
        self._counter += 1
        self._wire.append((t, self._counter, msg))

    def _flush_sent(self, now: float) -> None:
        """Move everything the worker sent by ``now`` onto the wire."""
        while self._next_beat_t <= now:
            t = self._next_beat_t
            self._next_beat_t += self.heartbeat_interval_s
            if self._hang_end(t) != t:
                continue  # a frozen worker skips this beat
            self._enqueue_wire(t, ("heartbeat", self._seq))
            self._seq += 1
        still: List[Tuple[float, int, tuple, object]] = []
        for ready, idx, msg, snapshot in self._pending:
            if ready <= now:
                self._wire.append((ready, idx, msg))
                self._counter += 1
                self._wire.append((ready, self._counter, ("snapshot", snapshot)))
                if self.checkpoint is not None:
                    self.checkpoint.save(
                        snapshot_key(self.worker_id), snapshot
                    )
            else:
                still.append((ready, idx, msg, snapshot))
        self._pending = still


# -- the harness --------------------------------------------------------


@dataclass(frozen=True)
class ChaosRunConfig:
    """Everything a chaos run depends on (and nothing else).

    Attributes:
        seed: Master seed — drives the chaos schedule, the workload
            and the coordinator's retry jitter.
        horizon_s: Virtual time to simulate.
        tick_s: Coordinator drive cadence.
        n_chassis: Fleet width (each chassis gets one replica worker).
        n_requests: Poisson-ish background request count.
        burst_size: BATCH requests injected in one tick mid-run to
            force backpressure sheds.
        n_chaos_events: Failures sampled into the schedule.
        heartbeat_interval_s: Virtual heartbeat cadence.
        batch_window_s: Micro-batching window passed through to
            :class:`~repro.fleet.coordinator.FleetConfig` (same
            ``-1.0`` env-sentinel semantics; defaults leave batching
            off, keeping legacy chaos logs byte-identical).
        max_batch: Batch size bound passed through likewise.
        backend: Array backend for the workers' what-if path.
    """

    seed: int = 0
    horizon_s: float = 30.0
    tick_s: float = 0.05
    n_chassis: int = 2
    n_requests: int = 40
    burst_size: int = 12
    n_chaos_events: int = 6
    heartbeat_interval_s: float = 0.25
    batch_window_s: float = -1.0
    max_batch: int = 0
    backend: Optional[str] = None

    def __post_init__(self) -> None:
        if self.horizon_s <= 0 or self.tick_s <= 0:
            raise FleetError("horizon and tick must be positive")
        if min(self.n_chassis, self.n_requests) < 1:
            raise FleetError("need at least one chassis and request")


@dataclass
class ChaosReport:
    """Everything a chaos run produced.

    Attributes:
        config: The run configuration.
        schedule: The chaos schedule that was replayed.
        coordinator: The driven coordinator (answers, events, state).
        problems: Invariant violations (empty means the run is clean).
        log_path: The ``fleet.jsonl`` event log, when written.
    """

    config: ChaosRunConfig
    schedule: ChaosSchedule
    coordinator: FleetCoordinator
    problems: List[str]
    log_path: Optional[Path] = None

    @property
    def ok(self) -> bool:
        return not self.problems

    def summary(self) -> dict:
        """JSON-safe digest for CLI output and CI artifacts."""
        statuses: Dict[str, int] = {}
        for answer in self.coordinator.answers.values():
            statuses[answer.status.value] = (
                statuses.get(answer.status.value, 0) + 1
            )
        return {
            "seed": self.config.seed,
            "chaos_fingerprint": self.schedule.fingerprint(),
            "n_requests": len(self.coordinator.answers),
            "statuses": statuses,
            "n_events": len(self.coordinator.events),
            "peak_queue_len": self.coordinator.peak_queue_len,
            "worker_states": self.coordinator.worker_states(),
            "problems": list(self.problems),
        }


def _workload(
    config: ChaosRunConfig, chassis_ids: Sequence[str]
) -> List[Tuple[float, object]]:
    """The seeded request schedule: ``(submit_t, query)`` pairs."""
    rng = np.random.default_rng(config.seed + 1)
    requests: List[Tuple[float, object]] = []
    times = np.sort(
        rng.uniform(0.0, config.horizon_s * 0.8, config.n_requests)
    )
    for t in times:
        chassis = str(chassis_ids[int(rng.integers(len(chassis_ids)))])
        if rng.random() < 0.7:
            query = PlacementQuery(
                chassis=chassis,
                job_power_w=float(rng.uniform(5.0, 20.0)),
                request_class=(
                    RequestClass.INTERACTIVE
                    if rng.random() < 0.7
                    else RequestClass.BATCH
                ),
            )
        else:
            query = WhatIfQuery(
                chassis=chassis,
                scenarios=(
                    (float(rng.uniform(0.2, 0.9)), float(rng.uniform(8, 16))),
                ),
            )
        requests.append((float(t), query))
    # Backpressure burst: a stampede of BATCH what-ifs in one instant.
    burst_t = config.horizon_s * 0.5
    for i in range(config.burst_size):
        requests.append(
            (
                burst_t,
                WhatIfQuery(
                    chassis=str(chassis_ids[i % len(chassis_ids)]),
                    scenarios=((0.5, 10.0 + i),),
                    request_class=RequestClass.BATCH,
                ),
            )
        )
    requests.sort(key=lambda pair: pair[0])
    return requests


def run_chaos(
    config: ChaosRunConfig,
    out_dir=None,
    registry: Optional[FleetRegistry] = None,
    schedule: Optional[ChaosSchedule] = None,
) -> ChaosReport:
    """Drive a fleet through a seeded chaos scenario in virtual time.

    Args:
        config: The run configuration (seed fixes everything).
        out_dir: Optional directory receiving ``fleet.jsonl`` (the
            supervision event log) and real on-disk worker
            checkpoints (so corruption events exercise the typed
            recovery path).
        registry: Optional fleet layout override; defaults to
            :func:`~repro.fleet.registry.demo_fleet` with one replica
            per chassis.
        schedule: Optional explicit chaos schedule; defaults to
            :meth:`ChaosSchedule.random` under ``config.seed``.

    Returns:
        The :class:`ChaosReport`, with
        :mod:`repro.fleet.invariants` already evaluated.
    """
    from ..obs.session import TelemetrySession
    from .invariants import check_fleet_events

    registry = registry or demo_fleet(
        n_chassis=config.n_chassis, n_rows=1, replicas=1
    )
    worker_ids = [w.worker_id for w in registry.workers]
    schedule = schedule or ChaosSchedule.random(
        seed=config.seed,
        horizon_s=config.horizon_s,
        workers=worker_ids,
        n_events=config.n_chaos_events,
    )
    checkpoint_dir = None
    log_path = None
    session = None
    if out_dir is not None:
        out_dir = Path(out_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
        checkpoint_dir = str(out_dir / "checkpoints")
        log_path = out_dir / "fleet.jsonl"
        session = TelemetrySession(log_path)

    computes = {
        chassis_id: ChassisCompute(spec, backend=config.backend)
        for chassis_id, spec in registry.chassis.items()
    }
    handles = {
        w.worker_id: SimWorkerHandle(
            worker_id=w.worker_id,
            compute=computes[w.chassis_id],
            heartbeat_interval_s=config.heartbeat_interval_s,
            checkpoint_dir=checkpoint_dir,
        )
        for w in registry.workers
    }
    policy = SupervisionPolicy(
        heartbeat_interval_s=config.heartbeat_interval_s,
        missed_heartbeats=2,
        restart_backoff_s=0.25,
        restart_backoff_cap_s=2.0,
        max_restarts=3,
    )
    fleet_config = FleetConfig(
        max_queue=8,
        max_inflight_per_worker=2,
        request_timeout_s=1.5,
        queue_timeout_s=4.0,
        max_attempts=2,
        retry_jitter_s=0.1,
        max_staleness_s=config.horizon_s,
        seed=config.seed,
        log_heartbeats=True,
        batch_window_s=config.batch_window_s,
        max_batch=config.max_batch,
    )
    coordinator = FleetCoordinator(
        registry=registry,
        handles=handles,
        policy=policy,
        config=fleet_config,
        session=session,
    )

    workload = _workload(config, sorted(registry.chassis))
    chaos_events = list(schedule.events)
    try:
        coordinator.start(0.0)
        n_ticks = int(math.ceil(config.horizon_s / config.tick_s))
        next_request = 0
        next_chaos = 0
        for k in range(1, n_ticks + 1):
            now = k * config.tick_s
            while (
                next_chaos < len(chaos_events)
                and chaos_events[next_chaos].t <= now
            ):
                event = chaos_events[next_chaos]
                next_chaos += 1
                handle = handles[event.worker]
                if isinstance(event, WorkerKill):
                    handle.chaos_kill(now)
                elif isinstance(event, WorkerHang):
                    handle.chaos_hang(now, event.duration_s)
                elif isinstance(event, AnswerDelay):
                    handle.chaos_delay(
                        now, event.extra_s, event.duration_s
                    )
                else:
                    handle.chaos_corrupt(now)
            while (
                next_request < len(workload)
                and workload[next_request][0] <= now
            ):
                coordinator.submit(workload[next_request][1], now)
                next_request += 1
            coordinator.tick(now)
        coordinator.finish((n_ticks + 1) * config.tick_s)
    finally:
        if session is not None:
            session.close()

    problems = check_fleet_events(coordinator.events)
    if coordinator.pending:
        problems.append(
            f"{coordinator.pending} request(s) never reached a "
            "terminal answer"
        )
    return ChaosReport(
        config=config,
        schedule=schedule,
        coordinator=coordinator,
        problems=problems,
        log_path=log_path,
    )

"""Resilient fleet coordination over chassis worker processes.

The fleet layer turns the single-chassis simulator into a supervised
multi-chassis serving system: a registry of heterogeneous Table-I
chassis (:mod:`repro.fleet.registry`), one worker process per chassis
(:mod:`repro.fleet.worker`) answering placement and what-if queries
(:mod:`repro.fleet.compute`, :mod:`repro.fleet.messages`), and a
deterministic clock-driven coordinator
(:mod:`repro.fleet.coordinator`) providing heartbeat supervision with
restart budgets and quarantine (:mod:`repro.fleet.supervision`),
bounded-queue backpressure with class-aware load shedding, per-request
timeouts with replica retry, and bounded-staleness degraded serving
from the last telemetry snapshot.

Two drivers share that core: the asyncio service
(:mod:`repro.fleet.service`, behind ``repro fleet serve``) supplies
wall-clock time and real processes, while the seeded chaos harness
(:mod:`repro.fleet.chaos`) supplies virtual time and scheduled
failures — and :mod:`repro.fleet.invariants` audits the resulting
event logs for the coordinator's liveness/safety guarantees.
"""

from .chaos import (
    AnswerDelay,
    ChaosRunConfig,
    ChaosSchedule,
    CheckpointCorruption,
    SimWorkerHandle,
    WorkerHang,
    WorkerKill,
    run_chaos,
)
from .compute import (
    WARM_FIELD_CACHE_MAX,
    ChassisCompute,
    ChassisSnapshot,
    WarmFieldCache,
    degraded_payload,
)
from .coordinator import (
    DEFAULT_MAX_BATCH,
    ENV_BATCH,
    FleetConfig,
    FleetCoordinator,
    WorkerHandle,
    batching_from_env,
)
from .invariants import check_fleet_events, check_fleet_log
from .loadgen import drive_fleet, generate_workload, latency_stats
from .messages import (
    AnswerStatus,
    FleetAnswer,
    FleetBusy,
    FleetQuery,
    PlacementQuery,
    QueryBatch,
    RequestClass,
    WhatIfQuery,
)
from .registry import (
    ChassisSpec,
    FleetRegistry,
    WorkerSpec,
    demo_fleet,
    spec_from_catalog,
)
from .service import FleetService, query_from_json, query_fleet
from .supervision import (
    DEFAULT_HEARTBEAT_S,
    ENV_HEARTBEAT,
    SupervisionPolicy,
    WorkerState,
    WorkerSupervisor,
    heartbeat_interval_from_env,
)
from .worker import ProcessWorkerHandle, worker_main

__all__ = [
    "AnswerDelay",
    "AnswerStatus",
    "ChaosRunConfig",
    "ChaosSchedule",
    "ChassisCompute",
    "ChassisSnapshot",
    "ChassisSpec",
    "CheckpointCorruption",
    "DEFAULT_HEARTBEAT_S",
    "DEFAULT_MAX_BATCH",
    "ENV_BATCH",
    "ENV_HEARTBEAT",
    "FleetAnswer",
    "FleetBusy",
    "FleetConfig",
    "FleetCoordinator",
    "FleetQuery",
    "FleetRegistry",
    "FleetService",
    "PlacementQuery",
    "ProcessWorkerHandle",
    "QueryBatch",
    "RequestClass",
    "SimWorkerHandle",
    "SupervisionPolicy",
    "WARM_FIELD_CACHE_MAX",
    "WarmFieldCache",
    "WhatIfQuery",
    "WorkerHandle",
    "WorkerHang",
    "WorkerKill",
    "WorkerSpec",
    "WorkerState",
    "WorkerSupervisor",
    "batching_from_env",
    "check_fleet_events",
    "check_fleet_log",
    "degraded_payload",
    "demo_fleet",
    "drive_fleet",
    "generate_workload",
    "heartbeat_interval_from_env",
    "latency_stats",
    "query_fleet",
    "query_from_json",
    "run_chaos",
    "spec_from_catalog",
    "worker_main",
]

"""The fleet coordinator: bounded queueing, dispatch, degraded serving.

:class:`FleetCoordinator` is the deterministic core shared by the
asyncio service (:mod:`repro.fleet.service`) and the chaos harness
(:mod:`repro.fleet.chaos`).  It is a *clock-driven* state machine: all
behaviour happens inside :meth:`submit` and :meth:`tick` calls that
receive ``now`` explicitly, nothing reads wall-clock or OS entropy,
and workers are reached only through the :class:`WorkerHandle`
protocol — so the same registry, seed, chaos schedule and tick cadence
reproduce the same supervision event sequence bit-for-bit.

Guarantees (checked by :mod:`repro.fleet.invariants` under chaos):

- **Exactly one terminal answer per request.**  Every admitted or
  shed request ends in precisely one ``fleet_answer`` or
  ``fleet_shed`` event; late answers from abandoned attempts are
  dropped (``fleet_drop``), never double-delivered.
- **Bounded queue.**  Admission never grows the queue beyond
  ``max_queue``; overflow sheds by request class (BATCH first — an
  INTERACTIVE arrival evicts queued BATCH work before being shed
  itself).
- **Bounded staleness.**  Degraded answers carry the age of the
  serving snapshot, and are refused (FAILED) beyond
  ``max_staleness_s``.
- **No duplicate side effects.**  Queries are pure reads, so a retry
  against a replica cannot double-execute anything observable; the
  coordinator still guarantees the *answer* is delivered once.

**Micro-batching.**  With batching enabled (``batch_window_s`` /
``max_batch`` on :class:`FleetConfig`, ``--batch-window`` on the CLI,
``REPRO_FLEET_BATCH`` in the environment) the dispatch step coalesces
compatible queued queries per target worker: a query may be *held* in
the queue for up to ``batch_window_s`` after becoming dispatchable,
and whatever coalesced — up to ``max_batch`` members — ships as one
:class:`~repro.fleet.messages.QueryBatch` answered in a single
:meth:`~repro.fleet.compute.ChassisCompute.answer_batch` pass.  The
batch is purely a transport/compute grouping: every member keeps its
own inflight record, deadline, retry budget, exclusion set and
exactly-one-terminal-answer guarantee, and held members remain
ordinary queue entries (still subject to queue timeouts and
class-based shedding).  Batching is off by default
(``batch_window_s=0``, ``max_batch=1``), in which case dispatch is the
legacy one-query-per-message path, byte-identical to earlier
releases.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field as dataclass_field
from typing import Callable, Dict, List, Optional, Protocol, Set, Tuple

import numpy as np

from ..errors import ConfigurationError, FleetError
from ..obs.events import make_event
from .compute import ChassisSnapshot, degraded_payload
from .messages import (
    AnswerStatus,
    FleetAnswer,
    QueryBatch,
    RequestClass,
)
from .registry import FleetRegistry
from .supervision import SupervisionPolicy, WorkerState, WorkerSupervisor

#: Environment variable setting the default batching window, as
#: ``"window_s"`` or ``"window_s:max_batch"`` (e.g. ``"0.05:8"``).
ENV_BATCH = "REPRO_FLEET_BATCH"

#: Default batch size bound when batching is enabled without an
#: explicit ``max_batch``.
DEFAULT_MAX_BATCH = 8


def batching_from_env() -> Tuple[float, int]:
    """The ``(batch_window_s, max_batch)`` declared by the environment.

    ``REPRO_FLEET_BATCH`` holds ``"window_s"`` or
    ``"window_s:max_batch"``; unset/empty means batching off
    (``(0.0, 0)`` — the 0 meaning "no explicit bound declared").

    Raises:
        ConfigurationError: for a malformed value, naming
            ``REPRO_FLEET_BATCH``.
    """
    raw = os.environ.get(ENV_BATCH)
    if raw is None or raw == "":
        return 0.0, 0
    window_part, _, batch_part = raw.partition(":")
    try:
        window = float(window_part)
    except ValueError as exc:
        raise ConfigurationError(
            f"{ENV_BATCH} must be 'window_s' or 'window_s:max_batch', "
            f"got {raw!r}"
        ) from exc
    if window < 0:
        raise ConfigurationError(
            f"{ENV_BATCH} window must be >= 0, got {window!r}"
        )
    max_batch = 0
    if batch_part:
        try:
            max_batch = int(batch_part)
        except ValueError as exc:
            raise ConfigurationError(
                f"{ENV_BATCH} max_batch must be an integer, "
                f"got {batch_part!r}"
            ) from exc
        if max_batch < 1:
            raise ConfigurationError(
                f"{ENV_BATCH} max_batch must be >= 1, got {max_batch!r}"
            )
    return window, max_batch


class WorkerHandle(Protocol):
    """What the coordinator needs from a worker transport.

    Implementations: the fork-based process handle in
    :mod:`repro.fleet.worker` and the virtual-time simulated handle in
    :mod:`repro.fleet.chaos`.
    """

    worker_id: str

    def start(self, now: float) -> Optional[bool]:
        """(Re)start the worker.

        Returns the cold-recovery flag when known synchronously
        (simulated workers), or ``None`` when it will arrive later as
        a ``("hello", cold)`` message (process workers).
        """

    def stop(self, now: float) -> None:
        """Kill the worker; any in-flight work is lost."""

    def send(self, request_id: int, query, now: float) -> None:
        """Deliver one query to the worker."""

    def send_batch(self, batch: QueryBatch, now: float) -> None:
        """Deliver one query batch (only used with batching enabled)."""

    def poll(self, now: float) -> List[Tuple]:
        """Messages ready at ``now``: ``("heartbeat", seq)``,
        ``("answer", request_id, payload)``,
        ``("answer_batch", batch_id, entries, stats)`` with entries a
        list of ``(request_id, payload)`` pairs, ``("snapshot", snap)``,
        ``("hello", cold)`` or ``("exit",)``."""


@dataclass(frozen=True)
class FleetConfig:
    """Coordinator tunables.

    Attributes:
        max_queue: Bound on the admission queue (backpressure).
        max_inflight_per_worker: Dispatch window per worker.
        request_timeout_s: Dispatch-to-answer deadline per attempt.
        queue_timeout_s: Admission-to-terminal deadline; a request the
            fleet cannot dispatch within it is resolved degraded (or
            FAILED) rather than waiting forever.
        max_attempts: Worker dispatch attempts before falling back to
            the snapshot path.
        retry_jitter_s: Upper bound of the seeded uniform jitter added
            before a retry is eligible for dispatch (de-synchronises
            retry storms without breaking determinism).
        max_staleness_s: Oldest snapshot a degraded answer may serve.
        seed: Seed of the coordinator's jitter RNG.
        log_heartbeats: Emit a ``fleet_heartbeat`` event per beat
            (chaos/test runs); long-running services turn this off.
        batch_window_s: Micro-batching coalescing window: how long a
            dispatchable query may be held waiting for companions.
            The ``-1.0`` sentinel (default) defers to
            ``REPRO_FLEET_BATCH`` (default ``0.0``); any other
            negative value is rejected.  ``0.0`` with ``max_batch``
            at 1 disables batching entirely (the legacy
            one-query-per-message dispatch path).
        max_batch: Most members per :class:`~repro.fleet.messages.
            QueryBatch`.  ``0`` (default) defers to
            ``REPRO_FLEET_BATCH``, falling back to
            :data:`DEFAULT_MAX_BATCH` when a window is configured and
            1 otherwise; negative values are rejected.
    """

    max_queue: int = 64
    max_inflight_per_worker: int = 4
    request_timeout_s: float = 5.0
    queue_timeout_s: float = 10.0
    max_attempts: int = 2
    retry_jitter_s: float = 0.2
    max_staleness_s: float = 60.0
    seed: int = 0
    log_heartbeats: bool = True
    batch_window_s: float = -1.0
    max_batch: int = 0

    def __post_init__(self) -> None:
        if self.max_queue < 1:
            raise FleetError("max_queue must be >= 1")
        if self.max_inflight_per_worker < 1:
            raise FleetError("max_inflight_per_worker must be >= 1")
        if self.request_timeout_s <= 0 or self.queue_timeout_s <= 0:
            raise FleetError("timeouts must be positive")
        if self.max_attempts < 1:
            raise FleetError("max_attempts must be >= 1")
        if self.retry_jitter_s < 0:
            raise FleetError("retry jitter must be >= 0")
        if self.max_staleness_s <= 0:
            raise FleetError("max_staleness_s must be positive")
        if self.batch_window_s < 0 and self.batch_window_s != -1.0:
            raise FleetError(
                "batch window must be >= 0 (or the -1.0 env sentinel), "
                f"got {self.batch_window_s!r}"
            )
        if self.max_batch < 0:
            raise FleetError(
                f"max_batch must be >= 0, got {self.max_batch!r}"
            )

    def resolve_batching(self) -> Tuple[float, int]:
        """The effective ``(batch_window_s, max_batch)`` after env defaults.

        Resolved once at coordinator construction (not per tick), so a
        long-lived coordinator is immune to environment churn.
        """
        window = self.batch_window_s
        env_batch = 0
        if window == -1.0:
            window, env_batch = batching_from_env()
        max_batch = self.max_batch
        if max_batch == 0:
            max_batch = env_batch or (
                DEFAULT_MAX_BATCH if window > 0 else 1
            )
        return float(window), int(max_batch)


@dataclass
class _Queued:
    """One request waiting for dispatch.

    ``ready_t`` is when the request became dispatchable (admission, or
    retry eligibility) — the reference point the batching window
    measures waiting against.
    """

    request_id: int
    query: object
    request_class: RequestClass
    submitted_t: float
    deadline_t: float
    not_before: float = 0.0
    attempts: int = 0
    exclude: Tuple[str, ...] = ()
    ready_t: float = 0.0


@dataclass
class _Inflight:
    """One request executing on a worker."""

    request_id: int
    query: object
    request_class: RequestClass
    worker_id: str
    incarnation: int
    submitted_t: float
    deadline_t: float
    attempts: int
    batch_id: Optional[int] = None


@dataclass
class _BatchMeta:
    """Dispatch record of one query batch, awaiting its reply.

    ``members`` tracks which member requests are still attributed to
    the batch; abandoning a member (timeout, worker death, shutdown)
    removes it, and a meta whose members all vanished is discarded so
    the table stays bounded.  The ``fleet_batch`` event is emitted
    when (and only when) the matching reply arrives from the same
    worker incarnation.
    """

    batch_id: int
    worker_id: str
    chassis: str
    incarnation: int
    size: int
    window_wait_s: float
    members: Set[int]
    queue_len: int = 0


@dataclass
class FleetCoordinator:
    """Deterministic fleet coordination over abstract worker handles.

    Attributes:
        registry: The fleet layout.
        handles: Worker transports keyed by worker id (one per
            registry worker).
        policy: Supervision tunables shared by all workers.
        config: Coordinator tunables.
        session: Optional :class:`~repro.obs.session.TelemetrySession`
            mirroring the event stream to a ``fleet.jsonl`` log.
    """

    registry: FleetRegistry
    handles: Dict[str, WorkerHandle]
    policy: SupervisionPolicy = dataclass_field(
        default_factory=SupervisionPolicy
    )
    config: FleetConfig = dataclass_field(default_factory=FleetConfig)
    session: Optional[object] = None

    def __post_init__(self) -> None:
        missing = [
            w.worker_id
            for w in self.registry.workers
            if w.worker_id not in self.handles
        ]
        if missing:
            raise FleetError(f"no handle for workers {missing}")
        self.events: List[dict] = []
        self.supervisors: Dict[str, WorkerSupervisor] = {
            w.worker_id: WorkerSupervisor(
                worker_id=w.worker_id,
                policy=self.policy,
                emit=self.emit,
            )
            for w in self.registry.workers
        }
        self._worker_order = [w.worker_id for w in self.registry.workers]
        self._chassis_of = {
            w.worker_id: w.chassis_id for w in self.registry.workers
        }
        self.queue: List[_Queued] = []
        self.inflight: Dict[int, _Inflight] = {}
        self.answers: Dict[int, FleetAnswer] = {}
        self.snapshots: Dict[str, Tuple[ChassisSnapshot, float]] = {}
        self._callbacks: Dict[int, Callable[[FleetAnswer], None]] = {}
        self._rng = np.random.default_rng(self.config.seed)
        self._next_id = 0
        self._awaiting_hello: set = set()
        self._started = False
        self.peak_queue_len = 0
        self.batch_window_s, self.max_batch = (
            self.config.resolve_batching()
        )
        self._batching = self.max_batch > 1 or self.batch_window_s > 0
        self._next_batch_id = 0
        self._batches: Dict[int, _BatchMeta] = {}

    # -- events ---------------------------------------------------------

    def emit(self, type_: str, **fields) -> None:
        """Validate, record and (optionally) log one event."""
        event = make_event(type_, **fields)
        self.events.append(event)
        if self.session is not None:
            self.session.emit(type_, **fields)

    # -- lifecycle ------------------------------------------------------

    def start(self, now: float = 0.0) -> None:
        """Start every worker and open the event stream."""
        if self._started:
            raise FleetError("coordinator already started")
        self._started = True
        self.emit(
            "fleet_start",
            n_workers=self.registry.n_workers,
            n_chassis=self.registry.n_chassis,
            seed=int(self.config.seed),
            max_queue=int(self.config.max_queue),
            # Optional extra (schema contract allows it): lets the
            # invariant checker bound staleness from the log alone.
            max_staleness_s=float(self.config.max_staleness_s),
        )
        for wid in self._worker_order:
            self.supervisors[wid].started_t = now
            # The initial start's cold-recovery flag is not an event:
            # only *restarts* report recovery provenance.
            self.handles[wid].start(now)

    def finish(self, now: float) -> None:
        """Resolve everything still pending and close the stream."""
        # Drain one last time so answers racing the shutdown land.
        self.tick(now)
        for record in [
            self.inflight[rid] for rid in sorted(self.inflight)
        ]:
            del self.inflight[record.request_id]
            self._drop_batch_member(record)
            self._resolve_unservable(
                record.request_id,
                record.query,
                record.attempts,
                now,
                "shutdown",
            )
        for queued in sorted(self.queue, key=lambda q: q.request_id):
            self._resolve_unservable(
                queued.request_id,
                queued.query,
                queued.attempts,
                now,
                "shutdown",
            )
        self.queue.clear()
        self._batches.clear()
        n_shed = sum(
            1
            for a in self.answers.values()
            if a.status is AnswerStatus.SHED
        )
        self.emit(
            "fleet_end",
            t=float(now),
            n_answered=len(self.answers) - n_shed,
            n_shed=n_shed,
        )
        for wid in self._worker_order:
            self.handles[wid].stop(now)

    # -- submission & backpressure --------------------------------------

    def submit(
        self,
        query,
        now: float,
        callback: Optional[Callable[[FleetAnswer], None]] = None,
    ) -> int:
        """Admit (or shed) one query; returns its request id.

        The answer arrives through ``callback`` (and
        :attr:`answers`) once terminal — possibly within this very
        call, when the request is shed at admission.
        """
        rid = self._next_id
        self._next_id += 1
        if callback is not None:
            self._callbacks[rid] = callback
        cls = query.request_class
        chassis = query.chassis
        if chassis not in self.registry.chassis:
            self.emit(
                "fleet_submit",
                t=float(now),
                request_id=rid,
                kind=query.kind,
                request_class=cls.value,
                chassis=str(chassis),
                queue_len=len(self.queue),
            )
            self._complete(
                rid,
                FleetAnswer(
                    request_id=rid,
                    status=AnswerStatus.FAILED,
                    reason=f"unknown chassis {chassis!r}",
                ),
                now,
            )
            return rid
        if len(self.queue) >= self.config.max_queue:
            victim = self._shed_victim(cls)
            if victim is None:
                # Shed the arrival itself: FleetBusy.
                self.emit(
                    "fleet_submit",
                    t=float(now),
                    request_id=rid,
                    kind=query.kind,
                    request_class=cls.value,
                    chassis=chassis,
                    queue_len=len(self.queue),
                )
                self._shed(rid, cls, "queue_full", now)
                return rid
            self.queue.remove(victim)
            self._shed(
                victim.request_id,
                victim.request_class,
                "evicted_for_interactive",
                now,
            )
        self.queue.append(
            _Queued(
                request_id=rid,
                query=query,
                request_class=cls,
                submitted_t=now,
                deadline_t=now + self.config.queue_timeout_s,
                ready_t=now,
            )
        )
        self.peak_queue_len = max(self.peak_queue_len, len(self.queue))
        self.emit(
            "fleet_submit",
            t=float(now),
            request_id=rid,
            kind=query.kind,
            request_class=cls.value,
            chassis=chassis,
            queue_len=len(self.queue),
        )
        return rid

    def _shed_victim(self, incoming: RequestClass) -> Optional[_Queued]:
        """The queued BATCH request an INTERACTIVE arrival may evict."""
        if incoming is not RequestClass.INTERACTIVE:
            return None
        for queued in reversed(self.queue):
            if queued.request_class is RequestClass.BATCH:
                return queued
        return None

    def _shed(
        self, rid: int, cls: RequestClass, reason: str, now: float
    ) -> None:
        self.emit(
            "fleet_shed",
            t=float(now),
            request_id=rid,
            request_class=cls.value,
            reason=reason,
        )
        self._complete(
            rid,
            FleetAnswer(
                request_id=rid,
                status=AnswerStatus.SHED,
                reason=reason,
            ),
            now,
            emit_answer=False,
        )

    # -- the drive loop -------------------------------------------------

    def tick(self, now: float) -> None:
        """Advance coordination to ``now`` (idempotent per instant)."""
        if not self._started:
            raise FleetError("coordinator not started")
        self._drain_workers(now)
        self._check_supervision(now)
        self._expire_inflight(now)
        self._expire_queue(now)
        self._run_restarts(now)
        self._dispatch(now)

    def _drain_workers(self, now: float) -> None:
        for wid in self._worker_order:
            sup = self.supervisors[wid]
            for msg in self.handles[wid].poll(now):
                kind = msg[0]
                if kind == "heartbeat":
                    sup.observe_heartbeat(now, int(msg[1]))
                    if (
                        self.config.log_heartbeats
                        and not sup.down
                    ):
                        self.emit(
                            "fleet_heartbeat",
                            t=float(now),
                            worker=wid,
                            seq=int(msg[1]),
                        )
                elif kind == "answer":
                    self._on_answer(wid, msg[1], msg[2], now)
                elif kind == "answer_batch":
                    self._on_answer_batch(
                        wid, msg[1], msg[2], msg[3], now
                    )
                elif kind == "snapshot":
                    snap = msg[1]
                    self.snapshots[snap.chassis_id] = (snap, now)
                elif kind == "hello":
                    if wid in self._awaiting_hello:
                        self._awaiting_hello.discard(wid)
                        sup.on_restarted(now, cold=bool(msg[1]))
                elif kind == "exit":
                    if sup.note_exit(now):
                        self._recover_inflight(wid, now)

    def _on_answer(
        self, wid: str, rid: int, payload: dict, now: float
    ) -> None:
        record = self.inflight.get(rid)
        sup = self.supervisors[wid]
        if (
            record is None
            or record.worker_id != wid
            or record.incarnation != sup.incarnation
        ):
            # A late answer from an abandoned attempt (timeout/retry)
            # or a previous incarnation: exactly-once delivery means
            # it is dropped, visibly.
            self.emit(
                "fleet_drop",
                t=float(now),
                request_id=int(rid),
                reason="late_answer",
            )
            return
        del self.inflight[rid]
        self._drop_batch_member(record)
        self._complete(
            rid,
            FleetAnswer(
                request_id=rid,
                status=AnswerStatus.OK,
                payload=payload,
                attempts=record.attempts,
            ),
            now,
        )

    def _on_answer_batch(
        self,
        wid: str,
        bid: int,
        entries: List[Tuple[int, dict]],
        stats: dict,
        now: float,
    ) -> None:
        """One batch reply: emit its telemetry, then deliver members.

        Members route through :meth:`_on_answer` individually, so the
        per-request exactly-once guarantee (late answers dropped
        visibly) is untouched by batching.  The ``fleet_batch`` event
        is emitted only for a reply from the dispatching incarnation —
        a batch whose worker died or whose members were all abandoned
        emits nothing.
        """
        meta = self._batches.pop(bid, None)
        sup = self.supervisors[wid]
        if (
            meta is not None
            and meta.worker_id == wid
            and meta.incarnation == sup.incarnation
        ):
            self.emit(
                "fleet_batch",
                t=float(now),
                worker=wid,
                chassis=meta.chassis,
                size=int(meta.size),
                window_wait_s=float(meta.window_wait_s),
                queue_len=int(meta.queue_len),
                warm_hits=int(stats.get("warm_hits", 0)),
                warm_misses=int(stats.get("warm_misses", 0)),
            )
        for rid, payload in entries:
            self._on_answer(wid, int(rid), payload, now)

    def _drop_batch_member(self, record: _Inflight) -> None:
        """Release one member's attribution in its batch record."""
        if record.batch_id is None:
            return
        meta = self._batches.get(record.batch_id)
        if meta is None:
            return
        meta.members.discard(record.request_id)
        if not meta.members:
            del self._batches[record.batch_id]

    def _check_supervision(self, now: float) -> None:
        for wid in self._worker_order:
            sup = self.supervisors[wid]
            if sup.check(now):
                self.handles[wid].stop(now)
                self._recover_inflight(wid, now)

    def _recover_inflight(self, wid: str, now: float) -> None:
        """Requeue (or resolve) the requests a dead worker was running."""
        for rid in sorted(self.inflight):
            record = self.inflight[rid]
            if record.worker_id != wid:
                continue
            del self.inflight[rid]
            self._drop_batch_member(record)
            self._retry_or_resolve(record, now, exclude=())

    def _expire_inflight(self, now: float) -> None:
        for rid in sorted(self.inflight):
            record = self.inflight[rid]
            if now <= record.deadline_t:
                continue
            # The worker is presumably hung on this request; abandon
            # the attempt (a late answer will be dropped) and retry on
            # a replica only — never the same worker.
            del self.inflight[rid]
            self._drop_batch_member(record)
            self._retry_or_resolve(
                record, now, exclude=(record.worker_id,)
            )

    def _retry_or_resolve(
        self, record: _Inflight, now: float, exclude: Tuple[str, ...]
    ) -> None:
        if record.attempts < self.config.max_attempts:
            jitter = float(
                self._rng.uniform(0.0, self.config.retry_jitter_s)
            )
            self.queue.insert(
                0,
                _Queued(
                    request_id=record.request_id,
                    query=record.query,
                    request_class=record.request_class,
                    submitted_t=record.submitted_t,
                    deadline_t=record.submitted_t
                    + self.config.queue_timeout_s,
                    not_before=now + jitter,
                    attempts=record.attempts,
                    exclude=exclude,
                    ready_t=now + jitter,
                ),
            )
            self.peak_queue_len = max(
                self.peak_queue_len, len(self.queue)
            )
        else:
            self._resolve_unservable(
                record.request_id,
                record.query,
                record.attempts,
                now,
                "retries_exhausted",
            )

    def _expire_queue(self, now: float) -> None:
        for queued in [
            q for q in self.queue if now > q.deadline_t
        ]:
            self.queue.remove(queued)
            self._resolve_unservable(
                queued.request_id,
                queued.query,
                queued.attempts,
                now,
                "queue_timeout",
            )

    def _run_restarts(self, now: float) -> None:
        for wid in self._worker_order:
            sup = self.supervisors[wid]
            if not sup.due_restart(now):
                continue
            cold = self.handles[wid].start(now)
            if cold is None:
                self._awaiting_hello.add(wid)
                # The restart event is emitted when the hello (with
                # its cold-recovery flag) arrives.
            else:
                sup.on_restarted(now, cold=bool(cold))

    def _dispatch(self, now: float) -> None:
        if self._batching:
            self._dispatch_batched(now)
        else:
            self._dispatch_serial(now)

    def _dispatch_serial(self, now: float) -> None:
        """Legacy one-query-per-message dispatch (batching off)."""
        inflight_count: Dict[str, int] = {
            wid: 0 for wid in self._worker_order
        }
        for record in self.inflight.values():
            inflight_count[record.worker_id] += 1
        remaining: List[_Queued] = []
        for queued in self.queue:
            if queued.not_before > now:
                remaining.append(queued)
                continue
            workers = self.registry.workers_for(queued.query.chassis)
            target = None
            all_quarantined = True
            for worker in workers:
                sup = self.supervisors[worker.worker_id]
                if sup.state is not WorkerState.QUARANTINED:
                    all_quarantined = False
                if worker.worker_id in queued.exclude:
                    continue
                if not sup.serving:
                    continue
                if (
                    inflight_count[worker.worker_id]
                    >= self.config.max_inflight_per_worker
                ):
                    continue
                target = worker.worker_id
                break
            if target is not None:
                self._send(queued, target, now)
                inflight_count[target] += 1
            elif all_quarantined:
                # The chassis has no worker left and never will: serve
                # from the snapshot now rather than waiting out the
                # queue deadline.
                self._resolve_unservable(
                    queued.request_id,
                    queued.query,
                    queued.attempts,
                    now,
                    "chassis_quarantined",
                )
            else:
                remaining.append(queued)
        self.queue = remaining

    def _dispatch_batched(self, now: float) -> None:
        """Micro-batching dispatch: coalesce per worker, flush by window.

        Worker eligibility is decided per member with exactly the
        serial path's rules (exclusions, serving state, inflight cap —
        counting members tentatively grouped this tick).  A worker's
        group flushes in ``max_batch``-sized chunks; a partial chunk
        flushes only once its oldest member has waited
        ``batch_window_s`` since becoming dispatchable, and otherwise
        stays in the queue (in order, still governed by queue timeouts
        and shedding).
        """
        inflight_count: Dict[str, int] = {
            wid: 0 for wid in self._worker_order
        }
        for record in self.inflight.values():
            inflight_count[record.worker_id] += 1
        groups: Dict[str, List[_Queued]] = {}
        gone: Set[int] = set()
        for queued in self.queue:
            if queued.not_before > now:
                continue
            workers = self.registry.workers_for(queued.query.chassis)
            target = None
            all_quarantined = True
            for worker in workers:
                sup = self.supervisors[worker.worker_id]
                if sup.state is not WorkerState.QUARANTINED:
                    all_quarantined = False
                if worker.worker_id in queued.exclude:
                    continue
                if not sup.serving:
                    continue
                if (
                    inflight_count[worker.worker_id]
                    >= self.config.max_inflight_per_worker
                ):
                    continue
                target = worker.worker_id
                break
            if target is not None:
                groups.setdefault(target, []).append(queued)
                inflight_count[target] += 1
            elif all_quarantined:
                gone.add(queued.request_id)
                self._resolve_unservable(
                    queued.request_id,
                    queued.query,
                    queued.attempts,
                    now,
                    "chassis_quarantined",
                )
        flushed_bids: List[int] = []
        for wid in self._worker_order:
            members = groups.get(wid)
            while members:
                chunk = members[: self.max_batch]
                oldest_wait = now - min(m.ready_t for m in chunk)
                if (
                    len(chunk) < self.max_batch
                    and oldest_wait < self.batch_window_s
                ):
                    break  # hold the partial chunk for companions
                flushed_bids.append(
                    self._send_batch(chunk, wid, oldest_wait, now)
                )
                gone.update(m.request_id for m in chunk)
                members = members[self.max_batch:]
        if gone:
            self.queue = [
                q for q in self.queue if q.request_id not in gone
            ]
        for bid in flushed_bids:
            self._batches[bid].queue_len = len(self.queue)

    def _send_batch(
        self,
        members: List[_Queued],
        wid: str,
        window_wait_s: float,
        now: float,
    ) -> int:
        """Record per-member inflight state and ship one QueryBatch."""
        sup = self.supervisors[wid]
        chassis = self._chassis_of[wid]
        bid = self._next_batch_id
        self._next_batch_id += 1
        for queued in members:
            self.inflight[queued.request_id] = _Inflight(
                request_id=queued.request_id,
                query=queued.query,
                request_class=queued.request_class,
                worker_id=wid,
                incarnation=sup.incarnation,
                submitted_t=queued.submitted_t,
                deadline_t=now + self.config.request_timeout_s,
                attempts=queued.attempts + 1,
                batch_id=bid,
            )
        self._batches[bid] = _BatchMeta(
            batch_id=bid,
            worker_id=wid,
            chassis=chassis,
            incarnation=sup.incarnation,
            size=len(members),
            window_wait_s=float(window_wait_s),
            members={m.request_id for m in members},
        )
        batch = QueryBatch(
            batch_id=bid,
            chassis=chassis,
            request_ids=tuple(m.request_id for m in members),
            queries=tuple(m.query for m in members),
        )
        self.handles[wid].send_batch(batch, now)
        return bid

    def _send(self, queued: _Queued, wid: str, now: float) -> None:
        sup = self.supervisors[wid]
        self.inflight[queued.request_id] = _Inflight(
            request_id=queued.request_id,
            query=queued.query,
            request_class=queued.request_class,
            worker_id=wid,
            incarnation=sup.incarnation,
            submitted_t=queued.submitted_t,
            deadline_t=now + self.config.request_timeout_s,
            attempts=queued.attempts + 1,
        )
        self.handles[wid].send(queued.request_id, queued.query, now)

    # -- terminal resolution --------------------------------------------

    def _resolve_unservable(
        self,
        rid: int,
        query,
        attempts: int,
        now: float,
        reason: str,
    ) -> None:
        """No live worker can answer: degrade from snapshot, or fail."""
        chassis = query.chassis
        held = self.snapshots.get(chassis)
        if held is not None:
            snap, received_t = held
            staleness = now - received_t
            if staleness <= self.config.max_staleness_s:
                self.emit(
                    "fleet_degraded",
                    t=float(now),
                    request_id=rid,
                    chassis=chassis,
                    staleness_s=float(staleness),
                )
                self._complete(
                    rid,
                    FleetAnswer(
                        request_id=rid,
                        status=AnswerStatus.DEGRADED,
                        payload=degraded_payload(snap, query),
                        staleness_s=float(staleness),
                        attempts=attempts,
                        reason=reason,
                    ),
                    now,
                )
                return
            reason = f"{reason}; snapshot stale ({staleness:.1f}s)"
        else:
            reason = f"{reason}; no snapshot"
        self._complete(
            rid,
            FleetAnswer(
                request_id=rid,
                status=AnswerStatus.FAILED,
                attempts=attempts,
                reason=reason,
            ),
            now,
        )

    def _complete(
        self,
        rid: int,
        answer: FleetAnswer,
        now: float,
        emit_answer: bool = True,
    ) -> None:
        if rid in self.answers:  # pragma: no cover - guarded upstream
            raise FleetError(
                f"request {rid} already has a terminal answer"
            )
        self.answers[rid] = answer
        if emit_answer:
            self.emit(
                "fleet_answer",
                t=float(now),
                request_id=rid,
                status=answer.status.value,
                attempts=int(answer.attempts),
            )
        callback = self._callbacks.pop(rid, None)
        if callback is not None:
            callback(answer)

    # -- introspection --------------------------------------------------

    @property
    def pending(self) -> int:
        """Requests admitted but not yet terminal."""
        return len(self.queue) + len(self.inflight)

    def worker_states(self) -> Dict[str, str]:
        """Current supervision state per worker (for status output)."""
        return {
            wid: self.supervisors[wid].state.value
            for wid in self._worker_order
        }

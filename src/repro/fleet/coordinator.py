"""The fleet coordinator: bounded queueing, dispatch, degraded serving.

:class:`FleetCoordinator` is the deterministic core shared by the
asyncio service (:mod:`repro.fleet.service`) and the chaos harness
(:mod:`repro.fleet.chaos`).  It is a *clock-driven* state machine: all
behaviour happens inside :meth:`submit` and :meth:`tick` calls that
receive ``now`` explicitly, nothing reads wall-clock or OS entropy,
and workers are reached only through the :class:`WorkerHandle`
protocol — so the same registry, seed, chaos schedule and tick cadence
reproduce the same supervision event sequence bit-for-bit.

Guarantees (checked by :mod:`repro.fleet.invariants` under chaos):

- **Exactly one terminal answer per request.**  Every admitted or
  shed request ends in precisely one ``fleet_answer`` or
  ``fleet_shed`` event; late answers from abandoned attempts are
  dropped (``fleet_drop``), never double-delivered.
- **Bounded queue.**  Admission never grows the queue beyond
  ``max_queue``; overflow sheds by request class (BATCH first — an
  INTERACTIVE arrival evicts queued BATCH work before being shed
  itself).
- **Bounded staleness.**  Degraded answers carry the age of the
  serving snapshot, and are refused (FAILED) beyond
  ``max_staleness_s``.
- **No duplicate side effects.**  Queries are pure reads, so a retry
  against a replica cannot double-execute anything observable; the
  coordinator still guarantees the *answer* is delivered once.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field
from typing import Callable, Dict, List, Optional, Protocol, Tuple

import numpy as np

from ..errors import FleetError
from ..obs.events import make_event
from .compute import ChassisSnapshot, degraded_payload
from .messages import (
    AnswerStatus,
    FleetAnswer,
    RequestClass,
)
from .registry import FleetRegistry
from .supervision import SupervisionPolicy, WorkerState, WorkerSupervisor


class WorkerHandle(Protocol):
    """What the coordinator needs from a worker transport.

    Implementations: the fork-based process handle in
    :mod:`repro.fleet.worker` and the virtual-time simulated handle in
    :mod:`repro.fleet.chaos`.
    """

    worker_id: str

    def start(self, now: float) -> Optional[bool]:
        """(Re)start the worker.

        Returns the cold-recovery flag when known synchronously
        (simulated workers), or ``None`` when it will arrive later as
        a ``("hello", cold)`` message (process workers).
        """

    def stop(self, now: float) -> None:
        """Kill the worker; any in-flight work is lost."""

    def send(self, request_id: int, query, now: float) -> None:
        """Deliver one query to the worker."""

    def poll(self, now: float) -> List[Tuple]:
        """Messages ready at ``now``: ``("heartbeat", seq)``,
        ``("answer", request_id, payload)``, ``("snapshot", snap)``,
        ``("hello", cold)`` or ``("exit",)``."""


@dataclass(frozen=True)
class FleetConfig:
    """Coordinator tunables.

    Attributes:
        max_queue: Bound on the admission queue (backpressure).
        max_inflight_per_worker: Dispatch window per worker.
        request_timeout_s: Dispatch-to-answer deadline per attempt.
        queue_timeout_s: Admission-to-terminal deadline; a request the
            fleet cannot dispatch within it is resolved degraded (or
            FAILED) rather than waiting forever.
        max_attempts: Worker dispatch attempts before falling back to
            the snapshot path.
        retry_jitter_s: Upper bound of the seeded uniform jitter added
            before a retry is eligible for dispatch (de-synchronises
            retry storms without breaking determinism).
        max_staleness_s: Oldest snapshot a degraded answer may serve.
        seed: Seed of the coordinator's jitter RNG.
        log_heartbeats: Emit a ``fleet_heartbeat`` event per beat
            (chaos/test runs); long-running services turn this off.
    """

    max_queue: int = 64
    max_inflight_per_worker: int = 4
    request_timeout_s: float = 5.0
    queue_timeout_s: float = 10.0
    max_attempts: int = 2
    retry_jitter_s: float = 0.2
    max_staleness_s: float = 60.0
    seed: int = 0
    log_heartbeats: bool = True

    def __post_init__(self) -> None:
        if self.max_queue < 1:
            raise FleetError("max_queue must be >= 1")
        if self.max_inflight_per_worker < 1:
            raise FleetError("max_inflight_per_worker must be >= 1")
        if self.request_timeout_s <= 0 or self.queue_timeout_s <= 0:
            raise FleetError("timeouts must be positive")
        if self.max_attempts < 1:
            raise FleetError("max_attempts must be >= 1")
        if self.retry_jitter_s < 0:
            raise FleetError("retry jitter must be >= 0")
        if self.max_staleness_s <= 0:
            raise FleetError("max_staleness_s must be positive")


@dataclass
class _Queued:
    """One request waiting for dispatch."""

    request_id: int
    query: object
    request_class: RequestClass
    submitted_t: float
    deadline_t: float
    not_before: float = 0.0
    attempts: int = 0
    exclude: Tuple[str, ...] = ()


@dataclass
class _Inflight:
    """One request executing on a worker."""

    request_id: int
    query: object
    request_class: RequestClass
    worker_id: str
    incarnation: int
    submitted_t: float
    deadline_t: float
    attempts: int


@dataclass
class FleetCoordinator:
    """Deterministic fleet coordination over abstract worker handles.

    Attributes:
        registry: The fleet layout.
        handles: Worker transports keyed by worker id (one per
            registry worker).
        policy: Supervision tunables shared by all workers.
        config: Coordinator tunables.
        session: Optional :class:`~repro.obs.session.TelemetrySession`
            mirroring the event stream to a ``fleet.jsonl`` log.
    """

    registry: FleetRegistry
    handles: Dict[str, WorkerHandle]
    policy: SupervisionPolicy = dataclass_field(
        default_factory=SupervisionPolicy
    )
    config: FleetConfig = dataclass_field(default_factory=FleetConfig)
    session: Optional[object] = None

    def __post_init__(self) -> None:
        missing = [
            w.worker_id
            for w in self.registry.workers
            if w.worker_id not in self.handles
        ]
        if missing:
            raise FleetError(f"no handle for workers {missing}")
        self.events: List[dict] = []
        self.supervisors: Dict[str, WorkerSupervisor] = {
            w.worker_id: WorkerSupervisor(
                worker_id=w.worker_id,
                policy=self.policy,
                emit=self.emit,
            )
            for w in self.registry.workers
        }
        self._worker_order = [w.worker_id for w in self.registry.workers]
        self._chassis_of = {
            w.worker_id: w.chassis_id for w in self.registry.workers
        }
        self.queue: List[_Queued] = []
        self.inflight: Dict[int, _Inflight] = {}
        self.answers: Dict[int, FleetAnswer] = {}
        self.snapshots: Dict[str, Tuple[ChassisSnapshot, float]] = {}
        self._callbacks: Dict[int, Callable[[FleetAnswer], None]] = {}
        self._rng = np.random.default_rng(self.config.seed)
        self._next_id = 0
        self._awaiting_hello: set = set()
        self._started = False
        self.peak_queue_len = 0

    # -- events ---------------------------------------------------------

    def emit(self, type_: str, **fields) -> None:
        """Validate, record and (optionally) log one event."""
        event = make_event(type_, **fields)
        self.events.append(event)
        if self.session is not None:
            self.session.emit(type_, **fields)

    # -- lifecycle ------------------------------------------------------

    def start(self, now: float = 0.0) -> None:
        """Start every worker and open the event stream."""
        if self._started:
            raise FleetError("coordinator already started")
        self._started = True
        self.emit(
            "fleet_start",
            n_workers=self.registry.n_workers,
            n_chassis=self.registry.n_chassis,
            seed=int(self.config.seed),
            max_queue=int(self.config.max_queue),
            # Optional extra (schema contract allows it): lets the
            # invariant checker bound staleness from the log alone.
            max_staleness_s=float(self.config.max_staleness_s),
        )
        for wid in self._worker_order:
            self.supervisors[wid].started_t = now
            # The initial start's cold-recovery flag is not an event:
            # only *restarts* report recovery provenance.
            self.handles[wid].start(now)

    def finish(self, now: float) -> None:
        """Resolve everything still pending and close the stream."""
        # Drain one last time so answers racing the shutdown land.
        self.tick(now)
        for record in [
            self.inflight[rid] for rid in sorted(self.inflight)
        ]:
            del self.inflight[record.request_id]
            self._resolve_unservable(
                record.request_id,
                record.query,
                record.attempts,
                now,
                "shutdown",
            )
        for queued in sorted(self.queue, key=lambda q: q.request_id):
            self._resolve_unservable(
                queued.request_id,
                queued.query,
                queued.attempts,
                now,
                "shutdown",
            )
        self.queue.clear()
        n_shed = sum(
            1
            for a in self.answers.values()
            if a.status is AnswerStatus.SHED
        )
        self.emit(
            "fleet_end",
            t=float(now),
            n_answered=len(self.answers) - n_shed,
            n_shed=n_shed,
        )
        for wid in self._worker_order:
            self.handles[wid].stop(now)

    # -- submission & backpressure --------------------------------------

    def submit(
        self,
        query,
        now: float,
        callback: Optional[Callable[[FleetAnswer], None]] = None,
    ) -> int:
        """Admit (or shed) one query; returns its request id.

        The answer arrives through ``callback`` (and
        :attr:`answers`) once terminal — possibly within this very
        call, when the request is shed at admission.
        """
        rid = self._next_id
        self._next_id += 1
        if callback is not None:
            self._callbacks[rid] = callback
        cls = query.request_class
        chassis = query.chassis
        if chassis not in self.registry.chassis:
            self.emit(
                "fleet_submit",
                t=float(now),
                request_id=rid,
                kind=query.kind,
                request_class=cls.value,
                chassis=str(chassis),
                queue_len=len(self.queue),
            )
            self._complete(
                rid,
                FleetAnswer(
                    request_id=rid,
                    status=AnswerStatus.FAILED,
                    reason=f"unknown chassis {chassis!r}",
                ),
                now,
            )
            return rid
        if len(self.queue) >= self.config.max_queue:
            victim = self._shed_victim(cls)
            if victim is None:
                # Shed the arrival itself: FleetBusy.
                self.emit(
                    "fleet_submit",
                    t=float(now),
                    request_id=rid,
                    kind=query.kind,
                    request_class=cls.value,
                    chassis=chassis,
                    queue_len=len(self.queue),
                )
                self._shed(rid, cls, "queue_full", now)
                return rid
            self.queue.remove(victim)
            self._shed(
                victim.request_id,
                victim.request_class,
                "evicted_for_interactive",
                now,
            )
        self.queue.append(
            _Queued(
                request_id=rid,
                query=query,
                request_class=cls,
                submitted_t=now,
                deadline_t=now + self.config.queue_timeout_s,
            )
        )
        self.peak_queue_len = max(self.peak_queue_len, len(self.queue))
        self.emit(
            "fleet_submit",
            t=float(now),
            request_id=rid,
            kind=query.kind,
            request_class=cls.value,
            chassis=chassis,
            queue_len=len(self.queue),
        )
        return rid

    def _shed_victim(self, incoming: RequestClass) -> Optional[_Queued]:
        """The queued BATCH request an INTERACTIVE arrival may evict."""
        if incoming is not RequestClass.INTERACTIVE:
            return None
        for queued in reversed(self.queue):
            if queued.request_class is RequestClass.BATCH:
                return queued
        return None

    def _shed(
        self, rid: int, cls: RequestClass, reason: str, now: float
    ) -> None:
        self.emit(
            "fleet_shed",
            t=float(now),
            request_id=rid,
            request_class=cls.value,
            reason=reason,
        )
        self._complete(
            rid,
            FleetAnswer(
                request_id=rid,
                status=AnswerStatus.SHED,
                reason=reason,
            ),
            now,
            emit_answer=False,
        )

    # -- the drive loop -------------------------------------------------

    def tick(self, now: float) -> None:
        """Advance coordination to ``now`` (idempotent per instant)."""
        if not self._started:
            raise FleetError("coordinator not started")
        self._drain_workers(now)
        self._check_supervision(now)
        self._expire_inflight(now)
        self._expire_queue(now)
        self._run_restarts(now)
        self._dispatch(now)

    def _drain_workers(self, now: float) -> None:
        for wid in self._worker_order:
            sup = self.supervisors[wid]
            for msg in self.handles[wid].poll(now):
                kind = msg[0]
                if kind == "heartbeat":
                    sup.observe_heartbeat(now, int(msg[1]))
                    if (
                        self.config.log_heartbeats
                        and not sup.down
                    ):
                        self.emit(
                            "fleet_heartbeat",
                            t=float(now),
                            worker=wid,
                            seq=int(msg[1]),
                        )
                elif kind == "answer":
                    self._on_answer(wid, msg[1], msg[2], now)
                elif kind == "snapshot":
                    snap = msg[1]
                    self.snapshots[snap.chassis_id] = (snap, now)
                elif kind == "hello":
                    if wid in self._awaiting_hello:
                        self._awaiting_hello.discard(wid)
                        sup.on_restarted(now, cold=bool(msg[1]))
                elif kind == "exit":
                    if sup.note_exit(now):
                        self._recover_inflight(wid, now)

    def _on_answer(
        self, wid: str, rid: int, payload: dict, now: float
    ) -> None:
        record = self.inflight.get(rid)
        sup = self.supervisors[wid]
        if (
            record is None
            or record.worker_id != wid
            or record.incarnation != sup.incarnation
        ):
            # A late answer from an abandoned attempt (timeout/retry)
            # or a previous incarnation: exactly-once delivery means
            # it is dropped, visibly.
            self.emit(
                "fleet_drop",
                t=float(now),
                request_id=int(rid),
                reason="late_answer",
            )
            return
        del self.inflight[rid]
        self._complete(
            rid,
            FleetAnswer(
                request_id=rid,
                status=AnswerStatus.OK,
                payload=payload,
                attempts=record.attempts,
            ),
            now,
        )

    def _check_supervision(self, now: float) -> None:
        for wid in self._worker_order:
            sup = self.supervisors[wid]
            if sup.check(now):
                self.handles[wid].stop(now)
                self._recover_inflight(wid, now)

    def _recover_inflight(self, wid: str, now: float) -> None:
        """Requeue (or resolve) the requests a dead worker was running."""
        for rid in sorted(self.inflight):
            record = self.inflight[rid]
            if record.worker_id != wid:
                continue
            del self.inflight[rid]
            self._retry_or_resolve(record, now, exclude=())

    def _expire_inflight(self, now: float) -> None:
        for rid in sorted(self.inflight):
            record = self.inflight[rid]
            if now <= record.deadline_t:
                continue
            # The worker is presumably hung on this request; abandon
            # the attempt (a late answer will be dropped) and retry on
            # a replica only — never the same worker.
            del self.inflight[rid]
            self._retry_or_resolve(
                record, now, exclude=(record.worker_id,)
            )

    def _retry_or_resolve(
        self, record: _Inflight, now: float, exclude: Tuple[str, ...]
    ) -> None:
        if record.attempts < self.config.max_attempts:
            jitter = float(
                self._rng.uniform(0.0, self.config.retry_jitter_s)
            )
            self.queue.insert(
                0,
                _Queued(
                    request_id=record.request_id,
                    query=record.query,
                    request_class=record.request_class,
                    submitted_t=record.submitted_t,
                    deadline_t=record.submitted_t
                    + self.config.queue_timeout_s,
                    not_before=now + jitter,
                    attempts=record.attempts,
                    exclude=exclude,
                ),
            )
            self.peak_queue_len = max(
                self.peak_queue_len, len(self.queue)
            )
        else:
            self._resolve_unservable(
                record.request_id,
                record.query,
                record.attempts,
                now,
                "retries_exhausted",
            )

    def _expire_queue(self, now: float) -> None:
        for queued in [
            q for q in self.queue if now > q.deadline_t
        ]:
            self.queue.remove(queued)
            self._resolve_unservable(
                queued.request_id,
                queued.query,
                queued.attempts,
                now,
                "queue_timeout",
            )

    def _run_restarts(self, now: float) -> None:
        for wid in self._worker_order:
            sup = self.supervisors[wid]
            if not sup.due_restart(now):
                continue
            cold = self.handles[wid].start(now)
            if cold is None:
                self._awaiting_hello.add(wid)
                # The restart event is emitted when the hello (with
                # its cold-recovery flag) arrives.
            else:
                sup.on_restarted(now, cold=bool(cold))

    def _dispatch(self, now: float) -> None:
        inflight_count: Dict[str, int] = {
            wid: 0 for wid in self._worker_order
        }
        for record in self.inflight.values():
            inflight_count[record.worker_id] += 1
        remaining: List[_Queued] = []
        for queued in self.queue:
            if queued.not_before > now:
                remaining.append(queued)
                continue
            workers = self.registry.workers_for(queued.query.chassis)
            target = None
            all_quarantined = True
            for worker in workers:
                sup = self.supervisors[worker.worker_id]
                if sup.state is not WorkerState.QUARANTINED:
                    all_quarantined = False
                if worker.worker_id in queued.exclude:
                    continue
                if not sup.serving:
                    continue
                if (
                    inflight_count[worker.worker_id]
                    >= self.config.max_inflight_per_worker
                ):
                    continue
                target = worker.worker_id
                break
            if target is not None:
                self._send(queued, target, now)
                inflight_count[target] += 1
            elif all_quarantined:
                # The chassis has no worker left and never will: serve
                # from the snapshot now rather than waiting out the
                # queue deadline.
                self._resolve_unservable(
                    queued.request_id,
                    queued.query,
                    queued.attempts,
                    now,
                    "chassis_quarantined",
                )
            else:
                remaining.append(queued)
        self.queue = remaining

    def _send(self, queued: _Queued, wid: str, now: float) -> None:
        sup = self.supervisors[wid]
        self.inflight[queued.request_id] = _Inflight(
            request_id=queued.request_id,
            query=queued.query,
            request_class=queued.request_class,
            worker_id=wid,
            incarnation=sup.incarnation,
            submitted_t=queued.submitted_t,
            deadline_t=now + self.config.request_timeout_s,
            attempts=queued.attempts + 1,
        )
        self.handles[wid].send(queued.request_id, queued.query, now)

    # -- terminal resolution --------------------------------------------

    def _resolve_unservable(
        self,
        rid: int,
        query,
        attempts: int,
        now: float,
        reason: str,
    ) -> None:
        """No live worker can answer: degrade from snapshot, or fail."""
        chassis = query.chassis
        held = self.snapshots.get(chassis)
        if held is not None:
            snap, received_t = held
            staleness = now - received_t
            if staleness <= self.config.max_staleness_s:
                self.emit(
                    "fleet_degraded",
                    t=float(now),
                    request_id=rid,
                    chassis=chassis,
                    staleness_s=float(staleness),
                )
                self._complete(
                    rid,
                    FleetAnswer(
                        request_id=rid,
                        status=AnswerStatus.DEGRADED,
                        payload=degraded_payload(snap, query),
                        staleness_s=float(staleness),
                        attempts=attempts,
                        reason=reason,
                    ),
                    now,
                )
                return
            reason = f"{reason}; snapshot stale ({staleness:.1f}s)"
        else:
            reason = f"{reason}; no snapshot"
        self._complete(
            rid,
            FleetAnswer(
                request_id=rid,
                status=AnswerStatus.FAILED,
                attempts=attempts,
                reason=reason,
            ),
            now,
        )

    def _complete(
        self,
        rid: int,
        answer: FleetAnswer,
        now: float,
        emit_answer: bool = True,
    ) -> None:
        if rid in self.answers:  # pragma: no cover - guarded upstream
            raise FleetError(
                f"request {rid} already has a terminal answer"
            )
        self.answers[rid] = answer
        if emit_answer:
            self.emit(
                "fleet_answer",
                t=float(now),
                request_id=rid,
                status=answer.status.value,
                attempts=int(answer.attempts),
            )
        callback = self._callbacks.pop(rid, None)
        if callback is not None:
            callback(answer)

    # -- introspection --------------------------------------------------

    @property
    def pending(self) -> int:
        """Requests admitted but not yet terminal."""
        return len(self.queue) + len(self.inflight)

    def worker_states(self) -> Dict[str, str]:
        """Current supervision state per worker (for status output)."""
        return {
            wid: self.supervisors[wid].state.value
            for wid in self._worker_order
        }

"""The fleet registry: which chassis exist and who serves them.

A *chassis* is one density-optimized system (a Table-I configuration
realised as a :class:`~repro.server.topology.ServerTopology` plus
:class:`~repro.config.parameters.SimulationParameters`).  A *worker*
is one supervised process serving queries for exactly one chassis; a
chassis may have several workers (replicas), which is what gives the
coordinator somewhere to retry when a worker stalls.

Specs are frozen and picklable: worker processes rebuild their
topology from the spec on their side of the fork, so no topology
object ever crosses a process boundary (mirroring how
:mod:`repro.sim.parallel` ships scheduler *names*, not instances).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..config.parameters import SimulationParameters
from ..config.presets import scaled
from ..errors import FleetError
from ..server.catalog import TABLE_I_SYSTEMS, DensityOptimizedSystem
from ..server.topology import ServerTopology


@dataclass(frozen=True)
class ChassisSpec:
    """Recipe for one chassis' topology and parameters.

    Attributes:
        chassis_id: Unique fleet-wide identifier.
        n_rows: Cartridge rows.
        lanes_per_row: Airflow lanes per row.
        chain_length: Sockets per lane along the airflow.
        sockets_per_cartridge_depth: Chain positions per cartridge.
        inlet_c: Inlet air temperature for this chassis, degC.
        base_utilization: Ambient busy fraction assumed when a query
            does not carry an explicit utilization vector.
        catalog_details: Optional Table-I ``details`` string recording
            which catalogued system this chassis models.
    """

    chassis_id: str
    n_rows: int = 1
    lanes_per_row: int = 2
    chain_length: int = 6
    sockets_per_cartridge_depth: int = 2
    inlet_c: float = 18.0
    base_utilization: float = 0.5
    catalog_details: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.chassis_id:
            raise FleetError("chassis id must be non-empty")
        if not 0.0 <= self.base_utilization <= 1.0:
            raise FleetError("base utilization must lie in [0, 1]")

    def build_topology(self) -> ServerTopology:
        """Construct the chassis geometry from the recipe."""
        return ServerTopology(
            n_rows=self.n_rows,
            lanes_per_row=self.lanes_per_row,
            chain_length=self.chain_length,
            sockets_per_cartridge_depth=self.sockets_per_cartridge_depth,
        )

    def build_params(self, seed: int = 0) -> SimulationParameters:
        """Scaled simulation parameters with this chassis' inlet."""
        return dataclasses.replace(
            scaled(seed=seed), inlet_c=self.inlet_c
        )


@dataclass(frozen=True)
class WorkerSpec:
    """One supervised worker process slot.

    Attributes:
        worker_id: Unique fleet-wide identifier.
        chassis_id: The chassis this worker serves.
    """

    worker_id: str
    chassis_id: str


def spec_from_catalog(
    system: DensityOptimizedSystem,
    chassis_id: str,
    n_rows: int = 1,
    inlet_c: float = 18.0,
) -> ChassisSpec:
    """Derive a chassis spec from a Table-I catalog entry.

    The degree of thermal coupling picks the lane layout: strongly
    coupled systems (degree >= 4, e.g. the M700 cartridges) get the
    full 6-deep chain, degree-2 systems a 2-deep chain, and uncoupled
    systems independent single-socket lanes — so a catalog-built fleet
    is genuinely heterogeneous in the dimension the paper cares about.
    """
    if system.degree_of_coupling >= 4:
        chain, depth, lanes = 6, 2, 2
    elif system.degree_of_coupling >= 2:
        chain, depth, lanes = 2, 2, 2
    else:
        chain, depth, lanes = 1, 1, 4
    return ChassisSpec(
        chassis_id=chassis_id,
        n_rows=n_rows,
        lanes_per_row=lanes,
        chain_length=chain,
        sockets_per_cartridge_depth=depth,
        inlet_c=inlet_c,
        catalog_details=system.details,
    )


@dataclass(frozen=True)
class FleetRegistry:
    """The immutable fleet layout the coordinator serves.

    Attributes:
        chassis: Chassis specs keyed by id.
        workers: Worker slots, in deterministic supervision order.
    """

    chassis: Dict[str, ChassisSpec] = field(default_factory=dict)
    workers: Tuple[WorkerSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "chassis", dict(self.chassis))
        object.__setattr__(self, "workers", tuple(self.workers))
        seen = set()
        for worker in self.workers:
            if worker.worker_id in seen:
                raise FleetError(
                    f"duplicate worker id {worker.worker_id!r}"
                )
            seen.add(worker.worker_id)
            if worker.chassis_id not in self.chassis:
                raise FleetError(
                    f"worker {worker.worker_id!r} serves unknown "
                    f"chassis {worker.chassis_id!r}"
                )
        if not self.chassis:
            raise FleetError("fleet registry needs at least one chassis")

    @property
    def n_chassis(self) -> int:
        return len(self.chassis)

    @property
    def n_workers(self) -> int:
        return len(self.workers)

    def workers_for(self, chassis_id: str) -> List[WorkerSpec]:
        """The workers (primary first) serving one chassis."""
        if chassis_id not in self.chassis:
            raise FleetError(f"unknown chassis {chassis_id!r}")
        return [
            w for w in self.workers if w.chassis_id == chassis_id
        ]

    def spec_for_worker(self, worker_id: str) -> ChassisSpec:
        """The chassis spec a worker serves."""
        for worker in self.workers:
            if worker.worker_id == worker_id:
                return self.chassis[worker.chassis_id]
        raise FleetError(f"unknown worker {worker_id!r}")


def demo_fleet(
    n_chassis: int = 3,
    n_rows: int = 1,
    replicas: int = 1,
) -> FleetRegistry:
    """A small heterogeneous fleet drawn from the Table-I catalog.

    Chassis ``c0..cN`` cycle through catalog systems with *distinct*
    coupling degrees (high/medium/low), each staggered by 1 degC of
    inlet temperature so no two chassis are thermally identical.
    ``replicas`` extra workers per chassis give the coordinator retry
    targets.
    """
    if n_chassis < 1:
        raise FleetError("fleet needs at least one chassis")
    if replicas < 0:
        raise FleetError("replicas must be >= 0")
    # One representative per coupling degree, in catalog order.
    by_degree: Dict[int, DensityOptimizedSystem] = {}
    for system in TABLE_I_SYSTEMS:
        by_degree.setdefault(system.degree_of_coupling, system)
    cycle = [by_degree[d] for d in sorted(by_degree, reverse=True)]
    chassis: Dict[str, ChassisSpec] = {}
    workers: List[WorkerSpec] = []
    for i in range(n_chassis):
        chassis_id = f"c{i}"
        system = cycle[i % len(cycle)]
        chassis[chassis_id] = spec_from_catalog(
            system,
            chassis_id,
            n_rows=n_rows,
            inlet_c=18.0 + float(i),
        )
        for r in range(1 + replicas):
            workers.append(
                WorkerSpec(
                    worker_id=f"{chassis_id}-w{r}",
                    chassis_id=chassis_id,
                )
            )
    return FleetRegistry(chassis=chassis, workers=workers)

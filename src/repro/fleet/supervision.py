"""Worker supervision: heartbeats, restart budgets, quarantine.

Each worker process is shadowed by a :class:`WorkerSupervisor` — a
pure, clock-driven state machine (all methods take ``now``; nothing
reads wall-clock) so the same inputs always produce the same event
sequence, which is what lets the chaos harness pin supervision
behaviour bit-for-bit.

States and transitions::

    STARTING --first heartbeat--> HEALTHY
    HEALTHY  --deadline missed--> SUSPECT
    SUSPECT  --heartbeat-------> HEALTHY
    SUSPECT  --grace expired---> RESTARTING   (backoff, budget--)
    STARTING --grace expired---> RESTARTING
    any live --process exit----> RESTARTING
    RESTARTING --budget gone---> QUARANTINED  (terminal)
    RESTARTING --backoff done--> STARTING

A worker that keeps flapping burns through its restart budget under
capped exponential backoff and is demoted to ``QUARANTINED``: the
supervisor stops restarting it, and the coordinator serves that
chassis from its last snapshot (tagged stale) instead.

The heartbeat cadence is configurable per deployment via
``--heartbeat-interval`` / ``REPRO_FLEET_HEARTBEAT`` with the same
sentinel discipline as ``REPRO_CACHE_MAX``: the ``-1.0`` default
defers to the environment, and non-positive values are rejected with
a :class:`~repro.errors.ConfigurationError` naming the knob.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Optional

from ..errors import ConfigurationError

#: Environment variable setting the default heartbeat interval (s).
ENV_HEARTBEAT = "REPRO_FLEET_HEARTBEAT"

#: Default heartbeat interval when ``REPRO_FLEET_HEARTBEAT`` is unset.
DEFAULT_HEARTBEAT_S = 1.0


def heartbeat_interval_from_env() -> float:
    """The heartbeat interval declared by the environment.

    Raises:
        ConfigurationError: for a non-numeric or non-positive value,
            naming ``REPRO_FLEET_HEARTBEAT``.
    """
    raw = os.environ.get(ENV_HEARTBEAT)
    if raw is None or raw == "":
        return DEFAULT_HEARTBEAT_S
    try:
        value = float(raw)
    except ValueError as exc:
        raise ConfigurationError(
            f"{ENV_HEARTBEAT} must be a number of seconds, got {raw!r}"
        ) from exc
    if value <= 0:
        raise ConfigurationError(
            f"{ENV_HEARTBEAT} must be positive, got {value!r}"
        )
    return value


class WorkerState(Enum):
    """Supervision state of one worker."""

    STARTING = "starting"
    HEALTHY = "healthy"
    SUSPECT = "suspect"
    RESTARTING = "restarting"
    QUARANTINED = "quarantined"


#: Transitions the state machine may legally take (old -> new).  The
#: invariant checker validates logged ``fleet_worker_state`` events
#: against this set.
LEGAL_TRANSITIONS = frozenset(
    {
        (WorkerState.STARTING, WorkerState.HEALTHY),
        (WorkerState.STARTING, WorkerState.RESTARTING),
        (WorkerState.STARTING, WorkerState.QUARANTINED),
        (WorkerState.HEALTHY, WorkerState.SUSPECT),
        (WorkerState.HEALTHY, WorkerState.RESTARTING),
        (WorkerState.HEALTHY, WorkerState.QUARANTINED),
        (WorkerState.SUSPECT, WorkerState.HEALTHY),
        (WorkerState.SUSPECT, WorkerState.RESTARTING),
        (WorkerState.SUSPECT, WorkerState.QUARANTINED),
        (WorkerState.RESTARTING, WorkerState.STARTING),
    }
)


@dataclass(frozen=True)
class SupervisionPolicy:
    """Tunables of the supervision state machine.

    Attributes:
        heartbeat_interval_s: Expected heartbeat cadence.  The
            ``-1.0`` sentinel (default) defers to
            ``REPRO_FLEET_HEARTBEAT`` (default 1.0 s); any other
            non-positive value is rejected.
        missed_heartbeats: Consecutive missed beats before a HEALTHY
            worker turns SUSPECT.
        restart_backoff_s: Base of the exponential restart backoff.
        restart_backoff_cap_s: Ceiling of the backoff.
        max_restarts: Restart budget; exceeding it quarantines the
            worker.
    """

    heartbeat_interval_s: float = -1.0
    missed_heartbeats: int = 3
    restart_backoff_s: float = 0.5
    restart_backoff_cap_s: float = 8.0
    max_restarts: int = 3

    def __post_init__(self) -> None:
        if self.heartbeat_interval_s == -1.0:
            # The -1.0 sentinel defers to the environment; it is the
            # only negative value with a meaning (REPRO_CACHE_MAX
            # precedent).
            object.__setattr__(
                self,
                "heartbeat_interval_s",
                heartbeat_interval_from_env(),
            )
        elif self.heartbeat_interval_s <= 0:
            raise ConfigurationError(
                f"heartbeat interval must be positive or the -1.0 "
                f"sentinel (use {ENV_HEARTBEAT}); got "
                f"{self.heartbeat_interval_s!r}"
            )
        if self.missed_heartbeats < 1:
            raise ConfigurationError("missed_heartbeats must be >= 1")
        if self.restart_backoff_s < 0:
            raise ConfigurationError("restart backoff must be >= 0")
        if self.restart_backoff_cap_s < self.restart_backoff_s:
            raise ConfigurationError(
                "restart backoff cap must be >= the base backoff"
            )
        if self.max_restarts < 0:
            raise ConfigurationError("max_restarts must be >= 0")

    @property
    def heartbeat_deadline_s(self) -> float:
        """Silence tolerated before a worker turns SUSPECT."""
        return self.heartbeat_interval_s * self.missed_heartbeats

    def backoff_for(self, attempt: int) -> float:
        """Capped exponential backoff before restart ``attempt``."""
        return min(
            self.restart_backoff_s * 2 ** max(attempt - 1, 0),
            self.restart_backoff_cap_s,
        )


@dataclass
class WorkerSupervisor:
    """Clock-driven supervision state for one worker.

    The supervisor never touches the worker itself: the coordinator
    observes transitions (``check``/``note_exit`` return ``True`` when
    the worker went down, so in-flight work can be recovered) and
    performs the actual kill/start through the worker handle.

    Attributes:
        worker_id: Whom we are supervising.
        policy: The shared supervision tunables.
        emit: Event sink ``(type, **fields)`` for
            ``fleet_worker_state`` transitions.
    """

    worker_id: str
    policy: SupervisionPolicy
    emit: Callable[..., None]
    state: WorkerState = WorkerState.STARTING
    last_heartbeat_t: float = 0.0
    last_seq: int = -1
    restarts: int = 0
    incarnation: int = 0
    next_restart_t: Optional[float] = None
    started_t: float = 0.0
    pending_cold: bool = field(default=False, repr=False)

    def _transition(self, now: float, new: WorkerState) -> None:
        old = self.state
        if old is new:
            return
        self.state = new
        self.emit(
            "fleet_worker_state",
            t=float(now),
            worker=self.worker_id,
            old=old.value,
            new=new.value,
        )

    # -- inputs ---------------------------------------------------------

    def observe_heartbeat(self, now: float, seq: int) -> None:
        """A heartbeat arrived; stale (non-increasing) seqs are ignored."""
        if self.state in (WorkerState.RESTARTING, WorkerState.QUARANTINED):
            return  # a corpse's buffered beats prove nothing
        if seq <= self.last_seq:
            return
        self.last_seq = seq
        self.last_heartbeat_t = now
        if self.state in (WorkerState.STARTING, WorkerState.SUSPECT):
            self._transition(now, WorkerState.HEALTHY)

    def note_exit(self, now: float) -> bool:
        """The worker process died outright; returns True (it is down)."""
        if self.state in (WorkerState.RESTARTING, WorkerState.QUARANTINED):
            return False
        self._schedule_restart(now)
        return True

    def check(self, now: float) -> bool:
        """Run deadline detection; returns True if the worker went down.

        HEALTHY workers that miss their heartbeat deadline turn
        SUSPECT; SUSPECT (and never-heartbeating STARTING) workers that
        stay silent for a further deadline are declared dead and a
        restart is scheduled.
        """
        deadline = self.policy.heartbeat_deadline_s
        if self.state is WorkerState.HEALTHY:
            if now - self.last_heartbeat_t > deadline:
                self._transition(now, WorkerState.SUSPECT)
            return False
        if self.state is WorkerState.SUSPECT:
            if now - self.last_heartbeat_t > 2 * deadline:
                self._schedule_restart(now)
                return True
            return False
        if self.state is WorkerState.STARTING:
            if now - self.started_t > 2 * deadline:
                self._schedule_restart(now)
                return True
        return False

    # -- restart lifecycle ----------------------------------------------

    def _schedule_restart(self, now: float) -> None:
        self.restarts += 1
        if self.restarts > self.policy.max_restarts:
            self._transition(now, WorkerState.QUARANTINED)
            self.next_restart_t = None
            return
        self._transition(now, WorkerState.RESTARTING)
        self.next_restart_t = now + self.policy.backoff_for(self.restarts)

    def due_restart(self, now: float) -> bool:
        """Whether the backoff has elapsed and a restart should run."""
        return (
            self.state is WorkerState.RESTARTING
            and self.next_restart_t is not None
            and now >= self.next_restart_t
        )

    def on_restarted(self, now: float, cold: bool) -> None:
        """The coordinator restarted the worker process.

        ``cold=True`` records that checkpoint recovery failed (e.g. a
        :class:`~repro.errors.CheckpointCorruptionError`) and the
        worker came up with fresh state.
        """
        self.emit(
            "fleet_restart",
            t=float(now),
            worker=self.worker_id,
            attempt=self.restarts,
            backoff_s=float(self.policy.backoff_for(self.restarts)),
            cold=bool(cold),
        )
        self.incarnation += 1
        self.last_seq = -1
        self.started_t = now
        self.next_restart_t = None
        self._transition(now, WorkerState.STARTING)

    @property
    def serving(self) -> bool:
        """Whether new requests may be dispatched to this worker."""
        return self.state in (WorkerState.HEALTHY, WorkerState.STARTING)

    @property
    def down(self) -> bool:
        """Whether the worker is definitively not executing anything."""
        return self.state in (
            WorkerState.RESTARTING,
            WorkerState.QUARANTINED,
        )

"""The per-chassis worker process and its coordinator-side handle.

One worker process serves one chassis: it rebuilds the topology from
its picklable :class:`~repro.fleet.registry.ChassisSpec` (the same
ship-the-recipe discipline as :mod:`repro.sim.parallel`), answers
queries through :class:`~repro.fleet.compute.ChassisCompute`, and
heartbeats on a fixed cadence so the supervisor can tell a hung worker
from a slow one.

State recovery: the worker persists its latest
:class:`~repro.fleet.compute.ChassisSnapshot` to a per-worker
:class:`~repro.sim.checkpoint.SweepCheckpoint` entry after every
answer.  On (re)start it recovers through the *strict* load path — a
corrupt checkpoint surfaces as a typed
:class:`~repro.errors.CheckpointCorruptionError` (poisoned files are
dropped), the worker comes up cold, and the ``hello`` it sends carries
``cold=True`` so the supervision log records the recovery provenance.
"""

from __future__ import annotations

import multiprocessing
import time
from typing import List, Optional, Tuple

from ..errors import CheckpointCorruptionError
from ..sim.checkpoint import SweepCheckpoint
from .compute import (
    WARM_FIELD_CACHE_MAX,
    ChassisCompute,
    ChassisSnapshot,
)
from .messages import QueryBatch
from .registry import ChassisSpec


def snapshot_key(worker_id: str) -> str:
    """Checkpoint key under which a worker persists its snapshot."""
    return f"fleet-snapshot-{worker_id}"


def worker_main(
    conn,
    spec: ChassisSpec,
    worker_id: str,
    heartbeat_interval_s: float,
    checkpoint_dir: Optional[str] = None,
    backend: Optional[str] = None,
    warm_capacity: int = WARM_FIELD_CACHE_MAX,
) -> None:
    """Worker process entry point (runs until ``stop`` or EOF).

    Protocol (all over the duplex pipe ``conn``):

    - outbound: ``("hello", cold)`` once, then ``("snapshot", snap)``
      and ``("heartbeat", seq)`` / ``("answer", rid, payload)`` /
      ``("answer_batch", batch_id, entries, stats)``;
    - inbound: ``("request", rid, query)``,
      ``("request_batch", batch)`` and ``("stop",)``.
    """
    checkpoint = None
    snapshot: Optional[ChassisSnapshot] = None
    cold = False
    if checkpoint_dir:
        checkpoint = SweepCheckpoint(
            checkpoint_dir, expected_type=ChassisSnapshot
        )
        try:
            snapshot = checkpoint.load_strict(snapshot_key(worker_id))
        except CheckpointCorruptionError:
            # The poisoned files are already dropped: recover cold and
            # tell the supervisor so (the alternative — crashing — is
            # exactly the flap loop this path exists to break).
            cold = True
    compute = ChassisCompute(
        spec, backend=backend, warm_capacity=warm_capacity
    )
    try:
        conn.send(("hello", cold))
        if snapshot is None:
            snapshot = compute.snapshot()
            if checkpoint is not None:
                checkpoint.save(snapshot_key(worker_id), snapshot)
        conn.send(("snapshot", snapshot))
        seq = 0
        conn.send(("heartbeat", seq))
        last_beat = time.monotonic()
        while True:
            wait = max(
                0.0,
                last_beat + heartbeat_interval_s - time.monotonic(),
            )
            if conn.poll(wait):
                message = conn.recv()
                if message[0] == "stop":
                    return
                if message[0] == "request":
                    _, rid, query = message
                    payload = compute.answer(query)
                    conn.send(("answer", rid, payload))
                    snapshot = compute.snapshot(
                        getattr(query, "utilization", None)
                    )
                    if checkpoint is not None:
                        checkpoint.save(
                            snapshot_key(worker_id), snapshot
                        )
                    conn.send(("snapshot", snapshot))
                if message[0] == "request_batch":
                    batch: QueryBatch = message[1]
                    payloads, stats = compute.answer_batch(
                        batch.queries
                    )
                    conn.send(
                        (
                            "answer_batch",
                            batch.batch_id,
                            list(zip(batch.request_ids, payloads)),
                            stats,
                        )
                    )
                    # One snapshot per batch, from the last member's
                    # state — the same end state the serial loop
                    # would have reported after its final answer.
                    snapshot = compute.snapshot(
                        getattr(
                            batch.queries[-1], "utilization", None
                        )
                    )
                    if checkpoint is not None:
                        checkpoint.save(
                            snapshot_key(worker_id), snapshot
                        )
                    conn.send(("snapshot", snapshot))
            if time.monotonic() - last_beat >= heartbeat_interval_s:
                seq += 1
                conn.send(("heartbeat", seq))
                last_beat = time.monotonic()
    except (EOFError, BrokenPipeError, OSError):
        return  # coordinator went away; nothing to clean up


class ProcessWorkerHandle:
    """Coordinator-side transport for one real worker process.

    Satisfies the :class:`~repro.fleet.coordinator.WorkerHandle`
    protocol.  ``start`` returns ``None`` — the cold-recovery flag
    arrives asynchronously in the worker's ``hello``.
    """

    def __init__(
        self,
        spec: ChassisSpec,
        worker_id: str,
        heartbeat_interval_s: float,
        checkpoint_dir: Optional[str] = None,
        backend: Optional[str] = None,
        warm_capacity: int = WARM_FIELD_CACHE_MAX,
    ) -> None:
        self.spec = spec
        self.worker_id = worker_id
        self.heartbeat_interval_s = heartbeat_interval_s
        self.checkpoint_dir = checkpoint_dir
        self.backend = backend
        self.warm_capacity = warm_capacity
        self._proc: Optional[multiprocessing.Process] = None
        self._conn = None
        self._exit_reported = False

    def _context(self):
        methods = multiprocessing.get_all_start_methods()
        return multiprocessing.get_context(
            "fork" if "fork" in methods else "spawn"
        )

    def start(self, now: float) -> Optional[bool]:
        self.stop(now)
        context = self._context()
        parent, child = context.Pipe(duplex=True)
        self._conn = parent
        self._exit_reported = False
        self._proc = context.Process(
            target=worker_main,
            args=(
                child,
                self.spec,
                self.worker_id,
                self.heartbeat_interval_s,
                self.checkpoint_dir,
                self.backend,
                self.warm_capacity,
            ),
            daemon=True,
        )
        self._proc.start()
        child.close()
        return None

    def stop(self, now: float) -> None:
        if self._proc is not None and self._proc.is_alive():
            self._proc.terminate()
            self._proc.join(timeout=2.0)
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:  # pragma: no cover - close race
                pass
        self._proc = None
        self._conn = None

    def send(self, request_id: int, query, now: float) -> None:
        if self._conn is None:
            return
        try:
            self._conn.send(("request", request_id, query))
        except (BrokenPipeError, OSError):
            pass  # supervision will notice the corpse via poll()

    def send_batch(self, batch: QueryBatch, now: float) -> None:
        if self._conn is None:
            return
        try:
            self._conn.send(("request_batch", batch))
        except (BrokenPipeError, OSError):
            pass  # supervision will notice the corpse via poll()

    def poll(self, now: float) -> List[Tuple]:
        messages: List[Tuple] = []
        if self._conn is not None:
            try:
                while self._conn.poll(0):
                    messages.append(self._conn.recv())
            except (EOFError, BrokenPipeError, OSError):
                pass
        if (
            self._proc is not None
            and self._proc.exitcode is not None
            and not self._exit_reported
        ):
            self._exit_reported = True
            messages.append(("exit",))
        return messages

"""Request/answer vocabulary of the fleet coordinator.

Everything here is a frozen, picklable value object: queries travel
from the coordinator into worker processes, answers travel back, and
both sides must survive the fork boundary and a JSON round-trip (the
``repro fleet serve`` TCP protocol ships :meth:`FleetAnswer.to_dict`
lines).

The coordinator promises every admitted request exactly one *terminal*
answer, whose :class:`AnswerStatus` tells the caller how much to trust
it:

- ``OK`` — computed by a live chassis worker from current state;
- ``DEGRADED`` — served from the chassis' last telemetry snapshot
  because no healthy worker was available; ``staleness_s`` bounds how
  old that state is;
- ``SHED`` — rejected under backpressure (a ``503``-style
  :class:`FleetBusy` outcome) without being executed;
- ``FAILED`` — no worker, no fresh-enough snapshot, or the retry
  budget ran out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Mapping, Optional, Tuple

from ..errors import FleetError


class RequestClass(Enum):
    """Load-shedding priority class of a request.

    ``INTERACTIVE`` requests are the last to be shed: when the bounded
    queue fills, the coordinator evicts queued ``BATCH`` work to admit
    them.  ``BATCH`` requests are shed first.
    """

    INTERACTIVE = "interactive"
    BATCH = "batch"


class AnswerStatus(Enum):
    """Terminal disposition of a request (see module docstring)."""

    OK = "ok"
    DEGRADED = "degraded"
    SHED = "shed"
    FAILED = "failed"


@dataclass(frozen=True)
class PlacementQuery:
    """Where should a job of this size land on a chassis?

    Attributes:
        chassis: Target chassis id in the fleet registry.
        job_power_w: Dynamic power the job draws while busy, W.
        utilization: Optional per-socket busy fractions describing the
            chassis' current load; ``None`` means the uniform
            ``base_utilization`` of the chassis spec.
        request_class: Shedding priority.
    """

    chassis: str
    job_power_w: float
    utilization: Optional[Tuple[float, ...]] = None
    request_class: RequestClass = RequestClass.INTERACTIVE

    kind = "placement"

    def __post_init__(self) -> None:
        if self.job_power_w <= 0:
            raise FleetError("job power must be positive")
        if self.utilization is not None:
            object.__setattr__(
                self, "utilization", tuple(float(u) for u in self.utilization)
            )


@dataclass(frozen=True)
class WhatIfQuery:
    """What would the chassis look like under a hypothetical load?

    Evaluated through the batched fleet-tensor sweep
    (:func:`repro.sim.batched.evaluate_fleet`): each ``(utilization,
    dyn_max_w)`` scenario becomes one :class:`~repro.sim.batched.
    FleetPoint` and the whole batch is answered with stacked kernel
    calls.

    Attributes:
        chassis: Target chassis id.
        scenarios: ``(utilization, dyn_max_w)`` pairs to evaluate.
        window_steps: Cold-start transient steps to advance per point.
        request_class: Shedding priority (what-ifs default to BATCH).
    """

    chassis: str
    scenarios: Tuple[Tuple[float, float], ...]
    window_steps: int = 0
    request_class: RequestClass = RequestClass.BATCH

    kind = "what_if"

    def __post_init__(self) -> None:
        scenarios = tuple(
            (float(u), float(p)) for u, p in self.scenarios
        )
        if not scenarios:
            raise FleetError("what-if query needs at least one scenario")
        if self.window_steps < 0:
            raise FleetError("window steps must be >= 0")
        object.__setattr__(self, "scenarios", scenarios)


#: Union of the concrete query types.
FleetQuery = (PlacementQuery, WhatIfQuery)


@dataclass(frozen=True)
class QueryBatch:
    """Several queued queries for one chassis, shipped as one message.

    Produced by the coordinator's micro-batching dispatch path (see
    :class:`~repro.fleet.coordinator.FleetConfig` ``batch_window_s`` /
    ``max_batch``): compatible queries that coalesced inside one
    batching window travel to the worker together, the worker answers
    them in one :meth:`~repro.fleet.compute.ChassisCompute.
    answer_batch` pass, and the reply comes back as a single
    ``("answer_batch", batch_id, entries, stats)`` message.  Each
    member keeps its own request id, timeout, retry budget and
    exactly-one-terminal-answer guarantee — the batch is a *transport
    and compute* grouping, never a delivery grouping.

    Attributes:
        batch_id: Coordinator-assigned id echoed back by the worker so
            the reply can be matched to its dispatch record.
        chassis: The single chassis every member targets.
        request_ids: Coordinator request ids, aligned with ``queries``.
        queries: The member queries, in dispatch (queue) order.
    """

    batch_id: int
    chassis: str
    request_ids: Tuple[int, ...]
    queries: Tuple

    kind = "query_batch"

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "request_ids", tuple(int(r) for r in self.request_ids)
        )
        object.__setattr__(self, "queries", tuple(self.queries))
        if not self.queries:
            raise FleetError("a query batch needs at least one member")
        if len(self.request_ids) != len(self.queries):
            raise FleetError(
                f"batch has {len(self.request_ids)} request ids for "
                f"{len(self.queries)} queries"
            )
        if len(set(self.request_ids)) != len(self.request_ids):
            raise FleetError("batch request ids must be unique")
        for query in self.queries:
            if not isinstance(query, FleetQuery):
                raise FleetError(
                    f"batch members must be fleet queries, got "
                    f"{type(query).__name__}"
                )
            if query.chassis != self.chassis:
                raise FleetError(
                    f"batch for chassis {self.chassis!r} contains a "
                    f"query for {query.chassis!r}"
                )

    def __len__(self) -> int:
        return len(self.queries)


@dataclass(frozen=True)
class FleetAnswer:
    """The single terminal answer for one request.

    Attributes:
        request_id: Coordinator-assigned id echoed back to the caller.
        status: Terminal disposition.
        payload: Status-specific result fields (e.g. ``socket`` and
            ``predicted_peak_c`` for a placement).  Always JSON-safe.
        staleness_s: Age of the serving snapshot for ``DEGRADED``
            answers; ``0.0`` otherwise.
        attempts: Worker dispatch attempts consumed (0 for sheds and
            snapshot-only answers).
        reason: Human-readable cause for SHED/FAILED/DEGRADED answers.
    """

    request_id: int
    status: AnswerStatus
    payload: Mapping = field(default_factory=dict)
    staleness_s: float = 0.0
    attempts: int = 0
    reason: str = ""

    def to_dict(self) -> dict:
        """JSON-safe representation (the TCP wire format)."""
        return {
            "request_id": self.request_id,
            "status": self.status.value,
            "payload": dict(self.payload),
            "staleness_s": self.staleness_s,
            "attempts": self.attempts,
            "reason": self.reason,
        }


class FleetBusy(FleetError):
    """Raised by blocking submit paths when a request was shed.

    Carries the terminal :class:`FleetAnswer` (status ``SHED``) so
    callers can distinguish queue-full sheds from other failures —
    the moral equivalent of an HTTP 503 with a Retry-After.
    """

    def __init__(self, answer: "FleetAnswer"):
        self.answer = answer
        super().__init__(
            f"fleet is shedding load: {answer.reason or 'queue full'}"
        )

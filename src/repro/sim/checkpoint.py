"""On-disk sweep checkpoints for crash-resilient, resumable sweeps.

A long sweep that dies at point 180 of 200 — a worker segfault, an OOM
kill, a pre-empted batch job — should not recompute the 179 finished
points.  :class:`SweepCheckpoint` persists each completed point as one
pickle file named by the point's full configuration key (see
:func:`repro.sim.parallel.config_key`), so a re-run with the same
configuration reloads every finished point and only simulates the
remainder.  Because every point is deterministic in its configuration,
a resumed sweep is bit-identical to an uninterrupted one.

Durability properties:

- **Atomic writes.** Each result is pickled to a temporary file in the
  checkpoint directory and moved into place with :func:`os.replace`,
  so a crash mid-write never leaves a truncated checkpoint under the
  final name.
- **Corruption tolerance.** A checkpoint that fails to unpickle (e.g.
  a stray partial file from a hard power loss) is deleted and treated
  as a miss — the point is simply recomputed.
- **Keyed by content, not position.** Files are named by the config
  key, so reordering the sweep grid, changing its size, or sharing one
  directory between overlapping sweeps all resume correctly.

Checkpoints store full :class:`~repro.sim.results.SimulationResult`
objects and are only meant to be read back by the same code version
that wrote them; delete the directory after upgrading.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path
from typing import Optional

from ..errors import SimulationError
from .results import SimulationResult

#: Suffix of finished-point files inside a checkpoint directory.
CHECKPOINT_SUFFIX = ".ckpt.pkl"


class SweepCheckpoint:
    """A directory of per-point sweep checkpoints.

    Attributes:
        directory: Where point files live (created on first use).
        loads: Points answered from disk so far.
        saves: Points persisted to disk so far.
        dropped: Corrupt files deleted and recomputed.
    """

    def __init__(self, directory):
        self.directory = Path(directory)
        if self.directory.exists() and not self.directory.is_dir():
            raise SimulationError(
                f"checkpoint path {self.directory} is not a directory"
            )
        self.loads = 0
        self.saves = 0
        self.dropped = 0

    def _path(self, key: str) -> Path:
        return self.directory / f"{key}{CHECKPOINT_SUFFIX}"

    def load(self, key: str) -> Optional[SimulationResult]:
        """The checkpointed result for ``key``, or ``None``.

        A file that exists but cannot be unpickled is deleted and
        reported as a miss, so a half-written or stale checkpoint can
        never poison a sweep.
        """
        path = self._path(key)
        if not path.exists():
            return None
        try:
            with open(path, "rb") as handle:
                result = pickle.load(handle)
        except Exception:
            self.dropped += 1
            try:
                path.unlink()
            except OSError:  # pragma: no cover - unlink race
                pass
            return None
        if not isinstance(result, SimulationResult):
            self.dropped += 1
            path.unlink()
            return None
        self.loads += 1
        return result

    def save(self, key: str, result: SimulationResult) -> None:
        """Persist one finished point atomically.

        The pickle is written to a temporary file in the same directory
        and renamed over the final path, so readers only ever see
        complete checkpoints.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            prefix=".tmp-", suffix=CHECKPOINT_SUFFIX, dir=self.directory
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(result, handle, pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.saves += 1

    def __len__(self) -> int:
        """Number of finished points currently on disk."""
        if not self.directory.is_dir():
            return 0
        return sum(
            1
            for name in os.listdir(self.directory)
            if name.endswith(CHECKPOINT_SUFFIX)
            and not name.startswith(".tmp-")
        )
